// outofcore_bench — the out-of-core acceptance benchmark (CI artifact
// BENCH_outofcore.json).
//
//   outofcore_bench [--k=22] [--out=BENCH_outofcore.json] [--keep=PATH]
//
// One run: sample a k-level SKG with the edge-skip generator (millions
// of nodes in O(E·k)), serialize it as a .dpkb v3, reopen it via
// MmapGraph, and compute the full five-panel statistics twice — once
// from the in-RAM arenas, once from the mapping — with a PassCounter on
// each view. The run FAILS (exit 1) unless the two GraphStatistics are
// byte-identical and the two pass plans agree: mmap is an execution
// strategy, never a result change, and this binary is where CI holds
// that line at a scale (k = 22 ⇒ 4M nodes) the unit tests can't afford.
//
// The JSON artifact records the wall times of every stage (sample,
// write, open, both computes) plus the per-kernel pass counts — the
// open_seconds row is the O(header) claim made measurable, and the pass
// counts are the fused-plan trajectory across commits.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <string>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/core/release.h"
#include "src/graph/graph_io.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void AppendPasses(JsonWriter& json, const PassCounter& passes) {
  json.BeginObject();
  for (const auto& [kernel, count] : passes.Snapshot()) {
    json.Key(kernel);
    json.UInt(count);
  }
  json.EndObject();
}

int Main(int argc, char** argv) {
  uint32_t k = 22;
  std::string out_path = "BENCH_outofcore.json";
  std::string dpkb_path;  // empty = temp file, removed on success

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--k", &value) && value) {
      k = static_cast<uint32_t>(std::atoi(value));
    } else if (ParseFlag(argv[i], "--out", &value) && value) {
      out_path = value;
    } else if (ParseFlag(argv[i], "--keep", &value) && value) {
      dpkb_path = value;
    } else {
      std::fprintf(stderr,
                   "usage: outofcore_bench [--k=N] [--out=PATH] "
                   "[--keep=DPKB_PATH]\n");
      return 2;
    }
  }
  const bool keep_dpkb = !dpkb_path.empty();
  if (dpkb_path.empty()) {
    dpkb_path = (std::filesystem::temp_directory_path() /
                 ("outofcore_bench_" + std::to_string(::getpid()) + ".dpkb"))
                    .string();
  }

  // The paper-shaped initiator at bench scale: ~2.15^k expected edge
  // placements (k = 22 ⇒ ~4.2M nodes, ~10M undirected edges — a CSR
  // comfortably past any cache but well inside a CI runner).
  const Initiator2 theta{0.9, 0.55, 0.15};
  SkgSampleOptions sample_options;
  sample_options.method = SkgSampleMethod::kEdgeSkip;

  std::fprintf(stderr, "# sampling edge-skip SKG, k=%u ...\n", k);
  Rng sample_rng(20260808);
  double t0 = Now();
  const Graph graph = SampleSkg(theta, k, sample_rng, sample_options);
  const double sample_seconds = Now() - t0;
  std::fprintf(stderr, "# sampled: %u nodes, %llu edges (%.2fs)\n",
               graph.NumNodes(),
               static_cast<unsigned long long>(graph.NumEdges()),
               sample_seconds);

  t0 = Now();
  const Status written = WriteBinaryGraph(graph, dpkb_path);
  const double write_seconds = Now() - t0;
  if (!written.ok()) {
    std::fprintf(stderr, "outofcore_bench: write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  const uint64_t dpkb_bytes = std::filesystem::file_size(dpkb_path);

  t0 = Now();
  auto mapped = MmapGraph::Open(dpkb_path);
  const double open_seconds = Now() - t0;
  if (!mapped.ok()) {
    std::fprintf(stderr, "outofcore_bench: mmap open failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  if (!mapped.value()->mapped()) {
    std::fprintf(stderr, "outofcore_bench: v3 file not served zero-copy\n");
    return 1;
  }
  if (mapped.value()->ContentFingerprint() != graph.ContentFingerprint()) {
    std::fprintf(stderr, "outofcore_bench: fingerprint mismatch\n");
    return 1;
  }

  // Bench-scale statistics options: the structure of the pass plan is
  // what's measured, not a paper figure, so the iterative families run
  // at reduced depth to keep CI wall time bounded.
  StatisticsOptions options;
  options.anf_trials = 8;
  options.num_singular_values = 8;
  options.num_network_values = 100;
  const ReleasePipeline pipeline(options);

  std::fprintf(stderr, "# computing statistics from RAM arenas ...\n");
  PassCounter ram_passes;
  Rng ram_rng(41);
  t0 = Now();
  const GraphStatistics from_ram = pipeline.ComputeEphemeral(
      GraphView(graph).WithPassCounter(&ram_passes), ram_rng);
  const double ram_seconds = Now() - t0;

  std::fprintf(stderr, "# computing statistics from the mmap ...\n");
  PassCounter mmap_passes;
  Rng mmap_rng(41);
  t0 = Now();
  const GraphStatistics from_mmap = pipeline.ComputeEphemeral(
      mapped.value()->view().WithPassCounter(&mmap_passes), mmap_rng);
  const double mmap_seconds = Now() - t0;

  // The acceptance assertions. operator== on GraphStatistics is exact
  // (double-for-double) equality.
  if (!(from_ram == from_mmap)) {
    std::fprintf(stderr,
                 "outofcore_bench: FAIL — statistics differ between in-RAM "
                 "and mmap backings\n");
    return 1;
  }
  if (ram_passes.Snapshot() != mmap_passes.Snapshot()) {
    std::fprintf(stderr,
                 "outofcore_bench: FAIL — pass plans differ between "
                 "backings\n");
    return 1;
  }
  if (ram_passes.count("node_stats") != 1) {
    std::fprintf(stderr,
                 "outofcore_bench: FAIL — fused node-stats family took %llu "
                 "passes, want 1\n",
                 static_cast<unsigned long long>(
                     ram_passes.count("node_stats")));
    return 1;
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("dpkron.outofcore_bench.v1");
  json.Key("k");
  json.UInt(k);
  json.Key("num_nodes");
  json.UInt(graph.NumNodes());
  json.Key("num_edges");
  json.UInt(graph.NumEdges());
  json.Key("dpkb_bytes");
  json.UInt(dpkb_bytes);
  json.Key("fingerprint");
  json.UInt(graph.ContentFingerprint());
  json.Key("statistics_identical");
  json.Bool(true);
  json.Key("seconds");
  json.BeginObject();
  json.Key("sample");
  json.Number(sample_seconds);
  json.Key("write_dpkb");
  json.Number(write_seconds);
  json.Key("mmap_open");
  json.Number(open_seconds);
  json.Key("compute_ram");
  json.Number(ram_seconds);
  json.Key("compute_mmap");
  json.Number(mmap_seconds);
  json.EndObject();
  json.Key("passes");
  AppendPasses(json, ram_passes);  // identical to mmap_passes, asserted
  json.EndObject();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "outofcore_bench: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);

  if (!keep_dpkb) std::filesystem::remove(dpkb_path);
  std::fprintf(stderr,
               "# ok: identical statistics (ram %.2fs, mmap %.2fs, open "
               "%.6fs, %.1f MiB .dpkb)\n",
               ram_seconds, mmap_seconds, open_seconds,
               double(dpkb_bytes) / double(1 << 20));
  return 0;
}

}  // namespace
}  // namespace dpkron

int main(int argc, char** argv) { return dpkron::Main(argc, argv); }
