// Minimal aligned allocator for std::vector-backed kernel arenas.
//
// The AVX2 kernels use aligned 32-byte loads on their lookup tables and
// benefit from cache-line-aligned CSR arrays (a 64-byte line never
// splits a vector load at the start of an array). std::vector<double>'s
// default allocator only guarantees alignof(std::max_align_t) (16 on
// glibc x86-64), so arenas that feed aligned loads use this allocator.

#ifndef DPKRON_COMMON_ALIGNED_H_
#define DPKRON_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>

namespace dpkron {

template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;
  static constexpr std::size_t alignment = Alignment;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_ALIGNED_H_
