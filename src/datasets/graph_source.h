// GraphSource — the unified ingestion abstraction: every graph that
// enters the system comes from one of three source kinds, resolved from
// a single reference string.
//
//   * kGenerator — a synthetic registry dataset ("CA-GrQC-like", ...),
//     produced in-process by the entry's generator;
//   * kEdgeList  — a SNAP-style text edge list on disk, parsed by the
//     chunked parallel reader (optionally through the .dpkb sidecar
//     cache: parse once, binary-load thereafter);
//   * kBinary    — a .dpkb binary CSR file, loaded directly.
//
// Resolution is by the reference itself: a registered dataset name wins,
// a path ending in ".dpkb" is binary, any other existing file is an
// edge list. This is what lets the scenario engine run any registered
// scenario on an arbitrary downloaded SNAP file via --dataset.

#ifndef DPKRON_DATASETS_GRAPH_SOURCE_H_
#define DPKRON_DATASETS_GRAPH_SOURCE_H_

#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/datasets/registry.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"

namespace dpkron {

enum class GraphSourceKind {
  kGenerator,  // synthetic registry dataset
  kEdgeList,   // SNAP-style text edge list file
  kBinary,     // .dpkb binary CSR file
};

// "generator" | "edge-list" | "binary".
const char* GraphSourceKindName(GraphSourceKind kind);

struct GraphSource {
  GraphSourceKind kind = GraphSourceKind::kGenerator;
  std::string ref;                    // registry name or file path
  const DatasetInfo* info = nullptr;  // registry entry (kGenerator only)
};

struct GraphLoadOptions {
  // For kEdgeList sources: load through the .dpkb sidecar cache
  // (ReadEdgeListCached) instead of re-parsing the text every run.
  bool use_cache = false;

  // Serve file-backed sources out-of-core, as a view over an mmap'd
  // .dpkb (LoadGraphHandle only): kBinary maps the file directly in
  // O(header), kEdgeList maps its sidecar (rebuilding it if stale, so
  // this implies the cache), and generators stay in-RAM — there is no
  // file to map. Purely an execution strategy: the handle's view hashes
  // to the same fingerprint either way, so results and cache entries
  // are bit-identical to an in-RAM load.
  bool mmap = false;
};

// Classifies a dataset reference. NotFound when the reference is
// neither a registered dataset name nor an existing file; the message
// lists the registered names.
Result<GraphSource> ResolveGraphSource(const std::string& ref);

// Materializes the graph. Generator sources consume `rng` exactly as
// MakeDataset does; file-backed sources never touch it (so a scenario's
// RNG stream protocol is unchanged by swapping a file in).
Result<Graph> LoadGraph(const GraphSource& source, Rng& rng,
                        const GraphLoadOptions& options = {});

// ResolveGraphSource + LoadGraph in one step.
Result<Graph> LoadGraphRef(const std::string& ref, Rng& rng,
                           const GraphLoadOptions& options = {});

// Like LoadGraph, but the result is an owning handle whose backing the
// options choose: in-RAM arenas (always, for generators; default for
// files) or an mmap'd .dpkb (options.mmap). This is what the scenario
// engine consumes — kernels take the handle's GraphView either way.
Result<GraphHandle> LoadGraphHandle(const GraphSource& source, Rng& rng,
                                    const GraphLoadOptions& options = {});

// ResolveGraphSource + LoadGraphHandle in one step.
Result<GraphHandle> LoadGraphHandleRef(const std::string& ref, Rng& rng,
                                       const GraphLoadOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_DATASETS_GRAPH_SOURCE_H_
