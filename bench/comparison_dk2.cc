// Paper §5's first future-work item: "A comparison of our results to
// those of Sala et al. seems most relevant. We plan on undertaking a
// study that compares the estimated statistics of the synthetic graphs
// derived by our method to those computed by Sala et al."
//
// This bench performs that study on the CA-GrQC-like workload: for a
// sweep of ε, release a synthetic graph via (a) the paper's private SKG
// estimator and (b) the Sala-style private dK-2 series, then compare the
// released graphs' statistics to the original's. δ is only needed by (a).

#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/datasets/registry.h"
#include "src/dk/dk2.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/extra_stats.h"
#include "src/graph/anf.h"
#include "src/graph/hop_plot.h"

namespace {

using namespace dpkron;

struct Summary {
  double edges = 0.0;
  double max_degree = 0.0;
  double avg_clustering = 0.0;
  double assortativity = 0.0;
  double effective_diameter = 0.0;
};

Summary Summarize(const Graph& g, Rng& rng) {
  Summary s;
  s.edges = double(g.NumEdges());
  s.max_degree = double(MaxDegree(g));
  s.avg_clustering = AverageClustering(g);
  s.assortativity = DegreeAssortativity(g);
  AnfOptions anf;
  const auto hops = g.NumNodes() <= 4096
                        ? ExactHopPlot(g)
                        : ApproxHopPlot(g, rng, anf);
  s.effective_diameter = hops.empty() ? 0.0 : double(EffectiveDiameter(hops));
  return s;
}

}  // namespace

int main() {
  std::printf("# comparison_dk2: private SKG release vs Sala-style dK-2 "
              "release (paper section 5 future work)\n");
  Rng rng(1234);
  const Graph original = CaGrQcLike(rng);
  Rng summary_rng = rng.Split();
  const Summary truth = Summarize(original, summary_rng);
  std::printf("original: E=%.0f dmax=%.0f cc=%.3f r=%.3f diam90=%.0f\n",
              truth.edges, truth.max_degree, truth.avg_clustering,
              truth.assortativity, truth.effective_diameter);

  // The dK-2 route's own ground truth: the exact JDD truncated at the
  // public degree cap (the best any capped release could do).
  const uint32_t kDegreeCap = 64;
  const Dk2Table exact_table = Dk2Table::FromGraph(original);
  Dk2Table capped_exact;
  for (const auto& [key, count] : exact_table.cells()) {
    if (key.second <= kDegreeCap) {
      capped_exact.Set(key.first, key.second, count);
    }
  }
  std::printf("dk2 cap=%u keeps %.0f of %.0f edges\n", kDegreeCap,
              capped_exact.TotalEdges(), exact_table.TotalEdges());

  SeriesTable table("comparison_dk2/statistic_vs_epsilon");
  auto emit = [&table](const char* method, double epsilon, const Summary& s,
                       const Summary& truth) {
    table.Add(std::string(method) + "/edges_rel_err", epsilon,
              std::fabs(s.edges - truth.edges) / truth.edges);
    table.Add(std::string(method) + "/clustering", epsilon,
              s.avg_clustering);
    table.Add(std::string(method) + "/assortativity", epsilon,
              s.assortativity);
    table.Add(std::string(method) + "/max_degree", epsilon, s.max_degree);
    table.Add(std::string(method) + "/effective_diameter", epsilon,
              s.effective_diameter);
  };
  // Reference rows at "epsilon = infinity" sentinel 1e6.
  emit("original", 1e6, truth, truth);

  for (double epsilon : {0.2, 1.0, 5.0, 20.0, 100.0}) {
    // (a) Paper's route: private SKG estimate, sample one realization.
    Rng skg_rng = rng.Split();
    PrivacyBudget skg_budget(epsilon, 0.01);
    const auto fit =
        EstimatePrivateSkg(original, epsilon, 0.01, skg_budget, skg_rng);
    if (fit.ok()) {
      const Graph sample =
          SampleSyntheticGraph(fit.value().theta, fit.value().k, skg_rng);
      Rng stats_rng = rng.Split();
      const Summary s = Summarize(sample, stats_rng);
      emit("skg", epsilon, s, truth);
      std::printf("eps=%-6g skg: E=%.0f dmax=%.0f cc=%.3f r=%+.3f "
                  "diam90=%.0f\n",
                  epsilon, s.edges, s.max_degree, s.avg_clustering,
                  s.assortativity, s.effective_diameter);
    }

    // (b) Sala-style route: private dK-2, regenerate. The route needs its
    // own mitigations to be competitive at all (Sala et al.'s system adds
    // partitioned noise and operates at large ε): a public degree cap
    // keeps the sensitivity 4·cap+1 manageable (hubs above the cap are
    // truncated) and a softer sparsification threshold keeps small real
    // cells alive at the cost of some spurious ones.
    Rng dk_rng = rng.Split();
    PrivacyBudget dk_budget(epsilon, 0.0);
    Dk2PrivatizeOptions dk_options;
    dk_options.degree_cap = kDegreeCap;
    dk_options.threshold_factor = 0.5;
    const auto noisy_table =
        PrivatizeDk2(exact_table, epsilon, dk_budget, dk_rng, dk_options);
    if (noisy_table.ok()) {
      const double jdd_l1 =
          Dk2Table::L1Distance(noisy_table.value(), capped_exact) /
          std::max(capped_exact.TotalEdges(), 1.0);
      table.Add("dk2/jdd_l1_rel", epsilon, jdd_l1);
      const Graph released = SampleDk2Graph(noisy_table.value(), dk_rng);
      Rng stats_rng = rng.Split();
      const Summary s = Summarize(released, stats_rng);
      emit("dk2", epsilon, s, truth);
      std::printf("eps=%-6g dk2: E=%.0f dmax=%.0f cc=%.3f r=%+.3f "
                  "diam90=%.0f jddL1rel=%.3f\n",
                  epsilon, s.edges, s.max_degree, s.avg_clustering,
                  s.assortativity, s.effective_diameter, jdd_l1);
    }
  }
  table.Print();
  return 0;
}
