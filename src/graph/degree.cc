#include "src/graph/degree.h"

#include <algorithm>

#include "src/common/parallel.h"

namespace dpkron {
namespace {

// Degree reads are O(1) array lookups; coarse chunks keep the dispatch
// overhead negligible while still covering million-node graphs.
constexpr size_t kDegreeGrain = 4096;

}  // namespace

std::vector<uint32_t> DegreeVector(GraphView graph) {
  graph.CountPass("degree_vector");
  const uint32_t n = graph.NumNodes();
  std::vector<uint32_t> degrees(n);
  ParallelFor(n, kDegreeGrain, [&](size_t u) {
    degrees[u] = graph.Degree(static_cast<Graph::NodeId>(u));
  });
  return degrees;
}

std::vector<uint32_t> SortedDegreeVector(GraphView graph) {
  std::vector<uint32_t> degrees = DegreeVector(graph);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

uint32_t MaxDegree(GraphView graph) {
  graph.CountPass("max_degree");
  const uint32_t n = graph.NumNodes();
  std::vector<uint32_t> partials(ParallelChunkCount(n, kDegreeGrain), 0);
  ParallelForChunks(n, kDegreeGrain, [&](const ParallelChunk& chunk) {
    uint32_t local = 0;
    for (size_t u = chunk.begin; u < chunk.end; ++u) {
      local = std::max(local, graph.Degree(static_cast<Graph::NodeId>(u)));
    }
    partials[chunk.index] = local;
  });
  uint32_t max_degree = 0;
  for (uint32_t partial : partials) max_degree = std::max(max_degree, partial);
  return max_degree;
}

std::vector<std::pair<uint32_t, uint64_t>> DegreeHistogram(
    GraphView graph) {
  graph.CountPass("degree_histogram");
  const uint32_t n = graph.NumNodes();
  const uint32_t max_degree = MaxDegree(graph);
  // Per-worker count arrays; integer merging commutes, so the totals are
  // thread-count-invariant.
  std::vector<std::vector<uint64_t>> locals(
      static_cast<size_t>(ParallelThreadCount()));
  ParallelForChunks(n, kDegreeGrain, [&](const ParallelChunk& chunk) {
    auto& local = locals[chunk.worker];
    if (local.empty()) local.assign(max_degree + 1, 0);
    for (size_t u = chunk.begin; u < chunk.end; ++u) {
      ++local[graph.Degree(static_cast<Graph::NodeId>(u))];
    }
  });
  std::vector<uint64_t> counts(max_degree + 1, 0);
  for (const auto& local : locals) {
    for (size_t d = 0; d < local.size(); ++d) counts[d] += local[d];
  }
  std::vector<std::pair<uint32_t, uint64_t>> histogram;
  for (uint32_t d = 0; d < counts.size(); ++d) {
    if (counts[d] > 0) histogram.emplace_back(d, counts[d]);
  }
  return histogram;
}

std::vector<std::pair<uint32_t, uint64_t>> DegreeHistogramFromDegrees(
    const std::vector<uint32_t>& degrees) {
  uint32_t max_degree = 0;
  for (uint32_t d : degrees) max_degree = std::max(max_degree, d);
  std::vector<uint64_t> counts(size_t(max_degree) + 1, 0);
  for (uint32_t d : degrees) ++counts[d];
  std::vector<std::pair<uint32_t, uint64_t>> histogram;
  for (uint32_t d = 0; d < counts.size(); ++d) {
    if (counts[d] > 0) histogram.emplace_back(d, counts[d]);
  }
  return histogram;
}

double EdgesFromDegrees(const std::vector<double>& degrees) {
  double sum = 0.0;
  for (double d : degrees) sum += d;
  return sum / 2.0;
}

double HairpinsFromDegrees(const std::vector<double>& degrees) {
  double sum = 0.0;
  for (double d : degrees) sum += d * (d - 1.0);
  return sum / 2.0;
}

double TripinsFromDegrees(const std::vector<double>& degrees) {
  double sum = 0.0;
  for (double d : degrees) sum += d * (d - 1.0) * (d - 2.0);
  return sum / 6.0;
}

uint64_t CountWedges(GraphView graph) {
  graph.CountPass("wedges");
  const uint32_t n = graph.NumNodes();
  std::vector<uint64_t> partials(ParallelChunkCount(n, kDegreeGrain), 0);
  ParallelForChunks(n, kDegreeGrain, [&](const ParallelChunk& chunk) {
    uint64_t local = 0;
    for (size_t u = chunk.begin; u < chunk.end; ++u) {
      const uint64_t d = graph.Degree(static_cast<Graph::NodeId>(u));
      local += d * (d - 1) / 2;
    }
    partials[chunk.index] = local;
  });
  uint64_t wedges = 0;
  for (uint64_t partial : partials) wedges += partial;
  return wedges;
}

uint64_t CountTripins(GraphView graph) {
  graph.CountPass("tripins");
  const uint32_t n = graph.NumNodes();
  std::vector<uint64_t> partials(ParallelChunkCount(n, kDegreeGrain), 0);
  ParallelForChunks(n, kDegreeGrain, [&](const ParallelChunk& chunk) {
    uint64_t local = 0;
    for (size_t u = chunk.begin; u < chunk.end; ++u) {
      const uint64_t d = graph.Degree(static_cast<Graph::NodeId>(u));
      local += d * (d - 1) * (d - 2) / 6;
    }
    partials[chunk.index] = local;
  });
  uint64_t tripins = 0;
  for (uint64_t partial : partials) tripins += partial;
  return tripins;
}

}  // namespace dpkron
