// Exact triangle counting.
//
// Node-iterator over sorted adjacency lists restricted to higher-degree
// "forward" neighbors (the compact-forward algorithm): O(m^{3/2}) worst
// case, exact, no hashing. Also provides per-node and per-edge triangle
// counts — the latter feed the smooth-sensitivity computation (number of
// common neighbors a_ij, NRS'07).

#ifndef DPKRON_GRAPH_TRIANGLES_H_
#define DPKRON_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace dpkron {

// Total number of triangles ∆(G).
uint64_t CountTriangles(const Graph& graph);

// t_u = number of triangles through node u (Σ_u t_u = 3∆).
std::vector<uint64_t> PerNodeTriangles(const Graph& graph);

// Number of common neighbors of u and v (= triangles through edge {u,v}
// when the edge exists, but defined for any pair). O(deg u + deg v).
uint32_t CommonNeighbors(const Graph& graph, Graph::NodeId u,
                         Graph::NodeId v);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_TRIANGLES_H_
