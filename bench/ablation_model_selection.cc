// Ablation / §3.3: "Analysis in [15] shows that for many real-world
// graphs, having N1 > 2 does not accrue a significant advantage as far as
// matching of some statistics is concerned." We test that claim with the
// general N1×N1 moment estimator: fit symmetric 2×2 and 3×3 initiators on
// each evaluation dataset and compare the achieved Eq. (2) objective and
// moment reproduction.

#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/datasets/registry.h"
#include "src/estimation/kronmom.h"
#include "src/estimation/kronmom_n.h"
#include "src/skg/moments_n.h"

int main() {
  using namespace dpkron;
  std::printf("# ablation_model_selection: N1 = 2 vs N1 = 3 (paper section"
              " 3.3 claim)\n");
  Rng rng(31415);
  SeriesTable table("model_selection/objective");

  int index = 0;
  for (const DatasetInfo& info : PaperDatasets()) {
    Rng dataset_rng = rng.Split();
    const Graph graph = MakeDataset(info.name, dataset_rng);
    const GraphFeatures observed = ComputeFeatures(graph);

    // N1 = 2 (paper's setting) via the dedicated fitter.
    const KronMomResult fit2 = FitKronMom(graph);

    // N1 = 3 via the general fitter.
    Rng fit_rng = rng.Split();
    KronMomNOptions options;
    const KronMomNResult fit3 = FitKronMomN(
        observed, 3, ChooseOrderN(graph.NumNodes(), 3), fit_rng, options);

    const auto theta3 = InitiatorN::Create(3, fit3.entries).value();
    const SkgMoments m3 = ExpectedMomentsN(theta3, fit3.k);

    std::printf("\n== %s (E=%.0f H=%.0f Delta=%.0f T=%.3g) ==\n",
                info.name.c_str(), observed.edges, observed.hairpins,
                observed.triangles, observed.tripins);
    std::printf("  N1=2: objective=%.4g  theta=%s (k=%u)\n", fit2.objective,
                fit2.theta.ToString().c_str(), fit2.k);
    std::printf("  N1=3: objective=%.4g  (k=%u, %u^k=%.0f nodes)"
                "  E[E]=%.0f E[Delta]=%.0f\n",
                fit3.objective, fit3.k, 3, std::pow(3.0, fit3.k), m3.edges,
                m3.triangles);
    table.Add(info.name + "/n1=2", index, fit2.objective);
    table.Add(info.name + "/n1=3", index, fit3.objective);
    ++index;
  }
  table.Print();
  std::printf("\n(Lower objective = better moment match. The paper's claim"
              " holds when the N1=3 gain is marginal.)\n");
  return 0;
}
