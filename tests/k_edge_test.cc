#include "src/core/k_edge.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

TEST(KEdgeTest, KOneMatchesPlainEstimator) {
  Rng g_rng(1);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, g_rng);
  Rng rng1(7), rng2(7);
  const auto plain = EstimatePrivateSkg(g, 0.4, 0.02, rng1);
  const auto k_edge = EstimateKEdgePrivateSkg(g, 1, 0.4, 0.02, rng2);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(k_edge.ok());
  EXPECT_DOUBLE_EQ(plain.value().theta.a, k_edge.value().theta.a);
  EXPECT_DOUBLE_EQ(plain.value().theta.b, k_edge.value().theta.b);
}

TEST(KEdgeTest, LargerKMeansMoreNoise) {
  Rng g_rng(2);
  const Graph g = SampleSkg({0.95, 0.55, 0.3}, 10, g_rng);
  const GraphFeatures exact = ComputeFeatures(g);
  double err_k1 = 0, err_k10 = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng_a(100 + t), rng_b(100 + t);
    const auto fit1 = EstimateKEdgePrivateSkg(g, 1, 2.0, 0.05, rng_a);
    const auto fit10 = EstimateKEdgePrivateSkg(g, 10, 2.0, 0.05, rng_b);
    ASSERT_TRUE(fit1.ok());
    ASSERT_TRUE(fit10.ok());
    err_k1 += std::fabs(fit1.value().private_features.edges - exact.edges);
    err_k10 += std::fabs(fit10.value().private_features.edges - exact.edges);
  }
  EXPECT_GT(err_k10, 2 * err_k1);
}

TEST(KEdgeTest, RejectsInvalidArguments) {
  Rng rng(3);
  const Graph g = testing::CycleGraph(32);
  EXPECT_FALSE(EstimateKEdgePrivateSkg(g, 0, 0.2, 0.01, rng).ok());
}

TEST(KEdgeTest, StillProducesValidModelAtHighK) {
  Rng rng(4);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, rng);
  const auto fit = EstimateKEdgePrivateSkg(g, 25, 5.0, 0.25, rng);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().theta.IsValid());
}

}  // namespace
}  // namespace dpkron
