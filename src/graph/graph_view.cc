#include "src/graph/graph_view.h"

#include <algorithm>

#include "src/common/fnv.h"
#include "src/common/macros.h"

namespace dpkron {

uint64_t CsrContentFingerprint(std::span<const uint32_t> offsets,
                               std::span<const Graph::NodeId> adjacency) {
  // Word-wise FNV-1a over the offsets bytes, continued over the
  // adjacency bytes — the .dpkb payload-checksum formula exactly
  // (graph_io.cc asserts the equivalence in its tests).
  uint64_t hash = Fnv1a64Words(offsets.data(), offsets.size_bytes());
  return Fnv1a64Words(adjacency.data(), adjacency.size_bytes(), hash);
}

bool GraphView::HasEdge(NodeId u, NodeId v) const {
  DPKRON_CHECK_LT(u, NumNodes());
  DPKRON_CHECK_LT(v, NumNodes());
  const auto neighbors = Neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

uint64_t GraphView::ContentFingerprint() const {
  if (fingerprint_memo_ != nullptr) {
    const uint64_t cached = fingerprint_memo_->load(std::memory_order_relaxed);
    if (cached != 0) return cached;
  }
  const uint64_t hash = CsrContentFingerprint(offsets_, adjacency_);
  if (fingerprint_memo_ != nullptr) {
    fingerprint_memo_->store(hash, std::memory_order_relaxed);
  }
  return hash;
}

std::vector<std::pair<GraphView::NodeId, GraphView::NodeId>> GraphView::Edges()
    const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(NumEdges());
  ForEachEdge([&edges](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  return edges;
}

}  // namespace dpkron
