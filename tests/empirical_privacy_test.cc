// Empirical differential-privacy checks.
//
// Analytical privacy proofs can be silently invalidated by implementation
// bugs (wrong sensitivity constant, noise scaled by ε instead of 1/ε,
// ...). These tests estimate the privacy-loss ratio of the implemented
// mechanisms on neighboring inputs directly: for discretized output bins
// S, P[M(G) ∈ S] ≤ e^ε·P[M(G') ∈ S] + slack must hold with the
// *implemented* constants. This catches multiplicative-constant bugs with
// high probability while tolerating Monte-Carlo error.

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/dp/degree_sequence.h"
#include "src/dp/laplace_mechanism.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

// Max over output bins of log(P_a(bin)/P_b(bin)) for two empirical
// distributions, restricted to bins where both have solid mass (Monte
// Carlo noise dominates rare bins).
double MaxLogRatio(const std::map<int, double>& pa,
                   const std::map<int, double>& pb, double min_mass) {
  double worst = 0.0;
  for (const auto& [bin, mass_a] : pa) {
    const auto it = pb.find(bin);
    if (it == pb.end()) continue;
    if (mass_a < min_mass || it->second < min_mass) continue;
    worst = std::max(worst, std::fabs(std::log(mass_a / it->second)));
  }
  return worst;
}

TEST(EmpiricalPrivacyTest, LaplaceMechanismCountingQuery) {
  // Counting query (sensitivity 1) on neighboring values 100 vs 101.
  const double epsilon = 0.5;
  const int runs = 400000;
  Rng rng(42);
  std::map<int, double> pa, pb;
  for (int r = 0; r < runs; ++r) {
    // Bin width 1.
    ++pa[int(std::floor(AddLaplaceNoise(100.0, 1.0, epsilon, rng).value()))];
    ++pb[int(std::floor(AddLaplaceNoise(101.0, 1.0, epsilon, rng).value()))];
  }
  for (auto& [bin, mass] : pa) mass /= runs;
  for (auto& [bin, mass] : pb) mass /= runs;
  const double observed = MaxLogRatio(pa, pb, 200.0 / runs);
  // The true worst-case ratio is exactly ε; Monte-Carlo slack 15%.
  EXPECT_LE(observed, epsilon * 1.15);
  // And the mechanism must actually separate the inputs (not ε≈0, which
  // would indicate noise far larger than specified).
  EXPECT_GE(observed, epsilon * 0.5);
}

TEST(EmpiricalPrivacyTest, DegreeSequenceMechanismOnNeighbors) {
  // Neighboring graphs: P4 path vs P4 plus edge {0,2}. Observable: the
  // largest noisy degree, binned. The mechanism runs at ε = 0.5 with
  // sensitivity 2; the end-to-end loss of this 1-dimensional view must
  // respect e^ε.
  const Graph g1 = testing::PathGraph(4);
  const Graph g2 = testing::MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const double epsilon = 0.5;
  const int runs = 200000;
  Rng rng(7);
  PrivateDegreeOptions options;
  options.postprocess = true;
  options.clamp_to_range = false;
  std::map<int, double> pa, pb;
  for (int r = 0; r < runs; ++r) {
    ++pa[int(std::floor(
        PrivateDegreeSequence(g1, epsilon, rng, options).value().back()))];
    ++pb[int(std::floor(
        PrivateDegreeSequence(g2, epsilon, rng, options).value().back()))];
  }
  for (auto& [bin, mass] : pa) mass /= runs;
  for (auto& [bin, mass] : pb) mass /= runs;
  const double observed = MaxLogRatio(pa, pb, 400.0 / runs);
  EXPECT_LE(observed, epsilon * 1.2);
}

TEST(EmpiricalPrivacyTest, WrongSensitivityWouldBeDetected) {
  // Control experiment: a broken mechanism using sensitivity 0.25 instead
  // of 1 must FAIL the ε bound — demonstrating the test has teeth.
  const double epsilon = 0.5;
  const int runs = 400000;
  Rng rng(99);
  std::map<int, double> pa, pb;
  for (int r = 0; r < runs; ++r) {
    ++pa[int(std::floor(AddLaplaceNoise(100.0, 0.25, epsilon, rng).value()))];
    ++pb[int(std::floor(AddLaplaceNoise(101.0, 0.25, epsilon, rng).value()))];
  }
  for (auto& [bin, mass] : pa) mass /= runs;
  for (auto& [bin, mass] : pb) mass /= runs;
  const double observed = MaxLogRatio(pa, pb, 200.0 / runs);
  EXPECT_GT(observed, epsilon * 1.5);  // ~4ε in truth
}

}  // namespace
}  // namespace dpkron
