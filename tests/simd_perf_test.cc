// Release-mode performance gates for the dispatched SIMD kernels: the
// AVX2 paths must actually beat (or, where the scalar loop is already at
// the hardware floor, at least never lose to) the forced-scalar
// fallback. All comparisons are in-process and interleaved — scalar and
// AVX2 reps alternate and each side keeps its minimum — because
// cross-run wall-clock on shared CI machines swings ±10–20% while
// interleaved min-of-reps ratios stay stable.
//
// Gates (speedup = scalar_time / avx2_time):
//   - triangle counting ≥ 2.0× (measured ~3× on AVX2 hardware);
//   - edge-gradient reduction ≥ 1.05× (measured ~1.3×);
//   - Metropolis swap chain ≥ 0.9× (i.e. no regression). The swap loop
//     is latency-bound on random position/table loads that out-of-order
//     execution already overlaps — a long line of vectorized variants
//     measured at or below the plain fused loop — so its AVX2 win is
//     the per-swap abstraction cost and the exp-free accept test
//     (~1.1×), below the 2× the other kernels clear. The gate holds
//     that the AVX2 path must never be slower than dispatch fallback.
//
// The tests skip themselves outside their operating envelope: debug
// builds (timings meaningless under -O0/assertions), non-AVX2 CPUs
// (nothing to compare), and runs where the cap is already below AVX2
// (DPKRON_FORCE_SCALAR — re-raising the cap would defeat the point of
// that job).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/graph/graph.h"
#include "src/graph/triangles.h"
#include "src/kronfit/kronfit.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

bool ReleaseBuild() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

// One GTEST_SKIP site per test (GTEST_SKIP must run in the TEST body).
// Single-core hosts are excluded: with everything (including the harness
// itself) timesliced onto one CPU, the interleaved measurement cannot
// resolve the few-percent margins these gates assert. CI runners and any
// real perf box have >= 2 cores and still gate.
#define DPKRON_REQUIRE_PERF_ENV()                                         \
  do {                                                                    \
    if (!ReleaseBuild()) GTEST_SKIP() << "perf gate needs a Release build"; \
    if (DetectedSimdLevel() < SimdLevel::kAvx2)                           \
      GTEST_SKIP() << "CPU/toolchain has no AVX2 path to gate";           \
    if (SimdLevelCap() < SimdLevel::kAvx2)                                \
      GTEST_SKIP() << "cap below AVX2 (DPKRON_FORCE_SCALAR run)";         \
    if (std::thread::hardware_concurrency() < 2)                          \
      GTEST_SKIP() << "single-core host: timing too noisy to gate";       \
  } while (false)

template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Alternates scalar-capped and uncapped reps, returning
// min(scalar) / min(avx2). Both callables must do identical work (the
// bit-identity contract guarantees the kernels themselves do).
template <typename ScalarFn, typename SimdFn>
double InterleavedSpeedup(int reps, ScalarFn&& scalar_fn, SimdFn&& simd_fn) {
  double scalar_min = std::numeric_limits<double>::infinity();
  double simd_min = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    {
      ScopedSimdLevelCap cap(SimdLevel::kScalar);
      scalar_min = std::min(scalar_min, TimeSeconds(scalar_fn));
    }
    simd_min = std::min(simd_min, TimeSeconds(simd_fn));
  }
  return scalar_min / simd_min;
}

Graph PerfGraph(uint32_t k) {
  Rng rng(12);
  return SampleSkg({0.99, 0.55, 0.35}, k, rng);
}

TEST(SimdPerfGate, TriangleCountingAtLeast2x) {
  DPKRON_REQUIRE_PERF_ENV();
  const Graph g = PerfGraph(12);
  uint64_t scalar_count = 0, simd_count = 0;
  const double speedup = InterleavedSpeedup(
      5, [&] { scalar_count += CountTriangles(g); },
      [&] { simd_count += CountTriangles(g); });
  EXPECT_EQ(scalar_count, simd_count);
  EXPECT_GE(speedup, 2.0) << "triangle kernel under-performing: "
                          << speedup << "x vs forced scalar";
}

TEST(SimdPerfGate, EdgeGradientFaster) {
  DPKRON_REQUIRE_PERF_ENV();
  const uint32_t k = 12;
  const Graph g = PerfGraph(k);
  const KronFitLikelihood model({0.9, 0.6, 0.2}, k);
  const PermutationState sigma = DegreeGuidedInit(g, k);
  Gradient3 scalar_grad{}, simd_grad{};
  const double speedup = InterleavedSpeedup(
      7,
      [&] {
        for (int i = 0; i < 8; ++i) scalar_grad = model.EdgeGradient(g, sigma);
      },
      [&] {
        for (int i = 0; i < 8; ++i) simd_grad = model.EdgeGradient(g, sigma);
      });
  EXPECT_EQ(scalar_grad, simd_grad);
  EXPECT_GE(speedup, 1.05) << "edge-gradient kernel under-performing: "
                           << speedup << "x vs forced scalar";
}

TEST(SimdPerfGate, MetropolisSwapsNoRegression) {
  DPKRON_REQUIRE_PERF_ENV();
  const uint32_t k = 12;
  const Graph g = PerfGraph(k);
  const KronFitLikelihood model({0.9, 0.6, 0.2}, k);
  // Two chain banks from one seed: bit-identity keeps them in lockstep,
  // so every interleaved rep advances both through the exact same
  // trajectory (identical work on both sides by construction).
  Rng seed_a(99), seed_b(99);
  MetropolisChains scalar_chains(g, k, 1, seed_a);
  MetropolisChains simd_chains(g, k, 1, seed_b);
  const uint64_t swaps = 2 * uint64_t{g.NumNodes()};
  const double speedup = InterleavedSpeedup(
      7, [&] { scalar_chains.Advance(model, swaps); },
      [&] { simd_chains.Advance(model, swaps); });
  EXPECT_EQ(scalar_chains.BestLogLikelihood(model),
            simd_chains.BestLogLikelihood(model));
  EXPECT_GE(speedup, 0.9) << "AVX2 Metropolis path regressed below the "
                             "scalar fallback: "
                          << speedup << "x";
}

}  // namespace
}  // namespace dpkron
