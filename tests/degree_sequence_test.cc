#include "src/dp/degree_sequence.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

double L2Error(const std::vector<double>& estimate,
               const std::vector<uint32_t>& truth) {
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double diff = estimate[i] - double(truth[i]);
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

TEST(PrivateDegreeSequenceTest, SizeMatchesNodeCount) {
  Rng rng(1);
  const Graph g = testing::CycleGraph(20);
  const auto d = PrivateDegreeSequence(g, 1.0, rng).value();
  EXPECT_EQ(d.size(), 20u);
}

TEST(PrivateDegreeSequenceTest, PostprocessedOutputIsMonotone) {
  Rng rng(2);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 8, rng);
  const auto d = PrivateDegreeSequence(g, 0.2, rng).value();
  for (size_t i = 1; i < d.size(); ++i) EXPECT_GE(d[i], d[i - 1]);
}

TEST(PrivateDegreeSequenceTest, ClampKeepsFeasibleRange) {
  Rng rng(3);
  const Graph g = testing::PathGraph(10);
  // Tiny epsilon → huge noise; clamp must hold the estimates in [0, n-1].
  const auto d = PrivateDegreeSequence(g, 0.001, rng).value();
  for (double x : d) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 9.0);
  }
}

TEST(PrivateDegreeSequenceTest, NoClampOptionAllowsExcursions) {
  Rng rng(4);
  const Graph g = testing::PathGraph(50);
  PrivateDegreeOptions options;
  options.clamp_to_range = false;
  options.postprocess = false;
  const auto d = PrivateDegreeSequence(g, 0.001, rng, options).value();
  bool out_of_range = false;
  for (double x : d) out_of_range |= (x < 0.0 || x > 49.0);
  EXPECT_TRUE(out_of_range);
}

TEST(PrivateDegreeSequenceTest, HighEpsilonTracksTruthClosely) {
  Rng rng(5);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, rng);
  const auto truth = SortedDegreeVector(g);
  const auto d = PrivateDegreeSequence(g, 100.0, rng).value();
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(d[i], double(truth[i]), 1.0);
  }
}

TEST(PrivateDegreeSequenceTest, PostprocessingReducesError) {
  // The Hay et al. headline claim: constrained inference beats raw noise.
  // Compare average L2 error with and without post-processing across
  // trials with matched noise draws (same seed).
  Rng graph_rng(6);
  const Graph g = SampleSkg({0.95, 0.5, 0.2}, 9, graph_rng);
  const auto truth = SortedDegreeVector(g);

  double raw_error = 0.0, fitted_error = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    PrivateDegreeOptions raw;
    raw.postprocess = false;
    raw.clamp_to_range = false;
    Rng rng_a(1000 + t), rng_b(1000 + t);
    raw_error += L2Error(PrivateDegreeSequence(g, 0.2, rng_a, raw).value(), truth);
    PrivateDegreeOptions fitted;
    fitted.postprocess = true;
    fitted.clamp_to_range = false;
    fitted_error +=
        L2Error(PrivateDegreeSequence(g, 0.2, rng_b, fitted).value(), truth);
  }
  EXPECT_LT(fitted_error, 0.5 * raw_error);
}

TEST(PrivateDegreeSequenceTest, DerivedFeaturesApproximateTruth) {
  // Ẽ, H̃, T̃ computed from the private degrees should approximate the
  // exact counts at a moderate epsilon (the Algorithm 1 accuracy story).
  Rng rng(7);
  const Graph g = SampleSkg({0.95, 0.55, 0.25}, 10, rng);
  const auto d = PrivateDegreeSequence(g, 1.0, rng).value();
  const double e_true = double(g.NumEdges());
  const double h_true = double(CountWedges(g));
  EXPECT_NEAR(EdgesFromDegrees(d), e_true, 0.05 * e_true);
  EXPECT_NEAR(HairpinsFromDegrees(d), h_true, 0.10 * h_true);
}

TEST(PrivatizeSortedDegreesTest, WorksWithoutGraph) {
  Rng rng(8);
  const std::vector<uint32_t> sorted = {1, 1, 2, 2, 3, 5};
  const auto d = PrivatizeSortedDegrees(sorted, 2.0, 6, rng).value();
  EXPECT_EQ(d.size(), 6u);
  for (size_t i = 1; i < d.size(); ++i) EXPECT_GE(d[i], d[i - 1]);
}

TEST(PrivatizeSortedDegreesTest, DegenerateEpsilonIsStatusNotAbort) {
  Rng rng(9);
  const uint64_t fingerprint = rng.StateFingerprint();
  const auto result = PrivatizeSortedDegrees({1, 2}, 0.0, 2, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // No noise was drawn on the rejected call.
  EXPECT_EQ(rng.StateFingerprint(), fingerprint);
}

}  // namespace
}  // namespace dpkron
