// dpkrond — the long-running private-release daemon (ROADMAP item 1).
//
//   dpkrond --port=7471 --workers=8 --queue-depth=64 \
//           --accountant=acct.journal --budgets=1.0,0.5
//
// Serves line-delimited JSON release requests over TCP (protocol in
// src/server/wire.h), enforcing per-analyst (ε, δ) budgets through the
// durable PrivacyAccountant. SIGTERM/SIGINT drain gracefully: stop
// accepting, finish every in-flight request, leave the journal synced,
// exit 0. kill -9 is the other supported exit: restart recovers by
// replaying the journal — an acknowledged spend is never lost, and a
// retried request_id is never double-charged.

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/parallel.h"
#include "src/common/simd.h"
#include "src/server/server.h"

namespace dpkron {
namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dpkrond --accountant=PATH [options]\n"
      "\n"
      "  --port=N              TCP port (default 7471; 0 = ephemeral,\n"
      "                        printed on startup)\n"
      "  --workers=N           request worker threads (default 4)\n"
      "  --queue-depth=N       admission queue capacity (default 64);\n"
      "                        requests beyond it are shed with\n"
      "                        RESOURCE_EXHAUSTED + retry_after_ms\n"
      "  --accountant=PATH     durable budget journal (required)\n"
      "  --budgets=EPS[,DELTA] per-analyst budget (default 1.0,0.5);\n"
      "                        pinned into the journal on first open\n"
      "  --compact-threshold=N compact the journal on open when the\n"
      "                        replayed history exceeds N records\n"
      "  --disk-cache=DIR      persistent StatCache tier (created if\n"
      "                        needed): a restarted daemon warm-starts\n"
      "                        release computations from disk; healthz\n"
      "                        reports disk_hits / disk_misses\n"
      "  --cache-mem-budget=MB cap the in-memory StatCache footprint;\n"
      "                        oldest entries evict (and reload from\n"
      "                        --disk-cache when attached)\n"
      "  --disk-cache-budget=MB cap the on-disk cache size; oldest\n"
      "                        entries are unlinked after each store\n"
      "                        (in-flight entries are pinned)\n"
      "  --kronfit-iterations=N  override KronFit iterations per request\n"
      "  --smoke               run scenarios with shrunk axes (CI)\n"
      "  --dataset-cache       keep .dpkb sidecars for file datasets\n"
      "                        (default on; --no-dataset-cache disables)\n"
      "  --mmap                serve file datasets out-of-core via an\n"
      "                        mmap'd .dpkb (releases are bit-identical;\n"
      "                        pages are shared across requests)\n"
      "  --threads=N           shared compute-pool threads\n"
      "  --force-scalar        disable SIMD dispatch (also:\n"
      "                        DPKRON_FORCE_SCALAR=1); responses are\n"
      "                        bit-identical either way\n");
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Main(int argc, char** argv) {
  int port = 7471;
  ServerConfig config;

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--help", &value)) {
      PrintUsage(stdout);
      return 0;
    } else if (ParseFlag(argv[i], "--port", &value) && value) {
      port = std::atoi(value);
    } else if (ParseFlag(argv[i], "--workers", &value) && value) {
      config.workers = std::atoi(value);
    } else if (ParseFlag(argv[i], "--queue-depth", &value) && value) {
      config.queue_depth = static_cast<size_t>(std::atoll(value));
    } else if (ParseFlag(argv[i], "--accountant", &value) && value) {
      config.accountant_path = value;
    } else if (ParseFlag(argv[i], "--budgets", &value) && value) {
      char* rest = nullptr;
      config.epsilon_budget = std::strtod(value, &rest);
      if (rest != nullptr && *rest == ',') {
        config.delta_budget = std::strtod(rest + 1, nullptr);
      }
    } else if (ParseFlag(argv[i], "--compact-threshold", &value) && value) {
      config.compact_threshold = static_cast<uint64_t>(std::atoll(value));
    } else if (ParseFlag(argv[i], "--disk-cache", &value) && value) {
      config.disk_cache_path = value;
    } else if (ParseFlag(argv[i], "--cache-mem-budget", &value) && value) {
      const long long mb = std::atoll(value);
      if (mb < 1) {
        std::fprintf(stderr, "--cache-mem-budget must be >= 1 (MB)\n");
        return 2;
      }
      config.cache_mem_budget = static_cast<uint64_t>(mb) * (1ull << 20);
    } else if (ParseFlag(argv[i], "--disk-cache-budget", &value) && value) {
      const long long mb = std::atoll(value);
      if (mb < 1) {
        std::fprintf(stderr, "--disk-cache-budget must be >= 1 (MB)\n");
        return 2;
      }
      config.disk_cache_budget = static_cast<uint64_t>(mb) * (1ull << 20);
    } else if (ParseFlag(argv[i], "--kronfit-iterations", &value) && value) {
      config.kronfit_iterations = static_cast<uint32_t>(std::atoi(value));
    } else if (ParseFlag(argv[i], "--smoke", &value)) {
      config.smoke = true;
    } else if (ParseFlag(argv[i], "--dataset-cache", &value)) {
      config.dataset_cache = true;
    } else if (ParseFlag(argv[i], "--no-dataset-cache", &value)) {
      config.dataset_cache = false;
    } else if (ParseFlag(argv[i], "--mmap", &value)) {
      config.dataset_mmap = true;
    } else if (ParseFlag(argv[i], "--force-scalar", &value)) {
      SetSimdLevelCap(SimdLevel::kScalar);
    } else if (ParseFlag(argv[i], "--threads", &value) && value) {
      SetParallelThreadCount(std::atoi(value));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    }
  }
  if (config.accountant_path.empty()) {
    std::fprintf(stderr, "--accountant=PATH is required\n\n");
    PrintUsage(stderr);
    return 2;
  }

  auto server = DpkronServer::Create(config);
  if (!server.ok()) {
    std::fprintf(stderr, "dpkrond: open failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const Status listening = server.value()->Listen(port);
  if (!listening.ok()) {
    std::fprintf(stderr, "dpkrond: %s\n", listening.ToString().c_str());
    return 1;
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  server.value()->Start();
  std::printf("dpkrond: serving on port %d (%d workers, queue %zu, "
              "budget eps=%g delta=%g, accountant %s)\n",
              server.value()->port(), config.workers, config.queue_depth,
              config.epsilon_budget, config.delta_budget,
              config.accountant_path.c_str());
  std::fflush(stdout);

  server.value()->AcceptLoop(&g_stop);

  std::printf("dpkrond: draining (%zu queued, %d in flight)\n",
              server.value()->queue_size(), server.value()->in_flight());
  std::fflush(stdout);
  server.value()->Drain();
  std::printf("dpkrond: drained cleanly\n");
  return 0;
}

}  // namespace
}  // namespace dpkron

int main(int argc, char** argv) { return dpkron::Main(argc, argv); }
