// Additional whole-graph statistics from the Kronecker-graphs evaluation
// toolbox: node triangle participation (named explicitly by the paper in
// §3.1's list of studied patterns), degree assortativity, and k-core
// decomposition. Used by extended tests and the release diagnostics.

#ifndef DPKRON_GRAPH_EXTRA_STATS_H_
#define DPKRON_GRAPH_EXTRA_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// (t, number of nodes participating in exactly t triangles), ascending t,
// only t values with non-zero counts.
std::vector<std::pair<uint64_t, uint64_t>> TriangleParticipation(
    GraphView graph);

// Pearson correlation of endpoint degrees over edges (Newman's degree
// assortativity, in [−1, 1]). Returns 0 for graphs with < 2 edges or a
// degree-regular edge set (undefined correlation).
double DegreeAssortativity(GraphView graph);

// Core number of every node (largest k such that the node survives in
// the k-core). O(N + M) bucket peeling.
std::vector<uint32_t> CoreNumbers(GraphView graph);

// Largest non-empty core index (0 for edgeless graphs).
uint32_t Degeneracy(GraphView graph);

// (k, number of nodes with core number exactly k), ascending k.
std::vector<std::pair<uint32_t, uint64_t>> CoreHistogram(GraphView graph);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_EXTRA_STATS_H_
