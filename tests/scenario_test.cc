// The scenario engine and the registered catalog: registry integrity,
// migration completeness (every deleted bench binary has a scenario),
// parameter resolution, JSON emission, and a smoke run of every
// registered scenario at tiny axes.

#include "src/core/scenario.h"

#include <set>
#include <string>

#include <gtest/gtest.h>
#include "src/scenarios/scenarios.h"

namespace dpkron {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllScenarios(); }
};

TEST_F(ScenarioTest, RegistryHoldsTheFullCatalog) {
  EXPECT_GE(AllScenarios().size(), 12u);
  std::set<std::string> names;
  for (const ScenarioSpec& spec : AllScenarios()) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate scenario " << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_TRUE(static_cast<bool>(spec.run)) << spec.name;
    EXPECT_EQ(FindScenario(spec.name), &spec);
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST_F(ScenarioTest, EveryLegacyBinaryHasAScenario) {
  const char* legacy[] = {
      "fig1_ca_grqc",          "fig2_as20",
      "fig3_ca_hepth",         "fig4_synthetic",
      "table1_parameters",     "comparison_dk2",
      "ablation_epsilon_sweep", "ablation_feature_route",
      "ablation_model_selection", "ablation_objective",
      "ablation_postprocess",  "ablation_smooth_sensitivity",
  };
  std::set<std::string> ported;
  for (const ScenarioSpec& spec : AllScenarios()) {
    ported.insert(spec.legacy_binary);
  }
  for (const char* binary : legacy) {
    EXPECT_TRUE(ported.count(binary)) << "no scenario ports " << binary;
  }
}

TEST_F(ScenarioTest, ResolveParamsAppliesOverridesThenSmoke) {
  ScenarioParams defaults;
  defaults.seed = 7;
  defaults.realizations = 100;
  defaults.trials = 10;
  defaults.kronfit_iterations = 40;
  defaults.sweep_epsilons = {0.05, 0.1, 0.2, 0.5};

  ScenarioOverrides overrides;
  overrides.seed = 11;
  overrides.epsilon = 0.5;
  ScenarioParams p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.seed, 11u);
  EXPECT_DOUBLE_EQ(p.epsilon, 0.5);
  EXPECT_EQ(p.realizations, 100u);
  EXPECT_EQ(p.sweep_epsilons.size(), 4u);

  overrides.smoke = true;
  p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.realizations, 2u);
  EXPECT_EQ(p.trials, 2u);
  EXPECT_EQ(p.kronfit_iterations, 5u);
  EXPECT_EQ(p.sweep_epsilons.size(), 2u);

  // An explicit flag wins over smoke shrinking.
  overrides.realizations = 50;
  overrides.sweep_epsilons = std::vector<double>{0.1, 0.2, 0.3};
  p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.realizations, 50u);
  EXPECT_EQ(p.sweep_epsilons.size(), 3u);
}

// Every registered scenario must complete a smoke run and produce at
// least one non-empty series. This is the regression net for the whole
// catalog: a scenario that stops emitting rows (or starts failing) is
// caught here, not in CI's artifact diff.
TEST_F(ScenarioTest, EveryScenarioSmokeRunEmitsSeries) {
  for (const ScenarioSpec& spec : AllScenarios()) {
    SCOPED_TRACE(spec.name);
    ScenarioOverrides overrides;
    overrides.smoke = true;
    overrides.trials = 1;
    overrides.realizations = spec.defaults.realizations > 0 ? 1 : 0;
    overrides.kronfit_iterations = 2;
    if (!spec.defaults.sweep_epsilons.empty()) {
      overrides.sweep_epsilons = std::vector<double>{0.5};
    }
    ScenarioOutput output(spec.name, /*text_out=*/nullptr);
    const Status status = RunScenario(spec, overrides, output);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_GT(output.elapsed_seconds(), 0.0);

    JsonWriter json;
    output.AppendRunJson(json);
    const std::string& doc = json.str();
    EXPECT_NE(doc.find("\"scenario\":\"" + spec.name + "\""),
              std::string::npos);
    // At least one table with at least one row.
    EXPECT_NE(doc.find("\"rows\":[{"), std::string::npos)
        << "scenario emitted no series rows";
  }
}

TEST_F(ScenarioTest, ScenariosJsonWrapsRuns) {
  ScenarioOutput a("alpha", nullptr);
  a.Table("panel").Add("s", 1.0, 2.0);
  ScenarioOutput b("beta", nullptr);
  const std::string doc = ScenariosJson({&a, &b}, 4);
  EXPECT_NE(doc.find("\"schema\":\"dpkron.scenarios.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\":\"alpha\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\":\"beta\""), std::string::npos);
  EXPECT_NE(doc.find("\"experiment\":\"alpha/panel\""), std::string::npos);
}

TEST_F(ScenarioTest, OutputRecordsBudgetLedger) {
  ScenarioOutput output("budgeted", nullptr);
  PrivacyBudget budget(0.2, 0.01);
  ASSERT_TRUE(budget.Spend(0.1, 0.0, "degree sequence").ok());
  ASSERT_TRUE(budget.Spend(0.1, 0.01, "triangles").ok());
  output.RecordBudget(budget, /*print=*/false);
  JsonWriter json;
  output.AppendRunJson(json);
  EXPECT_NE(json.str().find("\"label\":\"degree sequence\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"label\":\"triangles\""), std::string::npos);
}

}  // namespace
}  // namespace dpkron
