// How private is private enough? Sweeps ε and shows how the estimate and
// the privatized matching statistics degrade as the budget tightens —
// the experiment to run before picking an operating point for a real
// release.
//
// Usage: ./build/examples/epsilon_playground [trials]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/estimation/kronmom.h"
#include "src/skg/sampler.h"

int main(int argc, char** argv) {
  using namespace dpkron;
  const uint32_t trials = argc > 1 ? std::atoi(argv[1]) : 5;
  const Initiator2 truth{0.99, 0.45, 0.25};
  const uint32_t k = 12;

  Rng rng(31337);
  const Graph g = SampleSkg(truth, k, rng);
  const KronMomResult non_private = FitKronMom(g);
  const GraphFeatures exact = ComputeFeatures(g);
  std::printf("graph: %u nodes, %llu edges; non-private KronMom = %s\n\n",
              g.NumNodes(), static_cast<unsigned long long>(g.NumEdges()),
              non_private.theta.ToString().c_str());
  std::printf("%-8s %-22s %-18s %-18s\n", "epsilon",
              "|Theta~ - KronMom|_inf", "rel.err(E~)", "rel.err(Delta~)");

  for (double epsilon : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    double theta_err = 0, edge_err = 0, triangle_err = 0;
    for (uint32_t t = 0; t < trials; ++t) {
      const auto fit = EstimatePrivateSkg(g, epsilon, 0.01, rng);
      if (!fit.ok()) {
        std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
        return 1;
      }
      theta_err += MaxAbsDifference(fit.value().theta, non_private.theta);
      edge_err += std::fabs(fit.value().private_features.edges - exact.edges) /
                  exact.edges;
      triangle_err +=
          std::fabs(fit.value().private_features.triangles - exact.triangles) /
          exact.triangles;
    }
    std::printf("%-8g %-22.4f %-18.4f %-18.4f\n", epsilon, theta_err / trials,
                edge_err / trials, triangle_err / trials);
  }
  std::printf("\n(The paper operates at epsilon = 0.2; note how little the\n"
              " estimate moves between 0.2 and +inf, and how fast the\n"
              " triangle statistic degrades below ~0.1.)\n");
  return 0;
}
