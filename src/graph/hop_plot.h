// Hop plot: N(h) = number of ordered node pairs (u, v), including u = v,
// with hop distance ≤ h — the quantity plotted in panel (a) of every
// figure in the paper. Exact computation runs one BFS per node.
// For bench-scale graphs prefer ApproxHopPlot (anf.h).

#ifndef DPKRON_GRAPH_HOP_PLOT_H_
#define DPKRON_GRAPH_HOP_PLOT_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// Exact hop plot. Entry h (0-based) is N(h); the vector extends to the
// graph's effective diameter, i.e. until N(h) stops growing. N(0) equals
// NumNodes(). O(N·M) time, O(N) memory.
std::vector<uint64_t> ExactHopPlot(GraphView graph);

// Smallest h such that N(h) ≥ fraction·N(∞) (the standard "effective
// diameter" with fraction = 0.9). `hop_plot` must be a (possibly
// approximate) hop plot vector.
uint32_t EffectiveDiameter(const std::vector<uint64_t>& hop_plot,
                           double fraction = 0.9);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_HOP_PLOT_H_
