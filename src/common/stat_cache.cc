#include "src/common/stat_cache.h"

#include <algorithm>

namespace dpkron {

StatCache& StatCache::Instance() {
  // Leaked singleton: cached values may be handed out up to process
  // exit, so the cache must never be destroyed before its clients.
  static StatCache& instance = *new StatCache;
  return instance;
}

Status StatCache::AttachDiskTier(const std::string& root,
                                 const DiskCache::Options& options) {
  auto cache = DiskCache::Open(root, options);
  if (!cache.ok()) return cache.status();
  std::lock_guard<std::mutex> lock(mu_);
  disk_ = std::move(cache).value();
  return Status::Ok();
}

void StatCache::DetachDiskTier() {
  std::lock_guard<std::mutex> lock(mu_);
  disk_.reset();
}

bool StatCache::disk_attached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_ != nullptr;
}

std::string StatCache::disk_root() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_ != nullptr ? disk_->root() : std::string();
}

std::shared_ptr<const DiskCache> StatCache::disk_tier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_;
}

void StatCache::set_byte_budget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  EvictToBudgetLocked();
}

uint64_t StatCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

uint64_t StatCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

StatCache::Lookup StatCache::LookupOrRegister(
    const char* domain, uint64_t key,
    std::shared_future<std::shared_ptr<const void>> candidate) {
  std::lock_guard<std::mutex> lock(mu_);
  Domain& d = domains_[domain];
  auto [it, inserted] = d.entries.try_emplace(key);
  if (inserted) {
    it->second.future = std::move(candidate);
    ++d.counters.misses;
  } else {
    ++d.counters.hits;
  }
  it->second.tick = ++tick_;
  return Lookup{it->second.future, inserted};
}

void StatCache::FinalizeEntry(const char* domain, uint64_t key, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto domain_it = domains_.find(domain);
  if (domain_it == domains_.end()) return;  // Clear() raced the compute
  auto it = domain_it->second.entries.find(key);
  if (it == domain_it->second.entries.end() || it->second.bytes != 0) return;
  it->second.bytes = std::max<size_t>(bytes, 1);
  resident_bytes_ += it->second.bytes;
  EvictToBudgetLocked();
}

void StatCache::EvictToBudgetLocked() {
  if (byte_budget_ == 0 || resident_bytes_ <= byte_budget_) return;
  // Coarse LRU: collect every fulfilled entry (in-flight ones — bytes
  // 0 — are owned by a computing thread and must stay registered),
  // oldest access first, and drop until within budget. Waiters holding
  // shared_future copies keep their values alive; eviction only makes
  // FUTURE lookups recompute (or reload from the disk tier).
  struct Victim {
    uint64_t tick;
    Domain* domain;
    uint64_t key;
    size_t bytes;
  };
  std::vector<Victim> victims;
  for (auto& [name, domain] : domains_) {
    for (auto& [key, entry] : domain.entries) {
      if (entry.bytes == 0) continue;
      victims.push_back(Victim{entry.tick, &domain, key, entry.bytes});
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.tick < b.tick; });
  for (const Victim& victim : victims) {
    if (resident_bytes_ <= byte_budget_) break;
    victim.domain->entries.erase(victim.key);
    resident_bytes_ -= victim.bytes;
  }
}

void StatCache::RecordDiskOutcome(const char* domain, bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  Counters& counters = domains_[domain].counters;
  if (hit) {
    ++counters.disk_hits;
  } else {
    ++counters.disk_misses;
  }
}

void StatCache::Clear() {
  // An in-flight owner still fulfills its promise after its entry is
  // dropped here: waiters hold their own shared_future copies, so they
  // complete normally; only future lookups recompute.
  std::lock_guard<std::mutex> lock(mu_);
  domains_.clear();
  resident_bytes_ = 0;
}

StatCache::Counters StatCache::TotalCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters total;
  for (const auto& [name, domain] : domains_) {
    total.hits += domain.counters.hits;
    total.misses += domain.counters.misses;
    total.disk_hits += domain.counters.disk_hits;
    total.disk_misses += domain.counters.disk_misses;
  }
  return total;
}

std::vector<std::pair<std::string, StatCache::Counters>>
StatCache::DomainCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Counters>> counters;
  counters.reserve(domains_.size());
  for (const auto& [name, domain] : domains_) {
    counters.emplace_back(name, domain.counters);
  }
  return counters;
}

}  // namespace dpkron
