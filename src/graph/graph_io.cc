#include "src/graph/graph_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/env.h"
#include "src/common/fnv.h"
#include "src/common/parallel.h"
#include "src/common/stat_cache.h"
#include "src/graph/graph_builder.h"

namespace dpkron {
namespace {

using RawEdge = std::pair<uint64_t, uint64_t>;

// ------------------------------------------------------- line tokenizer
//
// One tokenizer shared by the serial and the parallel parser, so the
// two paths can only differ in chunking — never in what a line means.

enum class LineKind { kEdge, kSkip, kError };

bool IsFieldSpace(char c) { return c == ' ' || c == '\t'; }

// Parses a run of decimal digits into `out` with overflow detection.
// Returns nullptr on success, else a static error message.
const char* ParseNodeId(const char*& p, const char* end, uint64_t* out) {
  if (p == end || *p < '0' || *p > '9') {
    return "expected unsigned integer node id";
  }
  uint64_t value = 0;
  while (p != end && *p >= '0' && *p <= '9') {
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return "node id overflows uint64";
    }
    value = value * 10 + digit;
    ++p;
  }
  *out = value;
  return nullptr;
}

// Classifies one line (without its '\n'; a trailing '\r' is stripped).
// On kError, `*error` points at a static message.
LineKind ParseLine(const char* p, const char* end, RawEdge* edge,
                   const char** error) {
  if (p != end && *(end - 1) == '\r') --end;  // CRLF ending
  while (p != end && IsFieldSpace(*p)) ++p;
  if (p == end || *p == '#') return LineKind::kSkip;

  if (const char* msg = ParseNodeId(p, end, &edge->first)) {
    *error = msg;
    return LineKind::kError;
  }
  if (p == end || !IsFieldSpace(*p)) {
    *error = "expected whitespace between the two node ids";
    return LineKind::kError;
  }
  while (p != end && IsFieldSpace(*p)) ++p;
  if (const char* msg = ParseNodeId(p, end, &edge->second)) {
    *error = msg;
    return LineKind::kError;
  }
  while (p != end && IsFieldSpace(*p)) ++p;
  if (p != end) {
    *error = "trailing garbage after the two node ids";
    return LineKind::kError;
  }
  return LineKind::kEdge;
}

// --------------------------------------------------------- chunk parse

// Result of tokenizing one byte range: the raw edges in file order, the
// number of lines seen, and the first malformed line (if any).
struct ChunkParse {
  std::vector<RawEdge> edges;
  size_t lines = 0;
  size_t error_line = 0;  // 1-based within the chunk; 0 = no error
  std::string error;
};

void ParseChunk(const char* begin, const char* end, ChunkParse* out) {
  const char* p = begin;
  while (p < end) {
    const char* newline =
        static_cast<const char*>(std::memchr(p, '\n', end - p));
    const char* line_end = newline != nullptr ? newline : end;
    ++out->lines;
    RawEdge edge;
    const char* message = nullptr;
    switch (ParseLine(p, line_end, &edge, &message)) {
      case LineKind::kEdge:
        out->edges.push_back(edge);
        break;
      case LineKind::kSkip:
        break;
      case LineKind::kError:
        if (out->error_line == 0) {
          const char* shown_end = line_end;
          if (shown_end != p && *(shown_end - 1) == '\r') --shown_end;
          out->error_line = out->lines;
          out->error = std::string(message) + ", got: '" +
                       std::string(p, shown_end) + "'";
        }
        break;
    }
    p = newline != nullptr ? newline + 1 : end;
  }
}

// The fixed chunk decomposition: ~chunk_bytes per chunk, each boundary
// snapped forward past the next '\n'. Depends only on the input bytes
// and chunk_bytes, never on the thread count — the determinism
// contract's requirement.
std::vector<std::pair<size_t, size_t>> ChunkRanges(std::string_view text,
                                                   size_t chunk_bytes) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (chunk_bytes == 0) chunk_bytes = 1;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = begin + chunk_bytes;
    if (end >= text.size()) {
      end = text.size();
    } else {
      const size_t newline = text.find('\n', end);
      end = newline == std::string_view::npos ? text.size() : newline + 1;
    }
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

// Concatenates the per-chunk runs in chunk order, densifies raw ids to
// 0..n-1 by first appearance, and builds the Graph. Reports the first
// malformed line with its absolute (file-level) line number.
Result<Graph> MergeChunks(const std::vector<ChunkParse>& chunks,
                          const std::string& origin) {
  size_t line_base = 0;
  size_t total_edges = 0;
  for (const ChunkParse& chunk : chunks) {
    if (chunk.error_line != 0) {
      return Status::InvalidArgument(
          origin + ":" + std::to_string(line_base + chunk.error_line) + ": " +
          chunk.error);
    }
    line_base += chunk.lines;
    total_edges += chunk.edges.size();
  }

  std::unordered_map<uint64_t, Graph::NodeId> dense_id;
  dense_id.reserve(total_edges / 2 + 16);
  std::vector<std::pair<Graph::NodeId, Graph::NodeId>> edges;
  edges.reserve(total_edges);
  auto intern = [&dense_id](uint64_t raw) {
    auto [it, inserted] =
        dense_id.emplace(raw, static_cast<Graph::NodeId>(dense_id.size()));
    (void)inserted;
    return it->second;
  };
  constexpr size_t kMaxNodeIds = std::numeric_limits<uint32_t>::max();
  for (const ChunkParse& chunk : chunks) {
    // Each edge adds at most two ids; bail before NodeId could wrap.
    // (Checked in two parts: 2·edges alone can exceed the limit for a
    // >2^31-edge chunk, and the subtraction must not underflow.)
    if (2 * chunk.edges.size() > kMaxNodeIds ||
        dense_id.size() > kMaxNodeIds - 2 * chunk.edges.size()) {
      return Status::OutOfRange(origin +
                                ": more than 2^32 distinct node ids");
    }
    for (const auto& [u, v] : chunk.edges) {
      // Two statements: emplace_back(intern(u), intern(v)) would leave
      // the first-appearance order to the compiler's argument
      // evaluation order.
      const Graph::NodeId dense_u = intern(u);
      const Graph::NodeId dense_v = intern(v);
      edges.emplace_back(dense_u, dense_v);
    }
  }
  return GraphBuilder::FromEdges(static_cast<uint32_t>(dense_id.size()),
                                 edges);
}

Result<Graph> ParseEdgeListImpl(std::string_view text,
                                const std::string& origin,
                                const EdgeListParseOptions& options) {
  const std::vector<std::pair<size_t, size_t>> ranges =
      ChunkRanges(text, options.chunk_bytes);
  std::vector<ChunkParse> chunks(ranges.size());
  ParallelFor(ranges.size(), 1, [&](size_t i) {
    ParseChunk(text.data() + ranges[i].first, text.data() + ranges[i].second,
               &chunks[i]);
  });
  return MergeChunks(chunks, origin);
}

// All file bytes through the Env seam, so tests can inject read faults
// and the NotFound/transient distinction is uniform across call sites.
Result<std::string> ReadFileBytes(const std::string& path) {
  return GetEnv()->ReadFileToString(path);
}

}  // namespace

Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListParseOptions& options) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParseEdgeListImpl(bytes.value(), path, options);
}

Result<Graph> ParseEdgeList(std::string_view text,
                            const EdgeListParseOptions& options) {
  return ParseEdgeListImpl(text, "<string>", options);
}

Result<Graph> ParseEdgeListSerial(std::string_view text) {
  std::vector<ChunkParse> chunks(1);
  ParseChunk(text.data(), text.data() + text.size(), &chunks[0]);
  return MergeChunks(chunks, "<string>");
}

Status WriteEdgeList(GraphView graph, const std::string& path) {
  std::string text = "# dpkron edge list: " + std::to_string(graph.NumNodes()) +
                     " nodes, " + std::to_string(graph.NumEdges()) +
                     " edges\n";
  graph.ForEachEdge([&text](Graph::NodeId u, Graph::NodeId v) {
    text += std::to_string(u);
    text += '\t';
    text += std::to_string(v);
    text += '\n';
  });
  // Durable (temp + sync + rename): an edge list is a dataset artifact;
  // a reader must never see a half-written one.
  return WriteFileDurable(path, text);
}

// ------------------------------------------------------ binary (.dpkb)

namespace {

constexpr char kDpkbMagic[8] = {'D', 'P', 'K', 'B', 'C', 'S', 'R', '1'};
// Version 2 added source_checksum (and 8 bytes of header); version 3
// moved the two CSR arrays onto 64-byte-aligned section boundaries so
// an mmap of the file serves SIMD-alignable arrays in place. Readers
// accept 2 (packed) and 3 (aligned); writers emit 3. Version 1 files
// fail the version check, which the sidecar-cache path treats as
// "stale": old caches are silently reparsed and rewritten, never
// misloaded (tests/graph_io_test.cc exercises a crafted v1 file).
constexpr uint32_t kDpkbVersionPacked = 2;
constexpr uint32_t kDpkbVersion = 3;

// v3 section geometry. The header struct stays 56 bytes; v3 pads it to
// the first section boundary.
constexpr uint64_t kDpkbSectionAlign = 64;

uint64_t AlignUp(uint64_t value) {
  return (value + kDpkbSectionAlign - 1) & ~(kDpkbSectionAlign - 1);
}

uint64_t OffsetsSectionStart(uint32_t version) {
  return version >= 3 ? kDpkbSectionAlign : 56;
}

uint64_t AdjacencySectionStart(uint32_t version, uint64_t num_nodes) {
  const uint64_t end = OffsetsSectionStart(version) +
                       sizeof(uint32_t) * (num_nodes + 1);
  return version >= 3 ? AlignUp(end) : end;
}

uint64_t ExpectedFileSize(uint32_t version, uint64_t num_nodes,
                          uint64_t adjacency_len) {
  return AdjacencySectionStart(version, num_nodes) +
         sizeof(uint32_t) * adjacency_len;
}

struct DpkbHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
  uint64_t num_nodes;
  uint64_t adjacency_len;
  uint64_t checksum;
  // Provenance of a sidecar cache: byte size and FNV-1a checksum of the
  // text file it was parsed from (both 0 for standalone .dpkb
  // datasets). Cached loads revalidate against the current source
  // content, which catches every rewrite timestamps miss: same-size
  // same-mtime-granularity rewrites and mtime-preserving replacements
  // (cp -p, rsync -t) alike.
  uint64_t source_size;
  uint64_t source_checksum;
};
static_assert(sizeof(DpkbHeader) == 56, "dpkb header must be packed");

uint64_t PayloadChecksum(std::span<const uint32_t> offsets,
                         std::span<const Graph::NodeId> adjacency) {
  // Word-wise FNV-1a (see fnv.h): this checksum is recomputed over the
  // full CSR payload on every cached load, so throughput is part of the
  // cache's >=10x contract. Must stay the Graph::ContentFingerprint
  // formula exactly — the section padding v3 introduced is NOT hashed,
  // so v2 and v3 files of one graph record the same checksum.
  uint64_t hash = Fnv1a64Words(offsets.data(), offsets.size_bytes());
  return Fnv1a64Words(adjacency.data(), adjacency.size_bytes(), hash);
}

// Validates a parsed header's fixed fields (everything checkable without
// touching the payload). Shared by the copying reader and MmapGraph.
Status ValidateDpkbHeader(const DpkbHeader& header, uint64_t file_size,
                          const std::string& path) {
  if (std::memcmp(header.magic, kDpkbMagic, sizeof(kDpkbMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a dpkb file (bad magic)");
  }
  if (header.version != kDpkbVersionPacked && header.version != kDpkbVersion) {
    return Status::InvalidArgument(
        path + ": unsupported dpkb version " + std::to_string(header.version));
  }
  if (header.num_nodes >= std::numeric_limits<uint32_t>::max() ||
      header.adjacency_len > std::numeric_limits<uint32_t>::max() ||
      header.adjacency_len % 2 != 0) {
    return Status::InvalidArgument(path + ": implausible dpkb counts");
  }
  const uint64_t expected_size =
      ExpectedFileSize(header.version, header.num_nodes, header.adjacency_len);
  if (file_size != expected_size) {
    return Status::InvalidArgument(
        path + ": dpkb size mismatch (header promises " +
        std::to_string(expected_size) + " bytes, file has " +
        std::to_string(file_size) + ")");
  }
  return Status::Ok();
}

// CSR invariants over untrusted arrays — must fail with a Status, not
// trip the DPKRON_CHECKs inside Graph::FromCsr (or a kernel, for the
// mmap route, which serves these spans to kernels unconverted).
Status ValidateCsrSpans(std::span<const uint32_t> offsets,
                        std::span<const Graph::NodeId> adjacency,
                        const std::string& path) {
  const uint32_t n = static_cast<uint32_t>(offsets.size() - 1);
  if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
    return Status::InvalidArgument(path + ": corrupt dpkb offsets");
  }
  for (uint32_t u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::InvalidArgument(path + ": dpkb offsets not monotone");
    }
    for (uint32_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (adjacency[i] >= n || adjacency[i] == u ||
          (i > offsets[u] && adjacency[i - 1] >= adjacency[i])) {
        return Status::InvalidArgument(
            path + ": dpkb adjacency violates CSR invariants at node " +
            std::to_string(u));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::string BinaryCachePath(const std::string& path) { return path + ".dpkb"; }

Status WriteBinaryGraph(GraphView graph, const std::string& path,
                        const DpkbSourceStamp& source) {
  DpkbHeader header{};
  std::memcpy(header.magic, kDpkbMagic, sizeof(kDpkbMagic));
  header.version = kDpkbVersion;
  header.num_nodes = graph.NumNodes();
  header.adjacency_len = graph.Adjacency().size();
  header.checksum = PayloadChecksum(graph.Offsets(), graph.Adjacency());
  header.source_size = source.size;
  header.source_checksum = source.checksum;

  // v3 section padding: the header region runs to byte 64, and the
  // adjacency section starts on the next 64-byte boundary past the
  // offsets. Padding bytes are zero and excluded from the checksum.
  const char zeros[kDpkbSectionAlign] = {};
  const uint64_t header_pad = OffsetsSectionStart(header.version) -
                              sizeof(header);
  const uint64_t offsets_end = OffsetsSectionStart(header.version) +
                               sizeof(uint32_t) * (header.num_nodes + 1);
  const uint64_t offsets_pad =
      AdjacencySectionStart(header.version, header.num_nodes) - offsets_end;

  // Write-temp → Sync → rename → SyncDir through the Env seam. The sync
  // BEFORE the rename is load-bearing: rename-without-fsync can commit
  // the name while the data blocks are still page-cache-only, and a
  // crash then leaves a renamed-but-empty (or torn) .dpkb where readers
  // expect a valid cache. The temp name is unique per process and call —
  // two simultaneous cache writers must not truncate each other's
  // in-flight file.
  Env* env = GetEnv();
  static std::atomic<uint64_t> write_counter{0};
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(write_counter.fetch_add(1, std::memory_order_relaxed));
  auto file = env->NewWritableFile(temp);
  if (!file.ok()) return file.status();
  Status status = file.value()->Append(&header, sizeof(header));
  if (status.ok() && header_pad != 0) {
    status = file.value()->Append(zeros, header_pad);
  }
  if (status.ok() && !graph.Offsets().empty()) {
    status = file.value()->Append(graph.Offsets().data(),
                                  sizeof(uint32_t) * graph.Offsets().size());
  }
  if (status.ok() && offsets_pad != 0) {
    status = file.value()->Append(zeros, offsets_pad);
  }
  if (status.ok() && !graph.Adjacency().empty()) {
    status =
        file.value()->Append(graph.Adjacency().data(),
                             sizeof(Graph::NodeId) * graph.Adjacency().size());
  }
  if (status.ok()) status = file.value()->Sync();
  const Status close_status = file.value()->Close();
  if (status.ok()) status = close_status;
  if (status.ok()) status = env->RenameFile(temp, path);
  if (!status.ok()) {
    (void)env->RemoveFile(temp);
    return status;
  }
  return env->SyncDir(path);
}

Result<Graph> ReadBinaryGraph(const std::string& path,
                              DpkbSourceStamp* source) {
  if (source != nullptr) *source = DpkbSourceStamp{};
  auto bytes = GetEnv()->ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& data = bytes.value();
  const uint64_t file_size = data.size();

  DpkbHeader header{};
  if (file_size < sizeof(header)) {
    return Status::InvalidArgument(path + ": truncated dpkb header");
  }
  std::memcpy(&header, data.data(), sizeof(header));
  if (Status status = ValidateDpkbHeader(header, file_size, path);
      !status.ok()) {
    return status;
  }

  Graph::OffsetVector offsets(header.num_nodes + 1);
  Graph::AdjacencyVector adjacency(header.adjacency_len);
  std::memcpy(offsets.data(),
              data.data() + OffsetsSectionStart(header.version),
              sizeof(uint32_t) * offsets.size());
  if (!adjacency.empty()) {
    std::memcpy(
        adjacency.data(),
        data.data() + AdjacencySectionStart(header.version, header.num_nodes),
        sizeof(uint32_t) * adjacency.size());
  }
  if (PayloadChecksum(offsets, adjacency) != header.checksum) {
    return Status::InvalidArgument(path + ": dpkb checksum mismatch");
  }
  if (source != nullptr) {
    source->size = header.source_size;
    source->checksum = header.source_checksum;
  }
  if (Status status = ValidateCsrSpans(offsets, adjacency, path);
      !status.ok()) {
    return status;
  }
  return Graph::FromCsr(std::move(offsets), std::move(adjacency));
}

// ------------------------------------------------- out-of-core (mmap)

namespace {

// RAII fd so every early return in Open closes it (the mapping itself
// survives close(2) — the kernel keeps the file pinned via the map).
struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

MmapGraph::~MmapGraph() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

GraphView MmapGraph::view() const {
  if (map_ == nullptr) return GraphView(fallback_);
  return GraphView(offsets_, adjacency_, &fingerprint_);
}

Result<std::shared_ptr<MmapGraph>> MmapGraph::Open(const std::string& path,
                                                   const Options& options) {
  // Raw POSIX I/O, not the Env seam: the mapping lives outside Env's
  // fault-injection model anyway, and the header pread below is the only
  // read syscall a trusted open performs — the O(header) contract.
  FdCloser fd;
  fd.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd.fd < 0) {
    return Status::NotFound(path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) {
    return Status::Unavailable(path + ": fstat: " + std::strerror(errno));
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);

  DpkbHeader header{};
  if (file_size < sizeof(header)) {
    return Status::InvalidArgument(path + ": truncated dpkb header");
  }
  const ssize_t got = ::pread(fd.fd, &header, sizeof(header), 0);
  if (got != static_cast<ssize_t>(sizeof(header))) {
    return Status::Unavailable(path + ": short header read");
  }
  // The size check against the header's exact promise is what makes the
  // no-SIGBUS guarantee: a file truncated mid-CSR fails HERE, before any
  // byte of it is mapped, and a file that shrinks after this point is a
  // concurrent-modification race the format contract excludes (writers
  // only ever rename complete files into place).
  if (Status status = ValidateDpkbHeader(header, file_size, path);
      !status.ok()) {
    return status;
  }

  auto graph = std::shared_ptr<MmapGraph>(new MmapGraph());
  graph->stamp_ = DpkbSourceStamp{header.source_size, header.source_checksum};

  if (header.version < 3) {
    // Packed v2 layout: the arrays are not mappable in place (offsets
    // start at byte 56). Degrade to the copying reader — same validation
    // semantics, just materialized.
    auto fallback = ReadBinaryGraph(path);
    if (!fallback.ok()) return fallback.status();
    graph->fallback_ = std::move(fallback.value());
    return graph;
  }

  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd.fd, 0);
  if (map == MAP_FAILED) {
    return Status::Unavailable(path + ": mmap: " + std::strerror(errno));
  }
  graph->map_ = map;
  graph->map_len_ = file_size;
  const auto* base = static_cast<const char*>(map);
  graph->offsets_ = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(
          base + OffsetsSectionStart(header.version)),
      header.num_nodes + 1);
  graph->adjacency_ = std::span<const Graph::NodeId>(
      reinterpret_cast<const Graph::NodeId*>(
          base + AdjacencySectionStart(header.version, header.num_nodes)),
      header.adjacency_len);
  // The write-time checksum IS the content fingerprint by the format
  // contract, so StatCache keys match the in-RAM backing without a
  // payload read.
  graph->fingerprint_.store(header.checksum, std::memory_order_relaxed);

  // Paging hints: the offsets array is touched by every kernel's setup
  // (degrees, chunk bounds), so always prefetch it; the adjacency
  // streams under page-cache control unless the caller asks for a full
  // prefault. Advisory — failures are ignored.
  (void)::madvise(map, options.populate
                           ? file_size
                           : AdjacencySectionStart(header.version,
                                                   header.num_nodes),
                  MADV_WILLNEED);

  // O(1) endpoint sanity even on trusted opens: catches a payload that
  // disagrees with the header about its own length without reading it.
  if (graph->offsets_.front() != 0 ||
      graph->offsets_.back() != graph->adjacency_.size()) {
    return Status::InvalidArgument(path + ": corrupt dpkb offsets");
  }

  if (options.verify_payload) {
    // Full streaming re-verification for files of untrusted origin:
    // the recorded checksum must match the mapped payload, and the CSR
    // invariants must hold (kernels index adjacency[] by offsets[] and
    // would otherwise read out of the mapping).
    if (PayloadChecksum(graph->offsets_, graph->adjacency_) !=
        header.checksum) {
      return Status::InvalidArgument(path + ": dpkb checksum mismatch");
    }
    if (Status status =
            ValidateCsrSpans(graph->offsets_, graph->adjacency_, path);
        !status.ok()) {
      return status;
    }
  }
  return graph;
}

namespace {

// RAII holder for the advisory "<cache>.lock" rebuild lock. Removing
// the lock file IS the release; best-effort, like everything in the
// lock protocol.
class SidecarLockGuard {
 public:
  explicit SidecarLockGuard(std::string path) : path_(std::move(path)) {}
  ~SidecarLockGuard() {
    if (held_) (void)GetEnv()->RemoveFile(path_);
  }
  SidecarLockGuard(const SidecarLockGuard&) = delete;
  SidecarLockGuard& operator=(const SidecarLockGuard&) = delete;

  // One O_EXCL attempt. kFailedPrecondition = someone else holds it;
  // any other failure (permissions, injected fault) leaves the guard
  // unheld and the caller proceeds without coordination.
  Status TryAcquire() {
    auto file = GetEnv()->NewExclusiveFile(path_);
    if (!file.ok()) return file.status();
    (void)file.value()->Close();
    held_ = true;
    return Status::Ok();
  }

  // Breaks an orphaned lock (holder crashed between create and unlink)
  // and reacquires. The remove-then-create window can race another
  // breaker, in which case this process just rebuilds unlocked — a
  // duplicated parse, never a wrong result (the sidecar write itself is
  // crash-safe via write-temp → sync → rename).
  void BreakStale() {
    (void)GetEnv()->RemoveFile(path_);
    (void)TryAcquire();
  }

  bool held() const { return held_; }

 private:
  std::string path_;
  bool held_ = false;
};

// The sidecar route once the source bytes are in hand: binary-load if
// the recorded stamp matches the current content, else parse the bytes
// and (best-effort) rewrite the sidecar. `sidecar_hit` reports which
// route served the graph.
Result<Graph> LoadViaSidecar(const std::string& path,
                             const std::string& bytes,
                             const DpkbSourceStamp& current,
                             const EdgeListParseOptions& options,
                             bool* sidecar_hit) {
  *sidecar_hit = false;
  const std::string cache = BinaryCachePath(path);
  DpkbSourceStamp recorded;
  auto cached = ReadBinaryGraph(cache, &recorded);
  if (cached.ok() && recorded.size == current.size &&
      recorded.checksum == current.checksum) {
    // A standalone .dpkb (stamp {0, 0}) can never match: the FNV-1a
    // checksum of any source text — even empty — is non-zero.
    *sidecar_hit = true;
    return cached;
  }

  // Cache miss ⇒ rebuild, behind the cross-process lock so N processes
  // cold-starting on one dataset do one parse. A loser waits, re-reading
  // the sidecar each poll: the winner's atomic rename turns the miss
  // into a hit mid-wait. A lock that outlives lock_stale_ms is presumed
  // orphaned by a crashed holder and broken. The in-PROCESS analogue of
  // this dedup is the StatCache memo in ReadEdgeListCached.
  SidecarLockGuard lock(cache + ".lock");
  const Status acquired = lock.TryAcquire();
  if (!acquired.ok() && acquired.code() == StatusCode::kFailedPrecondition) {
    int64_t waited_ms = 0;
    const int64_t poll_ms = options.lock_poll_ms < 1 ? 1 : options.lock_poll_ms;
    while (waited_ms < options.lock_stale_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      waited_ms += poll_ms;
      auto rebuilt = ReadBinaryGraph(cache, &recorded);
      if (rebuilt.ok() && recorded.size == current.size &&
          recorded.checksum == current.checksum) {
        *sidecar_hit = true;
        return rebuilt;
      }
      if (lock.TryAcquire().ok()) break;  // holder released without a write
    }
    if (!lock.held()) lock.BreakStale();
  }

  // A missing, stale, old-version or corrupt sidecar is rebuilt from the
  // bytes already in hand, never fatal — including every failure mode of
  // the lock protocol itself.
  auto parsed = ParseEdgeListImpl(bytes, path, options);
  if (!parsed.ok()) return parsed;
  // The cache WRITE is strictly best-effort: a full disk (ENOSPC) or
  // injected I/O fault must degrade to a warning + the in-memory parse,
  // never fail a load that already succeeded. The next load retries.
  const Status cached_write = WriteBinaryGraph(parsed.value(), cache, current);
  if (!cached_write.ok()) {
    std::fprintf(stderr, "# warning: sidecar cache write failed (%s); "
                 "serving the in-memory parse\n",
                 cached_write.ToString().c_str());
  }
  return parsed;
}

}  // namespace

Result<Graph> ReadEdgeListCached(const std::string& path, bool* cache_hit,
                                 const EdgeListParseOptions& options) {
  if (cache_hit != nullptr) *cache_hit = false;

  // Freshness is content-addressed, not timestamp-based: the current
  // source bytes are read and checksummed on every load, and the sidecar
  // serves only if its recorded (size, checksum) stamp matches. This
  // closes the staleness holes timestamps cannot see — a same-size
  // rewrite within mtime granularity of the cache write, or a same-size
  // mtime-preserving replacement (cp -p, rsync -t). Reading + hashing
  // the text is the cheap part of ingestion; the tokenize/densify/CSR
  // build the cache skips is what IngestionPerfTest measures.
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const DpkbSourceStamp current{bytes.value().size(),
                                Fnv1a64Words(bytes.value().data(),
                                             bytes.value().size())};

  // With the StatCache enabled (sweep drivers), an in-memory memo keyed
  // by the same content stamp sits above the sidecar: the concurrent
  // runs of a cold sweep wait on one parse instead of each duplicating
  // it, and warm runs skip even the binary load. Keying by content — not
  // path — keeps the freshness semantics identical to the sidecar's: a
  // rewritten source is a new key, never a stale serve.
  StatCache& memo = StatCache::Instance();
  if (memo.enabled()) {
    struct MemoEntry {
      Result<Graph> result;
      bool sidecar_hit;
    };
    bool computed = false;
    const uint64_t key =
        CacheKey().Mix(current.size).Mix(current.checksum).digest();
    const auto entry = memo.GetOrCompute<MemoEntry>("graph_load", key, [&] {
      computed = true;
      MemoEntry e{Status::Internal("unreachable"), false};
      e.result = LoadViaSidecar(path, bytes.value(), current, options,
                                &e.sidecar_hit);
      return e;
    });
    if (cache_hit != nullptr) {
      *cache_hit = computed ? entry->sidecar_hit : true;
    }
    return entry->result;
  }

  bool sidecar_hit = false;
  auto result =
      LoadViaSidecar(path, bytes.value(), current, options, &sidecar_hit);
  if (cache_hit != nullptr) *cache_hit = sidecar_hit;
  return result;
}

Result<GraphHandle> ReadEdgeListMapped(const std::string& path,
                                       const EdgeListParseOptions& options) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const DpkbSourceStamp current{bytes.value().size(),
                                Fnv1a64Words(bytes.value().data(),
                                             bytes.value().size())};
  const std::string cache = BinaryCachePath(path);

  // A servable sidecar must map in place (v3), carry the current
  // source's stamp, and open clean. A fresh v2 sidecar fails the
  // mapped() test; the loader below then serves it as a copying hit —
  // correct, just not out-of-core — until the source changes and the
  // rewrite migrates it to v3.
  auto try_map = [&]() -> std::shared_ptr<MmapGraph> {
    auto mapped = MmapGraph::Open(cache);
    if (mapped.ok() && mapped.value()->mapped() &&
        mapped.value()->source_stamp().size == current.size &&
        mapped.value()->source_stamp().checksum == current.checksum) {
      return std::move(mapped.value());
    }
    return nullptr;
  };
  if (auto mapped = try_map()) return GraphHandle(std::move(mapped));

  // Miss: rebuild through the sidecar loader (it owns the cross-process
  // lock protocol and the durable write), then retry the map once. If
  // the rewrite could not land — read-only dataset directory, full disk
  // — the parse in hand serves in-RAM.
  bool sidecar_hit = false;
  auto parsed =
      LoadViaSidecar(path, bytes.value(), current, options, &sidecar_hit);
  if (!parsed.ok()) return parsed.status();
  if (auto mapped = try_map()) return GraphHandle(std::move(mapped));
  return GraphHandle(std::move(parsed.value()));
}

}  // namespace dpkron
