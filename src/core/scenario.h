// Declarative experiment scenarios — the engine behind dpkron_experiments.
//
// Every evaluation the paper reports (Figs 1–4, Table 1, the ablations,
// the Sala-et-al. comparison) is a ScenarioSpec: a named, declarative
// description (dataset, estimator routes, privacy parameters,
// realizations, sweep axes) plus a run function, registered in a global
// registry the way datasets/registry names graphs. One runner executes
// any of them with shared flag parsing and uniform output: TSV via
// SeriesTable, human-readable summaries, and a structured JSON document
// with the PrivacyBudget ledger embedded per run.
//
// Adding a new experiment = registering one ScenarioSpec; no new binary.

#ifndef DPKRON_CORE_SCENARIO_H_
#define DPKRON_CORE_SCENARIO_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table_writer.h"
#include "src/datasets/registry.h"
#include "src/dp/privacy_budget.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"

namespace dpkron {

// Everything a scenario run is parameterized by. Specs carry their
// defaults (mirroring the deleted standalone binaries' hard-coded
// values); the runner's flags override per invocation.
struct ScenarioParams {
  uint64_t seed = 20120330;  // PAIS'12 workshop date
  // Privacy parameters — the paper's experiments all use (0.2, 0.01).
  double epsilon = 0.2;
  double delta = 0.01;
  // Realizations behind "Expected" series; 0 skips those series.
  uint32_t realizations = 0;
  // Independent mechanism draws per sweep point (ablations).
  uint32_t trials = 0;
  // KronFit gradient iterations (the slowest stage; 40 reproduces the
  // qualitative estimates well inside a CI budget).
  uint32_t kronfit_iterations = 40;
  // Declarative ε sweep axis; empty for single-operating-point scenarios.
  std::vector<double> sweep_epsilons;
  // Smoke mode: ResolveParams truncates the declarative axes (see
  // implementation) and scenario bodies shrink their non-declarative
  // ones (graph sizes, k ranges, dataset lists) — CI's fast path.
  bool smoke = false;
  // Dataset override: when non-empty, scenario bodies load this
  // GraphSource reference (a registry name, an edge-list path, or a
  // .dpkb path) instead of their spec-declared registry datasets —
  // the hook behind `dpkron_experiments --dataset`.
  std::string dataset;
  // File-backed overrides go through the .dpkb sidecar cache.
  bool dataset_cache = false;
  // Serve file-backed datasets out-of-core via an mmap'd .dpkb
  // (GraphLoadOptions::mmap). A pure execution strategy — results are
  // bit-identical to in-RAM loads — so it is deliberately NOT recorded
  // in the run JSON or mixed into sweep fingerprints.
  bool dataset_mmap = false;
};

// Optional per-flag overrides of a spec's defaults.
struct ScenarioOverrides {
  std::optional<uint64_t> seed;
  std::optional<double> epsilon;
  std::optional<uint32_t> realizations;
  std::optional<uint32_t> trials;
  std::optional<uint32_t> kronfit_iterations;
  std::optional<std::vector<double>> sweep_epsilons;
  bool smoke = false;
  std::optional<std::string> dataset;
  bool dataset_cache = false;
  bool dataset_mmap = false;
};

// Spec defaults + overrides + smoke shrinking, in that order.
ScenarioParams ResolveParams(const ScenarioParams& defaults,
                             const ScenarioOverrides& overrides);

// The dataset reference a scenario body effectively runs on: the
// --dataset override when set, else `ref` (normally the spec's registry
// dataset name). Bodies that print the dataset name use this too, so
// the label always matches what LoadScenarioGraph loads.
const std::string& EffectiveDatasetRef(const std::string& ref,
                                       const ScenarioParams& params);

// Loads EffectiveDatasetRef(ref, params) through GraphSource.
// Generator-backed sources consume `rng` exactly the way MakeDataset
// did, file-backed sources never touch it — so the RNG stream protocol
// (and therefore every fixed-seed output) is unchanged when no override
// is given. The handle owns whichever backing params chose (in-RAM or
// mmap); scenario bodies keep it alive and hand kernels its GraphView.
Result<GraphHandle> LoadScenarioGraph(const std::string& ref,
                                      const ScenarioParams& params, Rng& rng);

// The dataset list catalog-iterating scenarios (Table 1, the model-
// selection ablation) run over: the full paper registry normally, or a
// single synthesized entry describing the --dataset override (name =
// the reference, kind = the resolved GraphSource kind, generator =
// nullptr, paper columns zeroed).
std::vector<DatasetInfo> ScenarioDatasets(const ScenarioParams& params);

// Collects one scenario run's outputs: SeriesTables (TSV + JSON),
// summaries, privacy-budget ledgers, and free-form text. `text_out` may
// be null to suppress all human-readable output (tests).
class ScenarioOutput {
 public:
  explicit ScenarioOutput(std::string scenario, std::FILE* text_out = stdout);

  // printf to the text stream (not recorded in JSON).
  void Printf(const char* format, ...) __attribute__((format(printf, 2, 3)));

  // The table tagged "<scenario>/<panel>", created on first use.
  // `print` = false keeps a table out of the TSV text output (used when
  // a port already emits the legacy rows verbatim) — it still lands in
  // the JSON document.
  SeriesTable& Table(const std::string& panel, bool print = true);

  // Prints the block immediately and records it for JSON.
  void AddSummary(const SummaryBlock& block);

  // Records a ledger snapshot for JSON; `print` = true also prints it
  // (suppress inside sweep loops that would flood the text output).
  void RecordBudget(const PrivacyBudget& budget, bool print = true);

  // Records whether a smooth-sensitivity computation used the exact
  // profile (TriangleSensitivityProfile::exact()). A run that records
  // any conservative fallback reports "exact_sensitivity": false in its
  // JSON; a run that never computes a profile reports null. This is the
  // audit trail for the silent-fallback bug: the release path can no
  // longer drop the flag on the floor.
  void RecordExactSensitivity(bool exact);

  // Prints every printable table (RunScenario calls this at the end, the
  // position the standalone binaries printed their tables in).
  void PrintTables() const;

  const std::string& scenario() const { return scenario_; }
  std::FILE* text_out() const { return text_out_; }
  const ScenarioParams& params() const { return params_; }
  double elapsed_seconds() const { return elapsed_seconds_; }
  void set_params(const ScenarioParams& params) { params_ = params; }
  void set_elapsed_seconds(double seconds) { elapsed_seconds_ = seconds; }

  // Appends this run as one JSON object: name, params, elapsed time,
  // budgets (with full ledgers), summaries and tables.
  void AppendRunJson(JsonWriter& json) const;

 private:
  struct TableEntry {
    SeriesTable table;
    bool print;
  };

  std::string scenario_;
  std::FILE* text_out_;
  ScenarioParams params_;
  double elapsed_seconds_ = 0.0;
  std::deque<TableEntry> tables_;  // deque: stable references on growth
  std::vector<SummaryBlock> summaries_;
  std::vector<PrivacyBudget> budgets_;
  uint32_t exact_sensitivity_records_ = 0;
  bool exact_sensitivity_all_ = true;  // AND over recorded flags
};

struct ScenarioSpec {
  std::string name;           // e.g. "fig1_ca_grqc"
  std::string legacy_binary;  // pre-engine bench binary, for migration
  std::string description;    // one line, shown by --list
  // datasets/registry names exercised ({} = scenario-internal graphs).
  std::vector<std::string> datasets;
  // Estimator routes exercised, for --list ("kronfit", "kronmom", ...).
  std::vector<std::string> estimators;
  ScenarioParams defaults;
  std::function<Status(const ScenarioSpec&, const ScenarioParams&,
                       ScenarioOutput&)>
      run;
};

// Registers a spec; duplicate names are a programming error (CHECK).
void RegisterScenario(ScenarioSpec spec);

// All registered specs, in registration order.
const std::vector<ScenarioSpec>& AllScenarios();

// nullptr if no spec has that name.
const ScenarioSpec* FindScenario(const std::string& name);

// Resolves params, prints the run header, invokes spec.run, prints the
// tables, and records params + wall time in `output`.
Status RunScenario(const ScenarioSpec& spec,
                   const ScenarioOverrides& overrides,
                   ScenarioOutput& output);

// Appends the process-wide StatCache counters as one JSON object
// ({enabled, hits, misses, domains: {...}}) — shared by the scenario and
// sweep documents. `enabled` is passed by the caller because the
// document must report the state the runs executed under, not the
// live state at serialization time (RunSweep restores the caller's
// state before its result is serialized).
void AppendStatCacheJson(JsonWriter& json, bool enabled);

// The BENCH_scenarios.json document:
// {schema, threads, cache: {...}, runs: [...]}.
std::string ScenariosJson(const std::vector<const ScenarioOutput*>& runs,
                          int threads);

}  // namespace dpkron

#endif  // DPKRON_CORE_SCENARIO_H_
