// KronFit: approximate maximum-likelihood estimation of the SKG initiator
// (Leskovec & Faloutsos, ICML'07) — the paper's "KronFit" baseline.
//
// Stochastic gradient ascent on the Taylor-approximated log-likelihood,
// with the node-to-position alignment σ marginalized by a Metropolis swap
// chain (permutation sampling). The observed graph is padded with
// isolated nodes to 2^k, as in the original implementation.

#ifndef DPKRON_KRONFIT_KRONFIT_H_
#define DPKRON_KRONFIT_KRONFIT_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/skg/initiator.h"

namespace dpkron {

struct KronFitOptions {
  // Gradient-ascent iterations.
  uint32_t iterations = 60;
  // Metropolis warm-up swaps before the first sample, as a multiple of N.
  double warmup_factor = 10.0;
  // Permutation samples averaged per gradient estimate.
  uint32_t samples_per_iteration = 4;
  // Swaps between consecutive samples, as a multiple of N.
  double decorrelation_factor = 2.0;
  // Largest per-iteration movement of any parameter; the raw gradient is
  // rescaled to respect it (the likelihood gradients are O(E/θ), so a raw
  // step would leave the box immediately).
  double max_step = 0.02;
  // Linear decay: step limit at iteration t is max_step/(1 + t·decay).
  double step_decay = 0.05;
  // Average the iterates of the last `tail_average` iterations (Polyak
  // tail averaging smooths the permutation-sampling noise).
  uint32_t tail_average = 10;
  Initiator2 init{0.9, 0.6, 0.2};
};

struct KronFitResult {
  Initiator2 theta;              // canonical (a ≥ c)
  double log_likelihood = 0.0;   // approx. ll of the final theta
  uint32_t k = 0;
};

// Fits Θ to `graph`. The graph is padded to 2^k nodes internally with
// k = ChooseKroneckerOrder(NumNodes()).
KronFitResult FitKronFit(const Graph& graph, Rng& rng,
                         const KronFitOptions& options = {});

// `graph` with isolated nodes appended until NumNodes() == num_nodes.
// Requires num_nodes >= graph.NumNodes().
Graph PadWithIsolatedNodes(const Graph& graph, uint32_t num_nodes);

}  // namespace dpkron

#endif  // DPKRON_KRONFIT_KRONFIT_H_
