// Status / Result<T>: exception-free recoverable error handling.
//
// Mirrors the absl::Status / absl::StatusOr idiom in miniature. Functions
// that can fail for data-dependent reasons (I/O, parsing, non-convergent
// optimization) return Status or Result<T>; precondition violations use
// DPKRON_CHECK instead.

#ifndef DPKRON_COMMON_STATUS_H_
#define DPKRON_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/macros.h"

namespace dpkron {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  // I/O-layer additions (PR 6): kResourceExhausted maps ENOSPC/EDQUOT;
  // kUnavailable marks TRANSIENT failures — the one code the sweep
  // engine's bounded retry loop is allowed to retry.
  kResourceExhausted,
  kUnavailable,
  // Server-layer additions (PR 7, dpkrond): a request that missed its
  // deadline (admission-to-completion budget, never retried by the
  // server) and a request withdrawn by its caller. Neither is
  // retryable-as-is: a deadline miss needs a NEW deadline and a
  // cancelled request needs a new decision to run.
  kDeadlineExceeded,
  kCancelled,
};

// Human-readable name for a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// The single retryability predicate shared by every bounded retry loop
// (the sweep engine's transient-cell retries, dpkrond clients). ONLY
// kUnavailable is retryable-as-is: the failure is transient and the
// same call may succeed later. kResourceExhausted in particular is NOT
// retryable — whether it names a full disk, a shed request or an
// exhausted privacy budget, blind re-submission cannot help and (for
// budgets) must not be encouraged. kDeadlineExceeded needs a fresh
// deadline, kCancelled a fresh decision; neither is a retry.
constexpr bool IsRetryableStatusCode(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error. `value()` aborts if called on an error Result; check
// `ok()` first (or use `value_or`).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    DPKRON_CHECK_MSG(!std::get<Status>(data_).ok(),
                     "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    DPKRON_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    DPKRON_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    DPKRON_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_STATUS_H_
