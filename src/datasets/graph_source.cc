#include "src/datasets/graph_source.h"

#include <filesystem>

#include "src/common/macros.h"
#include "src/graph/graph_io.h"

namespace dpkron {

const char* GraphSourceKindName(GraphSourceKind kind) {
  switch (kind) {
    case GraphSourceKind::kGenerator:
      return "generator";
    case GraphSourceKind::kEdgeList:
      return "edge-list";
    case GraphSourceKind::kBinary:
      return "binary";
  }
  DPKRON_CHECK_MSG(false, "invalid GraphSourceKind");
  return "";
}

Result<GraphSource> ResolveGraphSource(const std::string& ref) {
  GraphSource source;
  source.ref = ref;
  if (const DatasetInfo* info = FindDataset(ref)) {
    source.kind = GraphSourceKind::kGenerator;
    source.info = info;
    return source;
  }
  std::error_code ec;
  const bool is_file = std::filesystem::is_regular_file(ref, ec);
  if (ref.ends_with(".dpkb")) {
    // Same fail-fast contract as edge lists: a typo'd binary path is a
    // resolution error, not a per-scenario load failure later.
    if (!is_file) {
      return Status::NotFound("binary graph file does not exist: " + ref);
    }
    source.kind = GraphSourceKind::kBinary;
    return source;
  }
  if (is_file) {
    source.kind = GraphSourceKind::kEdgeList;
    return source;
  }
  std::string known;
  for (const DatasetInfo& info : PaperDatasets()) {
    known += known.empty() ? info.name : ", " + info.name;
  }
  return Status::NotFound("dataset reference '" + ref +
                          "' is neither a registered dataset nor an existing"
                          " file (registered: " +
                          known + "; or pass an edge-list/.dpkb path)");
}

Result<Graph> LoadGraph(const GraphSource& source, Rng& rng,
                        const GraphLoadOptions& options) {
  switch (source.kind) {
    case GraphSourceKind::kGenerator:
      if (source.info == nullptr || source.info->generator == nullptr) {
        return Status::FailedPrecondition(
            "generator source '" + source.ref + "' has no generator");
      }
      return source.info->generator(rng);
    case GraphSourceKind::kEdgeList:
      return options.use_cache ? ReadEdgeListCached(source.ref)
                               : ReadEdgeList(source.ref);
    case GraphSourceKind::kBinary:
      return ReadBinaryGraph(source.ref);
  }
  return Status::Internal("invalid GraphSourceKind");
}

Result<Graph> LoadGraphRef(const std::string& ref, Rng& rng,
                           const GraphLoadOptions& options) {
  auto source = ResolveGraphSource(ref);
  if (!source.ok()) return source.status();
  return LoadGraph(source.value(), rng, options);
}

Result<GraphHandle> LoadGraphHandle(const GraphSource& source, Rng& rng,
                                    const GraphLoadOptions& options) {
  if (options.mmap) {
    switch (source.kind) {
      case GraphSourceKind::kBinary: {
        auto mapped = MmapGraph::Open(source.ref);
        if (!mapped.ok()) return mapped.status();
        return GraphHandle(std::move(mapped.value()));
      }
      case GraphSourceKind::kEdgeList:
        return ReadEdgeListMapped(source.ref);
      case GraphSourceKind::kGenerator:
        break;  // synthesized in process; there is no file to map
    }
  }
  auto graph = LoadGraph(source, rng, options);
  if (!graph.ok()) return graph.status();
  return GraphHandle(std::move(graph.value()));
}

Result<GraphHandle> LoadGraphHandleRef(const std::string& ref, Rng& rng,
                                       const GraphLoadOptions& options) {
  auto source = ResolveGraphSource(ref);
  if (!source.ok()) return source.status();
  return LoadGraphHandle(source.value(), rng, options);
}

}  // namespace dpkron
