// Data-custodian workflow: read a sensitive edge list from disk, run the
// private estimator under an explicit privacy budget, and write out
// (a) the model parameters and (b) a synthetic edge list that can be
// shared with researchers.
//
// Usage:
//   ./build/examples/private_release [input.txt] [output.txt] [epsilon]
//
// With no arguments a demo graph is generated, released at ε = 0.2, and
// written to /tmp/dpkron_synthetic.txt.

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/datasets/registry.h"
#include "src/graph/graph_io.h"

int main(int argc, char** argv) {
  using namespace dpkron;
  const char* input_path = argc > 1 ? argv[1] : nullptr;
  const char* output_path =
      argc > 2 ? argv[2] : "/tmp/dpkron_synthetic.txt";
  const double epsilon = argc > 3 ? std::atof(argv[3]) : 0.2;
  const double delta = 0.01;

  Rng rng(777);
  Graph sensitive;
  if (input_path != nullptr) {
    auto loaded = ReadEdgeList(input_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", input_path,
                   loaded.status().ToString().c_str());
      return 1;
    }
    sensitive = std::move(loaded).value();
    std::printf("loaded %s: %u nodes, %llu edges\n", input_path,
                sensitive.NumNodes(),
                static_cast<unsigned long long>(sensitive.NumEdges()));
  } else {
    sensitive = CaGrQcLike(rng);
    std::printf("no input given; using the CA-GrQC-like demo graph "
                "(%u nodes, %llu edges)\n",
                sensitive.NumNodes(),
                static_cast<unsigned long long>(sensitive.NumEdges()));
  }

  // The custodian provisions the total budget once. Every mechanism that
  // touches the sensitive graph must draw from it; when it is exhausted,
  // further releases are refused.
  PrivacyBudget budget(epsilon, delta);
  const auto estimate =
      EstimatePrivateSkg(sensitive, epsilon, delta, budget, rng);
  if (!estimate.ok()) {
    std::fprintf(stderr, "release refused: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }

  std::printf("\n--- release record (safe to publish) ---\n");
  std::printf("model: stochastic Kronecker graph, k = %u\n",
              estimate.value().k);
  std::printf("initiator: %s\n", estimate.value().theta.ToString().c_str());
  std::printf("privacy: (%.3g, %.3g)-edge-differential privacy\n", epsilon,
              delta);
  std::printf("matching statistics released: %s\n",
              estimate.value().private_features.ToString().c_str());
  std::printf("%s", budget.ToString().c_str());

  // A sampled synthetic graph is post-processing of the private estimate:
  // publishing it costs no additional privacy budget.
  const Graph synthetic = SampleSyntheticGraph(
      estimate.value().theta, estimate.value().k, rng,
      SkgSampleMethod::kClassSkip);
  if (Status s = WriteEdgeList(synthetic, output_path); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nsynthetic graph (%u nodes, %llu edges) written to %s\n",
              synthetic.NumNodes(),
              static_cast<unsigned long long>(synthetic.NumEdges()),
              output_path);

  // Demonstrate budget enforcement: a second release attempt must fail.
  const auto second =
      EstimatePrivateSkg(sensitive, epsilon, delta, budget, rng);
  std::printf("second release attempt under the same budget: %s\n",
              second.ok() ? "UNEXPECTEDLY SUCCEEDED"
                          : second.status().ToString().c_str());
  return 0;
}
