// Env — the one audited seam between dpkron and the filesystem.
//
// Every durability-critical write in the system (the `.dpkb` sidecar
// cache, the accountant's spend journal, sweep checkpoints, BENCH_*.json
// artifacts) goes through this interface instead of raw stdio/iostream,
// for two reasons:
//
//   1. Durability is a protocol, not a call: crash-safe output is
//      write-temp → Sync() → rename → SyncDir(), in that order. With one
//      seam the protocol lives in one place (WriteFileDurable /
//      JournalWriter) instead of being re-derived — usually wrongly — at
//      each call site.
//   2. Failure paths are untestable through the raw filesystem. The
//      FaultInjectionEnv test double below makes short writes, EIO,
//      ENOSPC, failed renames and kill−9-style crashes (loss of every
//      un-synced byte) injectable deterministically, so the recovery
//      code in the accountant, the sidecar cache and the sweep engine is
//      exercised by ordinary unit tests.
//
// The active Env is process-global (GetEnv), defaulting to the real
// POSIX filesystem; tests swap in a double with ScopedEnvOverride.
// Threading a per-call Env* through every API was rejected: the graph
// loaders are called from deep inside scenario bodies, and the global is
// read-mostly (an acquire load) on hot paths.

#ifndef DPKRON_COMMON_ENV_H_
#define DPKRON_COMMON_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace dpkron {

// A file opened for writing. Append() may buffer; bytes are guaranteed
// on stable storage only after a successful Sync(). Close() flushes to
// the OS but does NOT sync — data can still be lost to a crash.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const void* data, size_t len) = 0;
  Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }
  // Flushes application buffers and fsyncs the file.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // The real POSIX filesystem. Never null; one process-wide instance.
  static Env* Default();

  // Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  // Opens `path` for appending, creating it if absent.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;
  // Creates `path` if and only if it does not already exist (O_EXCL):
  // the atomic test-and-set that backs cross-process lock files. An
  // existing file yields kFailedPrecondition; other failures map as in
  // ErrnoStatus.
  virtual Result<std::unique_ptr<WritableFile>> NewExclusiveFile(
      const std::string& path) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  // Creates one directory level. An already-existing directory is OK
  // (idempotent) — callers that need create-exclusive semantics use
  // NewExclusiveFile lock files, never directories.
  virtual Status CreateDir(const std::string& path) = 0;
  // fsyncs the directory containing `path_in_dir` — the step that makes
  // a just-renamed file survive a crash of the directory's metadata.
  virtual Status SyncDir(const std::string& path_in_dir) = 0;
};

// The active environment (Env::Default() unless a test overrode it).
Env* GetEnv();

// errno → Status, shared by every POSIX-facing layer (filesystem above,
// sockets in src/server/). ENOENT → kNotFound; ENOSPC / EDQUOT →
// kResourceExhausted; ETIMEDOUT → kDeadlineExceeded; EAGAIN /
// EWOULDBLOCK / ECONNRESET / ECONNREFUSED / EPIPE → kUnavailable
// (transient, retryable); EEXIST → kFailedPrecondition (the O_EXCL
// "somebody else holds the lock" case); everything else → kInternal.
Status ErrnoStatus(const std::string& context, int err);

// Swaps the process-global Env for a scope (tests only). Nesting is
// fine; each scope restores what it saw.
class ScopedEnvOverride {
 public:
  explicit ScopedEnvOverride(Env* env);
  ~ScopedEnvOverride();

  ScopedEnvOverride(const ScopedEnvOverride&) = delete;
  ScopedEnvOverride& operator=(const ScopedEnvOverride&) = delete;

 private:
  Env* previous_;
};

// The full durable-write protocol in one call: write `contents` to a
// unique temp name next to `path`, Sync(), rename over `path`, SyncDir().
// On any failure the temp file is removed and `path` is untouched — a
// reader can never observe a torn or empty `path`.
Status WriteFileDurable(const std::string& path, std::string_view contents,
                        Env* env = GetEnv());

// ------------------------------------------------------ fault injection

// A test double wrapping a real Env that can (a) fail the k-th upcoming
// write / sync / rename with a chosen Status (optionally applying a
// short write first), and (b) simulate a crash: DropUnsyncedData()
// truncates every file written through this env back to its last
// successfully Sync()ed length — exactly what kill −9 plus a power cut
// does to page-cache-only data. Writes pass through to the base env so
// readers in the test see the pre-crash state until the crash is
// triggered.
//
// All mutation is mutex-guarded; the double is safe to use under the
// concurrent sweep engine (and is exercised under TSan in CI).
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default());

  // Arms one fault: the next `after` operations of the class succeed,
  // then one fails with `status`. For writes, `short_write_bytes` of the
  // failing Append are committed before the error is reported (a torn
  // write). A new call re-arms; Clear*() disarms.
  void FailWrites(int after, Status status, size_t short_write_bytes = 0);
  void FailSyncs(int after, Status status);
  void FailRenames(int after, Status status);
  // Fails the k-th upcoming ReadFileToString — flaky storage on the read
  // path (drives the sweep engine's transient-retry loop in tests).
  void FailReads(int after, Status status);
  void ClearFaults();

  // Crash simulation: every byte appended through this env that was not
  // covered by a successful Sync() is discarded (files truncated on the
  // base filesystem). Files renamed without a prior Sync() end up
  // truncated at their destination — the classic renamed-but-empty bug.
  void DropUnsyncedData();

  uint64_t write_calls() const;
  uint64_t sync_calls() const;
  uint64_t rename_calls() const;
  uint64_t read_calls() const;

  // Env:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewExclusiveFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;  // passes through
  Status SyncDir(const std::string& path_in_dir) override;

 private:
  friend class FaultInjectionWritableFile;

  struct Fault {
    bool armed = false;
    int remaining = 0;  // operations to let through before failing
    Status status;
    size_t short_write_bytes = 0;  // writes only
  };

  // Returns the fault Status if `fault` fires on this operation.
  static Status NextOp(Fault* fault, uint64_t* counter);

  Env* const base_;
  mutable std::mutex mu_;
  Fault write_fault_;
  Fault sync_fault_;
  Fault rename_fault_;
  Fault read_fault_;
  uint64_t write_calls_ = 0;
  uint64_t sync_calls_ = 0;
  uint64_t rename_calls_ = 0;
  uint64_t read_calls_ = 0;
  // Bytes known durable per path (updated by Sync/rename/truncate);
  // files never written through this env are not tracked and survive
  // DropUnsyncedData untouched.
  std::map<std::string, uint64_t> synced_size_;
  // Current on-base-filesystem size per tracked path.
  std::map<std::string, uint64_t> written_size_;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_ENV_H_
