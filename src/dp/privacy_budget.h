// Sequential-composition privacy accounting (Theorem 4.9).
//
// A PrivacyBudget is handed to a release pipeline with a total (ε, δ);
// each mechanism invocation Spend()s its share and is refused once the
// budget would be exceeded. The ledger makes the composition argument of
// Theorem 4.10 / Corollary 4.11 auditable in code.

#ifndef DPKRON_DP_PRIVACY_BUDGET_H_
#define DPKRON_DP_PRIVACY_BUDGET_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpkron {

class PrivacyBudget {
 public:
  PrivacyBudget(double epsilon_total, double delta_total);

  // Records a charge of (epsilon, delta) for mechanism `label`.
  // Fails (without recording) if the remaining budget is insufficient.
  // Charges are compared with a small relative + absolute tolerance so a
  // split that sums to the total on paper (e.g. Algorithm 1's ε/2 + ε/2)
  // is never refused over accumulated floating-point rounding.
  Status Spend(double epsilon, double delta, const std::string& label);

  // The validation half of Spend() without the recording half: OK iff a
  // Spend() with the same arguments would succeed right now. The
  // durable PrivacyAccountant needs the check separately — a spend must
  // be validated BEFORE its journal record is written (refused charges
  // are never journaled) and applied only after the record is durable.
  Status CheckSpend(double epsilon, double delta,
                    const std::string& label) const;

  double epsilon_total() const { return epsilon_total_; }
  double delta_total() const { return delta_total_; }
  double epsilon_spent() const { return epsilon_spent_; }
  double delta_spent() const { return delta_spent_; }
  // Clamped at 0: a tolerance-accepted final charge can push the raw
  // difference to ~-1e-18, which is "exhausted", not "overdrawn".
  double epsilon_remaining() const {
    return epsilon_spent_ < epsilon_total_ ? epsilon_total_ - epsilon_spent_
                                           : 0.0;
  }
  double delta_remaining() const {
    return delta_spent_ < delta_total_ ? delta_total_ - delta_spent_ : 0.0;
  }

  struct LedgerEntry {
    std::string label;
    double epsilon;
    double delta;
  };
  const std::vector<LedgerEntry>& ledger() const { return ledger_; }

  // Multi-line human-readable account of all charges.
  std::string ToString() const;

 private:
  double epsilon_total_;
  double delta_total_;
  double epsilon_spent_ = 0.0;
  double delta_spent_ = 0.0;
  std::vector<LedgerEntry> ledger_;
};

}  // namespace dpkron

#endif  // DPKRON_DP_PRIVACY_BUDGET_H_
