// The durable accountant: persistence across reopen, multi-analyst
// isolation, exhausted-budget refusal, totals pinning, refused spends
// under injected I/O failures, concurrent-spend atomicity (the TSan
// target), and the crash-recovery property test — truncate the journal
// at EVERY byte offset and assert recovery is a valid prefix of the
// acknowledged spend history.

#include "src/dp/privacy_accountant.h"

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/env.h"
#include "src/common/journal.h"
#include "src/common/rng.h"

namespace dpkron {
namespace {

std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".dpkacct";
}

void RemoveIfPresent(const std::string& path) {
  if (GetEnv()->FileExists(path)) {
    ASSERT_TRUE(GetEnv()->RemoveFile(path).ok());
  }
}

TEST(PrivacyAccountantTest, RejectsBadTotals) {
  const std::string path = UniqueTempPath("acct_bad_totals");
  EXPECT_FALSE(PrivacyAccountant::Open(path, 0.0, 0.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Open(path, -1.0, 0.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Open(path, 1.0, 1.0).ok());
  EXPECT_FALSE(GetEnv()->FileExists(path));  // refused opens leave no file
}

TEST(PrivacyAccountantTest, SpendsSurviveReopen) {
  const std::string path = UniqueTempPath("acct_reopen");
  RemoveIfPresent(path);
  {
    auto acct = PrivacyAccountant::Open(path, 2.0, 0.0);
    ASSERT_TRUE(acct.ok()) << acct.status().ToString();
    ASSERT_TRUE(acct.value()->Spend("alice", 0.5, 0.0, "degree_seq").ok());
    ASSERT_TRUE(acct.value()->Spend("alice", 0.25, 0.0, "triangles").ok());
    ASSERT_TRUE(acct.value()->Spend("bob", 1.0, 0.0, "kronfit").ok());
    EXPECT_EQ(acct.value()->total_spends(), 3u);
  }
  auto acct = PrivacyAccountant::Open(path, 2.0, 0.0);
  ASSERT_TRUE(acct.ok()) << acct.status().ToString();
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("alice"), 0.75);
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("bob"), 1.0);
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_remaining("alice"), 1.25);
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_remaining("carol"), 2.0);
  EXPECT_EQ(acct.value()->total_spends(), 3u);
  EXPECT_EQ(acct.value()->analysts(),
            (std::vector<std::string>{"alice", "bob"}));
  // The recovered ledger keeps enforcing: alice has 1.25 left.
  EXPECT_FALSE(acct.value()->Spend("alice", 1.5, 0.0, "too much").ok());
  ASSERT_TRUE(acct.value()->Spend("alice", 1.25, 0.0, "the rest").ok());
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_remaining("alice"), 0.0);
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantTest, ExhaustedBudgetRefusesWithoutJournaling) {
  const std::string path = UniqueTempPath("acct_exhausted");
  RemoveIfPresent(path);
  auto acct = PrivacyAccountant::Open(path, 1.0, 0.0);
  ASSERT_TRUE(acct.ok());
  ASSERT_TRUE(acct.value()->Spend("a", 1.0, 0.0, "all of it").ok());
  const uint64_t size_after = GetEnv()->FileSize(path).value();
  EXPECT_EQ(acct.value()->Spend("a", 0.1, 0.0, "overdraft").code(),
            StatusCode::kFailedPrecondition);
  // A refused charge leaves no trace: same file size, same state.
  EXPECT_EQ(GetEnv()->FileSize(path).value(), size_after);
  EXPECT_EQ(acct.value()->total_spends(), 1u);
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantTest, ReopenWithDifferentTotalsRefuses) {
  const std::string path = UniqueTempPath("acct_totals_pin");
  RemoveIfPresent(path);
  { ASSERT_TRUE(PrivacyAccountant::Open(path, 2.0, 0.0).ok()); }
  const auto reopened = PrivacyAccountant::Open(path, 3.0, 0.0);
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantTest, ForeignFileRefuses) {
  const std::string path = UniqueTempPath("acct_foreign");
  RemoveIfPresent(path);
  // A valid journal, but not an accountant journal (wrong record 0).
  {
    auto writer = JournalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("not a header").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  const auto opened = PrivacyAccountant::Open(path, 1.0, 0.0);
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantTest, FailedJournalSyncRefusesSpendAndKeepsState) {
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  const std::string path = UniqueTempPath("acct_sync_fail");
  RemoveIfPresent(path);
  auto acct = PrivacyAccountant::Open(path, 2.0, 0.0);
  ASSERT_TRUE(acct.ok()) << acct.status().ToString();
  ASSERT_TRUE(acct.value()->Spend("a", 0.5, 0.0, "ok spend").ok());

  env.FailSyncs(/*after=*/0, Status::Internal("EIO"));
  EXPECT_FALSE(acct.value()->Spend("a", 0.5, 0.0, "refused spend").ok());
  env.ClearFaults();
  // Refused means not applied — and not recoverable either.
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("a"), 0.5);
  EXPECT_EQ(acct.value()->total_spends(), 1u);
  EXPECT_FALSE(acct.value()->wounded());  // tail repair succeeded

  // The accountant keeps accepting spends after the repair, and a
  // reopen sees exactly the acknowledged history.
  ASSERT_TRUE(acct.value()->Spend("a", 0.25, 0.0, "after repair").ok());
  acct.value().reset();
  auto reopened = PrivacyAccountant::Open(path, 2.0, 0.0, &env);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_DOUBLE_EQ(reopened.value()->epsilon_spent("a"), 0.75);
  EXPECT_EQ(reopened.value()->total_spends(), 2u);
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantTest, CrashLosesOnlyUnackedTail) {
  // kill -9 simulation: acknowledged spends survive DropUnsyncedData
  // because acknowledgment happens only after fsync.
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  const std::string path = UniqueTempPath("acct_crash");
  RemoveIfPresent(path);
  {
    auto acct = PrivacyAccountant::Open(path, 4.0, 0.0);
    ASSERT_TRUE(acct.ok());
    ASSERT_TRUE(acct.value()->Spend("a", 1.0, 0.0, "s1").ok());
    ASSERT_TRUE(acct.value()->Spend("b", 2.0, 0.0, "s2").ok());
  }
  env.DropUnsyncedData();
  auto acct = PrivacyAccountant::Open(path, 4.0, 0.0);
  ASSERT_TRUE(acct.ok()) << acct.status().ToString();
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("a"), 1.0);
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("b"), 2.0);
  RemoveIfPresent(path);
}

// -------------------------------------------------------------------------
// Satellite: the crash-recovery property test. Run a random spend
// history, note the acknowledged byte offset after every spend, then
// truncate a copy of the journal at EVERY byte offset and reopen. For
// each cut the recovered ledger must be exactly the longest prefix of
// acknowledged spends whose bytes survived — never a half-applied
// record, never a sum below the acknowledged prefix.
TEST(PrivacyAccountantTest, RecoveryAtEveryTruncationIsAnAckedPrefix) {
  const std::string path = UniqueTempPath("acct_property");
  RemoveIfPresent(path);
  const double kEpsilonTotal = 100.0;

  struct Ack {
    uint64_t bytes;          // journal size when this prefix was acked
    double epsilon_a;        // analyst "a" prefix sum
    double epsilon_b;        // analyst "b" prefix sum
    uint64_t spends;
  };
  std::vector<Ack> acks;

  Rng rng(20120330);
  {
    auto acct = PrivacyAccountant::Open(path, kEpsilonTotal, 0.0);
    ASSERT_TRUE(acct.ok());
    acks.push_back({GetEnv()->FileSize(path).value(), 0.0, 0.0, 0});
    double sum_a = 0.0, sum_b = 0.0;
    for (int i = 0; i < 24; ++i) {
      const bool to_a = rng.NextDouble() < 0.5;
      // Small irregular charges so every prefix sum is distinct.
      const double eps = 0.125 + 3.0 * rng.NextDouble();
      ASSERT_TRUE(acct.value()
                      ->Spend(to_a ? "a" : "b", eps, 0.0,
                              "spend_" + std::to_string(i))
                      .ok());
      (to_a ? sum_a : sum_b) += eps;
      acks.push_back({GetEnv()->FileSize(path).value(), sum_a, sum_b,
                      static_cast<uint64_t>(i + 1)});
    }
  }

  const std::string bytes = GetEnv()->ReadFileToString(path).value();
  ASSERT_EQ(bytes.size(), acks.back().bytes);
  const std::string cut_path = path + ".cut";
  for (uint64_t cut = 0; cut <= bytes.size(); ++cut) {
    RemoveIfPresent(cut_path);
    ASSERT_TRUE(WriteFileDurable(cut_path, bytes.substr(0, cut)).ok());
    auto acct = PrivacyAccountant::Open(cut_path, kEpsilonTotal, 0.0);
    ASSERT_TRUE(acct.ok()) << "cut=" << cut << ": "
                           << acct.status().ToString();
    // The expected recovery: the last acknowledged prefix at or below
    // the cut. (Cuts inside the header recover the empty ledger.)
    size_t k = 0;
    while (k + 1 < acks.size() && acks[k + 1].bytes <= cut) ++k;
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("a"), acks[k].epsilon_a)
        << "cut=" << cut;
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("b"), acks[k].epsilon_b)
        << "cut=" << cut;
    EXPECT_EQ(acct.value()->total_spends(), acks[k].spends)
        << "cut=" << cut;
  }
  RemoveIfPresent(cut_path);
  RemoveIfPresent(path);
}

// The TSan target: hammer one accountant from several threads; every
// acknowledged spend must land exactly once and the ledger must equal
// the acknowledged total, with no torn counters.
TEST(PrivacyAccountantTest, ConcurrentSpendsSerializeAtomically) {
  const std::string path = UniqueTempPath("acct_concurrent");
  RemoveIfPresent(path);
  constexpr int kThreads = 8;
  constexpr int kSpendsPerThread = 25;
  constexpr double kCharge = 0.125;
  auto acct = PrivacyAccountant::Open(
      path, kThreads * kSpendsPerThread * kCharge + 1.0, 0.0);
  ASSERT_TRUE(acct.ok());

  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSpendsPerThread; ++i) {
        const Status status =
            acct.value()->Spend("shared", kCharge, 0.0,
                                "t" + std::to_string(t) + "_" +
                                    std::to_string(i));
        if (status.ok()) acked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(acked.load(), uint64_t{kThreads * kSpendsPerThread});
  EXPECT_EQ(acct.value()->total_spends(), acked.load());
  EXPECT_NEAR(acct.value()->epsilon_spent("shared"),
              kThreads * kSpendsPerThread * kCharge, 1e-9);
  // Reopen: the journal holds exactly the acknowledged spends.
  acct.value().reset();
  auto reopened = PrivacyAccountant::Open(
      path, kThreads * kSpendsPerThread * kCharge + 1.0, 0.0);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->total_spends(),
            uint64_t{kThreads * kSpendsPerThread});
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantTest, SpendOnceDedupesByRequestIdAcrossReopen) {
  const std::string path = UniqueTempPath("acct_spend_once");
  RemoveIfPresent(path);
  {
    auto acct = PrivacyAccountant::Open(path, 2.0, 0.0);
    ASSERT_TRUE(acct.ok());
    bool deduped = true;
    ASSERT_TRUE(
        acct.value()->SpendOnce("a", 0.5, 0.0, "rel", "req-1", &deduped).ok());
    EXPECT_FALSE(deduped);
    // The blind retry acks without charging.
    ASSERT_TRUE(
        acct.value()->SpendOnce("a", 0.5, 0.0, "rel", "req-1", &deduped).ok());
    EXPECT_TRUE(deduped);
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("a"), 0.5);
    EXPECT_EQ(acct.value()->total_spends(), 1u);
    // An EMPTY request_id is never deduplicated (unkeyed spends).
    ASSERT_TRUE(acct.value()->SpendOnce("a", 0.5, 0.0, "rel", "").ok());
    ASSERT_TRUE(acct.value()->SpendOnce("a", 0.5, 0.0, "rel", "").ok());
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("a"), 1.5);
  }
  // Dedup state is durable: the retry after a restart still acks free.
  auto acct = PrivacyAccountant::Open(path, 2.0, 0.0);
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct.value()->SeenRequest("req-1"));
  bool deduped = false;
  ASSERT_TRUE(
      acct.value()->SpendOnce("a", 0.5, 0.0, "rel", "req-1", &deduped).ok());
  EXPECT_TRUE(deduped);
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("a"), 1.5);
  RemoveIfPresent(path);
}

TEST(PrivacyAccountantCompactionTest, CompactsOnOpenPreservingEverything) {
  const std::string path = UniqueTempPath("acct_compact");
  RemoveIfPresent(path);
  constexpr int kSpends = 12;
  {
    auto acct = PrivacyAccountant::Open(path, 10.0, 0.0);
    ASSERT_TRUE(acct.ok());
    for (int i = 0; i < kSpends; ++i) {
      ASSERT_TRUE(acct.value()
                      ->SpendOnce(i % 2 == 0 ? "alice" : "bob", 0.25, 0.0,
                                  "rel", "c_req" + std::to_string(i))
                      .ok());
    }
  }
  const auto full_size = GetEnv()->FileSize(path);
  ASSERT_TRUE(full_size.ok());

  // Reopen below the history length: Open compacts to one snapshot per
  // analyst + the request-id set. Nothing observable changes.
  {
    auto acct =
        PrivacyAccountant::Open(path, 10.0, 0.0, GetEnv(),
                                /*compact_threshold=*/4);
    ASSERT_TRUE(acct.ok()) << acct.status().ToString();
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("alice"), 1.5);
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("bob"), 1.5);
    EXPECT_EQ(acct.value()->total_spends(), uint64_t{kSpends});
    for (int i = 0; i < kSpends; ++i) {
      EXPECT_TRUE(acct.value()->SeenRequest("c_req" + std::to_string(i)));
    }
    // The compacted journal is a working journal: new spends append.
    ASSERT_TRUE(acct.value()->SpendOnce("alice", 0.25, 0.0, "rel", "c_new").ok());
  }
  const auto compact_size = GetEnv()->FileSize(path);
  ASSERT_TRUE(compact_size.ok());
  EXPECT_LT(compact_size.value(), full_size.value());

  // And it round-trips: a further reopen replays snapshot + tail.
  auto acct = PrivacyAccountant::Open(path, 10.0, 0.0);
  ASSERT_TRUE(acct.ok());
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("alice"), 1.75);
  EXPECT_EQ(acct.value()->total_spends(), uint64_t{kSpends + 1});
  EXPECT_TRUE(acct.value()->SeenRequest("c_req3"));
  EXPECT_TRUE(acct.value()->SeenRequest("c_new"));
  bool deduped = false;
  ASSERT_TRUE(
      acct.value()->SpendOnce("bob", 0.25, 0.0, "rel", "c_req1", &deduped).ok());
  EXPECT_TRUE(deduped);  // dedup survives compaction, not just totals
  RemoveIfPresent(path);
}

// The regression test for crash-mid-compaction: WriteFileDurable's
// failure modes (temp-write fault, rename fault, crash dropping
// unsynced bytes) must each leave a journal that still recovers every
// acknowledged spend — compaction is an optimization, never a hazard.
TEST(PrivacyAccountantCompactionTest, FailedOrTornCompactionLosesNothing) {
  FaultInjectionEnv fault_env;
  const std::string path = UniqueTempPath("acct_compact_crash");
  RemoveIfPresent(path);
  {
    auto acct = PrivacyAccountant::Open(path, 10.0, 0.0, &fault_env);
    ASSERT_TRUE(acct.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(acct.value()
                      ->SpendOnce("alice", 0.5, 0.0, "rel",
                                  "x_req" + std::to_string(i))
                      .ok());
    }
  }

  // Failure mode 1: the compaction image's sync fails — the durable
  // write aborts, the rename never happens, the old journal survives.
  fault_env.FailSyncs(0, Status::Unavailable("injected: compaction sync"));
  {
    auto acct = PrivacyAccountant::Open(path, 10.0, 0.0, &fault_env,
                                        /*compact_threshold=*/2);
    ASSERT_TRUE(acct.ok()) << acct.status().ToString();
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("alice"), 4.0);
    EXPECT_EQ(acct.value()->total_spends(), 8u);
    EXPECT_TRUE(acct.value()->SeenRequest("x_req7"));
  }
  fault_env.ClearFaults();

  // Failure mode 2: the rename itself fails after a synced temp write.
  fault_env.FailRenames(0, Status::Unavailable("injected: compaction rename"));
  {
    auto acct = PrivacyAccountant::Open(path, 10.0, 0.0, &fault_env,
                                        /*compact_threshold=*/2);
    ASSERT_TRUE(acct.ok()) << acct.status().ToString();
    EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("alice"), 4.0);
    EXPECT_EQ(acct.value()->total_spends(), 8u);
  }
  fault_env.ClearFaults();

  // Failure mode 3: the machine dies right after a SUCCESSFUL
  // compaction — unsynced bytes vanish. WriteFileDurable synced before
  // renaming, so the installed snapshot must survive whole.
  {
    auto acct = PrivacyAccountant::Open(path, 10.0, 0.0, &fault_env,
                                        /*compact_threshold=*/2);
    ASSERT_TRUE(acct.ok()) << acct.status().ToString();
  }
  fault_env.DropUnsyncedData();
  auto acct = PrivacyAccountant::Open(path, 10.0, 0.0, &fault_env);
  ASSERT_TRUE(acct.ok()) << acct.status().ToString();
  EXPECT_DOUBLE_EQ(acct.value()->epsilon_spent("alice"), 4.0);
  EXPECT_EQ(acct.value()->total_spends(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(acct.value()->SeenRequest("x_req" + std::to_string(i)));
  }
  RemoveIfPresent(path);
}

}  // namespace
}  // namespace dpkron
