#include "bench/figure_harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/datasets/registry.h"
#include "src/estimation/kronmom.h"
#include "src/kronfit/kronfit.h"

namespace dpkron::bench {
namespace {

void ParseFlags(FigureConfig* config, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--realizations=", 15) == 0) {
      config->expected_realizations =
          static_cast<uint32_t>(std::atoi(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      config->seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--epsilon=", 10) == 0) {
      config->epsilon = std::atof(argv[i] + 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    }
  }
}

void EmitStatistics(SeriesTable* hop, SeriesTable* degree, SeriesTable* scree,
                    SeriesTable* netval, SeriesTable* clustering,
                    const std::string& series, const GraphStatistics& stats) {
  for (size_t h = 0; h < stats.hop_plot.size(); ++h) {
    hop->Add(series, double(h), stats.hop_plot[h]);
  }
  for (const auto& [d, count] : stats.degree_histogram) {
    degree->Add(series, d, count);
  }
  for (size_t rank = 0; rank < stats.scree.size(); ++rank) {
    scree->Add(series, double(rank + 1), stats.scree[rank]);
  }
  // Network value plots truncate to the leading components.
  const size_t keep = std::min<size_t>(stats.network_value.size(), 1000);
  for (size_t rank = 0; rank < keep; ++rank) {
    netval->Add(series, double(rank + 1), stats.network_value[rank]);
  }
  for (const auto& [d, cc] : stats.clustering_by_degree) {
    clustering->Add(series, d, cc);
  }
}

}  // namespace

int RunFigureBench(FigureConfig config, int argc, char** argv) {
  ParseFlags(&config, argc, argv);
  Rng rng(config.seed);

  std::printf("# %s: dataset=%s epsilon=%g delta=%g realizations=%u\n",
              config.experiment.c_str(), config.dataset.c_str(),
              config.epsilon, config.delta, config.expected_realizations);

  const Graph original = MakeDataset(config.dataset, rng);
  const uint32_t k = ChooseKroneckerOrder(original.NumNodes());

  SummaryBlock dataset_summary(config.experiment + " dataset");
  dataset_summary.Add("nodes", double(original.NumNodes()));
  dataset_summary.Add("edges", double(original.NumEdges()));
  dataset_summary.Add("kronecker order k", double(k));
  dataset_summary.Print();

  // --- Fit the three estimators -----------------------------------------
  const KronMomResult kronmom = FitKronMom(original);

  KronFitOptions kf_options;
  kf_options.iterations = config.kronfit_iterations;
  Rng kronfit_rng = rng.Split();
  const KronFitResult kronfit = FitKronFit(original, kronfit_rng, kf_options);

  Rng private_rng = rng.Split();
  PrivacyBudget budget(config.epsilon, config.delta);
  const auto private_fit = EstimatePrivateSkg(
      original, config.epsilon, config.delta, budget, private_rng);
  if (!private_fit.ok()) {
    std::fprintf(stderr, "private estimation failed: %s\n",
                 private_fit.status().ToString().c_str());
    return 1;
  }

  SummaryBlock params(config.experiment + " fitted initiators (a b c)");
  params.Add("KronFit", kronfit.theta.ToString());
  params.Add("KronMom", kronmom.theta.ToString());
  params.Add("Private", private_fit.value().theta.ToString());
  params.Print();
  std::printf("%s", budget.ToString().c_str());

  // --- Statistics: original + one realization per estimator -------------
  SeriesTable hop(config.experiment + "/hop_plot");
  SeriesTable degree(config.experiment + "/degree_distribution");
  SeriesTable scree(config.experiment + "/scree_plot");
  SeriesTable netval(config.experiment + "/network_value");
  SeriesTable clustering(config.experiment + "/clustering");

  Rng stats_rng = rng.Split();
  EmitStatistics(&hop, &degree, &scree, &netval, &clustering, "original",
                 ComputeStatistics(original, stats_rng));

  struct Estimate {
    const char* name;
    Initiator2 theta;
  };
  const Estimate estimates[] = {
      {"kronfit", kronfit.theta},
      {"kronmom", kronmom.theta},
      {"private", private_fit.value().theta},
  };
  for (const Estimate& estimate : estimates) {
    const Graph sample = SampleSyntheticGraph(
        estimate.theta, k, stats_rng,
        SkgSampleMethod::kClassSkip);
    EmitStatistics(&hop, &degree, &scree, &netval, &clustering, estimate.name,
                   ComputeStatistics(sample, stats_rng));
  }

  // --- "Expected" series: averages over R realizations -------------------
  if (config.expected_realizations > 0) {
    for (const Estimate& estimate : estimates) {
      const GraphStatistics mean =
          ExpectedStatistics(estimate.theta, k, config.expected_realizations,
                             stats_rng);
      EmitStatistics(&hop, &degree, &scree, &netval, &clustering,
                     std::string("expected-") + estimate.name, mean);
    }
  }

  hop.Print();
  degree.Print();
  scree.Print();
  netval.Print();
  clustering.Print();
  return 0;
}

}  // namespace dpkron::bench
