// DiskCache — the persistent tier under the process-wide StatCache.
//
// The in-memory memo dies with the process; this layer keeps the
// serializable domains (degree sequences, triangle counts, sensitivity
// profiles, KronFit/KronMom fits with their saved Rng::State, features,
// statistics panels, expected tables) on disk so repeated CLI runs, CI
// jobs, dpkrond restarts and the shards of a multi-process sweep all
// warm-start from the same store.
//
// Layout: one file per entry under a cache root,
//
//   <root>/<domain>-<16-hex-key>.dpkc
//
// where the key is exactly the in-memory memo's 64-bit (domain, CacheKey)
// digest — a content fingerprint of every input the computation is a
// function of. Invalidation therefore needs no mtime or version stamps:
// a changed input IS a different key, and the old entry simply stops
// being addressed.
//
// Entry format: one journal-framed record ([u32 len][u64 fnv1a_words]
// [payload] — the .dpkb/journal framing) whose payload is
//
//   RecordBuilder: U64 kDiskCacheMagic · U32 format version ·
//                  Str domain · U64 key · Str value bytes
//
// so a reader verifies length, checksum, magic, version and that the
// entry really is the (domain, key) the filename claims before a single
// value byte is trusted. Writes go through WriteFileDurable (unique temp
// → fsync → rename → dir fsync), so a reader can never observe a torn
// entry under crash-free operation, and ANY validation failure — torn
// tail after a crash, bit rot, a future format — degrades to a clean
// miss + recompute + rewrite, never a wrong hit (tests fault-inject all
// of these paths).
//
// Concurrency: entries are immutable once written and the rename is
// atomic, so concurrent readers and writers need no coordination for
// correctness — two processes racing on a cold key would merely both
// compute the same bytes. DiskEntryClaim adds the sidecar-cache's
// advisory O_EXCL lock protocol on top so they usually don't: the loser
// polls for the winner's entry and adopts it; a lock older than
// Options::lock_stale_ms is presumed orphaned and broken. Every failure
// mode of the lock protocol degrades to an uncoordinated (duplicated,
// never wrong) compute.

#ifndef DPKRON_COMMON_DISK_CACHE_H_
#define DPKRON_COMMON_DISK_CACHE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/journal.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace dpkron {

class DiskCache {
 public:
  struct Options {
    // Advisory-lock protocol for cold-key races (see DiskEntryClaim):
    // a loser polls every lock_poll_ms for the winner's entry; a lock
    // older than lock_stale_ms is presumed orphaned and broken.
    int64_t lock_poll_ms = 20;
    int64_t lock_stale_ms = 10000;
    // Cap on the total bytes of .dpkc entries under the root
    // (0 = unbounded). Enforced after each Store: oldest-mtime entries
    // are unlinked until the cache fits. Entries with a live ".lock"
    // sidecar (an in-flight DiskEntryClaim) and the entry just stored
    // are pinned, so the cache may transiently exceed the budget by the
    // pinned bytes. Eviction is best-effort, like every other disk-tier
    // failure mode: an unevictable cache is merely larger than asked,
    // never wrong — entries are content-addressed, so deleting any
    // subset only converts future hits into recomputes.
    uint64_t byte_budget = 0;
  };

  // Opens (creating if needed) a cache rooted at `root`. Fails only if
  // the root cannot be created — a cache with unreadable entries still
  // opens and serves misses.
  static Result<std::unique_ptr<DiskCache>> Open(const std::string& root,
                                                 const Options& options);
  static Result<std::unique_ptr<DiskCache>> Open(const std::string& root) {
    return Open(root, Options());
  }

  const std::string& root() const { return root_; }
  const Options& options() const { return options_; }

  // <root>/<domain>-<16-hex-key>.dpkc
  std::string EntryPath(const char* domain, uint64_t key) const;

  // The validated value bytes for (domain, key). kNotFound on a miss; a
  // present-but-invalid entry (torn, corrupt, foreign version, filename
  // collision) is also kNotFound — after a best-effort unlink so the
  // rewrite is not blocked by the corpse.
  Result<std::string> Load(const char* domain, uint64_t key) const;

  // Durably installs `value_bytes` for (domain, key), then enforces
  // Options::byte_budget. Best-effort in spirit: callers treat failure
  // as "the next process recomputes".
  Status Store(const char* domain, uint64_t key,
               std::string_view value_bytes) const;

  // Total bytes of .dpkc entries currently under the root (a live
  // directory scan; used by tests and the budget enforcement).
  uint64_t EntryBytes() const;

 private:
  // Oldest-mtime-first eviction down to byte_budget, sparing locked
  // entries and `keep_path` (the entry whose Store triggered the pass).
  void EnforceByteBudget(const std::string& keep_path) const;

  DiskCache(std::string root, const Options& options)
      : root_(std::move(root)), options_(options) {}

  const std::string root_;
  const Options options_;
};

// The read-or-compute protocol for one (domain, key): try the entry,
// and on a miss coordinate with other processes via the advisory lock so
// one of them computes while the rest adopt its result.
//
//   DiskEntryClaim claim(cache, domain, key);   // cache may be null
//   std::string bytes;
//   if (claim.TryLoad(&bytes)) { ...decode bytes... }
//   else { ...compute...; claim.Store(encoded); }
//
// With a null cache TryLoad is an immediate miss and Store a no-op, so
// call sites need no disk-attached branch. The destructor releases the
// lock if Store was never reached (compute failed / value not
// serializable after all).
class DiskEntryClaim {
 public:
  DiskEntryClaim(const DiskCache* cache, const char* domain, uint64_t key);
  ~DiskEntryClaim();

  DiskEntryClaim(const DiskEntryClaim&) = delete;
  DiskEntryClaim& operator=(const DiskEntryClaim&) = delete;

  // True + the validated value bytes on a hit. On a cold key this is
  // where the cross-process wait happens: if another process holds the
  // entry lock, poll until its entry appears (adopt it), the lock is
  // released without an entry (claim it and report a miss), or the lock
  // goes stale (break it and report a miss).
  bool TryLoad(std::string* value_bytes);

  // Persists the computed value and releases the lock. Failures degrade
  // to a warning on stderr; the in-memory value is already correct.
  void Store(std::string_view value_bytes);

 private:
  void ReleaseLock();

  const DiskCache* const cache_;  // null = disk tier not attached
  const char* const domain_;
  const uint64_t key_;
  std::string lock_path_;
  bool lock_held_ = false;
};

// ------------------------------------------------- value codec helpers
//
// Call sites serialize their cached values with RecordBuilder /
// RecordParser (journal.h); these cover the one recurring shape — flat
// POD vectors (degrees, triangle counts, frontier pairs, panel series) —
// as a single length-checked byte field.

// "POD" here admits std::pair (not trivially copyable only because its
// assignment operator is user-provided): trivially copy-constructible +
// trivially destructible is what memcpy round-tripping actually needs.
template <typename T>
inline constexpr bool kIsPodVectorElement =
    std::is_trivially_copy_constructible_v<T> &&
    std::is_trivially_destructible_v<T>;

template <typename T>
void EncodePodVector(RecordBuilder& rec, const std::vector<T>& values) {
  static_assert(kIsPodVectorElement<T>);
  rec.Str(std::string_view(reinterpret_cast<const char*>(values.data()),
                           values.size() * sizeof(T)));
}

template <typename T>
bool DecodePodVector(RecordParser& rec, std::vector<T>* values) {
  static_assert(kIsPodVectorElement<T>);
  const std::string bytes = rec.Str();
  if (!rec.ok() || bytes.size() % sizeof(T) != 0) return false;
  values->resize(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(values->data(), bytes.data(), bytes.size());
  return true;
}

// The Rng::State a randomized computation's entry carries so a hit can
// replay the stream advance (field-wise, not raw struct bytes — padding
// must never reach the checksummed file).
inline void EncodeRngState(RecordBuilder& rec, const Rng::State& state) {
  for (uint64_t word : state.s) rec.U64(word);
  rec.U32(state.have_gaussian ? 1 : 0);
  rec.Double(state.spare_gaussian);
}

inline bool DecodeRngState(RecordParser& rec, Rng::State* state) {
  for (uint64_t& word : state->s) word = rec.U64();
  state->have_gaussian = rec.U32() != 0;
  state->spare_gaussian = rec.Double();
  return rec.ok();
}

}  // namespace dpkron

#endif  // DPKRON_COMMON_DISK_CACHE_H_
