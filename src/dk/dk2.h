// dK-2 series extraction, privatization and generation — a compact
// implementation of the approach of Sala, Zhao, Wilson, Zheng & Zhao,
// "Sharing Graphs using Differentially Private Graph Models" (IMC'11),
// which the paper names as the closest related work and the comparison it
// plans to undertake (§5). This module provides that comparison.
//
// The dK-2 series (joint degree distribution, JDD) counts, for every
// unordered degree pair {x, y}, the number of edges whose endpoints have
// degrees x and y. Releasing a noisy dK-2 and re-generating a graph from
// it preserves degree structure and degree-degree correlations by
// construction — the trade-off against the SKG route being compactness
// (O(d_max²) released values vs 3) and generator feasibility slack.
//
// Sensitivity: flipping one edge {u, v} changes the cell of that edge by
// one AND shifts every edge incident to u or v to an adjacent-degree
// cell, so the L1 sensitivity of the series is 4·d_max + 1 (Sala et al.,
// §4.2). d_max is treated as public side information (a cap supplied by
// the data custodian), exactly as in the original system.

#ifndef DPKRON_DK_DK2_H_
#define DPKRON_DK_DK2_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dp/privacy_budget.h"
#include "src/graph/graph_view.h"

namespace dpkron {

// The dK-2 series. Keys are degree pairs (x ≤ y); values are edge counts
// (doubles so one type serves exact and privatized tables).
class Dk2Table {
 public:
  using DegreePair = std::pair<uint32_t, uint32_t>;

  Dk2Table() = default;

  // Exact extraction from a graph.
  static Dk2Table FromGraph(GraphView graph);

  double Count(uint32_t x, uint32_t y) const;
  void Set(uint32_t x, uint32_t y, double count);

  // Total edge mass Σ counts.
  double TotalEdges() const;

  // Implied number of degree-d nodes: (Σ_y m(d,y) + m(d,d)) / d.
  // Fractional for noisy tables.
  double ImpliedNodeCount(uint32_t d) const;

  const std::map<DegreePair, double>& cells() const { return cells_; }
  uint32_t max_degree() const { return max_degree_; }

  // L1 distance between two tables over the union of their cells.
  static double L1Distance(const Dk2Table& a, const Dk2Table& b);

 private:
  std::map<DegreePair, double> cells_;
  uint32_t max_degree_ = 0;
};

struct Dk2PrivatizeOptions {
  // Public cap on d_max used for the sensitivity 4·cap + 1. Cells with
  // degrees above the cap are dropped (their edges are not represented) —
  // the custodian chooses the cap as public knowledge, per Sala et al.
  uint32_t degree_cap = 0;  // 0 = use the table's own max degree
  // Post-processing: zero out negative noisy counts.
  bool clamp_nonnegative = true;
  // Post-processing: zero cells below threshold_factor·scale·ln(#cells).
  // Without this, the ~cap²/2 clamped noise draws contribute a spurious
  // edge mass that dwarfs the real graph at small ε (this blowup is the
  // dK-2 approach's fundamental ε cost relative to the 3-parameter SKG
  // release, and the reason Sala et al. evaluate at large ε / engineer
  // their partitioned-noise variant).
  bool threshold_sparsify = true;
  double threshold_factor = 1.0;
};

// (ε, 0)-differentially private dK-2 series (Laplace mechanism on every
// cell of the capped degree grid — including zero cells, which is what
// makes the release private). Charges `budget`.
Result<Dk2Table> PrivatizeDk2(const Dk2Table& exact, double epsilon,
                              PrivacyBudget& budget, Rng& rng,
                              const Dk2PrivatizeOptions& options = {});

// Generates a graph approximately realizing `table` (2K-generator:
// degree-class stub matching with best-effort simplicity). Rounds cell
// counts to integers; infeasible leftovers are dropped. The result's
// JDD matches the (rounded) table closely but not exactly — standard for
// 2K construction.
Graph SampleDk2Graph(const Dk2Table& table, Rng& rng);

// End-to-end Sala-style release: extract → privatize(ε) → generate.
Result<Graph> PrivateDk2Release(GraphView graph, double epsilon,
                                PrivacyBudget& budget, Rng& rng,
                                const Dk2PrivatizeOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_DK_DK2_H_
