#include "src/dp/privacy_accountant.h"

#include <cstring>
#include <utility>

namespace dpkron {
namespace {

// Record 0 of every accountant journal: identifies the format and pins
// the per-analyst totals the ledger was opened with.
constexpr char kHeaderMagic[8] = {'D', 'P', 'K', 'A', 'C', 'C', 'T', '1'};

std::string HeaderRecord(double epsilon_total, double delta_total) {
  return RecordBuilder()
      .Str(std::string_view(kHeaderMagic, sizeof(kHeaderMagic)))
      .Double(epsilon_total)
      .Double(delta_total)
      .str();
}

struct SpendRecord {
  std::string analyst;
  std::string label;
  double epsilon = 0.0;
  double delta = 0.0;
};

std::string EncodeSpend(const SpendRecord& spend) {
  return RecordBuilder()
      .Str(spend.analyst)
      .Str(spend.label)
      .Double(spend.epsilon)
      .Double(spend.delta)
      .str();
}

bool DecodeSpend(std::string_view record, SpendRecord* spend) {
  RecordParser parser(record);
  spend->analyst = parser.Str();
  spend->label = parser.Str();
  spend->epsilon = parser.Double();
  spend->delta = parser.Double();
  return parser.done();
}

}  // namespace

Result<std::unique_ptr<PrivacyAccountant>> PrivacyAccountant::Open(
    const std::string& path, double epsilon_total, double delta_total,
    Env* env) {
  if (!(epsilon_total > 0.0) || delta_total < 0.0 || delta_total >= 1.0) {
    return Status::InvalidArgument("accountant totals out of range");
  }

  JournalRecovery recovery;
  auto read = ReadJournal(path, env);
  if (read.ok()) {
    recovery = std::move(read).value();
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  }

  // Validate the header before taking the journal over. An empty
  // recovery (fresh file, or a journal whose very first append tore)
  // restarts from scratch — nothing was ever acknowledged from it.
  if (!recovery.records.empty()) {
    RecordParser header(recovery.records.front());
    const std::string magic = header.Str();
    const double recorded_epsilon = header.Double();
    const double recorded_delta = header.Double();
    if (!header.done() ||
        magic != std::string_view(kHeaderMagic, sizeof(kHeaderMagic))) {
      return Status::InvalidArgument(path +
                                     ": not a privacy-accountant journal");
    }
    if (recorded_epsilon != epsilon_total || recorded_delta != delta_total) {
      return Status::InvalidArgument(
          path + ": journal totals differ from requested totals");
    }
  }

  auto writer = JournalWriter::Open(path, recovery.valid_bytes, env);
  if (!writer.ok()) return writer.status();

  std::unique_ptr<PrivacyAccountant> accountant(new PrivacyAccountant(
      epsilon_total, delta_total, std::move(writer).value()));

  if (recovery.records.empty()) {
    const Status status =
        accountant->journal_->Append(HeaderRecord(epsilon_total, delta_total));
    if (!status.ok()) return status;
  } else {
    // Replay: apply every recovered spend. These all passed CheckSpend
    // before being journaled, so a replay that does not fit can only
    // mean a foreign file that happened to parse — refuse it.
    for (size_t i = 1; i < recovery.records.size(); ++i) {
      SpendRecord spend;
      if (!DecodeSpend(recovery.records[i], &spend)) {
        return Status::InvalidArgument(path + ": malformed spend record " +
                                       std::to_string(i));
      }
      const Status status =
          accountant->BudgetLocked(spend.analyst)
              .Spend(spend.epsilon, spend.delta, spend.label);
      if (!status.ok()) {
        return Status::InvalidArgument(path + ": journal replay refused: " +
                                       status.ToString());
      }
      ++accountant->total_spends_;
    }
  }
  return accountant;
}

PrivacyBudget& PrivacyAccountant::BudgetLocked(const std::string& analyst) {
  auto it = budgets_.find(analyst);
  if (it == budgets_.end()) {
    it = budgets_
             .emplace(analyst, PrivacyBudget(epsilon_total_, delta_total_))
             .first;
  }
  return it->second;
}

Status PrivacyAccountant::Spend(const std::string& analyst, double epsilon,
                                double delta, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  PrivacyBudget& budget = BudgetLocked(analyst);
  // Validate first: a refused charge must leave no trace in the journal
  // (recovery would otherwise re-apply a spend that never happened).
  const Status check = budget.CheckSpend(epsilon, delta, label);
  if (!check.ok()) return check;
  // Durability before acknowledgment: the record hits stable storage
  // (or the spend is refused) before the in-memory state moves.
  const Status journaled =
      journal_->Append(EncodeSpend({analyst, label, epsilon, delta}));
  if (!journaled.ok()) return journaled;
  const Status applied = budget.Spend(epsilon, delta, label);
  DPKRON_CHECK_MSG(applied.ok(), "checked spend must apply");
  ++total_spends_;
  return Status::Ok();
}

double PrivacyAccountant::epsilon_spent(const std::string& analyst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  return it == budgets_.end() ? 0.0 : it->second.epsilon_spent();
}

double PrivacyAccountant::delta_spent(const std::string& analyst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  return it == budgets_.end() ? 0.0 : it->second.delta_spent();
}

double PrivacyAccountant::epsilon_remaining(const std::string& analyst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  return it == budgets_.end() ? epsilon_total_
                              : it->second.epsilon_remaining();
}

uint64_t PrivacyAccountant::total_spends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_spends_;
}

std::vector<std::string> PrivacyAccountant::analysts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(budgets_.size());
  for (const auto& [name, budget] : budgets_) names.push_back(name);
  return names;
}

bool PrivacyAccountant::wounded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_->wounded();
}

std::string PrivacyAccountant::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "PrivacyAccountant (" + std::to_string(budgets_.size()) +
                    " analysts)\n";
  for (const auto& [name, budget] : budgets_) {
    out += "analyst " + name + ": " + budget.ToString();
  }
  return out;
}

}  // namespace dpkron
