#include "src/core/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/journal.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/common/stat_cache.h"

namespace dpkron {
namespace {

// ------------------------------------------------ checkpoint journal
//
// Record 0: magic + a fingerprint of the expanded matrix + cell count,
// so a checkpoint can only resume the sweep it was written by. Then one
// record per completed cell, in COMPLETION order (cells finish out of
// matrix order under the pool); the cell index is what merges them back
// into matrix order on resume.

constexpr char kCheckpointMagic[8] = {'D', 'P', 'K', 'S', 'W', 'P', 'C', '1'};

void MixOptionalU64(CacheKey& key, bool present, uint64_t value) {
  key.Mix(present ? 1 : 0).Mix(present ? value : 0);
}

void MixString(CacheKey& key, const std::string& value) {
  key.MixBytes(value.data(), value.size());
}

// Everything the run matrix is a function of. Two specs with the same
// fingerprint expand to cell-for-cell identical matrices.
uint64_t MatrixFingerprint(const SweepSpec& spec) {
  CacheKey key;
  key.Mix(spec.scenarios.size());
  for (const std::string& name : spec.scenarios) MixString(key, name);
  key.Mix(spec.datasets.size());
  for (const std::string& ref : spec.datasets) MixString(key, ref);
  key.Mix(spec.epsilons.size());
  for (double epsilon : spec.epsilons) key.MixDouble(epsilon);
  key.Mix(spec.seeds);
  const ScenarioOverrides& base = spec.base;
  MixOptionalU64(key, base.seed.has_value(), base.seed.value_or(0));
  key.Mix(base.epsilon.has_value() ? 1 : 0);
  key.MixDouble(base.epsilon.value_or(0.0));
  MixOptionalU64(key, base.realizations.has_value(),
                 base.realizations.value_or(0));
  MixOptionalU64(key, base.trials.has_value(), base.trials.value_or(0));
  MixOptionalU64(key, base.kronfit_iterations.has_value(),
                 base.kronfit_iterations.value_or(0));
  key.Mix(base.sweep_epsilons.has_value() ? 1 : 0);
  if (base.sweep_epsilons) {
    key.Mix(base.sweep_epsilons->size());
    for (double epsilon : *base.sweep_epsilons) key.MixDouble(epsilon);
  }
  key.Mix(base.smoke ? 1 : 0);
  key.Mix(base.dataset.has_value() ? 1 : 0);
  MixString(key, base.dataset.value_or(""));
  key.Mix(base.dataset_cache ? 1 : 0);
  return key.digest();
}

std::string CheckpointHeader(uint64_t fingerprint, uint64_t num_cells) {
  return RecordBuilder()
      .Str(std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic)))
      .U64(fingerprint)
      .U64(num_cells)
      .str();
}

std::string EncodeCell(uint64_t index, const SweepRun& run,
                       const std::string& run_json) {
  return RecordBuilder()
      .U64(index)
      .U32(static_cast<uint32_t>(run.status.code()))
      .Str(run.status.message())
      .Double(run.epsilon)
      .U64(run.seed)
      .U32(run.seed_index)
      .Str(run.scenario)
      .Str(run.dataset)
      .Str(run_json)
      .str();
}

// The checkpoint state a resumed sweep starts from.
struct CheckpointState {
  // Per matrix index: the recorded cell, or empty run_json = pending.
  struct Cell {
    bool complete = false;
    Status status;
    double epsilon = 0.0;
    std::string run_json;
  };
  std::vector<Cell> cells;
  uint64_t valid_bytes = 0;  // append offset for the journal writer
  bool has_header = false;
};

Result<CheckpointState> LoadCheckpoint(const std::string& path,
                                       uint64_t fingerprint,
                                       size_t num_cells) {
  CheckpointState state;
  state.cells.resize(num_cells);
  auto read = ReadJournal(path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) return state;  // fresh
    return read.status();
  }
  const JournalRecovery& recovery = read.value();
  state.valid_bytes = recovery.valid_bytes;
  if (recovery.records.empty()) return state;

  RecordParser header(recovery.records.front());
  const std::string magic = header.Str();
  const uint64_t recorded_fingerprint = header.U64();
  const uint64_t recorded_cells = header.U64();
  if (!header.done() ||
      magic != std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic))) {
    return Status::InvalidArgument(path + ": not a sweep checkpoint");
  }
  if (recorded_fingerprint != fingerprint || recorded_cells != num_cells) {
    return Status::InvalidArgument(
        path + ": checkpoint was written by a different sweep spec "
               "(refusing to merge foreign cells)");
  }
  state.has_header = true;
  for (size_t i = 1; i < recovery.records.size(); ++i) {
    RecordParser parser(recovery.records[i]);
    const uint64_t index = parser.U64();
    const StatusCode code = static_cast<StatusCode>(parser.U32());
    const std::string message = parser.Str();
    const double epsilon = parser.Double();
    parser.U64();  // seed — re-derived from the matrix
    parser.U32();  // seed_index
    parser.Str();  // scenario
    parser.Str();  // dataset
    std::string run_json = parser.Str();
    if (!parser.done() || index >= num_cells) {
      return Status::InvalidArgument(path + ": malformed checkpoint cell " +
                                     std::to_string(i));
    }
    CheckpointState::Cell& cell = state.cells[index];
    cell.complete = true;
    cell.status = Status(code, message);
    cell.epsilon = epsilon;
    cell.run_json = std::move(run_json);
  }
  return state;
}

// The per-run JSON fragment with wall time zeroed — the only
// non-deterministic field a run document carries, and meaningless
// across the process boundary a checkpoint exists to survive.
std::string StableRunJson(ScenarioOutput& output) {
  output.set_elapsed_seconds(0.0);
  JsonWriter json;
  output.AppendRunJson(json);
  return json.str();
}

struct RunPlan {
  const ScenarioSpec* scenario;
  ScenarioOverrides overrides;
};

// Validates the axes and expands the matrix. Axis order is fixed —
// scenario, dataset, ε, seed — and the runs vector IS the aggregation
// order: chunk i of the parallel section writes runs[i] and nothing
// else, so the document never depends on completion order. RunSweep and
// MergeSweepShards expand identically, which is what makes a merged
// document a function of the same matrix a single process executes.
Status ExpandMatrix(const SweepSpec& spec, std::vector<RunPlan>* plans,
                    std::vector<SweepRun>* runs) {
  if (spec.scenarios.empty()) {
    return Status::InvalidArgument("sweep needs at least one scenario");
  }
  if (spec.seeds == 0) {
    return Status::InvalidArgument("sweep needs at least one seed");
  }
  std::vector<const ScenarioSpec*> scenario_specs;
  for (const std::string& name : spec.scenarios) {
    const ScenarioSpec* scenario = FindScenario(name);
    if (scenario == nullptr) {
      return Status::NotFound("unknown scenario in sweep: " + name);
    }
    scenario_specs.push_back(scenario);
  }
  for (const ScenarioSpec* scenario : scenario_specs) {
    const uint64_t base_seed =
        spec.base.seed ? *spec.base.seed : scenario->defaults.seed;
    const std::vector<uint64_t> seeds = SweepSeeds(base_seed, spec.seeds);
    // Collapsed single-entry axes: one pass with the base override left
    // as-is (unset = the scenario's own default).
    const size_t num_datasets = spec.datasets.empty() ? 1 : spec.datasets.size();
    const size_t num_epsilons = spec.epsilons.empty() ? 1 : spec.epsilons.size();
    for (size_t d = 0; d < num_datasets; ++d) {
      for (size_t e = 0; e < num_epsilons; ++e) {
        for (uint32_t j = 0; j < spec.seeds; ++j) {
          RunPlan plan{scenario, spec.base};
          if (!spec.datasets.empty()) plan.overrides.dataset = spec.datasets[d];
          if (!spec.epsilons.empty()) plan.overrides.epsilon = spec.epsilons[e];
          plan.overrides.seed = seeds[j];

          SweepRun run;
          run.scenario = scenario->name;
          run.dataset = plan.overrides.dataset ? *plan.overrides.dataset : "";
          run.seed = seeds[j];
          run.seed_index = j;
          runs->push_back(std::move(run));
          plans->push_back(std::move(plan));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint64_t> SweepSeeds(uint64_t base_seed, uint32_t count) {
  std::vector<uint64_t> seeds;
  seeds.reserve(count);
  if (count == 0) return seeds;
  // Index 0 is the base itself: a 1-seed sweep is the plain run. Later
  // indices take the first output of independent Split streams, so the
  // axis inherits the stream-decorrelation properties of Rng::Split.
  seeds.push_back(base_seed);
  Rng root(base_seed);
  std::vector<Rng> streams = SplitRngStreams(root, count);
  for (uint32_t j = 1; j < count; ++j) seeds.push_back(streams[j].NextU64());
  return seeds;
}

Result<SweepResult> RunSweep(const SweepSpec& spec) {
  if (spec.max_attempts == 0) {
    return Status::InvalidArgument("sweep needs max_attempts >= 1");
  }
  if (spec.resume && spec.checkpoint_path.empty()) {
    return Status::InvalidArgument("resume requires a checkpoint path");
  }
  if (spec.shards == 0) {
    return Status::InvalidArgument("sweep needs shards >= 1");
  }
  if (spec.shard_id >= spec.shards) {
    return Status::InvalidArgument(
        "sweep shard id " + std::to_string(spec.shard_id) +
        " out of range for " + std::to_string(spec.shards) + " shards");
  }
  if (spec.shards > 1 && spec.checkpoint_path.empty()) {
    // The per-shard journal IS the shard's result (MergeSweepShards
    // reads nothing else); a worker without one would compute into the
    // void.
    return Status::InvalidArgument(
        "sharded sweep requires a checkpoint path (the shard's result "
        "journal)");
  }

  SweepResult result;
  std::vector<RunPlan> plans;
  const Status expanded = ExpandMatrix(spec, &plans, &result.runs);
  if (!expanded.ok()) return expanded;

  // ------------------------------------------------ checkpoint recovery
  // With a checkpoint: bind (or validate) the journal against this
  // matrix, mark recovered cells complete, and open the journal for
  // appending new completions. Checkpoint I/O failures AFTER this point
  // degrade to warnings (a sweep with a broken checkpoint still
  // computes); failures HERE are refusals — silently ignoring an
  // unreadable checkpoint on --resume would re-run and re-bill cells
  // the user believes are done.
  const bool checkpointing = !spec.checkpoint_path.empty();
  result.stable_document = checkpointing;
  std::unique_ptr<JournalWriter> checkpoint;
  std::mutex checkpoint_mu;
  if (checkpointing) {
    const uint64_t fingerprint = MatrixFingerprint(spec);
    CheckpointState state;
    if (spec.resume) {
      auto loaded =
          LoadCheckpoint(spec.checkpoint_path, fingerprint, plans.size());
      if (!loaded.ok()) return loaded.status();
      state = std::move(loaded).value();
    }
    // Not resuming (or fresh file): Open() at offset 0 truncates any
    // previous content, so a stale checkpoint can't leak old cells.
    auto writer = JournalWriter::Open(spec.checkpoint_path, state.valid_bytes);
    if (!writer.ok()) return writer.status();
    checkpoint = std::move(writer).value();
    if (!state.has_header) {
      const Status status =
          checkpoint->Append(CheckpointHeader(fingerprint, plans.size()));
      if (!status.ok()) return status;
    }
    for (size_t i = 0; i < state.cells.size(); ++i) {
      CheckpointState::Cell& cell = state.cells[i];
      if (!cell.complete) continue;
      SweepRun& run = result.runs[i];
      run.status = cell.status;
      run.epsilon = cell.epsilon;
      run.attempts = 0;  // restored, not executed
      run.checkpointed_run_json = std::move(cell.run_json);
      ++result.resumed_runs;
    }
  }

  // -------------------------------------------------------- execution
  // Runs fan across the shared pool, one per chunk; nested ParallelFor
  // calls inside scenario bodies degrade to serial per the parallel.h
  // contract. The StatCache turns the matrix's redundancy (same graph
  // under many ε/seeds) into hits; the caller's enabled-state is
  // restored afterwards (counters stay readable either way), so a
  // library caller keeps the disabled-by-default contract.
  StatCache& cache = StatCache::Instance();
  const bool cache_was_enabled = cache.enabled();
  const auto counters_before = cache.DomainCounters();
  cache.set_enabled(true);
  const auto start = std::chrono::steady_clock::now();
  auto execute = [&](size_t i) {
    SweepRun& run = result.runs[i];
    if (!run.checkpointed_run_json.empty()) return;  // restored cell
    if (spec.shards > 1 && i % spec.shards != spec.shard_id) {
      // Another worker's cell. The partition is a pure function of the
      // matrix index, so the fleet covers every cell exactly once with
      // zero claim traffic; cross-shard amortization happens below, in
      // the StatCache disk tier, not here.
      run.shard_skipped = true;
      run.attempts = 0;
      return;
    }
    // Text output suppressed: concurrent runs must not interleave on
    // stdout, and every row lands in the JSON document anyway. The
    // ScenarioOutput is built here (not during expansion) so its
    // construction cost is also off the serial path.
    for (uint32_t attempt = 1;; ++attempt) {
      run.output = ScenarioOutput(run.scenario, /*text_out=*/nullptr);
      run.status =
          RunScenario(*plans[i].scenario, plans[i].overrides, run.output);
      run.epsilon = run.output.params().epsilon;
      run.attempts = attempt;
      // Retry ONLY transient failures (kUnavailable). In particular
      // kResourceExhausted — full disk, exhausted privacy budget — is
      // terminal for this cell: re-running cannot create space or
      // budget, it just burns attempts.
      if (run.status.ok() || !IsRetryableStatusCode(run.status.code()) ||
          attempt >= spec.max_attempts) {
        break;
      }
      // Deterministic exponential backoff — 10, 20, 40, ... ms, capped.
      // The schedule depends only on the attempt number, never on wall
      // time or other cells, so retried sweeps stay reproducible.
      const uint64_t backoff_ms =
          std::min<uint64_t>(10ull << (attempt - 1), 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    if (checkpoint != nullptr) {
      // A cell still UNAVAILABLE after its retry budget is NOT
      // checkpointed: the failure is by definition transient, and a
      // --resume is exactly the retry that should re-attempt it.
      if (IsRetryableStatusCode(run.status.code())) return;
      const std::string run_json = StableRunJson(run.output);
      std::lock_guard<std::mutex> lock(checkpoint_mu);
      const Status journaled =
          checkpoint->Append(EncodeCell(i, run, run_json));
      if (!journaled.ok()) {
        std::fprintf(stderr,
                     "# warning: sweep checkpoint append failed (%s); "
                     "this cell will re-run on --resume\n",
                     journaled.ToString().c_str());
      }
    }
  };
  if (plans.size() == 1) {
    // A single cell gets no cross-run concurrency from the pool, and
    // entering a parallel region would serialize the scenario's own
    // nested ParallelFor kernels — run it directly so a 1-cell sweep is
    // never slower than the standalone --scenario invocation.
    execute(0);
  } else {
    ParallelForChunks(plans.size(), 1, [&](const ParallelChunk& chunk) {
      for (size_t i = chunk.begin; i < chunk.end; ++i) execute(i);
    });
  }
  if (checkpoint != nullptr) {
    const Status closed = checkpoint->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "# warning: sweep checkpoint close failed (%s)\n",
                   closed.ToString().c_str());
    }
    // Stable-document invariant: no freshly-executed cell keeps a wall
    // time (cells that went through StableRunJson are already zeroed;
    // this also covers retry-exhausted UNAVAILABLE cells, which skip
    // the checkpoint).
    for (SweepRun& run : result.runs) {
      if (run.checkpointed_run_json.empty()) {
        run.output.set_elapsed_seconds(0.0);
      }
    }
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cache.set_enabled(cache_was_enabled);
  result.cache_enabled = true;
  // Per-domain counter deltas: what THIS sweep hit and missed,
  // independent of prior activity in the process.
  for (const auto& [domain, after] : cache.DomainCounters()) {
    StatCache::Counters delta = after;
    for (const auto& [name, before] : counters_before) {
      if (name == domain) {
        delta.hits -= before.hits;
        delta.misses -= before.misses;
        delta.disk_hits -= before.disk_hits;
        delta.disk_misses -= before.disk_misses;
        break;
      }
    }
    if (delta.hits == 0 && delta.misses == 0) continue;
    result.cache_domains.emplace_back(domain, delta);
    result.cache_total.hits += delta.hits;
    result.cache_total.misses += delta.misses;
    result.cache_total.disk_hits += delta.disk_hits;
    result.cache_total.disk_misses += delta.disk_misses;
  }
  for (const SweepRun& run : result.runs) {
    if (!run.shard_skipped && !run.status.ok()) ++result.failed_runs;
  }
  return result;
}

std::string ShardCheckpointPath(const std::string& base, uint32_t shard_id) {
  return base + ".shard-" + std::to_string(shard_id);
}

Result<SweepResult> MergeSweepShards(
    const SweepSpec& spec, const std::vector<std::string>& shard_paths) {
  if (shard_paths.empty()) {
    return Status::InvalidArgument("sweep merge needs at least one shard");
  }
  SweepResult result;
  std::vector<RunPlan> plans;
  const Status expanded = ExpandMatrix(spec, &plans, &result.runs);
  if (!expanded.ok()) return expanded;
  const uint64_t fingerprint = MatrixFingerprint(spec);
  std::vector<bool> complete(result.runs.size(), false);
  for (const std::string& path : shard_paths) {
    // LoadCheckpoint enforces the fingerprint binding, so a journal from
    // a different spec (or a corrupted header) refuses here — exactly
    // the --resume rule, applied per shard.
    auto loaded = LoadCheckpoint(path, fingerprint, result.runs.size());
    if (!loaded.ok()) return loaded.status();
    CheckpointState& state = loaded.value();
    if (!state.has_header) {
      return Status::InvalidArgument(
          path + ": shard journal missing or empty (worker never ran?)");
    }
    for (size_t i = 0; i < state.cells.size(); ++i) {
      CheckpointState::Cell& cell = state.cells[i];
      if (!cell.complete) continue;
      SweepRun& run = result.runs[i];
      if (complete[i]) {
        // A cell recorded by two shards (overlapping assignment, or a
        // re-run worker) must agree byte-for-byte — that is the sweep
        // determinism contract, and a mismatch means one worker ran
        // under a different build/config. Refuse rather than pick.
        if (run.checkpointed_run_json != cell.run_json ||
            run.status.code() != cell.status.code()) {
          return Status::Internal(
              path + ": shards disagree on cell " + std::to_string(i) +
              " (determinism violation; were workers running the same "
              "build?)");
        }
        continue;
      }
      complete[i] = true;
      run.status = cell.status;
      run.epsilon = cell.epsilon;
      run.attempts = 0;
      run.checkpointed_run_json = std::move(cell.run_json);
      ++result.resumed_runs;
    }
  }
  size_t missing = 0;
  size_t first_missing = 0;
  for (size_t i = 0; i < complete.size(); ++i) {
    if (complete[i]) continue;
    if (missing == 0) first_missing = i;
    ++missing;
  }
  if (missing > 0) {
    return Status::FailedPrecondition(
        std::to_string(missing) + " of " + std::to_string(complete.size()) +
        " cells missing from the shard journals (first: cell " +
        std::to_string(first_missing) +
        "); re-run the incomplete shards (--resume) before merging");
  }
  // Every cell is checkpointed, so the document takes the stable form —
  // the same bytes a single-process checkpointed run emits.
  result.stable_document = true;
  for (const SweepRun& run : result.runs) {
    if (!run.status.ok()) ++result.failed_runs;
  }
  return result;
}

std::string SweepsJson(const SweepResult& result, int threads) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("dpkron.sweeps.v1");
  json.Key("threads");
  json.Int(threads);
  // Same provenance block as ScenariosJson: context only, never part of
  // the frozen runs[] payload. Note the stable (checkpointed) document
  // keeps it too — dispatch level is a property of the machine, not of
  // one process execution, so resume on the same machine still
  // round-trips byte-identically.
  json.Key("simd");
  json.BeginObject();
  json.Key("dispatch");
  json.String(SimdLevelName(ActiveSimdLevel()));
  json.Key("detected");
  json.String(SimdLevelName(DetectedSimdLevel()));
  json.Key("cpu");
  json.String(CpuBrandString());
  json.EndObject();
  json.Key("stable");
  json.Bool(result.stable_document);
  // Stable form: wall time and cache counters are properties of one
  // process's execution (a resumed sweep legitimately has different
  // values), so the checkpointed document pins the time to 0 and omits
  // the counters — that's what makes interrupted-then-resumed output
  // byte-identical to an uninterrupted run.
  json.Key("elapsed_seconds");
  json.Number(result.stable_document ? 0.0 : result.elapsed_seconds);
  json.Key("failed_runs");
  json.UInt(result.failed_runs);
  // This sweep's own deltas, not the live process totals.
  json.Key("cache");
  json.BeginObject();
  json.Key("enabled");
  json.Bool(result.cache_enabled);
  if (!result.stable_document) {
    json.Key("hits");
    json.UInt(result.cache_total.hits);
    json.Key("misses");
    json.UInt(result.cache_total.misses);
    json.Key("disk_hits");
    json.UInt(result.cache_total.disk_hits);
    json.Key("disk_misses");
    json.UInt(result.cache_total.disk_misses);
    json.Key("domains");
    json.BeginObject();
    for (const auto& [domain, counters] : result.cache_domains) {
      json.Key(domain);
      json.BeginObject();
      json.Key("hits");
      json.UInt(counters.hits);
      json.Key("misses");
      json.UInt(counters.misses);
      json.Key("disk_hits");
      json.UInt(counters.disk_hits);
      json.Key("disk_misses");
      json.UInt(counters.disk_misses);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndObject();
  json.Key("runs");
  json.BeginArray();
  for (const SweepRun& run : result.runs) {
    json.BeginObject();
    json.Key("scenario");
    json.String(run.scenario);
    json.Key("dataset");
    json.String(run.dataset);
    json.Key("epsilon");
    json.Number(run.epsilon);
    json.Key("seed");
    json.UInt(run.seed);
    json.Key("seed_index");
    json.UInt(run.seed_index);
    // Only ever present in a shard WORKER's own document (the merged /
    // single-process document has no skipped cells): marks the cells
    // this worker deliberately left to its peers. Emitted only when set
    // so unsharded documents keep their exact historical bytes.
    if (run.shard_skipped) {
      json.Key("shard_skipped");
      json.Bool(true);
    }
    json.Key("ok");
    json.Bool(run.status.ok());
    json.Key("status");
    json.String(run.status.ToString());
    // The full per-run document — params, budgets (ledgers preserved),
    // exact_sensitivity, summaries, tables — exactly as the standalone
    // --scenario path emits it. A checkpointed cell splices the
    // fragment recorded at completion time; it is byte-identical to
    // what re-executing the cell would serialize (the sweep engine's
    // determinism contract is what makes resume legal at all).
    json.Key("run");
    if (!run.checkpointed_run_json.empty()) {
      json.Raw(run.checkpointed_run_json);
    } else {
      run.output.AppendRunJson(json);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dpkron
