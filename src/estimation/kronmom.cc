#include "src/estimation/kronmom.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/macros.h"
#include "src/common/stat_cache.h"

namespace dpkron {

uint32_t ChooseKroneckerOrder(uint64_t num_nodes) {
  DPKRON_CHECK_GE(num_nodes, 2u);
  uint32_t k = 0;
  uint64_t capacity = 1;
  while (capacity < num_nodes) {
    capacity <<= 1;
    ++k;
  }
  return k;
}

namespace {

// The grid search + multi-start Nelder-Mead behind FitKronMomToFeatures.
KronMomResult FitKronMomToFeaturesImpl(const GraphFeatures& observed,
                                       uint32_t k,
                                       const KronMomOptions& options) {

  auto objective = [&](const std::vector<double>& x) {
    return MomentObjective(Initiator2{x[0], x[1], x[2]}, k, observed,
                           options.objective);
  };

  // Rank coarse-lattice candidates; the lattice spans the closed box.
  struct Candidate {
    Initiator2 theta;
    double value;
  };
  std::vector<Candidate> candidates;
  const uint32_t g = options.grid_points;
  candidates.reserve(static_cast<size_t>(g) * g * g);
  for (uint32_t ia = 0; ia < g; ++ia) {
    for (uint32_t ib = 0; ib < g; ++ib) {
      for (uint32_t ic = 0; ic < g; ++ic) {
        const Initiator2 theta{double(ia) / (g - 1), double(ib) / (g - 1),
                               double(ic) / (g - 1)};
        candidates.push_back(
            {theta, MomentObjective(theta, k, observed, options.objective)});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.value < y.value;
            });

  KronMomResult best;
  best.k = k;
  best.objective = std::numeric_limits<double>::infinity();
  const uint32_t starts =
      std::min<uint32_t>(options.num_starts,
                         static_cast<uint32_t>(candidates.size()));
  for (uint32_t s = 0; s < starts; ++s) {
    const Initiator2& start = candidates[s].theta;
    NelderMeadResult run = NelderMead(
        objective, {start.a, start.b, start.c}, options.solver);
    if (run.value < best.objective) {
      best.objective = run.value;
      best.theta = Initiator2{run.point[0], run.point[1], run.point[2]}
                       .Clamped()
                       .Canonical();
      best.converged = run.converged;
    }
  }
  return best;
}

}  // namespace

KronMomResult FitKronMomToFeatures(const GraphFeatures& observed, uint32_t k,
                                   const KronMomOptions& options) {
  DPKRON_CHECK_GE(k, 1u);
  DPKRON_CHECK_GE(options.grid_points, 2u);
  DPKRON_CHECK_GE(options.num_starts, 1u);
  // The fit is a deterministic pure function of (features, k, options):
  // memoize it by value through the StatCache. In an ε sweep the exact-
  // feature fit recurs in every run of a dataset; fits on privatized
  // (per-run-noise) features simply key distinctly and miss.
  const uint64_t key = CacheKey()
                           .MixDouble(observed.edges)
                           .MixDouble(observed.hairpins)
                           .MixDouble(observed.triangles)
                           .MixDouble(observed.tripins)
                           .Mix(k)
                           .Mix(static_cast<uint64_t>(options.objective.dist))
                           .Mix(static_cast<uint64_t>(options.objective.norm))
                           .Mix(options.objective.use_edges)
                           .Mix(options.objective.use_hairpins)
                           .Mix(options.objective.use_triangles)
                           .Mix(options.objective.use_tripins)
                           .Mix(options.solver.max_iterations)
                           .MixDouble(options.solver.value_tolerance)
                           .MixDouble(options.solver.point_tolerance)
                           .MixDouble(options.solver.initial_step)
                           .MixDouble(options.solver.reflection)
                           .MixDouble(options.solver.expansion)
                           .MixDouble(options.solver.contraction)
                           .MixDouble(options.solver.shrink)
                           .Mix(options.grid_points)
                           .Mix(options.num_starts)
                           .digest();
  return *StatCache::Instance().GetOrComputeDurable<KronMomResult>(
      "kronmom_fit", key,
      [&] { return FitKronMomToFeaturesImpl(observed, k, options); },
      [](const KronMomResult& result, RecordBuilder& rec) {
        rec.Double(result.theta.a)
            .Double(result.theta.b)
            .Double(result.theta.c)
            .Double(result.objective)
            .U32(result.k)
            .U32(result.converged ? 1 : 0);
      },
      [](RecordParser& rec) -> std::optional<KronMomResult> {
        KronMomResult result;
        result.theta.a = rec.Double();
        result.theta.b = rec.Double();
        result.theta.c = rec.Double();
        result.objective = rec.Double();
        result.k = rec.U32();
        result.converged = rec.U32() != 0;
        if (!rec.ok()) return std::nullopt;
        return result;
      });
}

KronMomResult FitKronMom(GraphView graph, const KronMomOptions& options) {
  const GraphFeatures observed = ComputeFeaturesCached(graph);
  const uint32_t k = ChooseKroneckerOrder(graph.NumNodes());
  return FitKronMomToFeatures(observed, k, options);
}

}  // namespace dpkron
