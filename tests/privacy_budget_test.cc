#include "src/dp/privacy_budget.h"

#include <gtest/gtest.h>

namespace dpkron {
namespace {

TEST(PrivacyBudgetTest, TracksSpending) {
  PrivacyBudget budget(1.0, 0.01);
  EXPECT_TRUE(budget.Spend(0.4, 0.0, "degrees").ok());
  EXPECT_TRUE(budget.Spend(0.4, 0.01, "triangles").ok());
  EXPECT_NEAR(budget.epsilon_spent(), 0.8, 1e-12);
  EXPECT_NEAR(budget.epsilon_remaining(), 0.2, 1e-12);
  EXPECT_NEAR(budget.delta_remaining(), 0.0, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 2u);
}

TEST(PrivacyBudgetTest, RefusesOverdraft) {
  PrivacyBudget budget(0.5, 0.0);
  EXPECT_TRUE(budget.Spend(0.5, 0.0, "all of it").ok());
  const Status s = budget.Spend(0.01, 0.0, "one more");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Failed spend is not recorded.
  EXPECT_EQ(budget.ledger().size(), 1u);
  EXPECT_NEAR(budget.epsilon_spent(), 0.5, 1e-12);
}

TEST(PrivacyBudgetTest, RefusesDeltaOverdraft) {
  PrivacyBudget budget(10.0, 0.01);
  EXPECT_TRUE(budget.Spend(1.0, 0.01, "first").ok());
  EXPECT_FALSE(budget.Spend(1.0, 0.001, "second").ok());
}

TEST(PrivacyBudgetTest, ExactSpendDespiteFloatAccumulation) {
  PrivacyBudget budget(0.3, 0.0);
  EXPECT_TRUE(budget.Spend(0.1, 0.0, "a").ok());
  EXPECT_TRUE(budget.Spend(0.1, 0.0, "b").ok());
  EXPECT_TRUE(budget.Spend(0.1, 0.0, "c").ok());  // 3×0.1 != 0.3 exactly
}

// Regression for the Algorithm 1 split: ε/2 on the degree sequence plus
// (ε/2, δ) on the triangle count must exactly exhaust every (ε, δ)
// budget — a refusal here over accumulated rounding would abort the
// whole private estimator.
TEST(PrivacyBudgetTest, Algorithm1SplitAlwaysFits) {
  const double epsilons[] = {0.05, 0.1, 0.2, 0.3, 1.0 / 3.0, 0.7,
                             2.5,  20.0, 100.0};
  for (double epsilon : epsilons) {
    PrivacyBudget budget(epsilon, 0.01);
    EXPECT_TRUE(budget.Spend(epsilon / 2, 0.0, "degree sequence").ok())
        << "epsilon=" << epsilon;
    EXPECT_TRUE(budget.Spend(epsilon / 2, 0.01, "triangle count").ok())
        << "epsilon=" << epsilon;
    // Exhausted, never overdrawn: remaining is clamped at zero.
    EXPECT_GE(budget.epsilon_remaining(), 0.0);
    EXPECT_GE(budget.delta_remaining(), 0.0);
  }
}

TEST(PrivacyBudgetTest, RelativeToleranceCoversLargeBudgets) {
  // At ε = 12345.678 the three-way split accumulates rounding error far
  // above any fixed absolute slack; the relative tolerance absorbs it.
  const double epsilon = 12345.678;
  PrivacyBudget budget(epsilon, 0.0);
  EXPECT_TRUE(budget.Spend(epsilon / 3, 0.0, "a").ok());
  EXPECT_TRUE(budget.Spend(epsilon / 3, 0.0, "b").ok());
  EXPECT_TRUE(budget.Spend(epsilon / 3, 0.0, "c").ok());
  EXPECT_GE(budget.epsilon_remaining(), 0.0);
  // A genuine overdraft is still refused after the tolerance-accepted
  // final charge.
  EXPECT_FALSE(budget.Spend(1e-3, 0.0, "overdraft").ok());
}

TEST(PrivacyBudgetTest, RejectsInvalidCharges) {
  PrivacyBudget budget(1.0, 0.1);
  EXPECT_FALSE(budget.Spend(-0.1, 0.0, "negative").ok());
  EXPECT_FALSE(budget.Spend(0.0, 0.0, "empty").ok());
}

TEST(PrivacyBudgetTest, ToStringListsLedger) {
  PrivacyBudget budget(1.0, 0.01);
  ASSERT_TRUE(budget.Spend(0.5, 0.0, "degree_sequence").ok());
  const std::string s = budget.ToString();
  EXPECT_NE(s.find("degree_sequence"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(PrivacyBudgetDeathTest, RejectsInvalidTotals) {
  EXPECT_DEATH(PrivacyBudget(0.0, 0.0), "CHECK");
  EXPECT_DEATH(PrivacyBudget(1.0, 1.0), "CHECK");
}

}  // namespace
}  // namespace dpkron
