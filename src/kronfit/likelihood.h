// Approximate SKG log-likelihood and its gradient (Leskovec–Faloutsos).
//
// For an observed undirected graph G aligned to Kronecker ids by σ, the
// exact log-likelihood under our unordered-pair convention is
//   l(Θ, σ) = Σ_{{u,v}∈E} log P_σ(u)σ(v) + Σ_{{u,v}∉E} log(1 − P_σ(u)σ(v)).
// Evaluating the second sum costs O(N²); KronFit's trick is the Taylor
// expansion log(1−p) ≈ −p − p²/2 whose sum over *all* pairs has a closed
// form under the Kronecker structure (and is independent of σ), plus a
// per-edge correction:
//   l ≈ Σ_{E} [log P + P + P²/2] − C(Θ),
//   C(Θ) = ½[(a+2b+c)^k − (a+c)^k] + ¼[(a²+2b²+c²)^k − (a²+c²)^k].
// Both C and the edge terms have cheap analytic (a,b,c)-gradients.
//
// Every per-pair quantity depends on positions (p, q) only through the
// digit-pair counts (n00, nb, n11) with n00 + nb + n11 = k, so the
// constructor tabulates the edge term and the three gradient factors
// over the O(k²) lattice {(n11, nb) : n11 + nb ≤ k}. The hot calls
// (EdgeTerm, SwapDelta, EdgeGradient) then cost two popcounts and a
// table read — no log/pow in the Metropolis inner loop. The tables are
// built with the exact expressions the direct path evaluates, so table
// and direct values are bit-identical (tests enforce EXPECT_EQ); the
// *Direct methods retain the untabulated computation as the parity
// reference.

#ifndef DPKRON_KRONFIT_LIKELIHOOD_H_
#define DPKRON_KRONFIT_LIKELIHOOD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/aligned.h"
#include "src/graph/graph_view.h"
#include "src/kronfit/permutation.h"
#include "src/skg/initiator.h"
#include "src/skg/kronecker.h"

namespace dpkron {

// Gradient with respect to (a, b, c).
using Gradient3 = std::array<double, 3>;

// Evaluator bound to one (Θ, k); rebuild when Θ changes (cheap: O(k²)
// lookup tables).
class KronFitLikelihood {
 public:
  // theta entries are clamped to [kThetaFloor, 1] internally so that
  // log P stays finite.
  KronFitLikelihood(const Initiator2& theta, uint32_t k);

  static constexpr double kThetaFloor = 1e-9;

  uint32_t k() const { return k_; }
  const Initiator2& theta() const { return theta_; }

  // Per-edge contribution for Kronecker positions (p, q):
  // log P_pq + P_pq + P_pq²/2. Table lookup.
  double EdgeTerm(uint32_t p, uint32_t q) const {
    return edge_term_[TableIndex(p, q)];
  }

  // Untabulated reference for EdgeTerm (identical bits; kept for the
  // parity tests and as executable documentation of the table build).
  double EdgeTermDirect(uint32_t p, uint32_t q) const;

  // ∇_(a,b,c) of EdgeTerm(p, q): (n_θ/θ)·(1 + P + P²) per entry.
  // Table lookup.
  Gradient3 EdgeGradientTerm(uint32_t p, uint32_t q) const {
    const size_t idx = TableIndex(p, q);
    return {grad_a_[idx], grad_b_[idx], grad_c_[idx]};
  }

  // Untabulated reference for EdgeGradientTerm (identical bits).
  Gradient3 EdgeGradientTermDirect(uint32_t p, uint32_t q) const;

  // Closed-form no-edge mass C(Θ) (σ-independent).
  double NoEdgeTerm() const;
  Gradient3 NoEdgeGradient() const;

  // Full approximate log-likelihood of `graph` under alignment σ.
  // Chunk-ordered ParallelSum over CSR node ranges: thread-count
  // invariant, though the chunking fixes the summation order.
  double LogLikelihood(GraphView graph, const PermutationState& sigma) const;

  // Change in Σ_E EdgeTerm if nodes u and v exchanged positions; O(deg u +
  // deg v). (The no-edge term does not move.) `sigma` is the state
  // *before* the swap.
  double SwapDelta(GraphView graph, const PermutationState& sigma,
                   uint32_t u, uint32_t v) const;

  // Runs `count` Metropolis swap steps on `sigma` inside the AVX2
  // translation unit when the AVX2 path is active (one ISA boundary per
  // call instead of per swap — see likelihood_kernels.h); returns false
  // without consuming any draws when inactive, so the caller runs its
  // scalar loop. The trajectory is bit-identical to that scalar loop.
  bool MetropolisSwaps(GraphView graph, PermutationState* sigma,
                       Rng& rng, uint64_t count) const;

  // ∇_(a,b,c) Σ_E EdgeTerm at alignment σ. Combined with NoEdgeGradient()
  // this is the full likelihood gradient. Chunk-ordered 3-component
  // parallel reduction over CSR node ranges.
  Gradient3 EdgeGradient(GraphView graph,
                         const PermutationState& sigma) const;

 private:
  // (n00, nb, n11) digit-pair counts for positions (p, q).
  std::array<uint32_t, 3> DigitCounts(uint32_t p, uint32_t q) const;

  // Row-major index into the (k+1)×(k+1) tables for the digit counts of
  // (p, q): n11·(k+1) + nb. Only cells with n11 + nb ≤ k are reachable.
  size_t TableIndex(uint32_t p, uint32_t q) const {
    const uint32_t both = (p & q) & mask_;
    const uint32_t only = (p ^ q) & mask_;
    const uint32_t n11 = static_cast<uint32_t>(__builtin_popcount(both));
    const uint32_t nb = static_cast<uint32_t>(__builtin_popcount(only));
    return size_t{n11} * (k_ + 1) + nb;
  }

  Initiator2 theta_;
  uint32_t k_;
  uint32_t mask_;  // low-k bits; hoisted out of the digit-count hot path
  uint32_t shift_;  // padded-table row shift: stride 2^shift_ ≥ k+1
  EdgeProbability2 prob_;
  // (k+1)² tables over (n11, nb); see TableIndex.
  std::vector<double> edge_term_;
  std::vector<double> grad_a_, grad_b_, grad_c_;
  // AVX2-path tables (likelihood_kernels.h): the same values re-laid-out
  // with a power-of-two row stride so the cell index is a shift+or, and
  // — for the gradient — combined into 32-byte cells
  // [g_a, g_b, g_c, edge_term] one aligned vector load wide. Values are
  // copied from the dense tables, so both layouts are bit-identical.
  template <typename T>
  using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;
  AlignedVector<double> edge_term_padded_;
  AlignedVector<double> grad4_padded_;
};

}  // namespace dpkron

#endif  // DPKRON_KRONFIT_LIKELIHOOD_H_
