#include "src/datasets/registry.h"

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/datasets/affiliation.h"
#include "src/datasets/preferential_attachment.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"

namespace dpkron {
namespace {

TEST(AffiliationTest, RespectsNodeBudgetAndDeterminism) {
  AffiliationOptions options;
  options.num_authors = 500;
  options.num_papers = 300;
  Rng rng1(1), rng2(1);
  const Graph g1 = AffiliationGraph(options, rng1);
  const Graph g2 = AffiliationGraph(options, rng2);
  EXPECT_EQ(g1.NumNodes(), 500u);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(AffiliationTest, ProducesHighClustering) {
  AffiliationOptions options;
  options.num_authors = 2000;
  options.num_papers = 1200;
  Rng rng(2);
  const Graph g = AffiliationGraph(options, rng);
  // Union-of-cliques structure → strong local clustering.
  EXPECT_GT(AverageClustering(g), 0.4);
}

TEST(AffiliationTest, HeavyTailedDegrees) {
  AffiliationOptions options;
  options.num_authors = 3000;
  options.num_papers = 2000;
  Rng rng(3);
  const Graph g = AffiliationGraph(options, rng);
  const auto degrees = SortedDegreeVector(g);
  const double max_degree = degrees.back();
  double sum = 0;
  for (uint32_t d : degrees) sum += d;
  const double mean_degree = sum / degrees.size();
  EXPECT_GT(max_degree, 8 * mean_degree);  // hub far above the mean
}

TEST(PreferentialAttachmentTest, EdgeCountFormula) {
  PreferentialAttachmentOptions options;
  options.num_nodes = 1000;
  options.edges_per_node = 4;
  Rng rng(4);
  const Graph g = PreferentialAttachmentGraph(options, rng);
  EXPECT_EQ(g.NumNodes(), 1000u);
  // Seed clique C(5,2)=10 plus ≈4 per arrival (duplicate-collisions may
  // drop a handful).
  EXPECT_NEAR(double(g.NumEdges()), 10 + 4.0 * (1000 - 5), 60.0);
}

TEST(PreferentialAttachmentTest, LowClusteringVsAffiliation) {
  Rng rng(5);
  PreferentialAttachmentOptions pa;
  pa.num_nodes = 2000;
  pa.edges_per_node = 4;
  const Graph g = PreferentialAttachmentGraph(pa, rng);
  EXPECT_LT(GlobalClustering(g), 0.1);
}

TEST(PreferentialAttachmentTest, ConnectedByConstruction) {
  Rng rng(6);
  PreferentialAttachmentOptions pa;
  pa.num_nodes = 500;
  pa.edges_per_node = 2;
  const Graph g = PreferentialAttachmentGraph(pa, rng);
  // Every arriving node attaches to an existing one → one component.
  uint32_t isolated = 0;
  for (Graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    isolated += g.Degree(u) == 0;
  }
  EXPECT_EQ(isolated, 0u);
}

TEST(RegistryTest, FourPaperDatasets) {
  const auto& datasets = PaperDatasets();
  ASSERT_EQ(datasets.size(), 4u);
  EXPECT_EQ(datasets[0].paper_name, "CA-GrQC");
  EXPECT_EQ(datasets[1].paper_name, "CA-HepTh");
  EXPECT_EQ(datasets[2].paper_name, "AS20");
  EXPECT_EQ(datasets[3].kind, "kronecker");
  // Table 1 values sanity: all a ≈ 1 for the real networks.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(datasets[i].paper_kronmom.a, 0.98);
    EXPECT_GT(datasets[i].paper_private.a, 0.98);
  }
}

TEST(RegistryTest, CalibrationWithinTolerances) {
  Rng rng(7);
  const Graph grqc = CaGrQcLike(rng);
  EXPECT_EQ(grqc.NumNodes(), 5242u);
  EXPECT_NEAR(double(grqc.NumEdges()), 28980.0, 0.35 * 28980);

  const Graph as20 = As20Like(rng);
  EXPECT_EQ(as20.NumNodes(), 6474u);
  EXPECT_NEAR(double(as20.NumEdges()), 26467.0, 0.15 * 26467);
}

TEST(RegistryTest, SyntheticKroneckerShape) {
  Rng rng(8);
  const Graph g = SyntheticKronecker(rng);
  EXPECT_EQ(g.NumNodes(), 16384u);
  EXPECT_GT(g.NumEdges(), 10000u);
}

TEST(RegistryTest, MakeDatasetDispatch) {
  Rng rng(9);
  EXPECT_EQ(MakeDataset("AS20-like", rng).NumNodes(), 6474u);
}

TEST(RegistryTest, DispatchGoesThroughTheEntryGenerator) {
  // The registry entry IS the dispatch table: MakeDataset and a direct
  // call to the entry's generator are the same function.
  for (const DatasetInfo& info : PaperDatasets()) {
    ASSERT_NE(info.generator, nullptr) << info.name;
  }
  const DatasetInfo* as20 = FindDataset("AS20-like");
  ASSERT_NE(as20, nullptr);
  EXPECT_EQ(as20->generator, &As20Like);
  Rng rng_a(17), rng_b(17);
  EXPECT_EQ(MakeDataset("AS20-like", rng_a).Edges(),
            as20->generator(rng_b).Edges());
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  Rng rng(10);
  EXPECT_DEATH(MakeDataset("no-such-dataset", rng), "unknown dataset");
}

}  // namespace
}  // namespace dpkron
