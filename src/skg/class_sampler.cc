#include "src/skg/class_sampler.h"

#include "src/common/macros.h"
#include "src/graph/graph_builder.h"
#include "src/skg/kronecker.h"

namespace dpkron {
namespace internal_class_sampler {

uint64_t Choose(uint32_t n, uint32_t m) {
  if (m > n) return 0;
  if (m > n - m) m = n - m;
  __uint128_t result = 1;
  for (uint32_t t = 1; t <= m; ++t) {
    result = result * (n - m + t) / t;  // exact: prefix products divide
    DPKRON_CHECK_MSG(result <= UINT64_MAX, "binomial coefficient overflow");
  }
  return static_cast<uint64_t>(result);
}

uint64_t ClassSize(uint32_t k, uint32_t i, uint32_t j) {
  if (j == 0) return 0;  // equal-digit pairs are the (discarded) diagonal
  if (i + j > k) return 0;
  const uint64_t placements = Choose(k, i) * Choose(k - i, j);
  return placements << (j - 1);
}

void UnrankCombination(uint32_t n, uint32_t m, uint64_t rank, uint32_t* out) {
  // Lexicographic order over sorted m-subsets of {0, ..., n−1}.
  uint32_t next = 0;
  for (uint32_t slot = 0; slot < m; ++slot) {
    for (;; ++next) {
      const uint64_t with_next = Choose(n - 1 - next, m - slot - 1);
      if (rank < with_next) break;
      rank -= with_next;
    }
    out[slot] = next++;
  }
  DPKRON_CHECK_EQ(rank, 0u);
}

PairUV UnrankPair(uint32_t k, uint32_t i, uint32_t j, uint64_t rank) {
  DPKRON_CHECK_GE(j, 1u);
  DPKRON_CHECK_LE(i + j, k);
  DPKRON_CHECK_LT(rank, ClassSize(k, i, j));
  const uint64_t patterns = uint64_t{1} << (j - 1);
  const uint64_t pattern = rank % patterns;
  rank /= patterns;
  const uint64_t c2 = Choose(k - i, j);
  const uint64_t ones_rank = rank / c2;
  const uint64_t differ_rank = rank % c2;

  uint32_t ones[32];
  UnrankCombination(k, i, ones_rank, ones);
  uint32_t differ_rel[32];
  UnrankCombination(k - i, j, differ_rank, differ_rel);

  // Translate the differ positions from "index among the k−i non-ones
  // positions" to absolute bit positions.
  uint64_t ones_mask = 0;
  for (uint32_t t = 0; t < i; ++t) ones_mask |= uint64_t{1} << ones[t];
  uint32_t remaining[32];
  uint32_t count = 0;
  for (uint32_t bit = 0; bit < k; ++bit) {
    if (!(ones_mask & (uint64_t{1} << bit))) remaining[count++] = bit;
  }

  PairUV pair{ones_mask, ones_mask};
  // Differ positions in increasing bit order; differ_rel is sorted, so
  // the LAST one is the highest bit. Canonicalize: u gets 0 there (thus
  // u < v); the other j−1 differ bits of u follow `pattern`.
  for (uint32_t t = 0; t < j; ++t) {
    const uint64_t bit = uint64_t{1} << remaining[differ_rel[t]];
    const bool highest = (t == j - 1);
    const bool u_gets_one = !highest && ((pattern >> t) & 1);
    if (u_gets_one) {
      pair.u |= bit;
    } else {
      pair.v |= bit;
    }
  }
  DPKRON_CHECK_LT(pair.u, pair.v);
  return pair;
}

}  // namespace internal_class_sampler

Graph SampleSkgClassSkip(const Initiator2& theta, uint32_t k, Rng& rng) {
  using internal_class_sampler::ClassSize;
  using internal_class_sampler::UnrankPair;
  DPKRON_CHECK_MSG(theta.IsValid(), "initiator entries outside [0,1]");
  DPKRON_CHECK_GE(k, 1u);
  DPKRON_CHECK_LE(k, 30u);

  const uint32_t n = uint32_t{1} << k;
  GraphBuilder builder(n);
  for (uint32_t i = 0; i + 1 <= k; ++i) {        // both-ones count
    for (uint32_t j = 1; i + j <= k; ++j) {      // differ count
      const uint64_t size = ClassSize(k, i, j);
      if (size == 0) continue;
      const double p =
          PowInt(theta.a, k - i - j) * PowInt(theta.b, j) * PowInt(theta.c, i);
      if (p <= 0.0) continue;
      if (p >= 1.0) {
        // Deterministic class: every pair is an edge.
        for (uint64_t rank = 0; rank < size; ++rank) {
          const auto [u, v] = UnrankPair(k, i, j, rank);
          builder.AddEdge(static_cast<Graph::NodeId>(u),
                          static_cast<Graph::NodeId>(v));
        }
        continue;
      }
      // Exact Binomial thinning of the class via geometric skips.
      uint64_t index = rng.NextGeometric(p);
      while (index < size) {
        const auto [u, v] = UnrankPair(k, i, j, index);
        builder.AddEdge(static_cast<Graph::NodeId>(u),
                        static_cast<Graph::NodeId>(v));
        index += 1 + rng.NextGeometric(p);
      }
    }
  }
  return builder.Build();
}

}  // namespace dpkron
