#include "src/graph/anf.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/common/simd.h"
#include "src/common/vec_kernels.h"

namespace dpkron {
namespace {

// Flajolet–Martin bias correction constant: E[2^R] ≈ n / 0.77351.
constexpr double kFmPhi = 0.77351;

// Per-node work is O(degree · trials); mid-size chunks balance hubs.
constexpr size_t kAnfGrain = 512;

// Index of the lowest zero bit of x (0-based); 64 if x is all ones.
inline uint32_t LowestZeroBit(uint64_t x) {
  const uint64_t inverted = ~x;
  if (inverted == 0) return 64;
  return static_cast<uint32_t>(__builtin_ctzll(inverted));
}

// Draws an FM-distributed bit: bit j set with probability 2^-(j+1).
inline uint64_t FmBit(Rng& rng) {
  // Equivalent to a geometric(1/2) draw; clamp to 63.
  const uint32_t leading = static_cast<uint32_t>(
      __builtin_ctzll(rng.NextU64() | (1ULL << 63)));
  return 1ULL << (leading < 64 ? leading : 63);
}

}  // namespace

std::vector<uint64_t> ApproxHopPlot(GraphView graph, Rng& rng,
                                    const AnfOptions& options) {
  DPKRON_CHECK_GT(options.num_trials, 0u);
  const uint32_t n = graph.NumNodes();
  const uint32_t trials = options.num_trials;
  if (n == 0) return {0};

  // masks[u*trials + t]: sketch of the ball around u in trial t. Seeded
  // from per-chunk split streams so the realization is a function of the
  // seed and the chunk grain only — not of the thread count.
  std::vector<uint64_t> masks(static_cast<size_t>(n) * trials);
  ParallelForChunksWithRng(
      n, kAnfGrain, rng,
      [&](const ParallelChunk& chunk, Rng& chunk_rng) {
        for (size_t u = chunk.begin; u < chunk.end; ++u) {
          for (uint32_t t = 0; t < trials; ++t) {
            masks[u * trials + t] = FmBit(chunk_rng);
          }
        }
      });

  auto estimate_total = [&]() {
    return static_cast<uint64_t>(
        ParallelSum(n, kAnfGrain, [&](size_t begin, size_t end) {
          double partial = 0.0;
          for (size_t u = begin; u < end; ++u) {
            double mean_r = 0.0;
            for (uint32_t t = 0; t < trials; ++t) {
              mean_r += LowestZeroBit(masks[u * trials + t]);
            }
            mean_r /= trials;
            partial += std::pow(2.0, mean_r) / kFmPhi;
          }
          return partial;
        }));
  };

  std::vector<uint64_t> hop_plot;
  hop_plot.push_back(estimate_total());  // h = 0

  std::vector<uint64_t> next(masks.size());
  for (uint32_t hop = 1; hop <= options.max_hops; ++hop) {
    // One full CSR traversal per expand round — the irreducible pass
    // count of the iterative ANF family.
    graph.CountPass("anf_round");
    next = masks;
    // Node u's expand round reads masks[] (previous hop, immutable here)
    // and writes only next[u·trials ...] — disjoint across nodes, so the
    // merged sketches are exact at any thread count.
    std::atomic<bool> changed{false};
    // Bitwise OR-merge is order-free, so the AVX2 kernel is exact. The
    // AVX2 path hands the whole neighbor walk to one kernel call per
    // node (crossing the ISA boundary per neighbor costs more than the
    // merge itself at ANF's sketch widths).
    const bool use_avx2 = Avx2Active();
    ParallelFor(n, kAnfGrain, [&](size_t u) {
      uint64_t* dst = &next[u * trials];
      const auto neighbors = graph.Neighbors(static_cast<Graph::NodeId>(u));
      bool local_changed = false;
      if (use_avx2) {
        local_changed = OrMergeRowAvx2(dst, masks.data(), trials,
                                       neighbors.data(), neighbors.size());
      } else {
        for (Graph::NodeId v : neighbors) {
          const uint64_t* src = &masks[static_cast<size_t>(v) * trials];
          for (uint32_t t = 0; t < trials; ++t) {
            const uint64_t merged = dst[t] | src[t];
            local_changed |= (merged != dst[t]);
            dst[t] = merged;
          }
        }
      }
      if (local_changed) changed.store(true, std::memory_order_relaxed);
    });
    masks.swap(next);
    if (!changed.load(std::memory_order_relaxed)) {
      break;  // All balls saturated: N(h) has converged.
    }
    hop_plot.push_back(estimate_total());
  }
  // N(0) = n and N(1) = n + 2E are known exactly; pin them (the FM
  // sketch's multiplicative bias is worst at tiny per-node counts) and
  // restore monotonicity for the estimated tail.
  hop_plot[0] = n;
  if (hop_plot.size() > 1) hop_plot[1] = n + 2 * graph.NumEdges();
  for (size_t h = 1; h < hop_plot.size(); ++h) {
    hop_plot[h] = std::max(hop_plot[h], hop_plot[h - 1]);
  }
  return hop_plot;
}

}  // namespace dpkron
