// Ablation: Algorithm 1's degree route vs direct smooth-sensitivity
// privatization of each count.
//
// Algorithm 1's quiet design insight is that one ε/2 charge on the degree
// sequence buys Ẽ, H̃ AND T̃ simultaneously (post-processing), leaving
// ε/2 for the triangle count. The alternative — privatizing E, H, T, ∆
// each with its own mechanism (Karwa-style smooth sensitivity for the
// stars) — must split ε four ways AND pay the large worst-case star
// sensitivities. This bench quantifies the gap.

#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/dp/private_features.h"
#include "src/dp/star_sensitivity.h"
#include "src/skg/sampler.h"

int main() {
  using namespace dpkron;
  std::printf("# ablation_feature_route: degree route (Algorithm 1) vs "
              "direct smooth-sensitivity route\n");
  Rng rng(2718);
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, 12, rng);  // mean deg ~10
  const GraphFeatures exact = ComputeFeatures(g);
  std::printf("graph: %u nodes, %llu edges; exact %s\n", g.NumNodes(),
              static_cast<unsigned long long>(g.NumEdges()),
              exact.ToString().c_str());

  SeriesTable table("feature_route/relative_error");
  const double epsilons[] = {0.1, 0.2, 0.5, 1.0, 2.0};
  const uint32_t trials = 8;
  for (double epsilon : epsilons) {
    double deg_e = 0, deg_h = 0, deg_t = 0;
    double dir_e = 0, dir_h = 0, dir_t = 0;
    for (uint32_t trial = 0; trial < trials; ++trial) {
      const auto degree_route = ComputePrivateFeatures(g, epsilon, 0.01, rng);
      PrivacyBudget budget(epsilon, 0.01);
      const auto direct_route =
          ComputeDirectPrivateFeatures(g, epsilon, 0.01, budget, rng);
      if (!degree_route.ok() || !direct_route.ok()) continue;
      const GraphFeatures& a = degree_route.value().features;
      const GraphFeatures& b = direct_route.value();
      deg_e += std::fabs(a.edges - exact.edges) / exact.edges;
      deg_h += std::fabs(a.hairpins - exact.hairpins) / exact.hairpins;
      deg_t += std::fabs(a.tripins - exact.tripins) / exact.tripins;
      dir_e += std::fabs(b.edges - exact.edges) / exact.edges;
      dir_h += std::fabs(b.hairpins - exact.hairpins) / exact.hairpins;
      dir_t += std::fabs(b.tripins - exact.tripins) / exact.tripins;
    }
    table.Add("degree-route/edges", epsilon, deg_e / trials);
    table.Add("degree-route/hairpins", epsilon, deg_h / trials);
    table.Add("degree-route/tripins", epsilon, deg_t / trials);
    table.Add("direct-route/edges", epsilon, dir_e / trials);
    table.Add("direct-route/hairpins", epsilon, dir_h / trials);
    table.Add("direct-route/tripins", epsilon, dir_t / trials);
    std::printf("eps=%-5g  E: deg=%.4f dir=%.4f | H: deg=%.4f dir=%.4f"
                " | T: deg=%.4f dir=%.4f\n",
                epsilon, deg_e / trials, dir_e / trials, deg_h / trials,
                dir_h / trials, deg_t / trials, dir_t / trials);
  }
  table.Print();
  return 0;
}
