#include "src/dp/laplace_mechanism.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"

namespace dpkron {
namespace {

TEST(LaplaceMechanismTest, UnbiasedAroundTrueValue) {
  Rng rng(1);
  const double truth = 1000.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += AddLaplaceNoise(truth, 1.0, 0.5, rng).value();
  }
  EXPECT_NEAR(sum / n, truth, 0.05);
}

TEST(LaplaceMechanismTest, NoiseScaleIsSensitivityOverEpsilon) {
  Rng rng(2);
  const double sensitivity = 2.0, epsilon = 0.25;
  const int n = 100000;
  double sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    sum_abs +=
        std::fabs(AddLaplaceNoise(0.0, sensitivity, epsilon, rng).value());
  }
  // E[|Lap(b)|] = b = sensitivity / epsilon = 8.
  EXPECT_NEAR(sum_abs / n, sensitivity / epsilon, 0.1);
}

TEST(LaplaceMechanismTest, HigherEpsilonLessNoise) {
  Rng rng(3);
  double spread_low = 0.0, spread_high = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    spread_low += std::fabs(AddLaplaceNoise(0, 1.0, 0.1, rng).value());
    spread_high += std::fabs(AddLaplaceNoise(0, 1.0, 10.0, rng).value());
  }
  EXPECT_GT(spread_low, 10 * spread_high);
}

TEST(LaplaceMechanismTest, VectorVariantSizeAndIndependence) {
  Rng rng(4);
  const std::vector<double> values(100, 5.0);
  const auto result = AddLaplaceNoiseVector(values, 2.0, 1.0, rng);
  ASSERT_TRUE(result.ok());
  const std::vector<double>& noisy = result.value();
  ASSERT_EQ(noisy.size(), values.size());
  // All coordinates perturbed (probability of any exact tie ~ 0).
  int unchanged = 0;
  for (size_t i = 0; i < noisy.size(); ++i) unchanged += noisy[i] == 5.0;
  EXPECT_EQ(unchanged, 0);
  // Not all the same noise.
  EXPECT_NE(noisy[0], noisy[1]);
}

// Degenerate parameters are data-dependent (a zero-sensitivity query, an
// ε = 0 sweep grid entry): they must come back as a Status a batch can
// record, not a process abort — and no noise may be drawn.
TEST(LaplaceMechanismTest, DegenerateParametersAreStatusNotAbort) {
  Rng rng(5);
  const uint64_t fingerprint = rng.StateFingerprint();
  for (const auto& [sensitivity, epsilon] :
       {std::pair<double, double>{0.0, 1.0},
        {-1.0, 1.0},
        {1.0, 0.0},
        {1.0, -0.5}}) {
    const auto scalar = AddLaplaceNoise(0.0, sensitivity, epsilon, rng);
    ASSERT_FALSE(scalar.ok());
    EXPECT_EQ(scalar.status().code(), StatusCode::kInvalidArgument);
    const auto vector =
        AddLaplaceNoiseVector({1.0, 2.0}, sensitivity, epsilon, rng);
    ASSERT_FALSE(vector.ok());
    EXPECT_EQ(vector.status().code(), StatusCode::kInvalidArgument);
  }
  // The rejected calls consumed no randomness.
  EXPECT_EQ(rng.StateFingerprint(), fingerprint);
}

}  // namespace
}  // namespace dpkron
