#include "src/dp/isotonic.h"

#include <cstddef>
#include <cstdint>

namespace dpkron {

std::vector<double> IsotonicRegression(const std::vector<double>& values) {
  const size_t n = values.size();
  // Blocks of pooled entries: value = mean, weight = length.
  std::vector<double> block_mean;
  std::vector<uint64_t> block_size;
  block_mean.reserve(n);
  block_size.reserve(n);
  for (double x : values) {
    block_mean.push_back(x);
    block_size.push_back(1);
    // Merge backwards while the monotonicity constraint is violated.
    while (block_mean.size() >= 2 &&
           block_mean[block_mean.size() - 2] > block_mean.back()) {
      const double m2 = block_mean.back();
      const uint64_t s2 = block_size.back();
      block_mean.pop_back();
      block_size.pop_back();
      const double m1 = block_mean.back();
      const uint64_t s1 = block_size.back();
      block_mean.back() = (m1 * s1 + m2 * s2) / double(s1 + s2);
      block_size.back() = s1 + s2;
    }
  }
  std::vector<double> fitted;
  fitted.reserve(n);
  for (size_t b = 0; b < block_mean.size(); ++b) {
    fitted.insert(fitted.end(), block_size[b], block_mean[b]);
  }
  return fitted;
}

}  // namespace dpkron
