#include "src/skg/moments_n.h"

#include <vector>

#include "src/common/macros.h"
#include "src/skg/kronecker.h"

namespace dpkron {
namespace {

// Per-digit aggregates of a symmetric initiator.
struct DigitSums {
  double entry_sum = 0.0;      // Σ_ij θ_ij
  double trace = 0.0;          // Σ_i θ_ii
  double entry_sq = 0.0;       // Σ_ij θ_ij²
  double entry_cube = 0.0;     // Σ_ij θ_ij³
  double trace_sq = 0.0;       // Σ_i θ_ii²
  double trace_cube = 0.0;     // Σ_i θ_ii³
  double row_sq = 0.0;         // Σ_i row_i²
  double row_cube = 0.0;       // Σ_i row_i³
  double row_diag = 0.0;       // Σ_i row_i·θ_ii
  double row_diag_sq = 0.0;    // Σ_i row_i·θ_ii²
  double rowsq_row = 0.0;      // Σ_i row_i·rowsq_i
  double rowsq_diag = 0.0;     // Σ_i rowsq_i·θ_ii
  double rowsq2_diag = 0.0;    // Σ_i row_i²·θ_ii
  double cyclic = 0.0;         // Σ_ijl θ_ij·θ_jl·θ_li
  double diag_rowsq = 0.0;     // Σ_i θ_ii·rowsq_i  (== rowsq_diag)
};

DigitSums ComputeDigitSums(const InitiatorN& theta) {
  const uint32_t n = theta.dim();
  DigitSums s;
  std::vector<double> row(n, 0.0), rowsq(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      const double x = theta.At(i, j);
      row[i] += x;
      rowsq[i] += x * x;
      s.entry_sum += x;
      s.entry_sq += x * x;
      s.entry_cube += x * x * x;
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    const double d = theta.At(i, i);
    s.trace += d;
    s.trace_sq += d * d;
    s.trace_cube += d * d * d;
    s.row_sq += row[i] * row[i];
    s.row_cube += row[i] * row[i] * row[i];
    s.row_diag += row[i] * d;
    s.row_diag_sq += row[i] * d * d;
    s.rowsq_row += row[i] * rowsq[i];
    s.rowsq_diag += rowsq[i] * d;
    s.rowsq2_diag += row[i] * row[i] * d;
  }
  s.diag_rowsq = s.rowsq_diag;
  // Cyclic triangle tensor: Σ_ijl θ_ij θ_jl θ_li = tr(Θ³) for symmetric Θ.
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      for (uint32_t l = 0; l < n; ++l) {
        s.cyclic += theta.At(i, j) * theta.At(j, l) * theta.At(l, i);
      }
    }
  }
  return s;
}

}  // namespace

SkgMoments ExpectedMomentsN(const InitiatorN& theta, uint32_t k) {
  DPKRON_CHECK_MSG(theta.IsSymmetric(),
                   "general moments require a symmetric initiator");
  DPKRON_CHECK_GE(k, 1u);
  const DigitSums s = ComputeDigitSums(theta);
  SkgMoments m;

  // E = ½[Σ_{u,v} P_uv − Σ_u P_uu].
  m.edges = 0.5 * (PowInt(s.entry_sum, k) - PowInt(s.trace, k));

  // H = Σ_c e2 = ½ Σ_c [R² − 2Rd − R2 + 2d²].
  m.hairpins = 0.5 * (PowInt(s.row_sq, k) - 2.0 * PowInt(s.row_diag, k) -
                      PowInt(s.entry_sq, k) + 2.0 * PowInt(s.trace_sq, k));

  // ∆ = (1/6)[Σ_{uvw} cyc − 3 Σ_{u=v} + 2 Σ_{u=v=w}].
  m.triangles = (PowInt(s.cyclic, k) - 3.0 * PowInt(s.diag_rowsq, k) +
                 2.0 * PowInt(s.trace_cube, k)) /
                6.0;

  // T = Σ_c e3 = (1/6) Σ_c [R³ − 3R²d − 3R·R2 + 6Rd² + 3R2·d + 2R3 − 6d³].
  m.tripins = (PowInt(s.row_cube, k) - 3.0 * PowInt(s.rowsq2_diag, k) -
               3.0 * PowInt(s.rowsq_row, k) + 6.0 * PowInt(s.row_diag_sq, k) +
               3.0 * PowInt(s.rowsq_diag, k) + 2.0 * PowInt(s.entry_cube, k) -
               6.0 * PowInt(s.trace_cube, k)) /
              6.0;
  return m;
}

SkgMoments ExpectedMomentsBruteForceN(const InitiatorN& theta, uint32_t k) {
  const uint64_t n = KroneckerNodeCount(theta.dim(), k);
  DPKRON_CHECK_MSG(n <= 256, "brute-force moments limited to 256 nodes");
  auto p = [&](uint64_t u, uint64_t v) {
    return EdgeProbabilityN(theta, k, u, v);
  };
  SkgMoments m;
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = u + 1; v < n; ++v) m.edges += p(u, v);
  }
  for (uint64_t c = 0; c < n; ++c) {
    double e1 = 0.0, e2 = 0.0, e3 = 0.0;
    for (uint64_t u = 0; u < n; ++u) {
      if (u == c) continue;
      const double x = p(c, u);
      e3 += e2 * x;
      e2 += e1 * x;
      e1 += x;
    }
    m.hairpins += e2;
    m.tripins += e3;
  }
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = u + 1; v < n; ++v) {
      const double puv = p(u, v);
      if (puv == 0.0) continue;
      for (uint64_t w = v + 1; w < n; ++w) {
        m.triangles += puv * p(v, w) * p(u, w);
      }
    }
  }
  return m;
}

}  // namespace dpkron
