// AVX2 implementation of the KronFit digit-pair kernels (see
// likelihood_kernels.h for the dispatch and determinism contract).
// Every kernel keeps the floating-point adds in the scalar chain order
// — the double outputs are released, so their bits are frozen. The
// streaming kernels (LogLikelihood / EdgeGradient) vectorize the
// integer digit counting around that fixed chain; the Metropolis loop
// keeps even the index math scalar (measured fastest — see the comment
// in MetropolisSwapsAvx2) and spends its win on the exp-free accept
// test instead.

#include "src/kronfit/likelihood_kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/rng.h"
#include "src/kronfit/permutation.h"

#ifdef __AVX2__
#include <immintrin.h>

namespace dpkron {
namespace {

// positions[w] for 8 node ids at once. One hardware gather beats both
// staging alternatives measured here: eight scalar stores + a 32-byte
// reload cannot store-forward (no single covering store, ~20-cycle
// stall per block), and an insert chain is 2-µop-per-insert port-5
// traffic that serializes against the shuffle-heavy popcount LUT below.
inline __m256i GatherPositions(__m256i w, const uint32_t* positions) {
  return _mm256_i32gather_epi32(reinterpret_cast<const int*>(positions),
                                w, 4);
}

// Per-32-bit-lane popcount: nibble shuffle-LUT, then the
// maddubs(×1)/madd(×1) pair folds the 4 byte counts of each lane.
inline __m256i Popcount32x8(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0,
                       1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
  return _mm256_madd_epi16(_mm256_maddubs_epi16(bytes, _mm256_set1_epi8(1)),
                           _mm256_set1_epi16(1));
}

// Padded-table cell indices for 8 position pairs:
// (popcount(p&q&mask) << shift) | popcount((p^q)&mask).
inline __m256i DigitIndex8(__m256i p, __m256i q, __m256i mask,
                           __m128i shift) {
  const __m256i both = _mm256_and_si256(_mm256_and_si256(p, q), mask);
  const __m256i diff = _mm256_and_si256(_mm256_xor_si256(p, q), mask);
  return _mm256_or_si256(_mm256_sll_epi32(Popcount32x8(both), shift),
                         Popcount32x8(diff));
}

inline size_t ScalarIndex(uint32_t p, uint32_t q, uint32_t mask,
                          uint32_t shift) {
  const uint32_t n11 =
      static_cast<uint32_t>(__builtin_popcount((p & q) & mask));
  const uint32_t nb =
      static_cast<uint32_t>(__builtin_popcount((p ^ q) & mask));
  return (size_t{n11} << shift) | nb;
}

// VEX-encoded exp approximation for delta ∈ (−41, 0) with proven
// relative error < 2e-11 against the true exp: Cody–Waite reduction —
// |n| ≤ 60, so n·ln2_hi is exact — plus a degree-9 Taylor polynomial on
// |r| ≤ ln2/2 (truncation ≤ 1e-11), Estrin-combined to shorten the
// dependency chain. Keeps the hot loop free of legacy-SSE libm code
// while the ymm uppers are dirty.
inline double ApproxExp(double delta) {
  constexpr double kInvLn2 = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;  // 20 low bits 0
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kRoundShift = 6755399441055744.0;  // 1.5 · 2^52
  const double nd = (delta * kInvLn2 + kRoundShift) - kRoundShift;
  const double r = (delta - nd * kLn2Hi) - nd * kLn2Lo;
  const double r2 = r * r;
  const double r4 = r2 * r2;
  const double p01 = 1.0 + r;
  const double p23 = (1.0 / 2.0) + r * (1.0 / 6.0);
  const double p45 = (1.0 / 24.0) + r * (1.0 / 120.0);
  const double p67 = (1.0 / 720.0) + r * (1.0 / 5040.0);
  const double p89 = (1.0 / 40320.0) + r * (1.0 / 362880.0);
  const double poly =
      p01 + r2 * (p23 + r2 * p45) + (r4 * r2) * (p67 + r2 * p89);
  // 2^n by exponent construction: n ∈ [−60, 0] keeps it normal.
  return poly * std::bit_cast<double>(
                    (uint64_t{1023} + static_cast<int64_t>(nd)) << 52);
}

// Metropolis accept test for delta ∈ (−40, 0): decides
// "uniform < std::exp(delta)" without calling std::exp in almost every
// case. ApproxExp brackets libm's exp (itself within a few ulp of true)
// inside ex·(1 ± 4e-11). When uniform falls outside that bracket the
// comparison against libm's value is already decided — the decision,
// and hence the trajectory, is bit-identical to the scalar path. Only
// an ambiguous uniform (probability ~8e-11 per test) falls back to
// std::exp itself.
inline bool AcceptNegativeDelta(double delta, double uniform) {
  const double ex = ApproxExp(delta);
  const double margin = 4e-11 * ex;
  if (uniform < ex - margin) return true;
  if (uniform >= ex + margin) return false;
  return uniform < std::exp(delta);
}

// One SwapDelta neighbor walk: continues `acc` over the list with
// et[idx(p_add, pw)] − et[idx(p_sub, pw)] per neighbor w ≠ skip, in list
// order (the scalar chain).
inline double SwapDeltaList(double acc, const uint32_t* neighbors,
                            size_t degree, uint32_t skip, uint32_t p_add,
                            uint32_t p_sub, const uint32_t* positions,
                            __m256i vmask, __m128i vshift, uint32_t mask,
                            uint32_t shift, const double* et) {
  const __m256i vadd = _mm256_set1_epi32(static_cast<int>(p_add));
  const __m256i vsub = _mm256_set1_epi32(static_cast<int>(p_sub));
  const __m256i vskip = _mm256_set1_epi32(static_cast<int>(skip));
  alignas(32) uint32_t idx_add[8];
  alignas(32) uint32_t idx_sub[8];
  size_t i = 0;
  for (; i + 8 <= degree; i += 8) {
    const __m256i w = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(neighbors + i));
    const __m256i vpw = GatherPositions(w, positions);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx_add),
                       DigitIndex8(vadd, vpw, vmask, vshift));
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx_sub),
                       DigitIndex8(vsub, vpw, vmask, vshift));
    const unsigned skip_mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpeq_epi32(w, vskip))));
    if (skip_mask == 0) {
      for (int j = 0; j < 8; ++j) acc += et[idx_add[j]] - et[idx_sub[j]];
    } else {
      for (int j = 0; j < 8; ++j) {
        if (!((skip_mask >> j) & 1u)) {
          acc += et[idx_add[j]] - et[idx_sub[j]];
        }
      }
    }
  }
  for (; i < degree; ++i) {
    const uint32_t w = neighbors[i];
    if (w == skip) continue;
    const uint32_t p = positions[w];
    acc += et[ScalarIndex(p_add, p, mask, shift)] -
           et[ScalarIndex(p_sub, p, mask, shift)];
  }
  return acc;
}

}  // namespace

double SwapDeltaAvx2(const uint32_t* u_neighbors, size_t u_degree,
                     uint32_t v, const uint32_t* v_neighbors,
                     size_t v_degree, uint32_t u, uint32_t pu, uint32_t pv,
                     const uint32_t* positions, uint32_t mask,
                     uint32_t shift, const double* edge_term_padded) {
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  double acc = SwapDeltaList(0.0, u_neighbors, u_degree, /*skip=*/v, pv,
                             pu, positions, vmask, vshift, mask, shift,
                             edge_term_padded);
  acc = SwapDeltaList(acc, v_neighbors, v_degree, /*skip=*/u, pu, pv,
                      positions, vmask, vshift, mask, shift,
                      edge_term_padded);
  // Clear the ymm uppers before returning to (possibly) legacy-SSE
  // caller code; without this every SSE instruction in the caller picks
  // up a false dependency on the dirty uppers. The assignment above also
  // keeps the second SwapDeltaList call out of tail position — a tail
  // jump would bypass this.
  _mm256_zeroupper();
  return acc;
}

void MetropolisSwapsAvx2(const uint32_t* offsets, const uint32_t* adjacency,
                         uint32_t n, PermutationState* sigma, Rng& rng,
                         uint64_t count, uint32_t mask, uint32_t shift,
                         const double* edge_term_padded) {
  // SwapNodes permutes entries in place, so the positions pointer stays
  // valid across swaps.
  const uint32_t* positions = sigma->sigma().data();
  const double* et = edge_term_padded;
  // Below this, exp(delta) < 2⁻⁵³ = NextDouble's granularity, so
  // "uniform < exp(delta)" can only hold for uniform == 0.0 (and then
  // still needs exp(delta) > 0 — checked with std::exp itself in that
  // once-per-2⁵³-draws case, matching the scalar loop even where exp
  // underflows to zero).
  constexpr double kExpUnderflow = -40.0;
  constexpr double kUlp = 0x1.0p-53;
  for (uint64_t step = 0; step < count; ++step) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    if (u == v) continue;
    const uint32_t pu = positions[u], pv = positions[v];
    // The delta walk is the scalar SwapDelta chain verbatim — same term
    // order, one accumulator, so the value (and the trajectory decided
    // on it) is bit-identical by construction. A long line of fancier
    // kernels was measured against this plain walk on AVX2 hardware and
    // every one of them lost: gathered 8-lane index math, 4-accumulator
    // reassociation (+ an ε-guarded accept to keep decisions exact),
    // staged prefetch pipelines across chains, and uint16 position
    // shadows all sat at 0.5–1.0× — out-of-order execution already
    // overlaps the random position/table loads across iterations, so
    // the loop is latency-bound on work no restructuring removes. What
    // this path DOES win over the dispatch fallback is per-swap
    // abstraction cost (no cross-TU SwapDelta call, no span
    // construction, padded shift|or indexing instead of a multiply) and
    // the accept test below (no libm exp on the ~80% of proposals with
    // delta < 0) — ~1.1× end to end on the Metropolis loop.
    double delta = 0.0;
    for (uint32_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const uint32_t w = adjacency[i];
      if (w == v) continue;
      const uint32_t q = positions[w];
      delta += et[ScalarIndex(pv, q, mask, shift)] -
               et[ScalarIndex(pu, q, mask, shift)];
    }
    for (uint32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const uint32_t w = adjacency[i];
      if (w == u) continue;
      const uint32_t q = positions[w];
      delta += et[ScalarIndex(pu, q, mask, shift)] -
               et[ScalarIndex(pv, q, mask, shift)];
    }
    bool accept = delta >= 0.0;
    if (!accept) {
      // Inline VEX replica of Rng::NextDouble(): the same single
      // NextU64 draw, bit-identical output (the 53-bit value converts
      // exactly; the power-of-two scale is exact). Calling NextDouble()
      // itself would execute its legacy-SSE conversion with the ymm
      // uppers dirty.
      const double uniform =
          static_cast<double>(rng.NextU64() >> 11) * kUlp;
      accept = delta < kExpUnderflow
                   ? (uniform == 0.0 && uniform < std::exp(delta))
                   : AcceptNegativeDelta(delta, uniform);
    }
    if (accept) sigma->SwapNodes(u, v);
  }
  _mm256_zeroupper();
}

double EdgeTermSumChunkAvx2(const uint32_t* offsets,
                            const uint32_t* adjacency, size_t begin,
                            size_t end, const uint32_t* positions,
                            uint32_t mask, uint32_t shift,
                            const double* edge_term_padded) {
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  alignas(32) uint32_t idx[8];
  double sum = 0.0;
  for (size_t u = begin; u < end; ++u) {
    // Lists are strictly sorted, so the v > u half-edges are a suffix —
    // but finding it by binary search costs more than it saves at SKG
    // degrees. Walk the whole row instead: a lane compare marks the
    // v > u lanes, all-≤ prefix blocks short-circuit before the
    // position loads, and the selected lanes are added in ascending
    // order (the scalar edge order).
    const uint32_t* row = adjacency + offsets[u];
    const size_t len = offsets[u + 1] - offsets[u];
    const uint32_t pu = positions[u];
    const __m256i vpu = _mm256_set1_epi32(static_cast<int>(pu));
    const __m256i vu = _mm256_set1_epi32(static_cast<int>(u));
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(row + i));
      // Node ids fit in 31 bits, so the signed compare is exact.
      const unsigned keep =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
              _mm256_cmpgt_epi32(w, vu))));
      if (keep == 0) continue;
      const __m256i vpw = GatherPositions(w, positions);
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx),
                         DigitIndex8(vpu, vpw, vmask, vshift));
      if (keep == 0xFFu) {
        for (int j = 0; j < 8; ++j) sum += edge_term_padded[idx[j]];
      } else {
        for (int j = 0; j < 8; ++j) {
          if ((keep >> j) & 1u) sum += edge_term_padded[idx[j]];
        }
      }
    }
    for (; i < len; ++i) {
      const uint32_t w = row[i];
      if (w <= u) continue;
      sum += edge_term_padded[ScalarIndex(pu, positions[w], mask, shift)];
    }
  }
  _mm256_zeroupper();
  return sum;
}

void EdgeGradientChunkAvx2(const uint32_t* offsets,
                           const uint32_t* adjacency, size_t begin,
                           size_t end, const uint32_t* positions,
                           uint32_t mask, uint32_t shift,
                           const double* grad4_padded, double out[4]) {
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  alignas(32) uint32_t idx[8];
  // Lane l of acc accumulates component l (a, b, c, unused) in exactly
  // the scalar per-component edge order — lane-wise adds do not mix
  // lanes, so each component's chain matches its scalar chain. Row
  // handling mirrors EdgeTermSumChunkAvx2: full-row walk with a v > u
  // lane mask instead of a binary search for the suffix.
  __m256d acc = _mm256_setzero_pd();
  for (size_t u = begin; u < end; ++u) {
    const uint32_t* row = adjacency + offsets[u];
    const size_t len = offsets[u + 1] - offsets[u];
    const uint32_t pu = positions[u];
    const __m256i vpu = _mm256_set1_epi32(static_cast<int>(pu));
    const __m256i vu = _mm256_set1_epi32(static_cast<int>(u));
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(row + i));
      const unsigned keep =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
              _mm256_cmpgt_epi32(w, vu))));
      if (keep == 0) continue;
      const __m256i vpw = GatherPositions(w, positions);
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx),
                         DigitIndex8(vpu, vpw, vmask, vshift));
      if (keep == 0xFFu) {
        for (int j = 0; j < 8; ++j) {
          acc = _mm256_add_pd(
              acc, _mm256_load_pd(grad4_padded + size_t{idx[j]} * 4));
        }
      } else {
        for (int j = 0; j < 8; ++j) {
          if ((keep >> j) & 1u) {
            acc = _mm256_add_pd(
                acc, _mm256_load_pd(grad4_padded + size_t{idx[j]} * 4));
          }
        }
      }
    }
    for (; i < len; ++i) {
      const uint32_t w = row[i];
      if (w <= u) continue;
      const size_t cell = ScalarIndex(pu, positions[w], mask, shift) * 4;
      acc = _mm256_add_pd(acc, _mm256_load_pd(grad4_padded + cell));
    }
  }
  _mm256_store_pd(out, acc);
  _mm256_zeroupper();
}

}  // namespace dpkron

#else  // !__AVX2__ — unreachable stubs (dispatch never selects kAvx2).

namespace dpkron {

double SwapDeltaAvx2(const uint32_t*, size_t, uint32_t, const uint32_t*,
                     size_t, uint32_t, uint32_t, uint32_t,
                     const uint32_t*, uint32_t, uint32_t, const double*) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return 0.0;
}

void MetropolisSwapsAvx2(const uint32_t*, const uint32_t*, uint32_t,
                         PermutationState*, Rng&, uint64_t, uint32_t,
                         uint32_t, const double*) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
}

double EdgeTermSumChunkAvx2(const uint32_t*, const uint32_t*, size_t,
                            size_t, const uint32_t*, uint32_t, uint32_t,
                            const double*) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return 0.0;
}

void EdgeGradientChunkAvx2(const uint32_t*, const uint32_t*, size_t,
                           size_t, const uint32_t*, uint32_t, uint32_t,
                           const double*, double[4]) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
}

}  // namespace dpkron

#endif  // __AVX2__
