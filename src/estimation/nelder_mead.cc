#include "src/estimation/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace dpkron {
namespace {

using Point = std::vector<double>;

Point Combine(const Point& x, const Point& y, double alpha) {
  // x + alpha * (x - y)
  Point out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + alpha * (x[i] - y[i]);
  return out;
}

}  // namespace

NelderMeadResult NelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& start, const NelderMeadOptions& options) {
  const size_t dim = start.size();
  DPKRON_CHECK_GE(dim, 1u);

  struct Vertex {
    Point x;
    double f;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back({start, objective(start)});
  for (size_t i = 0; i < dim; ++i) {
    Point x = start;
    x[i] += options.initial_step;
    simplex.push_back({x, objective(x)});
  }
  auto by_value = [](const Vertex& u, const Vertex& v) { return u.f < v.f; };

  NelderMeadResult result;
  for (uint32_t it = 0; it < options.max_iterations; ++it) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    result.iterations = it;

    // Convergence: value spread and simplex diameter.
    const double spread = simplex.back().f - simplex.front().f;
    double diameter = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      diameter = std::max(
          diameter, std::fabs(simplex.back().x[i] - simplex.front().x[i]));
    }
    if (spread <= options.value_tolerance &&
        diameter <= options.point_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    Point centroid(dim, 0.0);
    for (size_t v = 0; v < dim; ++v) {
      for (size_t i = 0; i < dim; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& coordinate : centroid) coordinate /= double(dim);

    const Vertex& worst = simplex.back();
    const Point reflected = Combine(centroid, worst.x, options.reflection);
    const double f_reflected = objective(reflected);

    if (f_reflected < simplex.front().f) {
      // Try to expand further along the same direction.
      const Point expanded = Combine(centroid, worst.x, options.expansion);
      const double f_expanded = objective(expanded);
      simplex.back() = f_expanded < f_reflected
                           ? Vertex{expanded, f_expanded}
                           : Vertex{reflected, f_reflected};
      continue;
    }
    if (f_reflected < simplex[dim - 1].f) {
      simplex.back() = {reflected, f_reflected};
      continue;
    }
    // Contract (outside if the reflection helped at all, inside otherwise).
    const bool outside = f_reflected < worst.f;
    const Point contracted =
        outside ? Combine(centroid, worst.x,
                          options.contraction * options.reflection)
                : Combine(centroid, worst.x, -options.contraction);
    const double f_contracted = objective(contracted);
    if (f_contracted < std::min(f_reflected, worst.f)) {
      simplex.back() = {contracted, f_contracted};
      continue;
    }
    // Shrink toward the best vertex.
    for (size_t v = 1; v <= dim; ++v) {
      for (size_t i = 0; i < dim; ++i) {
        simplex[v].x[i] = simplex[0].x[i] +
                          options.shrink * (simplex[v].x[i] - simplex[0].x[i]);
      }
      simplex[v].f = objective(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  result.point = simplex.front().x;
  result.value = simplex.front().f;
  return result;
}

}  // namespace dpkron
