// Deterministic random number generation for all stochastic components.
//
// Every sampler / mechanism in dpkron takes an explicit Rng&, so whole
// pipelines are reproducible from a single seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which is fast,
// has 256 bits of state, and passes BigCrush — more than adequate for
// graph sampling and Laplace noise (this is a privacy *research* library;
// for deployments a cryptographically secure source should replace it,
// see README "Limitations").

#ifndef DPKRON_COMMON_RNG_H_
#define DPKRON_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpkron {

// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  // Seeds the 256-bit state from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Not copyable (accidental stream duplication is almost always a bug in
  // experiment code); use Split() to derive independent streams.
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Next raw 64-bit output.
  uint64_t NextU64();

  // Uniform in [0, 1). 53-bit resolution.
  double NextDouble();

  // Uniform integer in [0, bound). Requires bound > 0. Unbiased
  // (Lemire's rejection method).
  uint64_t NextBounded(uint64_t bound);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Standard normal via Marsaglia polar method.
  double NextGaussian();

  // Laplace(0, scale): density (1/2b)·exp(−|x|/b). Requires scale > 0.
  double NextLaplace(double scale);

  // Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  // Geometric: number of failures before first success, p in (0, 1].
  uint64_t NextGeometric(double p);

  // Binomial(n, p): number of successes in n trials. Exact inversion by
  // geometric skipping (Batagelj–Brandes) when n·p is small — O(n·p + 1)
  // draws, skipping straight over failure runs — and the clamped normal
  // approximation once the variance n·p·(1−p) is large enough that the
  // discrepancy is far below sampling noise. p is clamped to [0, 1].
  // This is the workhorse of the edge-skipping SKG sampler, which splits
  // edge counts multinomially across Kronecker quadrants.
  uint64_t NextBinomial(uint64_t n, double p);

  // Block-draw APIs for vectorized consumers (the DP noise mechanisms):
  // out[i] receives exactly the value the i-th sequential Next* call
  // would have produced, and the stream advances identically — the
  // contract that lets a batched caller stay byte-compatible with a
  // draw-at-a-time one (tests/simd_test.cc enforces it). The per-draw
  // math (libm log1p etc.) stays scalar; the vector win is downstream,
  // in the element-wise noise application.
  void FillLaplace(double scale, double* out, size_t n);
  void FillBinomial(uint64_t trials, double p, uint64_t* out, size_t n);

  // A new Rng whose stream is independent of this one (and of further
  // outputs of this one), derived from the current state.
  Rng Split();

  // The complete generator state, for memoized replay of randomized
  // computations (StatCache): a cache entry stores the state the stream
  // reached when the computation was first run, and a cache hit restores
  // it so the caller's stream advances exactly as if the computation had
  // re-run. Restoring a state anywhere else duplicates a stream — the
  // bug the deleted copy constructor exists to prevent — so these are
  // not for general use.
  struct State {
    uint64_t s[4];
    bool have_gaussian;
    double spare_gaussian;
  };
  State SaveState() const;
  void RestoreState(const State& state);

  // FNV-1a digest of the complete state — the RNG component of StatCache
  // keys. Two Rngs with equal fingerprints produce identical streams.
  uint64_t StateFingerprint() const;

  // Random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_RNG_H_
