// "Network value": the distribution of components of the principal
// eigenvector of the adjacency matrix (the eigenvector associated with the
// largest eigenvalue), sorted descending — panel (d) of Figs 1–4.
//
// For a non-negative symmetric matrix the dominant eigenvalue is the
// spectral radius (Perron–Frobenius), so plain power iteration converges
// to the right vector.

#ifndef DPKRON_LINALG_NETWORK_VALUE_H_
#define DPKRON_LINALG_NETWORK_VALUE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"

namespace dpkron {

struct PowerIterationResult {
  double eigenvalue = 0.0;
  std::vector<double> eigenvector;  // unit norm, non-negative orientation
  uint32_t iterations = 0;
};

// Power iteration on the adjacency matrix. Deterministic start (degree
// vector) with random perturbation to avoid pathological orthogonality.
PowerIterationResult PrincipalEigenvector(GraphView graph, Rng& rng,
                                          uint32_t max_iterations = 1000,
                                          double tolerance = 1e-10);

// |components| of the principal eigenvector, sorted descending. This is
// exactly the network-value series plotted against rank.
std::vector<double> NetworkValue(GraphView graph, Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_LINALG_NETWORK_VALUE_H_
