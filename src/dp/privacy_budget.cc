#include "src/dp/privacy_budget.h"

#include <cstdio>

#include "src/common/macros.h"

namespace dpkron {
namespace {
// Tolerance for floating-point budget comparisons: spending exactly the
// remaining ε must succeed even after accumulation error.
constexpr double kSlack = 1e-12;
}  // namespace

PrivacyBudget::PrivacyBudget(double epsilon_total, double delta_total)
    : epsilon_total_(epsilon_total), delta_total_(delta_total) {
  DPKRON_CHECK_GT(epsilon_total, 0.0);
  DPKRON_CHECK_GE(delta_total, 0.0);
  DPKRON_CHECK_LT(delta_total, 1.0);
}

Status PrivacyBudget::Spend(double epsilon, double delta,
                            const std::string& label) {
  if (epsilon < 0.0 || delta < 0.0) {
    return Status::InvalidArgument("negative privacy charge: " + label);
  }
  if (epsilon == 0.0 && delta == 0.0) {
    return Status::InvalidArgument("empty privacy charge: " + label);
  }
  if (epsilon_spent_ + epsilon > epsilon_total_ + kSlack) {
    return Status::FailedPrecondition("epsilon budget exhausted at: " + label);
  }
  if (delta_spent_ + delta > delta_total_ + kSlack) {
    return Status::FailedPrecondition("delta budget exhausted at: " + label);
  }
  epsilon_spent_ += epsilon;
  delta_spent_ += delta;
  ledger_.push_back({label, epsilon, delta});
  return Status::Ok();
}

std::string PrivacyBudget::ToString() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "PrivacyBudget: spent (%.6g, %.6g) of (%.6g, %.6g)\n",
                epsilon_spent_, delta_spent_, epsilon_total_, delta_total_);
  std::string out = line;
  for (const LedgerEntry& entry : ledger_) {
    std::snprintf(line, sizeof(line), "  %-40s eps=%.6g delta=%.6g\n",
                  entry.label.c_str(), entry.epsilon, entry.delta);
    out += line;
  }
  return out;
}

}  // namespace dpkron
