#include "src/estimation/nelder_mead.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

TEST(NelderMeadTest, MinimizesQuadratic1D) {
  const auto result = NelderMead(
      [](const std::vector<double>& x) { return (x[0] - 3.0) * (x[0] - 3.0); },
      {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 3.0, 1e-6);
  EXPECT_NEAR(result.value, 0.0, 1e-10);
}

TEST(NelderMeadTest, MinimizesShiftedSphere3D) {
  const auto result = NelderMead(
      [](const std::vector<double>& x) {
        return (x[0] - 1) * (x[0] - 1) + (x[1] + 2) * (x[1] + 2) +
               (x[2] - 0.5) * (x[2] - 0.5);
      },
      {0.0, 0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 1.0, 1e-5);
  EXPECT_NEAR(result.point[1], -2.0, 1e-5);
  EXPECT_NEAR(result.point[2], 0.5, 1e-5);
}

TEST(NelderMeadTest, Rosenbrock2D) {
  NelderMeadOptions options;
  options.max_iterations = 5000;
  const auto result = NelderMead(
      [](const std::vector<double>& x) {
        const double t1 = 1 - x[0];
        const double t2 = x[1] - x[0] * x[0];
        return t1 * t1 + 100 * t2 * t2;
      },
      {-1.2, 1.0}, options);
  EXPECT_NEAR(result.point[0], 1.0, 1e-4);
  EXPECT_NEAR(result.point[1], 1.0, 1e-4);
}

TEST(NelderMeadTest, RespectsIterationBudget) {
  NelderMeadOptions options;
  options.max_iterations = 5;
  const auto result = NelderMead(
      [](const std::vector<double>& x) { return std::fabs(x[0] - 100); },
      {0.0}, options);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.iterations, 5u);
}

TEST(NelderMeadTest, StartAtOptimumStaysThere) {
  const auto result = NelderMead(
      [](const std::vector<double>& x) { return x[0] * x[0] + x[1] * x[1]; },
      {0.0, 0.0});
  EXPECT_NEAR(result.point[0], 0.0, 1e-6);
  EXPECT_NEAR(result.point[1], 0.0, 1e-6);
}

TEST(NelderMeadTest, PiecewiseNonSmoothObjective) {
  const auto result = NelderMead(
      [](const std::vector<double>& x) {
        return std::fabs(x[0] - 2) + std::fabs(x[1] + 1);
      },
      {5.0, 5.0});
  EXPECT_NEAR(result.point[0], 2.0, 1e-4);
  EXPECT_NEAR(result.point[1], -1.0, 1e-4);
}

}  // namespace
}  // namespace dpkron
