// Element-wise AVX2 kernels shared by spmv / ANF / the DP mechanisms.
//
// Every function here is an exact drop-in for the scalar loop it
// replaces: each output element is produced by the same operations in
// the same order as the scalar code (one rounding per element for the
// floating-point kernels, pure bitwise ops for the integer ones), so
// results are bit-identical at every dispatch level. Callers must only
// reach these behind an Avx2Active() check — when the AVX2 TUs were
// compiled without AVX2 support these are unreachable aborting stubs.

#ifndef DPKRON_COMMON_VEC_KERNELS_H_
#define DPKRON_COMMON_VEC_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace dpkron {

// dst[i] = a[i] + b[i] (dst may alias a or b).
void AddVectorsAvx2(const double* a, const double* b, double* dst,
                    size_t n);

// y[i] += alpha * x[i]. Compiled with -ffp-contract=off, so the
// multiply and add round separately — exactly like the baseline TUs.
void AxpyAvx2(double alpha, const double* x, double* y, size_t n);

// x[i] *= alpha.
void ScaleAvx2(double alpha, double* x, size_t n);

// dst[i] |= src[i]; returns true iff any dst word changed.
bool OrMergeAvx2(uint64_t* dst, const uint64_t* src, size_t n);

// ANF expand round for one node: dst[t] |= masks[v·trials + t] for
// every v in neighbors[0, degree). Returns true iff any dst word
// changed. One call per node keeps the whole neighbor walk inside the
// AVX2 translation unit instead of crossing the ISA boundary per
// neighbor.
bool OrMergeRowAvx2(uint64_t* dst, const uint64_t* masks, size_t trials,
                    const uint32_t* neighbors, size_t degree);

}  // namespace dpkron

#endif  // DPKRON_COMMON_VEC_KERNELS_H_
