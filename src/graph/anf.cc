#include "src/graph/anf.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace dpkron {
namespace {

// Flajolet–Martin bias correction constant: E[2^R] ≈ n / 0.77351.
constexpr double kFmPhi = 0.77351;

// Index of the lowest zero bit of x (0-based); 64 if x is all ones.
inline uint32_t LowestZeroBit(uint64_t x) {
  const uint64_t inverted = ~x;
  if (inverted == 0) return 64;
  return static_cast<uint32_t>(__builtin_ctzll(inverted));
}

// Draws an FM-distributed bit: bit j set with probability 2^-(j+1).
inline uint64_t FmBit(Rng& rng) {
  // Equivalent to a geometric(1/2) draw; clamp to 63.
  const uint32_t leading = static_cast<uint32_t>(
      __builtin_ctzll(rng.NextU64() | (1ULL << 63)));
  return 1ULL << (leading < 64 ? leading : 63);
}

}  // namespace

std::vector<uint64_t> ApproxHopPlot(const Graph& graph, Rng& rng,
                                    const AnfOptions& options) {
  DPKRON_CHECK_GT(options.num_trials, 0u);
  const uint32_t n = graph.NumNodes();
  const uint32_t trials = options.num_trials;
  if (n == 0) return {0};

  // masks[u*trials + t]: sketch of the ball around u in trial t.
  std::vector<uint64_t> masks(static_cast<size_t>(n) * trials);
  for (Graph::NodeId u = 0; u < n; ++u) {
    for (uint32_t t = 0; t < trials; ++t) {
      masks[static_cast<size_t>(u) * trials + t] = FmBit(rng);
    }
  }

  auto estimate_total = [&]() {
    double total = 0.0;
    for (Graph::NodeId u = 0; u < n; ++u) {
      double mean_r = 0.0;
      for (uint32_t t = 0; t < trials; ++t) {
        mean_r += LowestZeroBit(masks[static_cast<size_t>(u) * trials + t]);
      }
      mean_r /= trials;
      total += std::pow(2.0, mean_r) / kFmPhi;
    }
    return static_cast<uint64_t>(total);
  };

  std::vector<uint64_t> hop_plot;
  hop_plot.push_back(estimate_total());  // h = 0

  std::vector<uint64_t> next(masks.size());
  for (uint32_t hop = 1; hop <= options.max_hops; ++hop) {
    next = masks;
    bool changed = false;
    for (Graph::NodeId u = 0; u < n; ++u) {
      uint64_t* dst = &next[static_cast<size_t>(u) * trials];
      for (Graph::NodeId v : graph.Neighbors(u)) {
        const uint64_t* src = &masks[static_cast<size_t>(v) * trials];
        for (uint32_t t = 0; t < trials; ++t) {
          const uint64_t merged = dst[t] | src[t];
          changed |= (merged != dst[t]);
          dst[t] = merged;
        }
      }
    }
    masks.swap(next);
    if (!changed) break;  // All balls saturated: N(h) has converged.
    hop_plot.push_back(estimate_total());
  }
  // N(0) = n and N(1) = n + 2E are known exactly; pin them (the FM
  // sketch's multiplicative bias is worst at tiny per-node counts) and
  // restore monotonicity for the estimated tail.
  hop_plot[0] = n;
  if (hop_plot.size() > 1) hop_plot[1] = n + 2 * graph.NumEdges();
  for (size_t h = 1; h < hop_plot.size(); ++h) {
    hop_plot[h] = std::max(hop_plot[h], hop_plot[h - 1]);
  }
  return hop_plot;
}

}  // namespace dpkron
