// MmapGraph — the out-of-core .dpkb backing: zero-copy round trips,
// the no-SIGBUS validation contract (truncation and corruption degrade
// to a clean Status before anything is mapped), the v2 copying
// fallback, concurrent readers on one mapping, GraphHandle ownership
// semantics, ReadEdgeListMapped's sidecar protocol, and the
// bit-identical-statistics contract across backings and thread counts.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/core/release.h"
#include "src/graph/graph_io.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::PetersenGraph;

// Per-test scratch file, removed (with any sidecar debris) on scope
// exit so reruns never see a previous run's bytes.
class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_(::testing::TempDir() + "/" + stem + "_" +
              std::to_string(::getpid())) {
    Remove();
  }
  ~TempFile() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  void Remove() const {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".dpkb");
    std::filesystem::remove(path_ + ".dpkb.lock");
  }
  std::string path_;
};

// Restores the ambient pool size on scope exit (same idiom as
// parallel_test.cc) so thread-count sweeps can't leak configuration.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedThreadCount() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectViewEquals(GraphView actual, const Graph& expected) {
  ASSERT_EQ(actual.NumNodes(), expected.NumNodes());
  ASSERT_EQ(actual.NumEdges(), expected.NumEdges());
  EXPECT_EQ(actual.Edges(), expected.Edges());
  EXPECT_EQ(actual.ContentFingerprint(), expected.ContentFingerprint());
}

TEST(MmapGraphTest, MapsAV3FileZeroCopy) {
  const Graph g = PetersenGraph();
  TempFile file("mmap_petersen.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());

  auto mapped = MmapGraph::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value()->mapped());
  ExpectViewEquals(mapped.value()->view(), g);
  // The v3 sections are 64-byte aligned — the property that lets SIMD
  // kernels consume the mapping in place.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(
                mapped.value()->view().Offsets().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(
                mapped.value()->view().Adjacency().data()) % 64, 0u);
  // Standalone file: no source stamp.
  EXPECT_EQ(mapped.value()->source_stamp().size, 0u);
  EXPECT_EQ(mapped.value()->source_stamp().checksum, 0u);
}

TEST(MmapGraphTest, EmptyGraphRoundTrips) {
  TempFile file("mmap_empty.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(Graph(), file.path()).ok());
  auto mapped = MmapGraph::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value()->mapped());
  EXPECT_EQ(mapped.value()->NumNodes(), 0u);
  EXPECT_EQ(mapped.value()->NumEdges(), 0u);
}

TEST(MmapGraphTest, MissingFileIsNotFound) {
  auto mapped = MmapGraph::Open(::testing::TempDir() + "/no_such_graph.dpkb");
  EXPECT_FALSE(mapped.ok());
}

// The no-SIGBUS contract: any truncation — mid-header, mid-offsets,
// mid-adjacency, one byte short — fails validation with a clean Status
// BEFORE the file is mapped. Kernels never touch a page that isn't
// backed by the validated range.
TEST(MmapGraphTest, TruncationAnywhereFailsCleanly) {
  const Graph g = PetersenGraph();
  TempFile file("mmap_truncated.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  const std::string good = ReadAll(file.path());
  ASSERT_GT(good.size(), 64u);

  const size_t cuts[] = {0, 10, 55, 64, 70, 100, good.size() - 4,
                         good.size() - 1};
  for (const size_t cut : cuts) {
    WriteAll(file.path(), good.substr(0, cut));
    auto mapped = MmapGraph::Open(file.path());
    EXPECT_FALSE(mapped.ok()) << "truncation at byte " << cut;
  }
  // Trailing garbage is an exact-size violation too, not an over-map.
  WriteAll(file.path(), good + std::string(7, '\0'));
  EXPECT_FALSE(MmapGraph::Open(file.path()).ok());
}

TEST(MmapGraphTest, BadMagicAndVersionFail) {
  const Graph g = PetersenGraph();
  TempFile file("mmap_header.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  const std::string good = ReadAll(file.path());

  std::string bad = good;
  bad[0] = 'X';
  WriteAll(file.path(), bad);
  EXPECT_FALSE(MmapGraph::Open(file.path()).ok());

  bad = good;
  bad[8] = 99;  // versions other than 2 and 3 are unreadable
  WriteAll(file.path(), bad);
  EXPECT_FALSE(MmapGraph::Open(file.path()).ok());
}

// Interior payload corruption is invisible to the default O(header)
// open (the write-time checksum is trusted) and caught by
// verify_payload — the knob for .dpkb files of untrusted origin.
TEST(MmapGraphTest, VerifyPayloadCatchesCorruption) {
  const Graph g = CompleteGraph(9);
  TempFile file("mmap_corrupt.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  std::string bytes = ReadAll(file.path());
  bytes[bytes.size() - 3] ^= 0x20;  // flip an adjacency bit
  WriteAll(file.path(), bytes);

  ASSERT_TRUE(MmapGraph::Open(file.path()).ok());  // trusted: not re-hashed

  MmapOptions verify;
  verify.verify_payload = true;
  EXPECT_FALSE(MmapGraph::Open(file.path(), verify).ok());

  // An intact file passes verify_payload (and populate is just a hint).
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  MmapOptions both;
  both.verify_payload = true;
  both.populate = true;
  auto mapped = MmapGraph::Open(file.path(), both);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectViewEquals(mapped.value()->view(), g);
}

// Hand-craft a version-2 file (packed layout: arrays immediately after
// the 56-byte header) and check both readers accept it: ReadBinaryGraph
// directly, MmapGraph via the copying fallback (mapped() == false —
// unaligned sections can't be consumed in place).
TEST(MmapGraphTest, Version2FileFallsBackToCopyingLoad) {
  const Graph g = PetersenGraph();
  TempFile file("mmap_v2.dpkb");
  // Borrow the v3 header (same 56 bytes) and repack the sections.
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  const std::string v3 = ReadAll(file.path());
  std::string v2 = v3.substr(0, 56);
  v2[8] = 2;  // version
  const size_t offsets_bytes = sizeof(uint32_t) * (g.NumNodes() + 1);
  v2.append(v3.substr(64, offsets_bytes));  // offsets, packed at 56
  v2.append(v3.substr(v3.size() - sizeof(uint32_t) * g.Adjacency().size()));
  WriteAll(file.path(), v2);

  auto copied = ReadBinaryGraph(file.path());
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_EQ(copied.value().Edges(), g.Edges());

  auto mapped = MmapGraph::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_FALSE(mapped.value()->mapped());  // served via the fallback
  ExpectViewEquals(mapped.value()->view(), g);

  // The current writer re-emits v3; the upgrade round-trips the graph.
  TempFile rewritten("mmap_v2_upgraded.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(mapped.value()->view(), rewritten.path()).ok());
  auto upgraded = MmapGraph::Open(rewritten.path());
  ASSERT_TRUE(upgraded.ok());
  EXPECT_TRUE(upgraded.value()->mapped());
  ExpectViewEquals(upgraded.value()->view(), g);
}

TEST(MmapGraphTest, ConcurrentReadersShareOneMapping) {
  Rng rng(11);
  const Graph g = SampleSkg(Initiator2{0.9, 0.6, 0.2}, 8, rng);
  TempFile file("mmap_concurrent.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  auto mapped = MmapGraph::Open(file.path());
  ASSERT_TRUE(mapped.ok());

  const uint64_t expected_triangles = CountTriangles(g);
  const uint64_t expected_fingerprint = g.ContentFingerprint();
  std::vector<std::thread> readers;
  std::vector<uint64_t> triangles(8, 0);
  std::vector<uint64_t> fingerprints(8, 0);
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      const GraphView view = mapped.value()->view();
      triangles[t] = CountTriangles(view);
      fingerprints[t] = view.ContentFingerprint();
    });
  }
  for (std::thread& reader : readers) reader.join();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(triangles[t], expected_triangles);
    EXPECT_EQ(fingerprints[t], expected_fingerprint);
  }
}

TEST(GraphHandleTest, CarriesEitherBackingBehindOneType) {
  const GraphHandle empty;
  EXPECT_EQ(empty.NumNodes(), 0u);
  EXPECT_FALSE(empty.mmap_backed());

  const Graph g = PetersenGraph();
  const GraphHandle ram = g;  // implicit, like every scenario site
  EXPECT_FALSE(ram.mmap_backed());
  ExpectViewEquals(ram, g);  // implicit operator GraphView

  TempFile file("handle.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  auto mapped = MmapGraph::Open(file.path());
  ASSERT_TRUE(mapped.ok());
  const GraphHandle out_of_core(mapped.value());
  EXPECT_TRUE(out_of_core.mmap_backed());
  ExpectViewEquals(out_of_core, g);

  // Copies share the backing — and keep it alive (the handle returned
  // from a load can outlive every other reference).
  GraphHandle copy = out_of_core;
  EXPECT_TRUE(copy.mmap_backed());
  EXPECT_EQ(copy.view().ContentFingerprint(), g.ContentFingerprint());
}

// ReadEdgeListMapped: miss parses + writes the v3 sidecar and serves
// the mapping; hit maps in O(header); a source rewrite invalidates the
// stamp (content-addressed, so a same-size rewrite still misses); a
// corrupt sidecar silently rebuilds.
TEST(ReadEdgeListMappedTest, SidecarMissHitStaleAndCorrupt) {
  TempFile file("mapped_source.edges");
  WriteAll(file.path(), "0 1\n1 2\n2 3\n3 0\n");

  auto first = ReadEdgeListMapped(file.path());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first.value().mmap_backed());
  EXPECT_EQ(first.value().NumNodes(), 4u);
  EXPECT_EQ(first.value().NumEdges(), 4u);
  ASSERT_TRUE(std::filesystem::exists(file.path() + ".dpkb"));

  // Hit: same bytes, same graph, still mapped.
  auto hit = ReadEdgeListMapped(file.path());
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().mmap_backed());
  EXPECT_EQ(hit.value().view().ContentFingerprint(),
            first.value().view().ContentFingerprint());

  // Same-size rewrite: the stamp is a content checksum, not an mtime,
  // so the stale sidecar is rebuilt and the new edge appears.
  WriteAll(file.path(), "0 1\n1 2\n2 3\n3 1\n");
  auto stale = ReadEdgeListMapped(file.path());
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_TRUE(stale.value().mmap_backed());
  EXPECT_EQ(stale.value().NumEdges(), 4u);
  EXPECT_NE(stale.value().view().ContentFingerprint(),
            first.value().view().ContentFingerprint());
  GraphView stale_view = stale.value();
  EXPECT_TRUE(stale_view.HasEdge(3, 1));

  // Corrupt sidecar: rebuilt, never served.
  WriteAll(file.path() + ".dpkb", "not a dpkb file");
  auto rebuilt = ReadEdgeListMapped(file.path());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt.value().view().ContentFingerprint(),
            stale.value().view().ContentFingerprint());
}

// The sidecar records the parse source; the mapped handle must agree
// bit-for-bit with the direct parser (the cache contract), including
// the messy-format cases the text reader tolerates.
TEST(ReadEdgeListMappedTest, AgreesWithDirectParse) {
  TempFile file("mapped_agrees.edges");
  WriteAll(file.path(),
           "# comment\r\n10 20\n20\t30\n\n30  40\r\n40 10\n10 30\n");
  auto direct = ReadEdgeList(file.path());
  ASSERT_TRUE(direct.ok());
  auto mapped = ReadEdgeListMapped(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectViewEquals(mapped.value(), direct.value());
}

// The acceptance bar for the whole out-of-core seam: a fixed-seed
// release computes BYTE-identical statistics whether the graph lives in
// RAM arenas or an mmap'd .dpkb, at 1, 2 and 8 threads.
TEST(MmapGraphTest, StatisticsBitIdenticalAcrossBackingsAndThreads) {
  Rng rng(2026);
  const Graph g = SampleSkg(Initiator2{0.9, 0.6, 0.2}, 9, rng);
  TempFile file("mmap_identical.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(g, file.path()).ok());
  auto mapped = MmapGraph::Open(file.path());
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped.value()->mapped());

  StatisticsOptions options;
  options.anf_trials = 8;
  options.exact_hop_plot_limit = 64;  // exercise the ANF (rng-consuming) route
  const ReleasePipeline pipeline(options);

  Rng baseline_rng(41);
  ScopedThreadCount one(1);
  const GraphStatistics baseline = pipeline.ComputeEphemeral(g, baseline_rng);
  for (const int threads : {1, 2, 8}) {
    ScopedThreadCount scope(threads);
    Rng ram_rng(41), map_rng(41);
    const GraphStatistics from_ram = pipeline.ComputeEphemeral(g, ram_rng);
    const GraphStatistics from_map =
        pipeline.ComputeEphemeral(mapped.value()->view(), map_rng);
    EXPECT_EQ(from_ram, baseline) << threads << " threads";
    EXPECT_EQ(from_map, baseline) << threads << " threads";
  }
}

}  // namespace
}  // namespace dpkron
