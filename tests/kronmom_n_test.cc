#include "src/estimation/kronmom_n.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/skg/moments.h"
#include "src/skg/moments_n.h"

namespace dpkron {
namespace {

TEST(ChooseOrderNTest, Powers) {
  EXPECT_EQ(ChooseOrderN(8, 2), 3u);
  EXPECT_EQ(ChooseOrderN(9, 2), 4u);
  EXPECT_EQ(ChooseOrderN(9, 3), 2u);
  EXPECT_EQ(ChooseOrderN(5242, 3), 8u);  // 3^8 = 6561
}

TEST(MomentObjectiveNTest, ZeroAtTruth) {
  const auto theta = InitiatorN::Create(3, {0.9, 0.4, 0.2,  //
                                            0.4, 0.6, 0.3,  //
                                            0.2, 0.3, 0.5})
                         .value();
  const uint32_t k = 6;
  const GraphFeatures observed = FromMoments(ExpectedMomentsN(theta, k));
  // Upper triangle of theta in row-major (i <= j) order.
  const std::vector<double> upper = {0.9, 0.4, 0.2, 0.6, 0.3, 0.5};
  EXPECT_NEAR(MomentObjectiveN(upper, 3, k, observed), 0.0, 1e-10);
}

TEST(MomentObjectiveNTest, MatchesTwoByTwoObjective) {
  const Initiator2 theta{0.9, 0.5, 0.2};
  const uint32_t k = 8;
  const GraphFeatures observed = FromMoments(ExpectedMoments(theta, k));
  const Initiator2 off{0.85, 0.55, 0.25};
  const double via_n =
      MomentObjectiveN({off.a, off.b, off.c}, 2, k, observed);
  const double via_2 = MomentObjective(off, k, observed);
  EXPECT_NEAR(via_n, via_2, 1e-9 * (1 + via_2));
}

TEST(FitKronMomNTest, RecoversTwoByTwoTruth) {
  const Initiator2 truth{0.99, 0.45, 0.25};
  const uint32_t k = 12;
  const GraphFeatures observed = FromMoments(ExpectedMoments(truth, k));
  Rng rng(1);
  const KronMomNResult fit = FitKronMomN(observed, 2, k, rng);
  EXPECT_LT(fit.objective, 1e-6);
  // The fitted matrix reproduces the observed moments (parameters may be
  // permuted: relabeling rows/cols is an SKG symmetry).
  const auto fitted = InitiatorN::Create(2, fit.entries).value();
  const SkgMoments m = ExpectedMomentsN(fitted, k);
  EXPECT_NEAR(m.edges, observed.edges, 0.01 * observed.edges);
  EXPECT_NEAR(m.triangles, observed.triangles, 0.05 * observed.triangles);
}

TEST(FitKronMomNTest, ThreeByThreeMomentFit) {
  // Identifiability of all 6 parameters from 4 moments is not given; the
  // fit must instead reproduce the observed moments accurately.
  const auto truth = InitiatorN::Create(3, {0.95, 0.5, 0.2,  //
                                            0.5, 0.6, 0.3,   //
                                            0.2, 0.3, 0.4})
                         .value();
  const uint32_t k = 8;
  const GraphFeatures observed = FromMoments(ExpectedMomentsN(truth, k));
  Rng rng(2);
  const KronMomNResult fit = FitKronMomN(observed, 3, k, rng);
  EXPECT_LT(fit.objective, 1e-5);
  const auto fitted = InitiatorN::Create(3, fit.entries).value();
  const SkgMoments m = ExpectedMomentsN(fitted, k);
  EXPECT_NEAR(m.edges, observed.edges, 0.02 * observed.edges);
  EXPECT_NEAR(m.hairpins, observed.hairpins, 0.05 * observed.hairpins);
  EXPECT_NEAR(m.triangles, observed.triangles,
              0.10 * observed.triangles + 1);
}

TEST(FitKronMomNTest, DeterministicGivenSeed) {
  const GraphFeatures observed =
      FromMoments(ExpectedMoments({0.9, 0.5, 0.2}, 10));
  Rng rng1(5), rng2(5);
  KronMomNOptions options;
  options.num_starts = 6;
  const auto f1 = FitKronMomN(observed, 2, 10, rng1, options);
  const auto f2 = FitKronMomN(observed, 2, 10, rng2, options);
  EXPECT_EQ(f1.entries, f2.entries);
}

}  // namespace
}  // namespace dpkron
