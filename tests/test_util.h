// Shared helpers for the dpkron test suite.

#ifndef DPKRON_TESTS_TEST_UTIL_H_
#define DPKRON_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/graph_builder.h"

namespace dpkron::testing {

using EdgeList = std::vector<std::pair<Graph::NodeId, Graph::NodeId>>;

inline Graph MakeGraph(uint32_t n, const EdgeList& edges) {
  return GraphBuilder::FromEdges(n, edges);
}

// Path 0-1-2-...-(n-1).
inline Graph PathGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return MakeGraph(n, edges);
}

// Cycle on n nodes.
inline Graph CycleGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return MakeGraph(n, edges);
}

// Complete graph K_n.
inline Graph CompleteGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return MakeGraph(n, edges);
}

// Star: center 0, leaves 1..n-1.
inline Graph StarGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t v = 1; v < n; ++v) edges.emplace_back(0u, v);
  return MakeGraph(n, edges);
}

// The Petersen graph (3-regular, 10 nodes, 15 edges, girth 5 → no
// triangles, 30 wedges).
inline Graph PetersenGraph() {
  return MakeGraph(10, {{0, 1},
                        {1, 2},
                        {2, 3},
                        {3, 4},
                        {4, 0},
                        {0, 5},
                        {1, 6},
                        {2, 7},
                        {3, 8},
                        {4, 9},
                        {5, 7},
                        {7, 9},
                        {9, 6},
                        {6, 8},
                        {8, 5}});
}

}  // namespace dpkron::testing

#endif  // DPKRON_TESTS_TEST_UTIL_H_
