// Figure 1 reproduction: CA-GrQC(-like) — hop plot, degree distribution,
// scree plot, network value and clustering, for Original / KronFit /
// KronMom / Private, plus "Expected" averages over realizations (the paper
// used 100; default here is 10 for CI runtime — pass --realizations=100
// for the full paper protocol).

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  dpkron::bench::FigureConfig config;
  config.experiment = "fig1_ca_grqc";
  config.dataset = "CA-GrQC-like";
  config.expected_realizations = 10;
  return dpkron::bench::RunFigureBench(config, argc, argv);
}
