// StatCache — a process-wide, content-addressed memo for the expensive
// deterministic quantities an ε/seed sweep recomputes otherwise: degree
// sequences, per-node triangle counts, TriangleSensitivityProfiles,
// KronFit fits, graph features, statistics panels and expected-statistic
// tables. A 5-ε sweep computes each of them once instead of once per ε.
//
// Keying. Entries live in named *domains* (one per computation kind,
// e.g. "kronfit", "triangle_profile") and are addressed by a 64-bit
// FNV-1a digest built with CacheKey over every input the computation is
// a function of: the graph's content fingerprint (identical to its
// .dpkb checksum — see Graph::ContentFingerprint), the computation's
// parameters, and — for randomized computations — the Rng's
// StateFingerprint. Because every cached computation is a pure function
// of its key, a hit is bit-identical to a recomputation, which is what
// keeps cached scenario output byte-identical to the uncached path
// (tests/stat_cache_test.cc enforces it).
//
// Randomized computations additionally store the Rng::State their stream
// reached, and the call-site wrappers (FitKronFitCached,
// ReleasePipeline::Compute) restore it on a hit — so the caller's stream
// advances exactly as if the work had re-run and every downstream draw
// is unchanged.
//
// Tiers. The in-memory memo is tier 0. A driver may additionally attach
// a persistent DISK tier (AttachDiskTier → common/disk_cache.h): domains
// that opt in with GetOrComputeDurable supply a value codec, and the
// owner of an in-memory miss then reads through to the shared on-disk
// store before computing, and writes behind after. Disk entries carry
// the same (domain, key) content address, so the bit-identical-on-hit
// contract — including Rng stream restoration — holds across process
// boundaries: a warm dpkrond restart, a repeated CLI run and the shards
// of a multi-process sweep all serve the exact bytes a cold compute
// would produce.
//
// Concurrency. The cache is shared by all threads (the sweep engine runs
// the run matrix over the thread pool). A miss registers an in-flight
// entry before computing, so concurrent requests for the same key wait
// on the first computation instead of duplicating it; waiting is
// deadlock-free because the compute-dependency graph is a shallow DAG
// (composite entries depend only on leaf entries, which wait on nothing).
// Cross-PROCESS misses on one disk store are single-flighted with the
// sidecar cache's advisory O_EXCL lock protocol (see DiskEntryClaim).
//
// The cache is DISABLED by default: library callers and the test suite
// see plain recomputation unless a driver (dpkron_experiments, RunSweep,
// dpkrond) opts in with set_enabled(true). Memory is bounded by an
// optional byte budget (set_byte_budget): when the resident footprint
// exceeds it, fulfilled entries are evicted oldest-access-first — coarse
// LRU, safe because an evicted key either recomputes or (with a disk
// tier) reloads bit-identically. The default budget of 0 keeps the
// pre-budget behavior (no eviction; Clear() between batches releases
// everything).

#ifndef DPKRON_COMMON_STAT_CACHE_H_
#define DPKRON_COMMON_STAT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/disk_cache.h"
#include "src/common/fnv.h"
#include "src/common/journal.h"
#include "src/common/macros.h"
#include "src/common/status.h"

namespace dpkron {

// Accumulates an FNV-1a digest over the typed fields of a cache key.
// Field order matters (by design: keys are positional, like a struct).
class CacheKey {
 public:
  CacheKey& Mix(uint64_t value) {
    hash_ = Fnv1a64(&value, sizeof(value), hash_);
    return *this;
  }
  CacheKey& MixDouble(double value) {
    // Bit pattern, not value: -0.0 and 0.0 key differently, NaNs key
    // stably — the same criterion GraphStatistics equality uses.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    return Mix(bits);
  }
  CacheKey& MixBytes(const void* data, size_t len) {
    hash_ = Fnv1a64(&len, sizeof(len), hash_);  // length-prefixed
    hash_ = Fnv1a64(data, len, hash_);
    return *this;
  }

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = kFnv1aOffsetBasis;
};

// Coarse resident footprint of a cached value, for the byte-budget cap:
// exact for flat PODs and POD vectors. Cached types that own containers
// provide a non-template overload next to their definition (found by
// ADL at the GetOrCompute call — see GraphStatistics in core/release.h).
template <typename T>
inline size_t ApproxCacheBytes(const T&) {
  return sizeof(T);
}
template <typename T>
inline size_t ApproxCacheBytes(const std::vector<T>& values) {
  return sizeof(values) + values.capacity() * sizeof(T);
}

class StatCache {
 public:
  struct Counters {
    uint64_t hits = 0;    // in-memory memo hits
    uint64_t misses = 0;  // in-memory memo misses (owner computed or read disk)
    // Of the in-memory misses in a durable domain with a disk tier
    // attached: how many were served warm from disk vs computed cold.
    uint64_t disk_hits = 0;
    uint64_t disk_misses = 0;
  };

  // The one process-wide instance.
  static StatCache& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Attaches the persistent tier rooted at `root` (created if needed).
  // Replaces any previously attached tier; in-flight computations keep
  // using the tier they started with.
  Status AttachDiskTier(const std::string& root,
                        const DiskCache::Options& options = DiskCache::Options());
  void DetachDiskTier();
  bool disk_attached() const;
  std::string disk_root() const;  // "" when detached

  // Caps the resident in-memory footprint (sum of ApproxCacheBytes over
  // fulfilled entries). 0 = unbounded (the default). Shrinking below the
  // current footprint evicts immediately.
  void set_byte_budget(uint64_t bytes);
  uint64_t byte_budget() const;
  uint64_t resident_bytes() const;

  // The memoized value for (domain, key), computing it with `fn` on the
  // first request. `fn` must be a pure function of the key's inputs
  // (that is the cache contract — see file comment) and must not throw:
  // the codebase is exception-free by policy, and an unwinding compute
  // would otherwise leave a forever-pending in-flight entry that every
  // waiter and future lookup blocks on — so an unwind is converted into
  // the standard precondition abort instead. When the cache is disabled
  // this is a transparent passthrough: `fn` runs every time and no
  // counter moves.
  template <typename T, typename Fn>
  std::shared_ptr<const T> GetOrCompute(const char* domain, uint64_t key,
                                        Fn&& fn) {
    if (!enabled()) return std::make_shared<const T>(fn());
    std::promise<std::shared_ptr<const void>> promise;
    const Lookup lookup =
        LookupOrRegister(domain, key, promise.get_future().share());
    if (!lookup.owner) {
      return std::static_pointer_cast<const T>(lookup.future.get());
    }
    FulfillGuard guard;
    auto value = std::make_shared<const T>(fn());
    FinalizeEntry(domain, key, ApproxCacheBytes(*value));
    guard.fulfilled = true;
    promise.set_value(value);
    return value;
  }

  // GetOrCompute for a domain with a durable (disk-serializable) value:
  // `encode(value, builder)` appends the value's fields to a
  // RecordBuilder, `decode(parser)` reads them back as an
  // std::optional<T> (nullopt = foreign/short record → treated as a
  // disk miss). With a disk tier attached, the owner of an in-memory
  // miss first tries the on-disk entry (a warm process-crossing hit —
  // decoded bytes are the exact bytes a recompute would produce, the
  // codec round-trip contract tests/disk_cache_test.cc enforces) and
  // writes the computed value behind on a cold miss. Without a disk
  // tier this is exactly GetOrCompute.
  template <typename T, typename Fn, typename Encode, typename Decode>
  std::shared_ptr<const T> GetOrComputeDurable(const char* domain,
                                               uint64_t key, Fn&& fn,
                                               Encode&& encode,
                                               Decode&& decode) {
    if (!enabled()) return std::make_shared<const T>(fn());
    std::promise<std::shared_ptr<const void>> promise;
    const Lookup lookup =
        LookupOrRegister(domain, key, promise.get_future().share());
    if (!lookup.owner) {
      return std::static_pointer_cast<const T>(lookup.future.get());
    }
    FulfillGuard guard;
    std::shared_ptr<const T> value;
    const std::shared_ptr<const DiskCache> disk = disk_tier();
    if (disk != nullptr) {
      DiskEntryClaim claim(disk.get(), domain, key);
      std::string bytes;
      if (claim.TryLoad(&bytes)) {
        RecordParser rec(bytes);
        std::optional<T> decoded = decode(rec);
        if (decoded.has_value() && rec.done()) {
          value = std::make_shared<const T>(std::move(*decoded));
        }
      }
      RecordDiskOutcome(domain, /*hit=*/value != nullptr);
      if (value == nullptr) {
        value = std::make_shared<const T>(fn());
        RecordBuilder rec;
        encode(*value, rec);
        claim.Store(rec.str());
      }
    } else {
      value = std::make_shared<const T>(fn());
    }
    FinalizeEntry(domain, key, ApproxCacheBytes(*value));
    guard.fulfilled = true;
    promise.set_value(value);
    return value;
  }

  // Drops every entry and zeroes all counters.
  void Clear();

  // Hit/miss totals across all domains.
  Counters TotalCounters() const;

  // Per-domain counters, sorted by domain name (stable JSON output).
  std::vector<std::pair<std::string, Counters>> DomainCounters() const;

 private:
  struct Lookup {
    std::shared_future<std::shared_ptr<const void>> future;
    bool owner = false;  // true: the caller must compute and fulfill
  };
  struct Entry {
    std::shared_future<std::shared_ptr<const void>> future;
    size_t bytes = 0;    // 0 = still in flight; >= 1 once fulfilled
    uint64_t tick = 0;   // last-access stamp, orders eviction
  };
  struct Domain {
    std::unordered_map<uint64_t, Entry> entries;
    Counters counters;
  };
  struct FulfillGuard {
    bool fulfilled = false;
    ~FulfillGuard() {
      DPKRON_CHECK_MSG(fulfilled, "StatCache compute function must not throw");
    }
  };

  StatCache() = default;

  Lookup LookupOrRegister(
      const char* domain, uint64_t key,
      std::shared_future<std::shared_ptr<const void>> candidate);
  // Marks (domain, key) fulfilled at `bytes` resident bytes and evicts
  // if the budget is now exceeded. A no-op if the entry was dropped
  // (Clear/eviction race) meanwhile.
  void FinalizeEntry(const char* domain, uint64_t key, size_t bytes);
  void RecordDiskOutcome(const char* domain, bool hit);
  std::shared_ptr<const DiskCache> disk_tier() const;
  // Evicts fulfilled entries oldest-tick-first until within budget.
  // Call with mu_ held.
  void EvictToBudgetLocked();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Domain> domains_;
  std::shared_ptr<const DiskCache> disk_;
  uint64_t byte_budget_ = 0;   // 0 = unbounded
  uint64_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_STAT_CACHE_H_
