// AVX2 sorted-set intersection kernels for triangle counting (defined
// in triangles_avx2.cc, compiled with -mavx2; reach only behind
// Avx2Active()).
//
// Inputs are strictly-sorted duplicate-free uint32 lists (CSR adjacency
// rows / forward lists). Block-merge strategy: compare an 8-lane block
// of each list against all 8 rotations of the other, advance the block
// with the smaller maximum — every value pair is compared exactly once,
// so equality counts need no dedup. Heavily skewed length ratios fall
// back to galloping binary search. Counting is integer work, so results
// are trivially identical to the scalar merge.

#ifndef DPKRON_GRAPH_INTERSECT_KERNELS_H_
#define DPKRON_GRAPH_INTERSECT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace dpkron {

// |a ∩ b|.
uint64_t IntersectCountAvx2(const uint32_t* a, size_t a_len,
                            const uint32_t* b, size_t b_len);

// Writes a ∩ b (ascending) into `out` (capacity ≥ min(a_len, b_len));
// returns the intersection size.
size_t IntersectAvx2(const uint32_t* a, size_t a_len, const uint32_t* b,
                     size_t b_len, uint32_t* out);

// Whole-chunk entry points: the per-edge enumeration loop lives inside
// the AVX2 translation unit so the ISA boundary is crossed once per
// chunk, not once per intersection (per-call transitions leave dirty
// ymm uppers that poison the caller's legacy-SSE code with false
// dependencies). `offsets`/`targets` are the forward-oriented CSR
// (triangles.cc); both functions cover the apex rows [begin, end).

// Σ |forward[u] ∩ forward[v]| over u ∈ [begin, end), v ∈ forward[u] —
// the triangle count whose lowest-rank apex lies in the range.
uint64_t CountTrianglesChunkAvx2(const uint32_t* offsets,
                                 const uint32_t* targets, size_t begin,
                                 size_t end);

// Adds each triangle with apex in [begin, end) to all three of its
// corners in `counts` (length n, caller-owned accumulator). `scratch`
// holds intersection outputs; capacity ≥ the longest forward list.
void PerNodeTrianglesChunkAvx2(const uint32_t* offsets,
                               const uint32_t* targets, size_t begin,
                               size_t end, uint64_t* counts,
                               uint32_t* scratch);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_INTERSECT_KERNELS_H_
