#include "src/linalg/network_value.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/linalg/spmv.h"

namespace dpkron {

PowerIterationResult PrincipalEigenvector(GraphView graph, Rng& rng,
                                          uint32_t max_iterations,
                                          double tolerance) {
  const uint32_t n = graph.NumNodes();
  DPKRON_CHECK_GT(n, 0u);
  PowerIterationResult result;
  std::vector<double> v(n);
  for (Graph::NodeId u = 0; u < n; ++u) {
    v[u] = graph.Degree(u) + 0.1 + 0.01 * rng.NextDouble();
  }
  Scale(1.0 / Norm2(v), &v);

  // Iterate on A + I rather than A: for a non-negative matrix the shift
  // makes the Perron eigenvalue strictly dominant in magnitude even on
  // bipartite graphs (where A itself has λ_min = −λ_max and plain power
  // iteration oscillates forever).
  std::vector<double> w(n);
  double lambda = 0.0;
  for (uint32_t it = 0; it < max_iterations; ++it) {
    AdjacencyMatVec(graph, v, &w);
    Axpy(1.0, v, &w);  // w = (A + I) v
    const double norm = Norm2(w);
    if (norm < 1e-300) {
      result.eigenvalue = 0.0;
      result.eigenvector = v;
      result.iterations = it;
      return result;
    }
    Scale(1.0 / norm, &w);
    const double new_lambda = norm - 1.0;  // undo the +I shift
    std::swap(v, w);
    result.iterations = it + 1;
    if (std::fabs(new_lambda - lambda) <=
        tolerance * (std::fabs(new_lambda) + 1.0)) {
      lambda = new_lambda;
      break;
    }
    lambda = new_lambda;
  }
  // Orient non-negatively (Perron vector of a connected non-negative
  // matrix has one sign; mixed signs can linger on disconnected graphs).
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum < 0.0) Scale(-1.0, &v);
  result.eigenvalue = lambda;
  result.eigenvector = std::move(v);
  return result;
}

std::vector<double> NetworkValue(GraphView graph, Rng& rng) {
  PowerIterationResult pi = PrincipalEigenvector(graph, rng);
  std::vector<double> values(pi.eigenvector.size());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::fabs(pi.eigenvector[i]);
  }
  std::sort(values.rbegin(), values.rend());
  return values;
}

}  // namespace dpkron
