// An append-only, checksummed record journal — the crash-safety
// primitive under the PrivacyAccountant's spend ledger and the sweep
// engine's per-cell checkpoints.
//
// On-disk format: a sequence of records, each
//
//   [u32 payload_len][u64 fnv1a_words(payload)][payload bytes]
//
// with no file header (callers put their own header in record 0, which
// also distinguishes their journals from each other's). Every record is
// made durable before Append() acknowledges: write, Sync(), ack — so an
// acknowledged record survives any later crash.
//
// Recovery (ReadJournal) replays the LONGEST VALID PREFIX: reading
// stops at the first record whose length field runs past EOF or whose
// checksum fails — the signature of a torn tail write — and reports the
// byte offset where the valid prefix ends. A record is therefore either
// fully recovered or not recovered at all, never half-applied.
// JournalWriter::Open() truncates the file to that offset before
// appending, so a journal that survived a crash is seamlessly writable
// again and the torn tail can never shadow later records.
//
// All I/O goes through Env, so every failure mode here is exercisable
// with FaultInjectionEnv.

#ifndef DPKRON_COMMON_JOURNAL_H_
#define DPKRON_COMMON_JOURNAL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/env.h"
#include "src/common/status.h"

namespace dpkron {

struct JournalRecovery {
  // The longest valid record prefix, in append order.
  std::vector<std::string> records;
  // Byte offset where that prefix ends (= file size iff no torn tail).
  uint64_t valid_bytes = 0;
  // True if bytes beyond the valid prefix existed (torn/corrupt tail).
  bool truncated_tail = false;
};

// Reads and validates `path`. NotFound if the journal does not exist
// (callers treat that as "fresh"); other Statuses are real I/O errors.
Result<JournalRecovery> ReadJournal(const std::string& path,
                                    Env* env = GetEnv());

// Appends one framed record — [u32 len][u64 checksum][payload], the
// exact bytes JournalWriter::Append would write — to `*out`. Lets a
// caller build a complete journal image in memory (the accountant's
// compaction snapshot) and install it atomically with WriteFileDurable,
// with the result readable by ReadJournal like any journal.
void AppendFramedRecord(std::string* out, std::string_view payload);

// Appends durable records to a journal file.
class JournalWriter {
 public:
  // Opens `path` for appending at `valid_bytes` (from a prior
  // ReadJournal; 0 for a fresh journal), truncating any torn tail
  // beyond it first.
  static Result<std::unique_ptr<JournalWriter>> Open(const std::string& path,
                                                     uint64_t valid_bytes,
                                                     Env* env = GetEnv());

  // Frames, writes and fsyncs one record. When this returns OK the
  // record is durable. When it returns an error the journal file may
  // hold a torn tail; the writer repairs it by truncating back to the
  // last acknowledged offset (and refuses further appends if even that
  // fails — a wounded journal must not take new records whose placement
  // is unknown).
  Status Append(std::string_view payload);

  Status Close();

  uint64_t acknowledged_bytes() const { return acknowledged_bytes_; }

  // True after a failed append whose tail-repair also failed: the
  // on-disk tail is unknown, so every further Append refuses.
  bool wounded() const { return wounded_; }

 private:
  JournalWriter(std::string path, std::unique_ptr<WritableFile> file,
                uint64_t offset, Env* env)
      : path_(std::move(path)),
        file_(std::move(file)),
        acknowledged_bytes_(offset),
        env_(env) {}

  const std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t acknowledged_bytes_;
  bool wounded_ = false;
  Env* const env_;
};

// ------------------------------------------------- record (de)serializing
//
// Minimal positional binary encoding shared by journal clients (the
// accountant's spend records, the sweep engine's checkpoint cells).
// Fields are fixed-width host-endian PODs and length-prefixed strings;
// like the .dpkb format, journals are host-format files, not an
// interchange format.

class RecordBuilder {
 public:
  RecordBuilder& U32(uint32_t value) { return Pod(value); }
  RecordBuilder& U64(uint64_t value) { return Pod(value); }
  RecordBuilder& Double(double value) { return Pod(value); }
  RecordBuilder& Str(std::string_view value) {
    U32(static_cast<uint32_t>(value.size()));
    out_.append(value);
    return *this;
  }
  const std::string& str() const { return out_; }

 private:
  template <typename T>
  RecordBuilder& Pod(T value) {
    out_.append(reinterpret_cast<const char*>(&value), sizeof(value));
    return *this;
  }
  std::string out_;
};

// Reads fields back in the order they were built. A short or trailing-
// garbage record flips ok() to false (reads past the end return zero /
// empty); callers check ok() && done() once at the end. Checksums have
// already been verified by ReadJournal, so a parse failure here means a
// foreign or future-format record, not a torn write.
class RecordParser {
 public:
  explicit RecordParser(std::string_view data) : data_(data) {}

  uint32_t U32() { return Pod<uint32_t>(); }
  uint64_t U64() { return Pod<uint64_t>(); }
  double Double() { return Pod<double>(); }
  std::string Str() {
    const uint32_t len = U32();
    if (!ok_ || data_.size() - pos_ < len) {
      ok_ = false;
      return std::string();
    }
    std::string value(data_.substr(pos_, len));
    pos_ += len;
    return value;
  }

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  template <typename T>
  T Pod() {
    T value{};
    if (!ok_ || data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_JOURNAL_H_
