#include "src/server/clock.h"

#include <chrono>

namespace dpkron {
namespace {

class SystemClock : public Clock {
 public:
  int64_t NowMillis() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

Clock* Clock::System() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace dpkron
