// Figure 4 reproduction: the synthetic stochastic Kronecker source graph
// Θ = [0.99 0.45; 0.45 0.25], k = 14 — the modeling-assumption-true case
// where all three estimators recover the parameter well.

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  dpkron::bench::FigureConfig config;
  config.experiment = "fig4_synthetic";
  config.dataset = "Synthetic-SKG";
  return dpkron::bench::RunFigureBench(config, argc, argv);
}
