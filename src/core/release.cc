#include "src/core/release.h"

#include <algorithm>
#include <map>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/graph/anf.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/hop_plot.h"
#include "src/graph/triangles.h"
#include "src/linalg/lanczos.h"
#include "src/linalg/network_value.h"

namespace dpkron {

ReleasePipeline::ReleasePipeline(StatisticsOptions options,
                                 SkgSampleMethod method)
    : options_(options), method_(method) {}

GraphStatistics ReleasePipeline::Compute(const Graph& graph,
                                         Rng& rng) const {
  GraphStatistics stats;

  // Shared intermediates: the degree vector feeds the histogram and the
  // clustering panel; per-node triangle counts feed clustering. Computing
  // them once saves the dominant recomputation of the old per-panel path
  // (each ClusteringByDegree call re-ran the triangle kernel).
  const std::vector<uint32_t> degrees = DegreeVector(graph);

  for (const auto& [degree, count] : DegreeHistogramFromDegrees(degrees)) {
    stats.degree_histogram.emplace_back(double(degree), double(count));
  }

  std::vector<uint64_t> hops;
  if (graph.NumNodes() <= options_.exact_hop_plot_limit) {
    hops = ExactHopPlot(graph);
  } else {
    AnfOptions anf;
    anf.num_trials = options_.anf_trials;
    hops = ApproxHopPlot(graph, rng, anf);
  }
  stats.hop_plot.assign(hops.begin(), hops.end());

  const uint32_t k_singular =
      std::min(options_.num_singular_values, graph.NumNodes());
  if (k_singular > 0 && graph.NumEdges() > 0) {
    stats.scree = TopSingularValues(graph, k_singular, rng);
  }

  if (graph.NumEdges() > 0) {
    stats.network_value = NetworkValue(graph, rng);
    if (stats.network_value.size() > options_.num_network_values) {
      stats.network_value.resize(options_.num_network_values);
    }
  }

  const std::vector<uint64_t> triangles = PerNodeTriangles(graph);
  for (const auto& [degree, cc] :
       ClusteringByDegreeFromParts(degrees, triangles)) {
    stats.clustering_by_degree.emplace_back(double(degree), cc);
  }
  return stats;
}

namespace {

// Averages positional series, padding shorter ones with their last value.
std::vector<double> AveragePositional(
    const std::vector<std::vector<double>>& series) {
  size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());
  std::vector<double> mean(longest, 0.0);
  if (series.empty()) return mean;
  for (const auto& s : series) {
    for (size_t i = 0; i < longest; ++i) {
      const double value = s.empty() ? 0.0 : (i < s.size() ? s[i] : s.back());
      mean[i] += value;
    }
  }
  for (double& value : mean) value /= double(series.size());
  return mean;
}

}  // namespace

GraphStatistics ReleasePipeline::Expected(const Initiator2& theta, uint32_t k,
                                          uint32_t realizations,
                                          Rng& rng) const {
  DPKRON_CHECK_GE(realizations, 1u);

  // Fan the realizations across the pool: stream r drives realization r
  // end to end (sample + statistics), so each per-realization result is a
  // pure function of (θ, k, options, stream r) and the grain-1 chunk
  // decomposition depends only on `realizations` — never on the thread
  // count. The statistics kernels inside each realization degrade to
  // serial execution when nested in a pool worker, which by the parallel.h
  // contract computes the same values they would in parallel.
  std::vector<Rng> streams = SplitRngStreams(rng, realizations);
  std::vector<GraphStatistics> per_realization(realizations);
  ParallelForChunks(realizations, 1, [&](const ParallelChunk& chunk) {
    for (size_t r = chunk.begin; r < chunk.end; ++r) {
      const Graph sample = Sample(theta, k, streams[r]);
      per_realization[r] = Compute(sample, streams[r]);
    }
  });

  // Aggregate in realization order — the chunk-ordered reduction that
  // makes the floating-point mean thread-count-invariant.
  // Degree histogram: mean count per degree. Clustering: mean of per-
  // realization degree-averages, tracked with how many realizations had
  // that degree present.
  std::map<double, double> histogram_sum;
  std::map<double, std::pair<double, uint32_t>> clustering_sum;
  std::vector<std::vector<double>> hop_series, scree_series, netval_series;
  for (GraphStatistics& stats : per_realization) {
    for (const auto& [degree, count] : stats.degree_histogram) {
      histogram_sum[degree] += count;
    }
    for (const auto& [degree, cc] : stats.clustering_by_degree) {
      auto& [sum, count] = clustering_sum[degree];
      sum += cc;
      ++count;
    }
    hop_series.push_back(std::move(stats.hop_plot));
    scree_series.push_back(std::move(stats.scree));
    netval_series.push_back(std::move(stats.network_value));
  }

  GraphStatistics mean;
  for (const auto& [degree, total] : histogram_sum) {
    mean.degree_histogram.emplace_back(degree, total / realizations);
  }
  for (const auto& [degree, entry] : clustering_sum) {
    mean.clustering_by_degree.emplace_back(degree,
                                           entry.first / entry.second);
  }
  mean.hop_plot = AveragePositional(hop_series);
  mean.scree = AveragePositional(scree_series);
  mean.network_value = AveragePositional(netval_series);
  return mean;
}

Graph ReleasePipeline::Sample(const Initiator2& theta, uint32_t k,
                              Rng& rng) const {
  SkgSampleOptions options;
  options.method = method_;
  return SampleSkg(theta, k, rng, options);
}

GraphStatistics ComputeStatistics(const Graph& graph, Rng& rng,
                                  const StatisticsOptions& options) {
  return ReleasePipeline(options).Compute(graph, rng);
}

GraphStatistics ExpectedStatistics(const Initiator2& theta, uint32_t k,
                                   uint32_t realizations, Rng& rng,
                                   const StatisticsOptions& options,
                                   SkgSampleMethod method) {
  return ReleasePipeline(options, method).Expected(theta, k, realizations,
                                                   rng);
}

Graph SampleSyntheticGraph(const Initiator2& theta, uint32_t k, Rng& rng,
                           SkgSampleMethod method) {
  return ReleasePipeline({}, method).Sample(theta, k, rng);
}

}  // namespace dpkron
