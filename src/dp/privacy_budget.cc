#include "src/dp/privacy_budget.h"

#include <cstdio>

#include "src/common/macros.h"

namespace dpkron {
namespace {
// Tolerances for floating-point budget comparisons: spending exactly the
// remaining share must succeed even after accumulated representation
// error. The relative term matters at large totals (an absolute 1e-12
// slack vanishes against ε = 100 sweeps), the absolute term at tiny
// ones; both are far below any privacy-meaningful resolution.
constexpr double kAbsSlack = 1e-12;
constexpr double kRelSlack = 1e-9;

bool Fits(double spent, double charge, double total) {
  return spent + charge <= total + kAbsSlack + kRelSlack * total;
}
}  // namespace

PrivacyBudget::PrivacyBudget(double epsilon_total, double delta_total)
    : epsilon_total_(epsilon_total), delta_total_(delta_total) {
  DPKRON_CHECK_GT(epsilon_total, 0.0);
  DPKRON_CHECK_GE(delta_total, 0.0);
  DPKRON_CHECK_LT(delta_total, 1.0);
}

Status PrivacyBudget::CheckSpend(double epsilon, double delta,
                                 const std::string& label) const {
  if (epsilon < 0.0 || delta < 0.0) {
    return Status::InvalidArgument("negative privacy charge: " + label);
  }
  if (epsilon == 0.0 && delta == 0.0) {
    return Status::InvalidArgument("empty privacy charge: " + label);
  }
  if (!Fits(epsilon_spent_, epsilon, epsilon_total_)) {
    return Status::FailedPrecondition("epsilon budget exhausted at: " + label);
  }
  if (!Fits(delta_spent_, delta, delta_total_)) {
    return Status::FailedPrecondition("delta budget exhausted at: " + label);
  }
  return Status::Ok();
}

Status PrivacyBudget::Spend(double epsilon, double delta,
                            const std::string& label) {
  const Status check = CheckSpend(epsilon, delta, label);
  if (!check.ok()) return check;
  epsilon_spent_ += epsilon;
  delta_spent_ += delta;
  ledger_.push_back({label, epsilon, delta});
  return Status::Ok();
}

std::string PrivacyBudget::ToString() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "PrivacyBudget: spent (%.6g, %.6g) of (%.6g, %.6g)\n",
                epsilon_spent_, delta_spent_, epsilon_total_, delta_total_);
  std::string out = line;
  for (const LedgerEntry& entry : ledger_) {
    std::snprintf(line, sizeof(line), "  %-40s eps=%.6g delta=%.6g\n",
                  entry.label.c_str(), entry.epsilon, entry.delta);
    out += line;
  }
  return out;
}

}  // namespace dpkron
