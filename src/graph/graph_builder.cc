#include "src/graph/graph_builder.h"

#include <algorithm>

#include "src/common/macros.h"

namespace dpkron {

GraphBuilder::GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::AddEdge(Graph::NodeId u, Graph::NodeId v) {
  DPKRON_CHECK_LT(u, num_nodes_);
  DPKRON_CHECK_LT(v, num_nodes_);
  if (u == v) return;  // Simple graph: ignore loops at the door.
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<uint32_t> degree(num_nodes_, 0);
  for (const auto& [u, v] : edges_) {
    ++degree[u];
    ++degree[v];
  }
  std::vector<uint32_t> offsets(num_nodes_ + 1, 0);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    offsets[u + 1] = offsets[u] + degree[u];
  }
  std::vector<Graph::NodeId> adjacency(offsets.back());
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  // Edges are sorted by (u, v), so filling forward keeps each adjacency
  // list sorted: u's list receives v's in increasing order, and v's list
  // receives u's in increasing order because edges are grouped by u.
  for (const auto& [u, v] : edges_) {
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }
  edges_.clear();
  return Graph::FromCsr(std::move(offsets), std::move(adjacency));
}

Graph GraphBuilder::FromEdges(
    uint32_t num_nodes,
    const std::vector<std::pair<Graph::NodeId, Graph::NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace dpkron
