#include "src/datasets/affiliation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/macros.h"
#include "src/graph/graph_builder.h"

namespace dpkron {
namespace {

// Discrete Zipf sampler on [lo, hi] via inverse CDF over the (small)
// support.
class ZipfSampler {
 public:
  ZipfSampler(double exponent, uint32_t lo, uint32_t hi) : lo_(lo) {
    DPKRON_CHECK_LE(lo, hi);
    cdf_.reserve(hi - lo + 1);
    double total = 0.0;
    for (uint32_t s = lo; s <= hi; ++s) {
      total += std::pow(double(s), -exponent);
      cdf_.push_back(total);
    }
    for (double& value : cdf_) value /= total;
  }

  uint32_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return lo_ + static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  uint32_t lo_;
  std::vector<double> cdf_;
};

}  // namespace

Graph AffiliationGraph(const AffiliationOptions& options, Rng& rng) {
  DPKRON_CHECK_GE(options.num_authors, 2u);
  DPKRON_CHECK_GE(options.min_paper_size, 1u);
  DPKRON_CHECK_LE(options.max_paper_size, options.num_authors);
  const ZipfSampler sizes(options.size_exponent, options.min_paper_size,
                          options.max_paper_size);

  // membership[i] = author of the i-th (paper, author) slot; sampling
  // uniformly from it realizes preferential attachment by paper count.
  std::vector<uint32_t> membership;
  membership.reserve(options.num_papers * 4);

  GraphBuilder builder(options.num_authors);
  std::vector<uint32_t> paper_authors;
  for (uint32_t p = 0; p < options.num_papers; ++p) {
    const uint32_t size = sizes.Sample(rng);
    paper_authors.clear();
    uint32_t attempts = 0;
    while (paper_authors.size() < size && attempts < 20 * size + 40) {
      ++attempts;
      uint32_t author;
      if (!membership.empty() &&
          rng.NextBernoulli(options.preferential_probability)) {
        author = membership[rng.NextBounded(membership.size())];
      } else {
        author = static_cast<uint32_t>(rng.NextBounded(options.num_authors));
      }
      if (std::find(paper_authors.begin(), paper_authors.end(), author) ==
          paper_authors.end()) {
        paper_authors.push_back(author);
      }
    }
    for (size_t i = 0; i < paper_authors.size(); ++i) {
      membership.push_back(paper_authors[i]);
      for (size_t j = i + 1; j < paper_authors.size(); ++j) {
        builder.AddEdge(paper_authors[i], paper_authors[j]);
      }
    }
  }
  return builder.Build();
}

}  // namespace dpkron
