// FNV-1a 64-bit hashing — the one content-hash used across dpkron: the
// .dpkb payload checksum, the edge-list source checksum behind the
// sidecar cache, and the StatCache fingerprints are all the same
// function, so a graph's cache key equals its .dpkb checksum.
//
// FNV-1a is not cryptographic; it is used for corruption detection and
// content-addressed memoization, where a 2^-64 accidental collision is
// far below every other failure mode of the system.

#ifndef DPKRON_COMMON_FNV_H_
#define DPKRON_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>

namespace dpkron {

inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

// Feeds `len` bytes at `data` into a running FNV-1a state `hash`
// (start from kFnv1aOffsetBasis) and returns the advanced state.
// Byte-serial — use for small keys; bulk content goes through
// Fnv1a64Words below.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t hash = kFnv1aOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

// FNV-1a over a 64-bit-word alphabet: the length, then each
// little-endian 8-byte word, then the zero-padded tail word. One
// multiply per 8 bytes instead of per byte — ~8× the throughput of the
// byte-serial loop, which matters because every cached graph load
// re-hashes the source text and the CSR payload (tens of MB) for
// freshness/corruption checks. Mixing the length first keeps inputs
// that differ only in trailing zero bytes distinct despite the padding.
// NOT interchangeable with Fnv1a64: the two functions hash the same
// bytes to different values.
inline uint64_t Fnv1a64Words(const void* data, size_t len,
                             uint64_t hash = kFnv1aOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  hash ^= static_cast<uint64_t>(len);
  hash *= kFnv1aPrime;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    __builtin_memcpy(&word, p + i, 8);
    hash ^= word;
    hash *= kFnv1aPrime;
  }
  if (i < len) {
    uint64_t word = 0;
    __builtin_memcpy(&word, p + i, len - i);
    hash ^= word;
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace dpkron

#endif  // DPKRON_COMMON_FNV_H_
