#include "src/core/release.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "src/skg/moments.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

TEST(ComputeStatisticsTest, AllPanelsPopulatedOnRealGraph) {
  Rng rng(1);
  const Graph g = SampleSyntheticGraph({0.95, 0.55, 0.25}, 9, rng);
  const GraphStatistics stats = ComputeStatistics(g, rng);
  EXPECT_FALSE(stats.degree_histogram.empty());
  EXPECT_GE(stats.hop_plot.size(), 2u);
  EXPECT_FALSE(stats.scree.empty());
  EXPECT_FALSE(stats.network_value.empty());
  EXPECT_FALSE(stats.clustering_by_degree.empty());
}

TEST(ComputeStatisticsTest, HistogramCountsSumToNodes) {
  Rng rng(2);
  const Graph g = SampleSyntheticGraph({0.9, 0.5, 0.2}, 8, rng);
  const GraphStatistics stats = ComputeStatistics(g, rng);
  double total = 0.0;
  for (const auto& [degree, count] : stats.degree_histogram) total += count;
  EXPECT_DOUBLE_EQ(total, double(g.NumNodes()));
}

TEST(ComputeStatisticsTest, ScreeSortedDescending) {
  Rng rng(3);
  const Graph g = SampleSyntheticGraph({0.9, 0.5, 0.2}, 8, rng);
  StatisticsOptions options;
  options.num_singular_values = 20;
  const GraphStatistics stats = ComputeStatistics(g, rng, options);
  ASSERT_EQ(stats.scree.size(), 20u);
  for (size_t i = 1; i < stats.scree.size(); ++i) {
    EXPECT_GE(stats.scree[i - 1], stats.scree[i]);
  }
}

TEST(ComputeStatisticsTest, EdgelessGraphHandled) {
  Rng rng(4);
  const GraphStatistics stats =
      ComputeStatistics(testing::MakeGraph(16, {}), rng);
  EXPECT_TRUE(stats.scree.empty());
  EXPECT_TRUE(stats.network_value.empty());
  EXPECT_TRUE(stats.clustering_by_degree.empty());
  ASSERT_EQ(stats.degree_histogram.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.degree_histogram[0].second, 16.0);
}

TEST(ComputeStatisticsTest, AnfKicksInAboveLimit) {
  Rng rng(5);
  const Graph g = SampleSyntheticGraph({0.9, 0.5, 0.2}, 9, rng);
  StatisticsOptions exact_opts;
  exact_opts.exact_hop_plot_limit = 4096;
  StatisticsOptions anf_opts;
  anf_opts.exact_hop_plot_limit = 16;  // force ANF
  const auto exact = ComputeStatistics(g, rng, exact_opts);
  const auto approx = ComputeStatistics(g, rng, anf_opts);
  ASSERT_GE(approx.hop_plot.size(), 2u);
  // Saturation levels should agree within sketch error.
  EXPECT_NEAR(approx.hop_plot.back() / exact.hop_plot.back(), 1.0, 0.2);
}

TEST(ExpectedStatisticsTest, AveragesReduceVariance) {
  const Initiator2 theta{0.9, 0.5, 0.2};
  const uint32_t k = 8;
  Rng rng(6);
  const GraphStatistics mean = ExpectedStatistics(theta, k, 12, rng);
  // Total degree mass ≈ 2·E[E] (each realization contributes all nodes).
  double mass = 0.0;
  for (const auto& [degree, count] : mean.degree_histogram) {
    mass += degree * count;
  }
  const double expected = 2.0 * ExpectedEdges(theta, k);
  EXPECT_NEAR(mass, expected, 0.15 * expected);
}

TEST(ExpectedStatisticsTest, HopPlotMonotone) {
  Rng rng(7);
  const GraphStatistics mean = ExpectedStatistics({0.9, 0.5, 0.2}, 8, 5, rng);
  for (size_t h = 1; h < mean.hop_plot.size(); ++h) {
    EXPECT_GE(mean.hop_plot[h], mean.hop_plot[h - 1] - 1e-9);
  }
}

TEST(ReleasePipelineTest, ComputeMatchesFreeFunction) {
  Rng rng_a(9), rng_b(9);
  const Graph g = SampleSyntheticGraph({0.95, 0.55, 0.25}, 9, rng_a);
  const Graph g2 = SampleSyntheticGraph({0.95, 0.55, 0.25}, 9, rng_b);
  const GraphStatistics via_pipeline = ReleasePipeline().Compute(g, rng_a);
  const GraphStatistics via_free = ComputeStatistics(g2, rng_b);
  EXPECT_EQ(via_pipeline, via_free);
}

TEST(ReleasePipelineTest, ExpectedIsReproducibleFromSeed) {
  const ReleasePipeline pipeline;
  Rng rng_a(10), rng_b(10);
  const GraphStatistics a = pipeline.Expected({0.9, 0.5, 0.2}, 7, 4, rng_a);
  const GraphStatistics b = pipeline.Expected({0.9, 0.5, 0.2}, 7, 4, rng_b);
  EXPECT_EQ(a, b);
}

TEST(SampleSyntheticGraphTest, MethodsProduceSimilarDensity) {
  const Initiator2 theta{0.95, 0.5, 0.2};
  const uint32_t k = 9;
  Rng rng(8);
  double exact_edges = 0, fast_edges = 0;
  for (int r = 0; r < 10; ++r) {
    exact_edges += double(
        SampleSyntheticGraph(theta, k, rng, SkgSampleMethod::kExact)
            .NumEdges());
    fast_edges += double(
        SampleSyntheticGraph(theta, k, rng, SkgSampleMethod::kBallDrop)
            .NumEdges());
  }
  EXPECT_NEAR(fast_edges / exact_edges, 1.0, 0.1);
}

}  // namespace
}  // namespace dpkron
