// Degree-based statistics: degree vectors, histograms, and the exact
// degree-derived feature counts (edges E, hairpins H, tripins T) used by
// the moment estimator (paper §3.4 / §4.1).

#ifndef DPKRON_GRAPH_DEGREE_H_
#define DPKRON_GRAPH_DEGREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// d_i for every node i.
std::vector<uint32_t> DegreeVector(GraphView graph);

// The sorted (ascending) degree sequence d_S of the paper — the quantity
// Hay et al.'s mechanism privatizes (global sensitivity 2 under edge
// neighborhood).
std::vector<uint32_t> SortedDegreeVector(GraphView graph);

uint32_t MaxDegree(GraphView graph);

// (degree, count) pairs for every degree value with count > 0, ascending —
// the "degree distribution" panels of Figs 1–4.
std::vector<std::pair<uint32_t, uint64_t>> DegreeHistogram(GraphView graph);

// Same histogram computed from an already-materialized degree vector, so
// a statistics pipeline that holds the degrees can feed several panels
// from one pass. Identical output to DegreeHistogram(graph).
std::vector<std::pair<uint32_t, uint64_t>> DegreeHistogramFromDegrees(
    const std::vector<uint32_t>& degrees);

// Exact degree-derived features, computed from any degree vector d:
//   E = (1/2) Σ d_i            (number of edges)
//   H = (1/2) Σ d_i (d_i − 1)  (hairpins / wedges / 2-stars)
//   T = (1/6) Σ d_i (d_i −1)(d_i − 2)   (tripins / 3-stars)
// These are the formulas Algorithm 1 applies to the *noisy* degree vector;
// on real degree vectors they coincide with the combinatorial counts.
// Declared on doubles so they accept privatized (fractional) degrees.
double EdgesFromDegrees(const std::vector<double>& degrees);
double HairpinsFromDegrees(const std::vector<double>& degrees);
double TripinsFromDegrees(const std::vector<double>& degrees);

// Integer-exact counterparts for true degree vectors.
uint64_t CountWedges(GraphView graph);   // H
uint64_t CountTripins(GraphView graph);  // T

}  // namespace dpkron

#endif  // DPKRON_GRAPH_DEGREE_H_
