#include "src/graph/components.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/graph/bfs.h"
#include "src/graph/graph_builder.h"

namespace dpkron {

ComponentInfo ConnectedComponents(GraphView graph) {
  graph.CountPass("components");
  const uint32_t n = graph.NumNodes();
  ComponentInfo info;
  info.component_of.assign(n, UINT32_MAX);
  BfsScratch scratch(n);
  for (Graph::NodeId u = 0; u < n; ++u) {
    if (info.component_of[u] != UINT32_MAX) continue;
    const uint32_t id = info.num_components();
    scratch.Run(graph, u);
    for (Graph::NodeId v : scratch.Visited()) info.component_of[v] = id;
    info.sizes.push_back(static_cast<uint32_t>(scratch.Visited().size()));
  }
  return info;
}

ExtractedComponent LargestComponent(GraphView graph) {
  const ComponentInfo info = ConnectedComponents(graph);
  ExtractedComponent out;
  if (info.sizes.empty()) {
    out.graph = Graph();
    return out;
  }
  const uint32_t target = static_cast<uint32_t>(
      std::max_element(info.sizes.begin(), info.sizes.end()) -
      info.sizes.begin());
  std::vector<Graph::NodeId> new_id(graph.NumNodes(), UINT32_MAX);
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    if (info.component_of[u] == target) {
      new_id[u] = static_cast<Graph::NodeId>(out.original_id.size());
      out.original_id.push_back(u);
    }
  }
  GraphBuilder builder(static_cast<uint32_t>(out.original_id.size()));
  graph.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
    if (new_id[u] != UINT32_MAX && new_id[v] != UINT32_MAX) {
      builder.AddEdge(new_id[u], new_id[v]);
    }
  });
  out.graph = builder.Build();
  return out;
}

}  // namespace dpkron
