#include "src/common/rng.h"

#include <cmath>

#include "src/common/fnv.h"
#include "src/common/macros.h"

namespace dpkron {
namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DPKRON_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless unbiased method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_gaussian_ = true;
  return u * factor;
}

double Rng::NextLaplace(double scale) {
  DPKRON_CHECK_GT(scale, 0.0);
  // Inverse CDF on u ~ U(-1/2, 1/2): x = -b·sgn(u)·ln(1-2|u|).
  const double u = NextDouble() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log1p(-2.0 * std::fabs(u));
}

double Rng::NextExponential(double lambda) {
  DPKRON_CHECK_GT(lambda, 0.0);
  // -log(1-u) avoids log(0) since NextDouble() < 1.
  return -std::log1p(-NextDouble()) / lambda;
}

uint64_t Rng::NextGeometric(double p) {
  DPKRON_CHECK_GT(p, 0.0);
  DPKRON_CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  const double u = NextDouble();
  return static_cast<uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

uint64_t Rng::NextBinomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Symmetry keeps the skip parameter ≤ 1/2 (skips stay cheap).
  if (p > 0.5) return n - NextBinomial(n, 1.0 - p);
  const double mean = static_cast<double>(n) * p;
  const double variance = mean * (1.0 - p);
  if (variance > 1024.0) {
    double draw = mean + std::sqrt(variance) * NextGaussian();
    draw = std::min(std::max(draw, 0.0), static_cast<double>(n));
    return static_cast<uint64_t>(std::llround(draw));
  }
  // Geometric skipping: jump over each run of failures in one draw.
  uint64_t successes = 0;
  uint64_t remaining = n;
  for (;;) {
    const uint64_t failures = NextGeometric(p);
    if (failures >= remaining) break;
    ++successes;
    remaining -= failures + 1;
  }
  return successes;
}

void Rng::FillLaplace(double scale, double* out, size_t n) {
  DPKRON_CHECK_GT(scale, 0.0);
  for (size_t i = 0; i < n; ++i) {
    // Inline NextLaplace body (check hoisted): same draws, same math,
    // same bits as n sequential calls.
    const double u = NextDouble() - 0.5;
    const double sign = (u < 0.0) ? -1.0 : 1.0;
    out[i] = -scale * sign * std::log1p(-2.0 * std::fabs(u));
  }
}

void Rng::FillBinomial(uint64_t trials, double p, uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = NextBinomial(trials, p);
}

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.have_gaussian = have_gaussian_;
  state.spare_gaussian = spare_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  have_gaussian_ = state.have_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

uint64_t Rng::StateFingerprint() const {
  uint64_t hash = Fnv1a64(state_, sizeof(state_));
  const uint64_t gaussian = have_gaussian_ ? 1 : 0;
  hash = Fnv1a64(&gaussian, sizeof(gaussian), hash);
  hash = Fnv1a64(&spare_gaussian_, sizeof(spare_gaussian_), hash);
  return hash;
}

Rng Rng::Split() {
  // Derive a child seed from two outputs; the child re-expands through
  // splitmix64, decorrelating it from the parent's remaining stream.
  const uint64_t a = NextU64();
  const uint64_t b = NextU64();
  return Rng(a ^ Rotl(b, 31) ^ 0xD1B54A32D192ED03ULL);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(NextBounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace dpkron
