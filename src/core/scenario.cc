#include "src/core/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>

#include "src/common/macros.h"
#include "src/common/simd.h"
#include "src/common/stat_cache.h"
#include "src/datasets/graph_source.h"

namespace dpkron {

ScenarioParams ResolveParams(const ScenarioParams& defaults,
                             const ScenarioOverrides& overrides) {
  ScenarioParams params = defaults;
  if (overrides.seed) params.seed = *overrides.seed;
  if (overrides.epsilon) params.epsilon = *overrides.epsilon;
  if (overrides.realizations) params.realizations = *overrides.realizations;
  if (overrides.trials) params.trials = *overrides.trials;
  if (overrides.kronfit_iterations) {
    params.kronfit_iterations = *overrides.kronfit_iterations;
  }
  if (overrides.sweep_epsilons) params.sweep_epsilons = *overrides.sweep_epsilons;
  if (overrides.dataset) params.dataset = *overrides.dataset;
  params.dataset_cache = params.dataset_cache || overrides.dataset_cache;
  params.dataset_mmap = params.dataset_mmap || overrides.dataset_mmap;
  params.smoke = overrides.smoke;
  if (params.smoke) {
    // Central axis shrinking so every scenario's smoke run is uniformly
    // cheap; explicit flag overrides above already won (a user-supplied
    // sweep is intentional even under --smoke).
    if (!overrides.sweep_epsilons && params.sweep_epsilons.size() > 2) {
      params.sweep_epsilons.resize(2);
    }
    if (!overrides.realizations) {
      params.realizations = std::min(params.realizations, 2u);
    }
    if (!overrides.trials) params.trials = std::min(params.trials, 2u);
    if (!overrides.kronfit_iterations) {
      params.kronfit_iterations = std::min(params.kronfit_iterations, 5u);
    }
  }
  return params;
}

const std::string& EffectiveDatasetRef(const std::string& ref,
                                       const ScenarioParams& params) {
  return params.dataset.empty() ? ref : params.dataset;
}

Result<GraphHandle> LoadScenarioGraph(const std::string& ref,
                                      const ScenarioParams& params, Rng& rng) {
  GraphLoadOptions options;
  options.use_cache = params.dataset_cache;
  options.mmap = params.dataset_mmap;
  return LoadGraphHandleRef(EffectiveDatasetRef(ref, params), rng, options);
}

std::vector<DatasetInfo> ScenarioDatasets(const ScenarioParams& params) {
  if (params.dataset.empty()) return PaperDatasets();
  auto source = ResolveGraphSource(params.dataset);
  // A registry-name override keeps its full registry entry (paper
  // metadata columns included); only file-backed overrides synthesize
  // a metadata-less stub.
  if (source.ok() && source.value().info != nullptr) {
    return {*source.value().info};
  }
  DatasetInfo info;
  info.name = params.dataset;
  info.paper_name = "-";
  info.kind =
      source.ok() ? GraphSourceKindName(source.value().kind) : "unresolved";
  return {std::move(info)};
}

ScenarioOutput::ScenarioOutput(std::string scenario, std::FILE* text_out)
    : scenario_(std::move(scenario)), text_out_(text_out) {}

void ScenarioOutput::Printf(const char* format, ...) {
  if (text_out_ == nullptr) return;
  va_list args;
  va_start(args, format);
  std::vfprintf(text_out_, format, args);
  va_end(args);
}

SeriesTable& ScenarioOutput::Table(const std::string& panel, bool print) {
  const std::string experiment = scenario_ + "/" + panel;
  for (TableEntry& entry : tables_) {
    if (entry.table.experiment() == experiment) return entry.table;
  }
  tables_.push_back(TableEntry{SeriesTable(experiment), print});
  return tables_.back().table;
}

void ScenarioOutput::AddSummary(const SummaryBlock& block) {
  if (text_out_ != nullptr) block.Print(text_out_);
  summaries_.push_back(block);
}

void ScenarioOutput::RecordBudget(const PrivacyBudget& budget, bool print) {
  if (print && text_out_ != nullptr) {
    std::fprintf(text_out_, "%s", budget.ToString().c_str());
  }
  budgets_.push_back(budget);
}

void ScenarioOutput::RecordExactSensitivity(bool exact) {
  ++exact_sensitivity_records_;
  exact_sensitivity_all_ = exact_sensitivity_all_ && exact;
}

void ScenarioOutput::PrintTables() const {
  if (text_out_ == nullptr) return;
  for (const TableEntry& entry : tables_) {
    if (entry.print) entry.table.Print(text_out_);
  }
}

void ScenarioOutput::AppendRunJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("scenario");
  json.String(scenario_);
  json.Key("elapsed_seconds");
  json.Number(elapsed_seconds_);
  // null = the run computed no smooth-sensitivity profile at all.
  json.Key("exact_sensitivity");
  if (exact_sensitivity_records_ == 0) {
    json.Null();
  } else {
    json.Bool(exact_sensitivity_all_);
  }

  json.Key("params");
  json.BeginObject();
  json.Key("seed");
  json.UInt(params_.seed);
  json.Key("epsilon");
  json.Number(params_.epsilon);
  json.Key("delta");
  json.Number(params_.delta);
  json.Key("realizations");
  json.UInt(params_.realizations);
  json.Key("trials");
  json.UInt(params_.trials);
  json.Key("kronfit_iterations");
  json.UInt(params_.kronfit_iterations);
  json.Key("sweep_epsilons");
  json.BeginArray();
  for (double epsilon : params_.sweep_epsilons) json.Number(epsilon);
  json.EndArray();
  json.Key("smoke");
  json.Bool(params_.smoke);
  json.Key("dataset");
  json.String(params_.dataset);
  json.Key("dataset_cache");
  json.Bool(params_.dataset_cache);
  json.EndObject();

  json.Key("budgets");
  json.BeginArray();
  for (const PrivacyBudget& budget : budgets_) {
    json.BeginObject();
    json.Key("epsilon_total");
    json.Number(budget.epsilon_total());
    json.Key("delta_total");
    json.Number(budget.delta_total());
    json.Key("epsilon_spent");
    json.Number(budget.epsilon_spent());
    json.Key("delta_spent");
    json.Number(budget.delta_spent());
    json.Key("ledger");
    json.BeginArray();
    for (const PrivacyBudget::LedgerEntry& entry : budget.ledger()) {
      json.BeginObject();
      json.Key("label");
      json.String(entry.label);
      json.Key("epsilon");
      json.Number(entry.epsilon);
      json.Key("delta");
      json.Number(entry.delta);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.Key("summaries");
  json.BeginArray();
  for (const SummaryBlock& block : summaries_) {
    json.BeginObject();
    json.Key("title");
    json.String(block.title());
    json.Key("items");
    json.BeginObject();
    for (const auto& [key, value] : block.items()) {
      json.Key(key);
      json.String(value);
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.Key("tables");
  json.BeginArray();
  for (const TableEntry& entry : tables_) {
    json.BeginObject();
    json.Key("experiment");
    json.String(entry.table.experiment());
    json.Key("rows");
    json.BeginArray();
    for (const SeriesTable::Row& row : entry.table.rows()) {
      json.BeginObject();
      json.Key("series");
      json.String(row.series);
      json.Key("x");
      json.Number(row.x);
      json.Key("y");
      json.Number(row.y);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
}

namespace {

std::vector<ScenarioSpec>& MutableRegistry() {
  static std::vector<ScenarioSpec>& registry = *new std::vector<ScenarioSpec>;
  return registry;
}

}  // namespace

void RegisterScenario(ScenarioSpec spec) {
  DPKRON_CHECK_MSG(FindScenario(spec.name) == nullptr,
                   ("duplicate scenario: " + spec.name).c_str());
  DPKRON_CHECK_MSG(static_cast<bool>(spec.run),
                   ("scenario without run function: " + spec.name).c_str());
  MutableRegistry().push_back(std::move(spec));
}

const std::vector<ScenarioSpec>& AllScenarios() { return MutableRegistry(); }

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& spec : MutableRegistry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

Status RunScenario(const ScenarioSpec& spec,
                   const ScenarioOverrides& overrides,
                   ScenarioOutput& output) {
  const ScenarioParams params = ResolveParams(spec.defaults, overrides);
  output.set_params(params);
  // Degenerate privacy parameters are data a sweep grid can contain
  // (--sweep-epsilons=...,0). They must fail here, as a Status the sweep
  // report records, before any mechanism or budget constructor can
  // abort the whole batch on them.
  if (!(params.epsilon > 0.0)) {
    return Status::InvalidArgument(
        spec.name + ": epsilon must be positive, got " +
        std::to_string(params.epsilon));
  }
  // delta = 0 would also pass every budget constructor only to abort
  // inside the smooth-sensitivity mechanism; scenarios are (ε, δ)
  // pipelines, so require a usable δ here.
  if (!(params.delta > 0.0 && params.delta < 1.0)) {
    return Status::InvalidArgument(spec.name + ": delta must be in (0, 1), got " +
                                   std::to_string(params.delta));
  }
  output.Printf("# %s: seed=%llu epsilon=%g delta=%g realizations=%u"
                " trials=%u%s%s%s\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(params.seed), params.epsilon,
                params.delta, params.realizations, params.trials,
                params.dataset.empty() ? "" : " dataset=",
                params.dataset.c_str(), params.smoke ? " (smoke)" : "");
  const auto start = std::chrono::steady_clock::now();
  const Status status = spec.run(spec, params, output);
  output.set_elapsed_seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (!status.ok()) return status;
  output.PrintTables();
  return Status::Ok();
}

void AppendStatCacheJson(JsonWriter& json, bool enabled) {
  StatCache& cache = StatCache::Instance();
  const StatCache::Counters total = cache.TotalCounters();
  json.BeginObject();
  json.Key("enabled");
  json.Bool(enabled);
  json.Key("hits");
  json.UInt(total.hits);
  json.Key("misses");
  json.UInt(total.misses);
  // Warm/cold split of the misses that consulted the persistent tier
  // (both stay 0 when no disk cache is attached).
  json.Key("disk_hits");
  json.UInt(total.disk_hits);
  json.Key("disk_misses");
  json.UInt(total.disk_misses);
  json.Key("domains");
  json.BeginObject();
  for (const auto& [domain, counters] : cache.DomainCounters()) {
    json.Key(domain);
    json.BeginObject();
    json.Key("hits");
    json.UInt(counters.hits);
    json.Key("misses");
    json.UInt(counters.misses);
    json.Key("disk_hits");
    json.UInt(counters.disk_hits);
    json.Key("disk_misses");
    json.UInt(counters.disk_misses);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

std::string ScenariosJson(const std::vector<const ScenarioOutput*>& runs,
                          int threads) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("dpkron.scenarios.v1");
  json.Key("threads");
  json.Int(threads);
  // Provenance for perf comparisons: which kernel path produced this
  // document and on what CPU. The runs[] payload is bit-identical across
  // dispatch levels (the SIMD determinism contract), so these keys are
  // context, not inputs to any frozen-output comparison.
  json.Key("simd");
  json.BeginObject();
  json.Key("dispatch");
  json.String(SimdLevelName(ActiveSimdLevel()));
  json.Key("detected");
  json.String(SimdLevelName(DetectedSimdLevel()));
  json.Key("cpu");
  json.String(CpuBrandString());
  json.EndObject();
  json.Key("cache");
  AppendStatCacheJson(json, StatCache::Instance().enabled());
  json.Key("runs");
  json.BeginArray();
  for (const ScenarioOutput* run : runs) run->AppendRunJson(json);
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dpkron
