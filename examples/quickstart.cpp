// Quickstart: the 60-second tour of dpkron.
//
//   1. obtain a sensitive graph (here: a synthetic co-authorship network);
//   2. run the differentially private SKG estimator (Algorithm 1 of
//      Mir & Wright, PAIS'12) at (ε, δ) = (0.2, 0.01);
//   3. publish Θ̃ and sample a synthetic graph from it;
//   4. check that the synthetic graph mimics the original's statistics.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/datasets/affiliation.h"
#include "src/graph/clustering.h"
#include "src/graph/hop_plot.h"

int main() {
  using namespace dpkron;

  // 1. The sensitive graph. In a real deployment this is your user data
  //    (see graph_io.h for the SNAP edge-list loader); here we synthesize
  //    a co-authorship-like network so the example is self-contained.
  Rng rng(2012);
  AffiliationOptions options;
  options.num_authors = 2048;
  options.num_papers = 1300;
  const Graph sensitive = AffiliationGraph(options, rng);
  std::printf("sensitive graph: %u nodes, %llu edges\n",
              sensitive.NumNodes(),
              static_cast<unsigned long long>(sensitive.NumEdges()));

  // 2. Differentially private estimation. The returned theta is safe to
  //    publish; the budget object documents the composition argument.
  const double epsilon = 0.2, delta = 0.01;
  PrivacyBudget budget(epsilon, delta);
  const auto estimate =
      EstimatePrivateSkg(sensitive, epsilon, delta, budget, rng);
  if (!estimate.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }
  std::printf("\nprivate initiator estimate  Theta~ = %s   (k = %u)\n",
              estimate.value().theta.ToString().c_str(),
              estimate.value().k);
  std::printf("%s", budget.ToString().c_str());

  // 3. Anyone can now sample synthetic graphs from the published model.
  const Graph synthetic = SampleSyntheticGraph(
      estimate.value().theta, estimate.value().k, rng,
      SkgSampleMethod::kExact);

  // 4. Compare a few statistics.
  const auto hops_orig = ExactHopPlot(sensitive);
  const auto hops_synth = ExactHopPlot(synthetic);
  std::printf("\n%-28s %14s %14s\n", "statistic", "original", "synthetic");
  std::printf("%-28s %14llu %14llu\n", "edges",
              static_cast<unsigned long long>(sensitive.NumEdges()),
              static_cast<unsigned long long>(synthetic.NumEdges()));
  std::printf("%-28s %14u %14u\n", "effective diameter (90%)",
              EffectiveDiameter(hops_orig), EffectiveDiameter(hops_synth));
  std::printf("%-28s %14.4f %14.4f\n", "average clustering",
              AverageClustering(sensitive), AverageClustering(synthetic));
  std::printf(
      "\n(SKG models under-fit clustering on clique-heavy graphs — the\n"
      " same limitation the paper reports for CA-GrQC/CA-HepTh.)\n");
  return 0;
}
