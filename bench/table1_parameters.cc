// Table 1 reproduction: initiator-parameter estimates (a, b, c) from
// KronFit, KronMom and the Private estimator on the four evaluation
// datasets, at (ε, δ) = (0.2, 0.01). Paper values are printed next to
// the measured ones for direct comparison. Absolute agreement is expected
// only on the Synthetic-SKG row (identical construction); the *-like
// substitutes reproduce the paper's qualitative structure (a ≈ 1
// everywhere; AS-like fits driving c → 0; Private ≈ KronMom).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/datasets/registry.h"
#include "src/estimation/kronmom.h"
#include "src/kronfit/kronfit.h"

namespace {

void PrintRow(const char* label, const dpkron::Initiator2& theta) {
  std::printf("  %-26s a=%.4f  b=%.4f  c=%.4f\n", label, theta.a, theta.b,
              theta.c);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpkron;
  uint64_t seed = 20120330;
  uint32_t kronfit_iterations = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::atoll(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--kronfit-iterations=", 21) == 0) {
      kronfit_iterations = std::atoi(argv[i] + 21);
    }
  }
  const double epsilon = 0.2, delta = 0.01;
  std::printf("# table1_parameters: epsilon=%g delta=%g\n", epsilon, delta);
  std::printf("# experiment\tseries\tx\ty\n");

  Rng rng(seed);
  int dataset_index = 0;
  for (const DatasetInfo& info : PaperDatasets()) {
    Rng dataset_rng = rng.Split();
    const Graph graph = MakeDataset(info.name, dataset_rng);

    const KronMomResult kronmom = FitKronMom(graph);

    KronFitOptions kf_options;
    kf_options.iterations = kronfit_iterations;
    Rng kronfit_rng = rng.Split();
    const KronFitResult kronfit = FitKronFit(graph, kronfit_rng, kf_options);

    // The private estimator is a randomized mechanism; a single draw can
    // be unlucky when the triangle count is noise-dominated (sparse
    // graphs at ε = 0.2). Run three independent trials and report the
    // one with median distance to the non-private estimate, plus the
    // spread, so the variability is visible rather than hidden behind a
    // seed choice. (The paper reports one draw.)
    struct PrivateTrial {
      Initiator2 theta;
      double distance;
    };
    std::vector<PrivateTrial> trials;
    for (int t = 0; t < 3; ++t) {
      Rng private_rng = rng.Split();
      const auto fit = EstimatePrivateSkg(graph, epsilon, delta, private_rng);
      if (!fit.ok()) {
        std::fprintf(stderr, "private estimation failed on %s: %s\n",
                     info.name.c_str(), fit.status().ToString().c_str());
        return 1;
      }
      trials.push_back({fit.value().theta,
                        MaxAbsDifference(fit.value().theta, kronmom.theta)});
    }
    std::sort(trials.begin(), trials.end(),
              [](const PrivateTrial& x, const PrivateTrial& y) {
                return x.distance < y.distance;
              });
    const PrivateTrial& median_trial = trials[1];

    std::printf("\n== Table 1 row: %s (paper: %s, N=%u E=%llu) ==\n",
                info.name.c_str(), info.paper_name.c_str(), info.paper_nodes,
                static_cast<unsigned long long>(info.paper_edges));
    std::printf("  measured: N=%u E=%llu\n", graph.NumNodes(),
                static_cast<unsigned long long>(graph.NumEdges()));
    PrintRow("KronFit (measured)", kronfit.theta);
    PrintRow("KronFit (paper)", info.paper_kronfit);
    PrintRow("KronMom (measured)", kronmom.theta);
    PrintRow("KronMom (paper)", info.paper_kronmom);
    PrintRow("Private (measured,median)", median_trial.theta);
    PrintRow("Private (paper)", info.paper_private);
    std::printf("  |Private - KronMom| (L_inf): median=%.4f"
                "  [min=%.4f max=%.4f over 3 trials]\n",
                median_trial.distance, trials.front().distance,
                trials.back().distance);

    // Machine-readable rows: x encodes dataset index, series the cell.
    auto emit = [&](const char* series, const Initiator2& t) {
      std::printf("table1\t%s/%s/a\t%d\t%.6f\n", info.name.c_str(), series,
                  dataset_index, t.a);
      std::printf("table1\t%s/%s/b\t%d\t%.6f\n", info.name.c_str(), series,
                  dataset_index, t.b);
      std::printf("table1\t%s/%s/c\t%d\t%.6f\n", info.name.c_str(), series,
                  dataset_index, t.c);
    };
    emit("kronfit", kronfit.theta);
    emit("kronmom", kronmom.theta);
    emit("private", median_trial.theta);
    ++dataset_index;
  }
  return 0;
}
