// Parity suite for the SIMD dispatch layer: every vectorized kernel must
// be bit-identical to its scalar reference at every dispatch level and
// thread count (the determinism contract that keeps scenario/sweep/
// ledger outputs frozen across heterogeneous hardware). All comparisons
// are exact (EXPECT_EQ on doubles), never approximate.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/dp/laplace_mechanism.h"
#include "src/graph/anf.h"
#include "src/graph/graph_builder.h"
#include "src/graph/intersect_kernels.h"
#include "src/graph/triangles.h"
#include "src/kronfit/kronfit.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"
#include "src/linalg/spmv.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedThreads() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

// Levels to sweep: the forced fallbacks always, plus AVX2 when this
// machine can actually run it. (On a non-AVX2 machine the sweep
// degenerates to the fallback levels, which share one code path —
// the parity assertions then hold trivially, and CI's AVX2 runners
// provide the real coverage.)
std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar, SimdLevel::kPopcnt};
  if (DetectedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

Graph SkewedFixture() {
  // Hub-plus-cliques: node 0 sees every other node (degree n−1), the
  // rest sit in 8-cliques — degree ratio far past the galloping
  // threshold, so both intersection strategies are exercised.
  const uint32_t n = 512;
  GraphBuilder builder(n);
  for (uint32_t v = 1; v < n; ++v) builder.AddEdge(0, v);
  for (uint32_t base = 1; base + 8 <= n; base += 8) {
    for (uint32_t i = 0; i < 8; ++i) {
      for (uint32_t j = i + 1; j < 8; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
  }
  return builder.Build();
}

TEST(SimdDispatchTest, LevelNamesAndCapRoundTrip) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kPopcnt), "popcnt");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_GE(DetectedSimdLevel(), SimdLevel::kScalar);
  const SimdLevel ambient = SimdLevelCap();
  {
    ScopedSimdLevelCap cap(SimdLevel::kScalar);
    EXPECT_EQ(SimdLevelCap(), SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(SimdLevelCap(), ambient);
  // Active never exceeds either bound.
  EXPECT_LE(ActiveSimdLevel(), DetectedSimdLevel());
  EXPECT_LE(ActiveSimdLevel(), SimdLevelCap());
}

TEST(SimdParityTest, SwapDeltaBitIdentical) {
  for (const uint32_t k : {4u, 8u, 10u}) {
    Rng graph_rng(100 + k);
    const Graph g = SampleSkg({0.99, 0.55, 0.35}, k, graph_rng);
    for (const Initiator2& theta :
         {Initiator2{0.9, 0.6, 0.2}, Initiator2{0.99, 0.55, 0.35},
          Initiator2{0.5, 0.5, 0.5}}) {
      const KronFitLikelihood model(theta, k);
      PermutationState sigma = DegreeGuidedInit(g, k);
      Rng perturb_rng(7);
      PerturbUniform(&sigma, g.NumNodes() / 2, perturb_rng);
      Rng pair_rng(42);
      for (int trial = 0; trial < 200; ++trial) {
        const auto u =
            static_cast<uint32_t>(pair_rng.NextBounded(g.NumNodes()));
        const auto v =
            static_cast<uint32_t>(pair_rng.NextBounded(g.NumNodes()));
        std::optional<double> reference;
        for (SimdLevel level : TestableLevels()) {
          ScopedSimdLevelCap cap(level);
          const double delta = model.SwapDelta(g, sigma, u, v);
          if (!reference) {
            reference = delta;
          } else {
            EXPECT_EQ(*reference, delta)
                << "k=" << k << " u=" << u << " v=" << v << " level="
                << SimdLevelName(level);
          }
        }
      }
    }
  }
}

TEST(SimdParityTest, LogLikelihoodAndGradientBitIdentical) {
  for (const uint32_t k : {6u, 10u}) {
    Rng graph_rng(200 + k);
    const Graph g = SampleSkg({0.99, 0.55, 0.35}, k, graph_rng);
    const KronFitLikelihood model({0.9, 0.6, 0.2}, k);
    PermutationState sigma = DegreeGuidedInit(g, k);
    Rng perturb_rng(8);
    PerturbUniform(&sigma, g.NumNodes() / 2, perturb_rng);
    std::optional<double> ll_ref;
    std::optional<Gradient3> grad_ref;
    for (SimdLevel level : TestableLevels()) {
      ScopedSimdLevelCap cap(level);
      for (const int threads : {1, 2, 8}) {
        ScopedThreads scoped(threads);
        const double ll = model.LogLikelihood(g, sigma);
        const Gradient3 grad = model.EdgeGradient(g, sigma);
        if (!ll_ref) {
          ll_ref = ll;
          grad_ref = grad;
          continue;
        }
        EXPECT_EQ(*ll_ref, ll) << "k=" << k << " level="
                               << SimdLevelName(level) << " threads="
                               << threads;
        EXPECT_EQ(*grad_ref, grad) << "k=" << k << " level="
                                   << SimdLevelName(level) << " threads="
                                   << threads;
      }
    }
  }
}

TEST(SimdParityTest, TriangleKernelsExactAcrossLevelsAndThreads) {
  Rng graph_rng(33);
  const std::vector<Graph> graphs = {
      SampleSkg({0.99, 0.55, 0.35}, 10, graph_rng), SkewedFixture()};
  for (const Graph& g : graphs) {
    std::optional<uint64_t> count_ref;
    std::optional<std::vector<uint64_t>> per_node_ref;
    std::optional<std::vector<uint32_t>> common_ref;
    for (SimdLevel level : TestableLevels()) {
      ScopedSimdLevelCap cap(level);
      for (const int threads : {1, 2, 8}) {
        ScopedThreads scoped(threads);
        const uint64_t count = CountTriangles(g);
        const std::vector<uint64_t> per_node = PerNodeTriangles(g);
        std::vector<uint32_t> common;
        Rng pair_rng(5);
        for (int trial = 0; trial < 100; ++trial) {
          const auto u =
              static_cast<uint32_t>(pair_rng.NextBounded(g.NumNodes()));
          const auto v =
              static_cast<uint32_t>(pair_rng.NextBounded(g.NumNodes()));
          common.push_back(CommonNeighbors(g, u, v));
        }
        if (!count_ref) {
          count_ref = count;
          per_node_ref = per_node;
          common_ref = common;
          continue;
        }
        EXPECT_EQ(*count_ref, count);
        EXPECT_EQ(*per_node_ref, per_node);
        EXPECT_EQ(*common_ref, common);
      }
    }
    // Cross-check the per-node totals against the global count.
    uint64_t sum = 0;
    for (const uint64_t t : *per_node_ref) sum += t;
    EXPECT_EQ(sum, 3 * *count_ref);
  }
}

// Direct kernel test over every tail-remainder shape: list lengths
// 0..17 on both sides (past 2× the 8-lane block width), against a
// scalar merge computed in-test.
TEST(SimdParityTest, IntersectionTailRemainders) {
  if (DetectedSimdLevel() < SimdLevel::kAvx2) {
    GTEST_SKIP() << "AVX2 unavailable; kernel cannot run on this CPU";
  }
  Rng rng(77);
  auto random_sorted = [&rng](size_t len) {
    std::vector<uint32_t> values;
    uint32_t next = 0;
    for (size_t i = 0; i < len; ++i) {
      next += 1 + static_cast<uint32_t>(rng.NextBounded(4));
      values.push_back(next);
    }
    return values;
  };
  for (size_t na = 0; na <= 17; ++na) {
    for (size_t nb = 0; nb <= 17; ++nb) {
      for (int rep = 0; rep < 4; ++rep) {
        const std::vector<uint32_t> a = random_sorted(na);
        const std::vector<uint32_t> b = random_sorted(nb);
        std::vector<uint32_t> expected;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(expected));
        EXPECT_EQ(IntersectCountAvx2(a.data(), na, b.data(), nb),
                  expected.size())
            << "na=" << na << " nb=" << nb;
        std::vector<uint32_t> out(std::min(na, nb));
        const size_t matches =
            IntersectAvx2(a.data(), na, b.data(), nb, out.data());
        out.resize(matches);
        EXPECT_EQ(out, expected) << "na=" << na << " nb=" << nb;
      }
    }
  }
  // Galloping path: 8 needles in a 4096-element haystack.
  const std::vector<uint32_t> haystack = random_sorted(4096);
  Rng pick(9);
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<uint32_t> needles;
    for (int i = 0; i < 8; ++i) {
      needles.push_back(haystack[pick.NextBounded(haystack.size())]);
    }
    std::sort(needles.begin(), needles.end());
    needles.erase(std::unique(needles.begin(), needles.end()),
                  needles.end());
    EXPECT_EQ(IntersectCountAvx2(needles.data(), needles.size(),
                                 haystack.data(), haystack.size()),
              needles.size());
  }
}

TEST(SimdParityTest, FillLaplaceMatchesSequentialDraws) {
  Rng batched(123), sequential(123);
  std::vector<double> block(257);
  batched.FillLaplace(0.75, block.data(), block.size());
  for (const double value : block) {
    EXPECT_EQ(value, sequential.NextLaplace(0.75));
  }
  EXPECT_EQ(batched.StateFingerprint(), sequential.StateFingerprint());
}

TEST(SimdParityTest, FillBinomialMatchesSequentialDraws) {
  Rng batched(321), sequential(321);
  std::vector<uint64_t> block(129);
  batched.FillBinomial(1000, 0.3, block.data(), block.size());
  for (const uint64_t value : block) {
    EXPECT_EQ(value, sequential.NextBinomial(1000, 0.3));
  }
  EXPECT_EQ(batched.StateFingerprint(), sequential.StateFingerprint());
}

// The vector mechanism must stay byte-compatible with the pre-batch
// draw-and-add-per-element loop AND across dispatch levels, including
// every tail size 0..8 (2× the 4-lane double width).
TEST(SimdParityTest, LaplaceNoiseVectorBitIdentical) {
  std::vector<size_t> sizes{0, 1, 2, 3, 4, 5, 6, 7, 8, 1000};
  for (const size_t size : sizes) {
    std::vector<double> values(size);
    Rng value_rng(size + 1);
    for (double& v : values) v = value_rng.NextGaussian() * 10.0;
    // Pre-batch reference: the old element-at-a-time loop.
    std::vector<double> expected(size);
    Rng reference_rng(99);
    for (size_t i = 0; i < size; ++i) {
      expected[i] = values[i] + reference_rng.NextLaplace(2.0 / 0.5);
    }
    for (SimdLevel level : TestableLevels()) {
      ScopedSimdLevelCap cap(level);
      Rng rng(99);
      const auto noisy = AddLaplaceNoiseVector(values, 2.0, 0.5, rng);
      ASSERT_TRUE(noisy.ok());
      EXPECT_EQ(noisy.value(), expected)
          << "size=" << size << " level=" << SimdLevelName(level);
      EXPECT_EQ(rng.StateFingerprint(), reference_rng.StateFingerprint());
    }
  }
}

TEST(SimdParityTest, AxpyScaleDotBitIdentical) {
  for (const size_t size : {size_t{0}, size_t{1}, size_t{5}, size_t{7},
                            size_t{8}, size_t{100000}}) {
    std::vector<double> x(size), y0(size);
    Rng rng(size + 3);
    for (size_t i = 0; i < size; ++i) {
      x[i] = rng.NextGaussian();
      y0[i] = rng.NextGaussian();
    }
    std::optional<std::vector<double>> axpy_ref, scale_ref;
    std::optional<double> dot_ref;
    for (SimdLevel level : TestableLevels()) {
      ScopedSimdLevelCap cap(level);
      for (const int threads : {1, 2, 8}) {
        ScopedThreads scoped(threads);
        std::vector<double> y = y0;
        Axpy(0.37, x, &y);
        std::vector<double> s = y0;
        Scale(-1.25, &s);
        const double dot = Dot(x, y0);
        if (!axpy_ref) {
          axpy_ref = y;
          scale_ref = s;
          dot_ref = dot;
          continue;
        }
        EXPECT_EQ(*axpy_ref, y);
        EXPECT_EQ(*scale_ref, s);
        EXPECT_EQ(*dot_ref, dot);
      }
    }
  }
}

TEST(SimdParityTest, AnfHopPlotBitIdentical) {
  Rng graph_rng(44);
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, 9, graph_rng);
  std::optional<std::vector<uint64_t>> reference;
  for (SimdLevel level : TestableLevels()) {
    ScopedSimdLevelCap cap(level);
    for (const int threads : {1, 2, 8}) {
      ScopedThreads scoped(threads);
      Rng rng(10);
      const std::vector<uint64_t> hop_plot = ApproxHopPlot(g, rng);
      if (!reference) {
        reference = hop_plot;
        continue;
      }
      EXPECT_EQ(*reference, hop_plot)
          << "level=" << SimdLevelName(level) << " threads=" << threads;
    }
  }
}

// End-to-end trajectory parity: the Metropolis loop (fast accept path
// with the exp shortcut) plus SwapDelta plus EdgeGradient, over several
// gradient iterations — if any dispatch-level divergence slipped through
// the unit parity tests, trajectories would split here.
TEST(SimdParityTest, MetropolisTrajectoryBitIdentical) {
  const uint32_t k = 8;
  Rng graph_rng(55);
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, k, graph_rng);
  std::optional<std::vector<Gradient3>> reference;
  std::optional<double> ll_ref;
  for (SimdLevel level : TestableLevels()) {
    ScopedSimdLevelCap cap(level);
    for (const int threads : {1, 2, 8}) {
      ScopedThreads scoped(threads);
      Rng rng(13);
      MetropolisChains chains(g, k, /*num_chains=*/3, rng);
      const KronFitLikelihood model({0.9, 0.6, 0.2}, k);
      std::vector<Gradient3> trajectory;
      for (int it = 0; it < 3; ++it) {
        trajectory.push_back(
            chains.SampleGradient(model, 2 * uint64_t{g.NumNodes()}));
      }
      const double ll = chains.BestLogLikelihood(model);
      if (!reference) {
        reference = trajectory;
        ll_ref = ll;
        continue;
      }
      EXPECT_EQ(*reference, trajectory)
          << "level=" << SimdLevelName(level) << " threads=" << threads;
      EXPECT_EQ(*ll_ref, ll);
    }
  }
}

TEST(SimdAlignmentTest, CsrArenasAreCacheLineAligned) {
  static_assert(Graph::OffsetVector::allocator_type::alignment == 64);
  static_assert(Graph::AdjacencyVector::allocator_type::alignment == 64);
  Rng rng(66);
  const Graph sampled = SampleSkg({0.99, 0.55, 0.35}, 8, rng);
  const Graph built = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  for (const Graph* g : {&sampled, &built}) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(g->Offsets().data()) % 64, 0u);
    ASSERT_FALSE(g->Adjacency().empty());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(g->Adjacency().data()) % 64, 0u);
  }
}

}  // namespace
}  // namespace dpkron
