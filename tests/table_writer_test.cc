#include "src/common/table_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

std::string Capture(const std::function<void(std::FILE*)>& write) {
  std::FILE* tmp = std::tmpfile();
  write(tmp);
  std::fflush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[256];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), tmp)) > 0) {
    out.append(buf, got);
  }
  std::fclose(tmp);
  return out;
}

TEST(SeriesTableTest, EmitsHeaderAndRows) {
  SeriesTable table("exp/test");
  table.Add("original", 1, 10);
  table.Add("private", 2, 20.5);
  const std::string out =
      Capture([&table](std::FILE* f) { table.Print(f); });
  EXPECT_NE(out.find("# experiment\tseries\tx\ty"), std::string::npos);
  EXPECT_NE(out.find("exp/test\toriginal\t1\t10"), std::string::npos);
  EXPECT_NE(out.find("exp/test\tprivate\t2\t20.5"), std::string::npos);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SeriesTableTest, EmptyTableStillPrintsHeader) {
  SeriesTable table("empty");
  const std::string out =
      Capture([&table](std::FILE* f) { table.Print(f); });
  EXPECT_NE(out.find("# experiment"), std::string::npos);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SeriesTableTest, HighPrecisionValuesSurvive) {
  SeriesTable table("precision");
  table.Add("s", 1.0, 1.23456789e-7);
  const std::string out =
      Capture([&table](std::FILE* f) { table.Print(f); });
  EXPECT_NE(out.find("1.23456789e-07"), std::string::npos);
}

TEST(SeriesTableTest, ExposesRowsForStructuredEmission) {
  SeriesTable table("exp/test");
  table.Add("a", 1, 2);
  table.Add("b", 3, 4);
  EXPECT_EQ(table.experiment(), "exp/test");
  ASSERT_EQ(table.rows().size(), 2u);
  EXPECT_EQ(table.rows()[1].series, "b");
  EXPECT_DOUBLE_EQ(table.rows()[1].x, 3.0);
  EXPECT_DOUBLE_EQ(table.rows()[1].y, 4.0);
}

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name");
  json.String("run");
  json.Key("ledger");
  json.BeginArray();
  json.BeginObject();
  json.Key("epsilon");
  json.Number(0.5);
  json.Key("count");
  json.Int(-3);
  json.EndObject();
  json.UInt(7);
  json.EndArray();
  json.Key("ok");
  json.Bool(true);
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"run\",\"ledger\":[{\"epsilon\":0.5,\"count\":-3},"
            "7],\"ok\":true}");
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  JsonWriter json;
  json.BeginObject();
  json.Key("quote \" backslash \\");
  json.String("tab\there\nnewline \x01 control");
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"quote \\\" backslash \\\\\":"
            "\"tab\\there\\nnewline \\u0001 control\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::nan(""));
  json.Number(std::numeric_limits<double>::infinity());
  json.Number(-std::numeric_limits<double>::infinity());
  json.Number(1.5);
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, NumbersRoundTripAtFullPrecision) {
  const double values[] = {0.1, 1.23456789e-7, 1.0 / 3.0, -2.5e300};
  for (double value : values) {
    JsonWriter json;
    json.Number(value);
    // %.17g must reproduce the exact double on re-parse.
    EXPECT_EQ(std::strtod(json.str().c_str(), nullptr), value)
        << json.str();
  }
}

TEST(JsonWriterDeathTest, RejectsMisnesting) {
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginObject();
        json.Number(1.0);  // object member without a Key
      },
      "CHECK");
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginArray();
        json.Key("k");  // keys are object-only
      },
      "CHECK");
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginArray();
        json.EndObject();  // mismatched closer
      },
      "CHECK");
}

TEST(JsonEscapeTest, PassesPlainStringsThrough) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(SummaryBlockTest, PrintsTitleAndItems) {
  SummaryBlock block("Table 1 row");
  block.Add("a", 0.999);
  block.Add("dataset", std::string("CA-GrQC"));
  const std::string out =
      Capture([&block](std::FILE* f) { block.Print(f); });
  EXPECT_NE(out.find("== Table 1 row =="), std::string::npos);
  EXPECT_NE(out.find("0.999"), std::string::npos);
  EXPECT_NE(out.find("CA-GrQC"), std::string::npos);
}

}  // namespace
}  // namespace dpkron
