#include "src/graph/graph_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/graph/graph_builder.h"

namespace dpkron {
namespace {

Result<Graph> ParseStream(std::istream& in, const std::string& origin) {
  std::unordered_map<uint64_t, Graph::NodeId> dense_id;
  std::vector<std::pair<Graph::NodeId, Graph::NodeId>> edges;
  auto intern = [&dense_id](uint64_t raw) {
    auto [it, inserted] = dense_id.emplace(
        raw, static_cast<Graph::NodeId>(dense_id.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Skip blanks and comments.
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    std::istringstream fields(line);
    uint64_t raw_u = 0, raw_v = 0;
    if (!(fields >> raw_u >> raw_v)) {
      return Status::InvalidArgument(origin + ":" +
                                     std::to_string(line_number) +
                                     ": expected 'u v', got: " + line);
    }
    edges.emplace_back(intern(raw_u), intern(raw_v));
  }
  GraphBuilder builder(static_cast<uint32_t>(dense_id.size()));
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace

Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open edge list: " + path);
  return ParseStream(in, path);
}

Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in, "<string>");
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << "# dpkron edge list: " << graph.NumNodes() << " nodes, "
      << graph.NumEdges() << " edges\n";
  graph.ForEachEdge(
      [&out](Graph::NodeId u, Graph::NodeId v) { out << u << '\t' << v << '\n'; });
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace dpkron
