#include "src/graph/degree.h"

#include <algorithm>

namespace dpkron {

std::vector<uint32_t> DegreeVector(const Graph& graph) {
  std::vector<uint32_t> degrees(graph.NumNodes());
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    degrees[u] = graph.Degree(u);
  }
  return degrees;
}

std::vector<uint32_t> SortedDegreeVector(const Graph& graph) {
  std::vector<uint32_t> degrees = DegreeVector(graph);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

uint32_t MaxDegree(const Graph& graph) {
  uint32_t max_degree = 0;
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    max_degree = std::max(max_degree, graph.Degree(u));
  }
  return max_degree;
}

std::vector<std::pair<uint32_t, uint64_t>> DegreeHistogram(
    const Graph& graph) {
  std::vector<uint64_t> counts(MaxDegree(graph) + 1, 0);
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    ++counts[graph.Degree(u)];
  }
  std::vector<std::pair<uint32_t, uint64_t>> histogram;
  for (uint32_t d = 0; d < counts.size(); ++d) {
    if (counts[d] > 0) histogram.emplace_back(d, counts[d]);
  }
  return histogram;
}

double EdgesFromDegrees(const std::vector<double>& degrees) {
  double sum = 0.0;
  for (double d : degrees) sum += d;
  return sum / 2.0;
}

double HairpinsFromDegrees(const std::vector<double>& degrees) {
  double sum = 0.0;
  for (double d : degrees) sum += d * (d - 1.0);
  return sum / 2.0;
}

double TripinsFromDegrees(const std::vector<double>& degrees) {
  double sum = 0.0;
  for (double d : degrees) sum += d * (d - 1.0) * (d - 2.0);
  return sum / 6.0;
}

uint64_t CountWedges(const Graph& graph) {
  uint64_t wedges = 0;
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    const uint64_t d = graph.Degree(u);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

uint64_t CountTripins(const Graph& graph) {
  uint64_t tripins = 0;
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    const uint64_t d = graph.Degree(u);
    tripins += d * (d - 1) * (d - 2) / 6;
  }
  return tripins;
}

}  // namespace dpkron
