// Shared harness for the Figure 1–4 reproduction binaries.
//
// Each figure in the paper shows, for one dataset, five panels — hop plot,
// degree distribution, scree plot, network value, clustering-by-degree —
// overlaying the original graph with single synthetic realizations from
// the KronFit, KronMom and Private estimators (Figure 1 additionally shows
// "Expected" series averaged over 100 realizations). This harness runs
// that whole pipeline and emits one TSV row per plotted point plus
// human-readable summaries.

#ifndef DPKRON_BENCH_FIGURE_HARNESS_H_
#define DPKRON_BENCH_FIGURE_HARNESS_H_

#include <cstdint>
#include <string>

namespace dpkron::bench {

struct FigureConfig {
  std::string experiment;  // e.g. "fig1_ca_grqc"
  std::string dataset;     // registry name, e.g. "CA-GrQC-like"
  // Realizations behind the "Expected" series; 0 skips those series
  // (Figs 2–4 show single realizations only). Overridable with
  // --realizations=N on the command line (the paper used 100).
  uint32_t expected_realizations = 0;
  // Privacy parameters — the paper's experiments all use (0.2, 0.01).
  double epsilon = 0.2;
  double delta = 0.01;
  uint64_t seed = 20120330;  // PAIS'12 workshop date
  // KronFit gradient iterations (the slowest stage; 40 reproduces the
  // qualitative estimates well inside a CI budget).
  uint32_t kronfit_iterations = 40;
};

// Runs the figure pipeline; returns a process exit code.
// Recognized flags: --realizations=N, --seed=N, --epsilon=X.
int RunFigureBench(FigureConfig config, int argc, char** argv);

}  // namespace dpkron::bench

#endif  // DPKRON_BENCH_FIGURE_HARNESS_H_
