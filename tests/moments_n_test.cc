#include "src/skg/moments_n.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/estimation/features.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

void ExpectMomentsNear(const SkgMoments& a, const SkgMoments& b, double tol) {
  EXPECT_NEAR(a.edges, b.edges, tol * (1 + b.edges));
  EXPECT_NEAR(a.hairpins, b.hairpins, tol * (1 + b.hairpins));
  EXPECT_NEAR(a.triangles, b.triangles, tol * (1 + b.triangles));
  EXPECT_NEAR(a.tripins, b.tripins, tol * (1 + b.tripins));
}

TEST(MomentsNTest, SpecializesToTwoByTwoFormulas) {
  for (const auto& [a, b, c] :
       std::vector<std::tuple<double, double, double>>{
           {0.99, 0.45, 0.25}, {1.0, 0.63, 0.0}, {0.5, 0.5, 0.5},
           {0.7, 0.1, 0.6}}) {
    const Initiator2 theta2{a, b, c};
    const InitiatorN thetaN = InitiatorN::From2x2(theta2);
    for (uint32_t k : {1u, 3u, 7u, 12u}) {
      ExpectMomentsNear(ExpectedMomentsN(thetaN, k),
                        ExpectedMoments(theta2, k), 1e-11);
    }
  }
}

class MomentsN3BruteForceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(MomentsN3BruteForceTest, MatchesBruteForceOn3x3) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  // Random symmetric 3×3 initiator.
  std::vector<double> entries(9);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i; j < 3; ++j) {
      const double x = rng.NextDouble();
      entries[i * 3 + j] = x;
      entries[j * 3 + i] = x;
    }
  }
  const auto theta = InitiatorN::Create(3, entries).value();
  ExpectMomentsNear(ExpectedMomentsN(theta, k),
                    ExpectedMomentsBruteForceN(theta, k), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOrders, MomentsN3BruteForceTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(MomentsNTest, FourByFourAgainstBruteForce) {
  Rng rng(77);
  std::vector<double> entries(16);
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i; j < 4; ++j) {
      const double x = rng.NextDouble();
      entries[i * 4 + j] = x;
      entries[j * 4 + i] = x;
    }
  }
  const auto theta = InitiatorN::Create(4, entries).value();
  for (uint32_t k : {1u, 2u, 3u}) {
    ExpectMomentsNear(ExpectedMomentsN(theta, k),
                      ExpectedMomentsBruteForceN(theta, k), 1e-9);
  }
}

TEST(MomentsNTest, MonteCarloAgreementOn3x3) {
  // Sample the general exact sampler and compare empirical means.
  const auto theta =
      InitiatorN::Create(3, {0.95, 0.4, 0.2,   //
                             0.4, 0.6, 0.3,    //
                             0.2, 0.3, 0.5})
          .value();
  const uint32_t k = 4;  // 81 nodes
  Rng rng(123);
  double edges = 0, hairpins = 0, triangles = 0, tripins = 0;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    const Graph g = SampleSkgN(theta, k, rng);
    const GraphFeatures f = ComputeFeatures(g);
    edges += f.edges;
    hairpins += f.hairpins;
    triangles += f.triangles;
    tripins += f.tripins;
  }
  const SkgMoments m = ExpectedMomentsN(theta, k);
  EXPECT_NEAR(edges / runs, m.edges, 0.05 * m.edges + 2);
  EXPECT_NEAR(hairpins / runs, m.hairpins, 0.10 * m.hairpins + 10);
  EXPECT_NEAR(triangles / runs, m.triangles, 0.15 * m.triangles + 5);
  EXPECT_NEAR(tripins / runs, m.tripins, 0.15 * m.tripins + 20);
}

TEST(MomentsNDeathTest, RejectsAsymmetricInitiator) {
  const auto theta =
      InitiatorN::Create(2, {0.9, 0.4, 0.5, 0.2}).value();
  EXPECT_DEATH(ExpectedMomentsN(theta, 3), "symmetric");
}

}  // namespace
}  // namespace dpkron
