#include "src/dp/privacy_budget.h"

#include <gtest/gtest.h>

namespace dpkron {
namespace {

TEST(PrivacyBudgetTest, TracksSpending) {
  PrivacyBudget budget(1.0, 0.01);
  EXPECT_TRUE(budget.Spend(0.4, 0.0, "degrees").ok());
  EXPECT_TRUE(budget.Spend(0.4, 0.01, "triangles").ok());
  EXPECT_NEAR(budget.epsilon_spent(), 0.8, 1e-12);
  EXPECT_NEAR(budget.epsilon_remaining(), 0.2, 1e-12);
  EXPECT_NEAR(budget.delta_remaining(), 0.0, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 2u);
}

TEST(PrivacyBudgetTest, RefusesOverdraft) {
  PrivacyBudget budget(0.5, 0.0);
  EXPECT_TRUE(budget.Spend(0.5, 0.0, "all of it").ok());
  const Status s = budget.Spend(0.01, 0.0, "one more");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Failed spend is not recorded.
  EXPECT_EQ(budget.ledger().size(), 1u);
  EXPECT_NEAR(budget.epsilon_spent(), 0.5, 1e-12);
}

TEST(PrivacyBudgetTest, RefusesDeltaOverdraft) {
  PrivacyBudget budget(10.0, 0.01);
  EXPECT_TRUE(budget.Spend(1.0, 0.01, "first").ok());
  EXPECT_FALSE(budget.Spend(1.0, 0.001, "second").ok());
}

TEST(PrivacyBudgetTest, ExactSpendDespiteFloatAccumulation) {
  PrivacyBudget budget(0.3, 0.0);
  EXPECT_TRUE(budget.Spend(0.1, 0.0, "a").ok());
  EXPECT_TRUE(budget.Spend(0.1, 0.0, "b").ok());
  EXPECT_TRUE(budget.Spend(0.1, 0.0, "c").ok());  // 3×0.1 != 0.3 exactly
}

TEST(PrivacyBudgetTest, RejectsInvalidCharges) {
  PrivacyBudget budget(1.0, 0.1);
  EXPECT_FALSE(budget.Spend(-0.1, 0.0, "negative").ok());
  EXPECT_FALSE(budget.Spend(0.0, 0.0, "empty").ok());
}

TEST(PrivacyBudgetTest, ToStringListsLedger) {
  PrivacyBudget budget(1.0, 0.01);
  ASSERT_TRUE(budget.Spend(0.5, 0.0, "degree_sequence").ok());
  const std::string s = budget.ToString();
  EXPECT_NE(s.find("degree_sequence"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(PrivacyBudgetDeathTest, RejectsInvalidTotals) {
  EXPECT_DEATH(PrivacyBudget(0.0, 0.0), "CHECK");
  EXPECT_DEATH(PrivacyBudget(1.0, 1.0), "CHECK");
}

}  // namespace
}  // namespace dpkron
