// PrivacyAccountant — a crash-safe, multi-analyst budget store: the
// persistent accounting layer the ROADMAP's `dpkrond` daemon needs
// ("budgets survive restarts, concurrent spends are atomic, exhausted
// budgets refuse with a clean Status").
//
// The differential-privacy guarantee of the whole system reduces to
// this ledger: an ε-spend that is lost (a crash forgets a release that
// was already handed out) silently breaks the composition bound of
// Theorem 4.10, while a spend that is double-counted merely wastes
// budget. The accountant is therefore built so recovery can only err in
// the SAFE direction:
//
//   * A spend is acknowledged only after its journal record is durable
//     (write + fsync through the Env seam; see journal.h). An
//     acknowledged spend survives any later crash.
//   * Recovery replays the longest valid record prefix. A torn tail
//     record — the signature of a crash mid-append — is discarded whole,
//     never half-applied.
//   * The recovered epsilon_spent is therefore at least the prefix-sum
//     of all acknowledged spends. The only record that can exceed it is
//     a trailing spend whose fsync raced the crash: it was never
//     acknowledged (no release was handed out against it), so counting
//     it merely over-reserves — DP-safe.
//   * A journal append failure (ENOSPC, EIO) refuses the spend and does
//     not advance the in-memory state; the journal repairs its tail or
//     wounds itself (further spends refuse) — the accountant never acks
//     a spend whose durability is unknown.
//
// Concurrency: Spend() is atomic under one mutex (check → journal →
// apply is a critical section), so concurrent spenders serialize and
// the journal order equals the ledger order. Exercised under TSan in CI.

#ifndef DPKRON_DP_PRIVACY_ACCOUNTANT_H_
#define DPKRON_DP_PRIVACY_ACCOUNTANT_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/journal.h"
#include "src/common/status.h"
#include "src/dp/privacy_budget.h"

namespace dpkron {

class PrivacyAccountant {
 public:
  // Replayed-record count above which Open() compacts the journal: the
  // spend history collapses to one snapshot record per analyst (plus
  // the request-id dedup set), installed atomically with
  // WriteFileDurable. Keeps a long-lived daemon's journal — and its
  // restart time — bounded by the number of analysts, not the number of
  // requests ever served.
  static constexpr uint64_t kDefaultCompactThreshold = 4096;

  // Opens (creating if absent) the journal at `path` and recovers the
  // spend history. Every analyst gets an (epsilon_total, delta_total)
  // budget; reopening an existing journal validates that its recorded
  // totals match (changing totals under a live ledger would silently
  // re-derive "remaining" — refused as InvalidArgument). When the
  // replayed history exceeds `compact_threshold` records it is
  // compacted in place; a compaction-write failure degrades to a
  // warning (the uncompacted journal keeps working, nothing is lost).
  static Result<std::unique_ptr<PrivacyAccountant>> Open(
      const std::string& path, double epsilon_total, double delta_total,
      Env* env = GetEnv(),
      uint64_t compact_threshold = kDefaultCompactThreshold);

  // Atomically charges (epsilon, delta) to `analyst`'s budget. OK means
  // the spend is DURABLE (it will be recovered after any crash).
  // FailedPrecondition = budget exhausted (nothing journaled); I/O
  // statuses = the spend was refused and not applied.
  Status Spend(const std::string& analyst, double epsilon, double delta,
               const std::string& label);

  // Spend() with at-most-once semantics keyed on `request_id` — the
  // idempotent-retry primitive for dpkrond. If `request_id` was already
  // charged (in this process or any recovered journal, including across
  // compactions), the call is an acknowledged no-op: returns OK, sets
  // *deduped = true, charges nothing and journals nothing. A client
  // whose first attempt timed out after the spend became durable can
  // therefore retry blindly without being double-charged. An empty
  // request_id is never deduplicated.
  Status SpendOnce(const std::string& analyst, double epsilon, double delta,
                   const std::string& label, const std::string& request_id,
                   bool* deduped = nullptr);

  // True iff `request_id` has an acknowledged (durable) charge.
  bool SeenRequest(const std::string& request_id) const;

  // The validation half of Spend(): OK iff a Spend with these arguments
  // would be admitted right now. dpkrond fast-fails a request BEFORE
  // computing the release; the authoritative check still happens inside
  // Spend/SpendOnce (another analyst thread may have spent in between).
  Status CheckSpend(const std::string& analyst, double epsilon,
                    double delta) const;

  // Snapshot accessors (mutex-guarded; values are consistent points).
  double epsilon_spent(const std::string& analyst) const;
  double delta_spent(const std::string& analyst) const;
  double epsilon_remaining(const std::string& analyst) const;
  // Number of applied spend records across all analysts.
  uint64_t total_spends() const;
  std::vector<std::string> analysts() const;

  double epsilon_total() const { return epsilon_total_; }
  double delta_total() const { return delta_total_; }
  // True after a journal failure left the on-disk tail unrepairable;
  // every further Spend() refuses until the accountant is reopened.
  bool wounded() const;

  // Per-analyst ledgers, one block each (diagnostics).
  std::string ToString() const;

 private:
  PrivacyAccountant(double epsilon_total, double delta_total,
                    std::unique_ptr<JournalWriter> journal)
      : epsilon_total_(epsilon_total),
        delta_total_(delta_total),
        journal_(std::move(journal)) {}

  // The budget for `analyst`, created on first touch. Callers hold mu_.
  PrivacyBudget& BudgetLocked(const std::string& analyst);

  // A complete journal image (header + one snapshot per analyst + the
  // request-id set) equivalent to the current state. Callers hold mu_
  // (or have exclusive access during Open).
  std::string CompactedImageLocked() const;

  const double epsilon_total_;
  const double delta_total_;
  mutable std::mutex mu_;
  std::unique_ptr<JournalWriter> journal_;
  std::map<std::string, PrivacyBudget> budgets_;
  // Applied-spend count per analyst (compacted histories keep their
  // counts), so compaction snapshots preserve total_spends() exactly.
  std::map<std::string, uint64_t> spend_counts_;
  // request_ids with an acknowledged charge; survives reopen/compaction.
  std::set<std::string> request_ids_;
  uint64_t total_spends_ = 0;
};

}  // namespace dpkron

#endif  // DPKRON_DP_PRIVACY_ACCOUNTANT_H_
