#include "src/dp/star_sensitivity.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "src/graph/graph_builder.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::MakeGraph;
using testing::StarGraph;

TEST(SmoothSensitivityWedgesTest, AtLeastLocalSensitivity) {
  // Adding an edge between the two highest-degree non-adjacent nodes
  // creates d1 + d2 wedges; SS must be at least that when such a pair
  // exists. Star graph: two leaves (degree 1 each) are non-adjacent.
  const Graph g = StarGraph(10);
  const double ss = SmoothSensitivityWedges(g, 1.0);
  EXPECT_GE(ss, 2.0);  // adding leaf-leaf edge: 1 + 1 wedges... bound is
                       // d(1)+d(2) = 9+1 = 10 (conservative).
  EXPECT_GE(ss, 10.0 * std::exp(0.0) - 1e-9);
}

TEST(SmoothSensitivityWedgesTest, SmallBetaApproachesCap) {
  const Graph g = MakeGraph(16, {{0, 1}});
  // With beta -> 0 the adversary can grow degrees arbitrarily: SS -> cap.
  EXPECT_NEAR(SmoothSensitivityWedges(g, 1e-9), 2.0 * 16 - 2, 1e-3);
}

TEST(SmoothSensitivityWedgesTest, LargeBetaApproachesBase) {
  Rng rng(1);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  const auto degrees = SortedDegreeVector(g);
  const double base =
      double(degrees[degrees.size() - 1]) + double(degrees[degrees.size() - 2]);
  EXPECT_NEAR(SmoothSensitivityWedges(g, 50.0), base, 1e-9);
}

TEST(SmoothSensitivityWedgesTest, SmoothnessAcrossNeighbors) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = SampleSkg({0.85, 0.5, 0.3}, 6, rng);
    const uint32_t n = g.NumNodes();
    const uint32_t i = uint32_t(rng.NextBounded(n));
    uint32_t j = uint32_t(rng.NextBounded(n));
    if (i == j) j = (j + 1) % n;
    GraphBuilder builder(n);
    g.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
      if (u == std::min(i, j) && v == std::max(i, j)) return;
      builder.AddEdge(u, v);
    });
    if (!g.HasEdge(i, j)) builder.AddEdge(i, j);
    const Graph neighbor = builder.Build();
    for (double beta : {0.0167, 0.1, 0.5}) {
      const double ss_g = SmoothSensitivityWedges(g, beta);
      const double ss_n = SmoothSensitivityWedges(neighbor, beta);
      EXPECT_LE(ss_g, std::exp(beta) * ss_n + 1e-9);
      EXPECT_LE(ss_n, std::exp(beta) * ss_g + 1e-9);
      const double st_g = SmoothSensitivityTripins(g, beta);
      const double st_n = SmoothSensitivityTripins(neighbor, beta);
      EXPECT_LE(st_g, std::exp(beta) * st_n + 1e-9);
      EXPECT_LE(st_n, std::exp(beta) * st_g + 1e-9);
    }
  }
}

TEST(SmoothSensitivityTripinsTest, TinyGraphsZero) {
  EXPECT_DOUBLE_EQ(SmoothSensitivityTripins(MakeGraph(3, {{0, 1}}), 0.1), 0.0);
  EXPECT_DOUBLE_EQ(SmoothSensitivityWedges(MakeGraph(2, {{0, 1}}), 0.1), 0.0);
}

TEST(SmoothSensitivityTripinsTest, CompleteGraphBase) {
  // K6: d1 = d2 = 5, base = 2·C(5,2) = 20; cap = 5·4 = 20, so SS = 20
  // for every beta.
  const Graph g = CompleteGraph(6);
  EXPECT_NEAR(SmoothSensitivityTripins(g, 10.0), 20.0, 1e-9);
  EXPECT_NEAR(SmoothSensitivityTripins(g, 0.001), 20.0, 1e-9);
}

TEST(PrivateWedgeCountTest, CentersOnTruth) {
  Rng graph_rng(5);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, graph_rng);
  const double truth = double(CountWedges(g));
  Rng rng(7);
  double sum = 0.0;
  const int runs = 300;
  double ss = 0.0;
  for (int r = 0; r < runs; ++r) {
    const auto result = PrivateWedgeCount(g, 1.0, 0.01, rng);
    sum += result.value;
    ss = result.smooth_sensitivity;
  }
  const double noise_sd = 2.0 * ss * std::sqrt(2.0);
  EXPECT_NEAR(sum / runs, truth, 5 * noise_sd / std::sqrt(double(runs)));
}

TEST(PrivateTripinCountTest, MoreNoiseAtSmallerEpsilon) {
  Rng rng(9);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  const double truth = double(CountTripins(g));
  double small = 0, large = 0;
  for (int r = 0; r < 60; ++r) {
    small += std::fabs(PrivateTripinCount(g, 0.05, 0.01, rng).value - truth);
    large += std::fabs(PrivateTripinCount(g, 5.0, 0.01, rng).value - truth);
  }
  EXPECT_GT(small, 3 * large);
}

TEST(DirectPrivateFeaturesTest, BudgetLedger) {
  Rng rng(11);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, rng);
  PrivacyBudget budget(0.2, 0.01);
  const auto features = ComputeDirectPrivateFeatures(g, 0.2, 0.01, budget, rng);
  ASSERT_TRUE(features.ok());
  EXPECT_NEAR(budget.epsilon_spent(), 0.2, 1e-12);
  EXPECT_NEAR(budget.delta_spent(), 0.01, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 4u);
}

TEST(DirectPrivateFeaturesTest, RefusesInsufficientBudget) {
  Rng rng(13);
  const Graph g = testing::CycleGraph(32);
  PrivacyBudget budget(0.1, 0.01);
  EXPECT_FALSE(ComputeDirectPrivateFeatures(g, 0.2, 0.01, budget, rng).ok());
}

TEST(DirectPrivateFeaturesTest, AccurateAtHighEpsilon) {
  Rng rng(15);
  const Graph g = SampleSkg({0.95, 0.55, 0.3}, 9, rng);
  const GraphFeatures exact = ComputeFeatures(g);
  PrivacyBudget budget(400.0, 0.01);
  const auto features =
      ComputeDirectPrivateFeatures(g, 400.0, 0.01, budget, rng);
  ASSERT_TRUE(features.ok());
  EXPECT_NEAR(features.value().edges, exact.edges, 0.01 * exact.edges + 1);
  EXPECT_NEAR(features.value().hairpins, exact.hairpins,
              0.05 * exact.hairpins + 10);
  EXPECT_NEAR(features.value().tripins, exact.tripins,
              0.05 * exact.tripins + 10);
}

TEST(DirectPrivateFeaturesTest, RejectsInvalidParameters) {
  Rng rng(17);
  const Graph g = testing::CycleGraph(16);
  PrivacyBudget budget(1.0, 0.1);
  EXPECT_FALSE(ComputeDirectPrivateFeatures(g, -1.0, 0.01, budget, rng).ok());
  EXPECT_FALSE(ComputeDirectPrivateFeatures(g, 0.2, 2.0, budget, rng).ok());
}

}  // namespace
}  // namespace dpkron
