#include "src/graph/extra_stats.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/graph/degree.h"
#include "src/graph/triangles.h"

namespace dpkron {

std::vector<std::pair<uint64_t, uint64_t>> TriangleParticipation(
    GraphView graph) {
  const std::vector<uint64_t> per_node = PerNodeTriangles(graph);
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t t : per_node) ++counts[t];
  return {counts.begin(), counts.end()};
}

double DegreeAssortativity(GraphView graph) {
  // Pearson correlation over the 2M ordered edge endpoints (x = deg u,
  // y = deg v); symmetric, so accumulate each undirected edge once with
  // both orientations folded in.
  double sum_x = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  uint64_t samples = 0;
  graph.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
    const double du = graph.Degree(u), dv = graph.Degree(v);
    sum_x += du + dv;
    sum_xx += du * du + dv * dv;
    sum_xy += 2.0 * du * dv;
    samples += 2;
  });
  if (samples < 4) return 0.0;
  const double mean = sum_x / double(samples);
  const double var = sum_xx / double(samples) - mean * mean;
  if (var <= 1e-12) return 0.0;  // regular edge set: undefined, report 0
  const double cov = sum_xy / double(samples) - mean * mean;
  return cov / var;
}

std::vector<uint32_t> CoreNumbers(GraphView graph) {
  const uint32_t n = graph.NumNodes();
  std::vector<uint32_t> core(DegreeVector(graph));
  if (n == 0) return core;

  // Bucket sort nodes by current degree (classic Batagelj–Zaveršnik).
  const uint32_t max_degree = *std::max_element(core.begin(), core.end());
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (uint32_t u = 0; u < n; ++u) ++bucket_start[core[u] + 1];
  for (uint32_t d = 1; d <= max_degree + 1; ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<uint32_t> order(n);       // nodes sorted by degree
  std::vector<uint32_t> position(n);    // node -> index in order
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (uint32_t u = 0; u < n; ++u) {
      position[u] = cursor[core[u]];
      order[position[u]] = u;
      ++cursor[core[u]];
    }
  }

  std::vector<uint32_t> degree_of(core);  // working degrees
  for (uint32_t idx = 0; idx < n; ++idx) {
    const uint32_t u = order[idx];
    core[u] = degree_of[u];
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (degree_of[v] > degree_of[u]) {
        // Move v one bucket down: swap it with the first node of its
        // current bucket, then shrink the bucket boundary.
        const uint32_t dv = degree_of[v];
        const uint32_t first_idx = bucket_start[dv];
        const uint32_t first_node = order[first_idx];
        if (first_node != v) {
          std::swap(order[position[v]], order[first_idx]);
          std::swap(position[v], position[first_node]);
        }
        ++bucket_start[dv];
        --degree_of[v];
      }
    }
  }
  return core;
}

uint32_t Degeneracy(GraphView graph) {
  const std::vector<uint32_t> core = CoreNumbers(graph);
  uint32_t best = 0;
  for (uint32_t c : core) best = std::max(best, c);
  return best;
}

std::vector<std::pair<uint32_t, uint64_t>> CoreHistogram(GraphView graph) {
  std::map<uint32_t, uint64_t> counts;
  for (uint32_t c : CoreNumbers(graph)) ++counts[c];
  return {counts.begin(), counts.end()};
}

}  // namespace dpkron
