#include "src/datasets/preferential_attachment.h"

#include <algorithm>
#include <vector>

#include "src/common/macros.h"
#include "src/graph/graph_builder.h"

namespace dpkron {

Graph PreferentialAttachmentGraph(const PreferentialAttachmentOptions& options,
                                  Rng& rng) {
  const uint32_t n = options.num_nodes;
  const uint32_t m = options.edges_per_node;
  DPKRON_CHECK_GE(m, 1u);
  DPKRON_CHECK_GT(n, m);

  GraphBuilder builder(n);
  // Seed: clique on the first m+1 nodes.
  for (uint32_t u = 0; u <= m; ++u) {
    for (uint32_t v = u + 1; v <= m; ++v) builder.AddEdge(u, v);
  }
  // endpoint[i]: one node per edge-endpoint; uniform draws from it give
  // degree-proportional selection.
  std::vector<uint32_t> endpoints;
  endpoints.reserve(2ull * m * n);
  for (uint32_t u = 0; u <= m; ++u) {
    for (uint32_t v = u + 1; v <= m; ++v) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<uint32_t> chosen;
  for (uint32_t u = m + 1; u < n; ++u) {
    chosen.clear();
    uint32_t attempts = 0;
    while (chosen.size() < m && attempts < 20 * m + 40) {
      ++attempts;
      const uint32_t target = endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), target) == chosen.end()) {
        chosen.push_back(target);
      }
    }
    for (uint32_t target : chosen) {
      builder.AddEdge(u, target);
      endpoints.push_back(u);
      endpoints.push_back(target);
    }
  }
  return builder.Build();
}

}  // namespace dpkron
