#include "src/graph/extra_stats.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::MakeGraph;
using testing::PathGraph;
using testing::PetersenGraph;
using testing::StarGraph;

TEST(TriangleParticipationTest, CompleteGraph) {
  // Every node of K_5 is in C(4,2) = 6 triangles.
  const auto tp = TriangleParticipation(CompleteGraph(5));
  ASSERT_EQ(tp.size(), 1u);
  EXPECT_EQ(tp[0], (std::pair<uint64_t, uint64_t>{6, 5}));
}

TEST(TriangleParticipationTest, MixedGraph) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  const auto tp = TriangleParticipation(g);
  ASSERT_EQ(tp.size(), 2u);
  EXPECT_EQ(tp[0], (std::pair<uint64_t, uint64_t>{0, 1}));  // node 3
  EXPECT_EQ(tp[1], (std::pair<uint64_t, uint64_t>{1, 3}));
}

TEST(TriangleParticipationTest, CountsSumToNodes) {
  Rng rng(3);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, rng);
  uint64_t total = 0;
  for (const auto& [t, count] : TriangleParticipation(g)) total += count;
  EXPECT_EQ(total, g.NumNodes());
}

TEST(DegreeAssortativityTest, StarIsPerfectlyDisassortative) {
  EXPECT_NEAR(DegreeAssortativity(StarGraph(10)), -1.0, 1e-9);
}

TEST(DegreeAssortativityTest, RegularGraphsReportZero) {
  EXPECT_DOUBLE_EQ(DegreeAssortativity(CycleGraph(8)), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(CompleteGraph(6)), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(PetersenGraph()), 0.0);
}

TEST(DegreeAssortativityTest, PathGraphKnownValue) {
  // P4 degrees: 1,2,2,1; edges (1,2),(2,2),(2,1). Endpoint samples:
  // x ∈ {1,2,2,2,2,1}; classic r = −1/2... compute directly: mean=5/3,
  // var = 2/9; cov over pairs {(1,2),(2,2),(2,1)} doubled = (2+4+2)·2/6
  // − 25/9 = 8/3−25/9 = −1/9; r = −1/2.
  EXPECT_NEAR(DegreeAssortativity(PathGraph(4)), -0.5, 1e-9);
}

TEST(DegreeAssortativityTest, WithinBounds) {
  Rng rng(5);
  const Graph g = SampleSkg({0.95, 0.5, 0.2}, 9, rng);
  const double r = DegreeAssortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(CoreNumbersTest, CompleteGraph) {
  const auto core = CoreNumbers(CompleteGraph(6));
  for (uint32_t c : core) EXPECT_EQ(c, 5u);
  EXPECT_EQ(Degeneracy(CompleteGraph(6)), 5u);
}

TEST(CoreNumbersTest, TreeIsOneCore) {
  const auto core = CoreNumbers(StarGraph(8));
  for (uint32_t c : core) EXPECT_EQ(c, 1u);
  EXPECT_EQ(Degeneracy(PathGraph(10)), 1u);
}

TEST(CoreNumbersTest, CycleIsTwoCore) {
  const auto core = CoreNumbers(CycleGraph(7));
  for (uint32_t c : core) EXPECT_EQ(c, 2u);
}

TEST(CoreNumbersTest, CliqueWithPendants) {
  // K4 on {0..3} + pendant chain 3-4-5.
  const Graph g = MakeGraph(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  const auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreNumbersTest, IsolatedNodesAreZeroCore) {
  const Graph g = MakeGraph(4, {{0, 1}});
  const auto core = CoreNumbers(g);
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[3], 0u);
  EXPECT_EQ(core[0], 1u);
}

TEST(CoreNumbersTest, EveryNodeSurvivesItsOwnCore) {
  // Property: in the subgraph induced by {v : core(v) >= k}, every node
  // has degree >= k, for k = max core.
  Rng rng(9);
  const Graph g = SampleSkg({0.95, 0.55, 0.3}, 9, rng);
  const auto core = CoreNumbers(g);
  const uint32_t top = *std::max_element(core.begin(), core.end());
  for (Graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (core[u] < top) continue;
    uint32_t inside_degree = 0;
    for (Graph::NodeId v : g.Neighbors(u)) inside_degree += core[v] >= top;
    EXPECT_GE(inside_degree, top) << "node " << u;
  }
}

TEST(CoreNumbersTest, CoreNumberAtMostDegree) {
  Rng rng(11);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, rng);
  const auto core = CoreNumbers(g);
  for (Graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(core[u], g.Degree(u));
  }
}

TEST(CoreHistogramTest, SumsToNodeCount) {
  Rng rng(13);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, rng);
  uint64_t total = 0;
  for (const auto& [k, count] : CoreHistogram(g)) total += count;
  EXPECT_EQ(total, g.NumNodes());
}

TEST(DegeneracyTest, EmptyGraph) {
  EXPECT_EQ(Degeneracy(Graph()), 0u);
  EXPECT_EQ(Degeneracy(MakeGraph(5, {})), 0u);
}

}  // namespace
}  // namespace dpkron
