#include "src/core/private_estimator.h"

#include "src/common/macros.h"

namespace dpkron {

Result<PrivateEstimatorResult> EstimatePrivateSkg(
    GraphView graph, double epsilon, double delta, PrivacyBudget& budget,
    Rng& rng, const PrivateEstimatorOptions& options) {
  if (graph.NumNodes() < 2) {
    return Status::InvalidArgument("graph must have at least 2 nodes");
  }
  Result<PrivateFeaturesResult> features = ComputePrivateFeatures(
      graph, epsilon, delta, budget, rng, options.features);
  if (!features.ok()) return features.status();

  const uint32_t k = options.k > 0
                         ? options.k
                         : ChooseKroneckerOrder(graph.NumNodes());

  // A privatized count that was clamped up to the floor is pure noise —
  // at (ε/2, δ) the triangle count of a sparse graph routinely is — and
  // with the NormF/NormF² weightings a floor-valued observation gives
  // that term an enormous bogus weight that wrecks the fit. Drop such
  // features from Eq. (2); the paper notes the sum is taken over "three
  // of four of the features", so subset fitting is canonical. The
  // decision depends only on already-published values, hence is
  // privacy-free post-processing. At least two features always remain.
  KronMomOptions kronmom_options = options.kronmom;
  const GraphFeatures& observed = features.value().features;
  const double floor = options.features.feature_floor;
  int active = int(kronmom_options.objective.use_edges) +
               int(kronmom_options.objective.use_hairpins) +
               int(kronmom_options.objective.use_triangles) +
               int(kronmom_options.objective.use_tripins);
  auto maybe_drop = [&active, floor](bool& enabled, double value) {
    if (enabled && value <= floor && active > 2) {
      enabled = false;
      --active;
    }
  };
  // Noisiest first: the smooth-sensitivity triangle count, then the
  // cubic tripins, then the quadratic hairpins; edges are dropped last.
  maybe_drop(kronmom_options.objective.use_triangles, observed.triangles);
  maybe_drop(kronmom_options.objective.use_tripins, observed.tripins);
  maybe_drop(kronmom_options.objective.use_hairpins, observed.hairpins);
  maybe_drop(kronmom_options.objective.use_edges, observed.edges);

  const KronMomResult fit =
      FitKronMomToFeatures(observed, k, kronmom_options);

  PrivateEstimatorResult result;
  result.theta = fit.theta;
  result.k = k;
  result.objective = fit.objective;
  result.converged = fit.converged;
  result.private_features = features.value().features;
  result.exact_features = ComputeFeaturesCached(graph);
  result.smooth_sensitivity = features.value().smooth_sensitivity;
  result.exact_sensitivity = features.value().exact_sensitivity;
  return result;
}

Result<PrivateEstimatorResult> EstimatePrivateSkg(
    GraphView graph, double epsilon, double delta, Rng& rng,
    const PrivateEstimatorOptions& options) {
  PrivacyBudget budget(epsilon, delta);
  return EstimatePrivateSkg(graph, epsilon, delta, budget, rng, options);
}

}  // namespace dpkron
