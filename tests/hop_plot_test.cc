#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/anf.h"
#include "src/graph/hop_plot.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::MakeGraph;
using testing::PathGraph;

TEST(HopPlotTest, CompleteGraphSaturatesAtOneHop) {
  const Graph g = CompleteGraph(6);
  const auto plot = ExactHopPlot(g);
  ASSERT_EQ(plot.size(), 2u);
  EXPECT_EQ(plot[0], 6u);        // self-pairs
  EXPECT_EQ(plot[1], 36u);       // all ordered pairs
}

TEST(HopPlotTest, PathGraphGrowsLinearly) {
  const Graph g = PathGraph(4);
  const auto plot = ExactHopPlot(g);
  // h=0: 4; h=1: 4+2·3=10; h=2: +2·2=14; h=3: +2·1=16.
  const std::vector<uint64_t> expected = {4, 10, 14, 16};
  EXPECT_EQ(plot, expected);
}

TEST(HopPlotTest, DisconnectedPairsNeverCounted) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  const auto plot = ExactHopPlot(g);
  EXPECT_EQ(plot.back(), 4u + 4u);  // 4 self + 2 pairs each component x2
}

TEST(HopPlotTest, CycleDiameter) {
  const Graph g = CycleGraph(8);
  const auto plot = ExactHopPlot(g);
  EXPECT_EQ(plot.size(), 5u);  // diameter 4
  EXPECT_EQ(plot.back(), 64u);
}

TEST(HopPlotTest, MonotoneNonDecreasing) {
  Rng rng(123);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, rng);
  const auto plot = ExactHopPlot(g);
  for (size_t h = 1; h < plot.size(); ++h) {
    EXPECT_GE(plot[h], plot[h - 1]);
  }
}

TEST(EffectiveDiameterTest, KnownValues) {
  // Hop plot reaching 90% at h=2.
  const std::vector<uint64_t> plot = {10, 50, 95, 100};
  EXPECT_EQ(EffectiveDiameter(plot, 0.9), 2u);
  EXPECT_EQ(EffectiveDiameter(plot, 1.0), 3u);
  EXPECT_EQ(EffectiveDiameter(plot, 0.05), 0u);
}

TEST(AnfTest, ApproximatesExactHopPlot) {
  Rng graph_rng(7);
  const Graph g = SampleSkg({0.95, 0.55, 0.25}, 9, graph_rng);  // 512 nodes
  const auto exact = ExactHopPlot(g);

  Rng anf_rng(99);
  AnfOptions options;
  options.num_trials = 64;
  const auto approx = ApproxHopPlot(g, anf_rng, options);

  // Same saturation value within 15% and same general length.
  ASSERT_GE(approx.size(), 2u);
  const double exact_total = double(exact.back());
  const double approx_total = double(approx.back());
  EXPECT_NEAR(approx_total / exact_total, 1.0, 0.15);
  // Pointwise sanity on overlapping prefix (h >= 1 where counts are large).
  for (size_t h = 1; h < std::min(exact.size(), approx.size()); ++h) {
    if (exact[h] > 1000) {
      EXPECT_NEAR(double(approx[h]) / double(exact[h]), 1.0, 0.35)
          << "hop " << h;
    }
  }
}

TEST(AnfTest, MonotoneAndTerminates) {
  Rng rng(3);
  const Graph g = testing::CycleGraph(64);
  const auto plot = ApproxHopPlot(g, rng);
  ASSERT_GE(plot.size(), 2u);
  for (size_t h = 1; h < plot.size(); ++h) EXPECT_GE(plot[h], plot[h - 1]);
  EXPECT_LE(plot.size(), 34u);  // cycle of 64: diameter 32
}

TEST(AnfTest, EmptyGraph) {
  Rng rng(1);
  const auto plot = ApproxHopPlot(Graph(), rng);
  ASSERT_EQ(plot.size(), 1u);
  EXPECT_EQ(plot[0], 0u);
}

}  // namespace
}  // namespace dpkron
