#include <cstdint>
#include <vector>

#include <gtest/gtest.h>
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/triangles.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::MakeGraph;
using testing::PathGraph;
using testing::PetersenGraph;
using testing::StarGraph;

TEST(DegreeTest, VectorAndSorted) {
  const Graph g = StarGraph(5);
  const auto d = DegreeVector(g);
  EXPECT_EQ(d[0], 4u);
  for (int v = 1; v < 5; ++v) EXPECT_EQ(d[v], 1u);
  const auto sorted = SortedDegreeVector(g);
  EXPECT_EQ(sorted.front(), 1u);
  EXPECT_EQ(sorted.back(), 4u);
  EXPECT_EQ(MaxDegree(g), 4u);
}

TEST(DegreeTest, HistogramOmitsEmptyDegrees) {
  const Graph g = StarGraph(5);
  const auto hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<uint32_t, uint64_t>{1, 4}));
  EXPECT_EQ(hist[1], (std::pair<uint32_t, uint64_t>{4, 1}));
}

// Closed-form star counts: K_n has C(n,2) edges, 3·C(n,3) wedges,
// C(n,3) triangles, 4·C(n,4)·... — tripins are n·C(n-1,3).
TEST(StarCountsTest, CompleteGraphCounts) {
  const Graph g = CompleteGraph(6);
  EXPECT_EQ(g.NumEdges(), 15u);
  EXPECT_EQ(CountWedges(g), 60u);  // 6·C(5,2)
  EXPECT_EQ(CountTripins(g), 6u * 10);  // 6·C(5,3) = 60
  EXPECT_EQ(CountTriangles(g), 20u);    // C(6,3)
}

TEST(StarCountsTest, PathAndCycle) {
  EXPECT_EQ(CountWedges(PathGraph(5)), 3u);
  EXPECT_EQ(CountTripins(PathGraph(5)), 0u);
  EXPECT_EQ(CountWedges(CycleGraph(5)), 5u);
  EXPECT_EQ(CountTriangles(CycleGraph(5)), 0u);
  EXPECT_EQ(CountTriangles(CycleGraph(3)), 1u);
}

TEST(StarCountsTest, StarGraph) {
  const Graph g = StarGraph(6);  // center degree 5
  EXPECT_EQ(CountWedges(g), 10u);   // C(5,2)
  EXPECT_EQ(CountTripins(g), 10u);  // C(5,3)
  EXPECT_EQ(CountTriangles(g), 0u);
}

TEST(StarCountsTest, PetersenGraph) {
  const Graph g = PetersenGraph();
  EXPECT_EQ(g.NumEdges(), 15u);
  EXPECT_EQ(CountWedges(g), 30u);     // 10 nodes · C(3,2)
  EXPECT_EQ(CountTripins(g), 10u);    // 10 · C(3,3)
  EXPECT_EQ(CountTriangles(g), 0u);   // girth 5
}

TEST(DegreeFormulaTest, MatchesCombinatorialCountsOnIntegers) {
  const Graph g = PetersenGraph();
  std::vector<double> degrees;
  for (uint32_t d : DegreeVector(g)) degrees.push_back(d);
  EXPECT_DOUBLE_EQ(EdgesFromDegrees(degrees), double(g.NumEdges()));
  EXPECT_DOUBLE_EQ(HairpinsFromDegrees(degrees), double(CountWedges(g)));
  EXPECT_DOUBLE_EQ(TripinsFromDegrees(degrees), double(CountTripins(g)));
}

TEST(DegreeFormulaTest, FractionalDegrees) {
  const std::vector<double> degrees = {2.5, 2.5};
  EXPECT_DOUBLE_EQ(EdgesFromDegrees(degrees), 2.5);
  EXPECT_DOUBLE_EQ(HairpinsFromDegrees(degrees), 2.5 * 1.5);
  EXPECT_DOUBLE_EQ(TripinsFromDegrees(degrees), 2 * 2.5 * 1.5 * 0.5 / 6);
}

TEST(TrianglesTest, PerNodeSumsToThreeTimesTotal) {
  const Graph g = CompleteGraph(7);
  const auto per_node = PerNodeTriangles(g);
  uint64_t sum = 0;
  for (uint64_t t : per_node) sum += t;
  EXPECT_EQ(sum, 3 * CountTriangles(g));
  for (uint64_t t : per_node) EXPECT_EQ(t, 15u);  // C(6,2)
}

TEST(TrianglesTest, DisjointTriangles) {
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_EQ(CountTriangles(g), 2u);
}

TEST(TrianglesTest, CommonNeighbors) {
  // Diamond: 0-1, 0-2, 1-2, 1-3, 2-3.
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CommonNeighbors(g, 1, 2), 2u);  // 0 and 3
  EXPECT_EQ(CommonNeighbors(g, 0, 3), 2u);  // 1 and 2
  EXPECT_EQ(CommonNeighbors(g, 0, 1), 1u);  // 2
}

TEST(TrianglesTest, EmptyAndEdgeless) {
  EXPECT_EQ(CountTriangles(Graph()), 0u);
  EXPECT_EQ(CountTriangles(testing::MakeGraph(5, {})), 0u);
}

TEST(ClusteringTest, CompleteGraphIsFullyClustered) {
  const Graph g = CompleteGraph(5);
  for (double c : LocalClustering(g)) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(AverageClustering(g), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClustering(g), 1.0);
}

TEST(ClusteringTest, TriangleFreeGraphIsZero) {
  EXPECT_DOUBLE_EQ(AverageClustering(PetersenGraph()), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClustering(PetersenGraph()), 0.0);
}

TEST(ClusteringTest, DiamondValues) {
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const auto c = LocalClustering(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);            // deg 2, 1 triangle
  EXPECT_DOUBLE_EQ(c[3], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0 / 3.0);      // deg 3, 2 triangles
  EXPECT_DOUBLE_EQ(c[2], 2.0 / 3.0);
  // Global: 3∆/H = 6/8.
  EXPECT_DOUBLE_EQ(GlobalClustering(g), 6.0 / 8.0);
}

TEST(ClusteringTest, ByDegreeGroups) {
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const auto by_degree = ClusteringByDegree(g);
  ASSERT_EQ(by_degree.size(), 2u);
  EXPECT_EQ(by_degree[0].first, 2u);
  EXPECT_DOUBLE_EQ(by_degree[0].second, 1.0);
  EXPECT_EQ(by_degree[1].first, 3u);
  EXPECT_DOUBLE_EQ(by_degree[1].second, 2.0 / 3.0);
}

TEST(ClusteringTest, DegreeOneNodesExcluded) {
  const Graph g = StarGraph(5);
  EXPECT_DOUBLE_EQ(AverageClustering(g), 0.0);  // only the center eligible
  const auto by_degree = ClusteringByDegree(g);
  ASSERT_EQ(by_degree.size(), 1u);
  EXPECT_EQ(by_degree[0].first, 4u);
}

}  // namespace
}  // namespace dpkron
