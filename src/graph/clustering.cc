#include "src/graph/clustering.h"

#include "src/graph/degree.h"
#include "src/graph/triangles.h"

namespace dpkron {

std::vector<double> LocalClustering(const Graph& graph) {
  const std::vector<uint64_t> triangles = PerNodeTriangles(graph);
  std::vector<double> clustering(graph.NumNodes(), 0.0);
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    const uint64_t d = graph.Degree(u);
    if (d >= 2) {
      clustering[u] =
          2.0 * static_cast<double>(triangles[u]) / (double(d) * (d - 1));
    }
  }
  return clustering;
}

double AverageClustering(const Graph& graph) {
  const std::vector<double> clustering = LocalClustering(graph);
  double sum = 0.0;
  uint64_t eligible = 0;
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    if (graph.Degree(u) >= 2) {
      sum += clustering[u];
      ++eligible;
    }
  }
  return eligible == 0 ? 0.0 : sum / static_cast<double>(eligible);
}

double GlobalClustering(const Graph& graph) {
  const uint64_t wedges = CountWedges(graph);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

std::vector<std::pair<uint32_t, double>> ClusteringByDegree(
    const Graph& graph) {
  const std::vector<double> clustering = LocalClustering(graph);
  const uint32_t max_degree = MaxDegree(graph);
  std::vector<double> sum(max_degree + 1, 0.0);
  std::vector<uint64_t> count(max_degree + 1, 0);
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    const uint32_t d = graph.Degree(u);
    if (d >= 2) {
      sum[d] += clustering[u];
      ++count[d];
    }
  }
  std::vector<std::pair<uint32_t, double>> by_degree;
  for (uint32_t d = 2; d <= max_degree; ++d) {
    if (count[d] > 0) {
      by_degree.emplace_back(d, sum[d] / static_cast<double>(count[d]));
    }
  }
  return by_degree;
}

}  // namespace dpkron
