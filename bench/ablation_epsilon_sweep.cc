// Ablation: utility of the private estimator as a function of ε
// (extends the paper's single operating point ε = 0.2).
//
// For each ε we run Algorithm 1 several times on a fixed synthetic SKG
// (k = 12) and on a co-authorship-like graph, and report
//   * L∞ distance between Θ̃ and the non-private KronMom estimate
//     (the paper's "private ≈ non-private" metric), and
//   * relative error of each privatized feature.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/core/private_estimator.h"
#include "src/datasets/affiliation.h"
#include "src/estimation/kronmom.h"
#include "src/skg/sampler.h"

namespace {

using namespace dpkron;

void SweepOnGraph(const std::string& label, const Graph& graph,
                  uint32_t trials, Rng& rng, SeriesTable* theta_error,
                  SeriesTable* feature_error) {
  const KronMomResult non_private = FitKronMom(graph);
  const GraphFeatures exact = ComputeFeatures(graph);
  const double epsilons[] = {0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
  for (double epsilon : epsilons) {
    double sum_theta = 0.0;
    double sum_edges = 0.0, sum_hairpins = 0.0, sum_triangles = 0.0,
           sum_tripins = 0.0;
    for (uint32_t t = 0; t < trials; ++t) {
      const auto fit = EstimatePrivateSkg(graph, epsilon, 0.01, rng);
      if (!fit.ok()) continue;
      sum_theta += MaxAbsDifference(fit.value().theta, non_private.theta);
      const GraphFeatures& f = fit.value().private_features;
      sum_edges += std::fabs(f.edges - exact.edges) / exact.edges;
      sum_hairpins += std::fabs(f.hairpins - exact.hairpins) / exact.hairpins;
      sum_triangles +=
          std::fabs(f.triangles - exact.triangles) / exact.triangles;
      sum_tripins += std::fabs(f.tripins - exact.tripins) / exact.tripins;
    }
    theta_error->Add(label, epsilon, sum_theta / trials);
    feature_error->Add(label + "/edges", epsilon, sum_edges / trials);
    feature_error->Add(label + "/hairpins", epsilon, sum_hairpins / trials);
    feature_error->Add(label + "/triangles", epsilon, sum_triangles / trials);
    feature_error->Add(label + "/tripins", epsilon, sum_tripins / trials);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpkron;
  uint32_t trials = 5;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      trials = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::atoll(argv[i] + 7);
    }
  }
  std::printf("# ablation_epsilon_sweep: trials=%u delta=0.01\n", trials);
  Rng rng(seed);

  SeriesTable theta_error("epsilon_sweep/theta_linf_vs_kronmom");
  SeriesTable feature_error("epsilon_sweep/feature_relative_error");

  const Graph synthetic = SampleSkg({0.99, 0.45, 0.25}, 12, rng);
  SweepOnGraph("synthetic-k12", synthetic, trials, rng, &theta_error,
               &feature_error);

  AffiliationOptions options;
  options.num_authors = 4096;
  options.num_papers = 2600;
  const Graph coauth = AffiliationGraph(options, rng);
  SweepOnGraph("coauthorship-like", coauth, trials, rng, &theta_error,
               &feature_error);

  theta_error.Print();
  feature_error.Print();
  return 0;
}
