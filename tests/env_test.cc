// The Env seam: POSIX basics, the WriteFileDurable protocol, and the
// FaultInjectionEnv double — short writes, injected EIO/ENOSPC, failed
// renames, and the DropUnsyncedData crash model (including the
// renamed-but-empty bug it exists to reproduce).

#include "src/common/env.h"

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid());
}

TEST(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  const std::string path = UniqueTempPath("env_round_trip");
  auto file = env->NewWritableFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file.value()->Append("hello ").ok());
  ASSERT_TRUE(file.value()->Append("world").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Close().ok());

  EXPECT_TRUE(env->FileExists(path));
  const auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 11u);
  const auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "hello world");
  ASSERT_TRUE(env->RemoveFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(EnvTest, MissingFileIsNotFound) {
  Env* env = Env::Default();
  const std::string path = UniqueTempPath("env_missing");
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_EQ(env->ReadFileToString(path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env->FileSize(path).status().code(), StatusCode::kNotFound);
}

TEST(EnvTest, AppendableFilePreservesExistingBytes) {
  Env* env = Env::Default();
  const std::string path = UniqueTempPath("env_appendable");
  {
    auto file = env->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("first|").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  {
    auto file = env->NewAppendableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("second").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  const auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "first|second");
  ASSERT_TRUE(env->RemoveFile(path).ok());
}

TEST(EnvTest, TruncateAndRename) {
  Env* env = Env::Default();
  const std::string from = UniqueTempPath("env_rename_from");
  const std::string to = UniqueTempPath("env_rename_to");
  {
    auto file = env->NewWritableFile(from);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("0123456789").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  ASSERT_TRUE(env->TruncateFile(from, 4).ok());
  ASSERT_TRUE(env->RenameFile(from, to).ok());
  EXPECT_FALSE(env->FileExists(from));
  const auto contents = env->ReadFileToString(to);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "0123");
  ASSERT_TRUE(env->RemoveFile(to).ok());
}

TEST(EnvTest, WriteFileDurableReplacesAtomically) {
  const std::string path = UniqueTempPath("env_durable");
  ASSERT_TRUE(WriteFileDurable(path, "version one").ok());
  ASSERT_TRUE(WriteFileDurable(path, "version two").ok());
  const auto contents = GetEnv()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "version two");
  ASSERT_TRUE(GetEnv()->RemoveFile(path).ok());
}

TEST(EnvTest, ScopedOverrideInstallsAndRestores) {
  FaultInjectionEnv fake;
  Env* before = GetEnv();
  {
    ScopedEnvOverride scope(&fake);
    EXPECT_EQ(GetEnv(), &fake);
    {
      FaultInjectionEnv nested;
      ScopedEnvOverride inner(&nested);
      EXPECT_EQ(GetEnv(), &nested);
    }
    EXPECT_EQ(GetEnv(), &fake);
  }
  EXPECT_EQ(GetEnv(), before);
}

// The override discipline dpkrond's fault tests rely on, under TSan:
// overrides are installed/removed by ONE thread with LIFO nesting,
// bracketing the lifetime of worker threads that read GetEnv() (and do
// real I/O through a FaultInjectionEnv) concurrently. The acquire/
// release ordering on the global Env pointer must make the override
// visible to every thread spawned inside the scope.
TEST(EnvTest, ScopedOverrideNestedScopesBracketConcurrentReaders) {
  Env* const before = GetEnv();
  FaultInjectionEnv outer_env;
  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 50;

  auto hammer = [](Env* expected, const std::string& tag) {
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const std::string path = ::testing::TempDir() + "/env_override_mt_" +
                                 std::to_string(::getpid()) + "_" + tag + "_" +
                                 std::to_string(t);
        for (int i = 0; i < kReadsPerThread; ++i) {
          Env* seen = GetEnv();
          if (seen != expected) mismatches.fetch_add(1);
          // Real I/O through the seam: exercises the override under the
          // FaultInjectionEnv's own mutex, the TSan-visible surface.
          ASSERT_TRUE(WriteFileDurable(path, std::to_string(i), seen).ok());
          auto read = seen->ReadFileToString(path);
          ASSERT_TRUE(read.ok());
          EXPECT_EQ(read.value(), std::to_string(i));
        }
        (void)GetEnv()->RemoveFile(path);
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0);
  };

  {
    ScopedEnvOverride outer(&outer_env);
    hammer(&outer_env, "outer");
    {
      FaultInjectionEnv inner_env(&outer_env);
      ScopedEnvOverride inner(&inner_env);
      hammer(&inner_env, "inner");
    }  // threads joined BEFORE the inner override pops — the contract
    EXPECT_EQ(GetEnv(), &outer_env);
    hammer(&outer_env, "outer_again");
  }
  EXPECT_EQ(GetEnv(), before);
}

TEST(FaultInjectionEnvTest, InjectedWriteFailureWithShortWrite) {
  FaultInjectionEnv env;
  const std::string path = UniqueTempPath("fault_short_write");
  // First append succeeds, second fails after committing 3 bytes.
  env.FailWrites(/*after=*/1, Status::ResourceExhausted("disk full"),
                 /*short_write_bytes=*/3);
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("abcd").ok());
  const Status torn = file.value()->Append("efgh");
  EXPECT_EQ(torn.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(file.value()->Close().ok());
  // The torn prefix of the failed write is on disk — exactly what a real
  // partial write leaves behind.
  const auto contents = env.ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "abcdefg");
  // The fault is one-shot: a re-opened file writes cleanly again.
  EXPECT_GE(env.write_calls(), 2u);
  ASSERT_TRUE(env.RemoveFile(path).ok());
}

TEST(FaultInjectionEnvTest, InjectedSyncAndRenameFailures) {
  FaultInjectionEnv env;
  const std::string path = UniqueTempPath("fault_sync");
  env.FailSyncs(/*after=*/0, Status::Internal("EIO"));
  env.FailRenames(/*after=*/0, Status::Internal("EIO"));
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("x").ok());
  EXPECT_EQ(file.value()->Sync().code(), StatusCode::kInternal);
  ASSERT_TRUE(file.value()->Close().ok());
  EXPECT_EQ(env.RenameFile(path, path + ".renamed").code(),
            StatusCode::kInternal);
  EXPECT_TRUE(env.FileExists(path));  // failed rename left the source
  env.ClearFaults();
  EXPECT_TRUE(env.RenameFile(path, path + ".renamed").ok());
  ASSERT_TRUE(env.RemoveFile(path + ".renamed").ok());
}

TEST(FaultInjectionEnvTest, WriteFileDurableSurvivesCrashAfterRename) {
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  const std::string path = UniqueTempPath("fault_durable_crash");
  ASSERT_TRUE(WriteFileDurable(path, "durable payload").ok());
  // WriteFileDurable synced before renaming, so a crash now loses
  // nothing.
  env.DropUnsyncedData();
  const auto contents = env.ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "durable payload");
  ASSERT_TRUE(env.RemoveFile(path).ok());
}

TEST(FaultInjectionEnvTest, DropUnsyncedDataTruncatesToSyncedPrefix) {
  FaultInjectionEnv env;
  const std::string path = UniqueTempPath("fault_crash_prefix");
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("synced").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Append(" and lost").ok());
  ASSERT_TRUE(file.value()->Close().ok());
  // Before the crash, readers see everything written.
  EXPECT_EQ(env.ReadFileToString(path).value(), "synced and lost");
  env.DropUnsyncedData();
  EXPECT_EQ(env.ReadFileToString(path).value(), "synced");
  ASSERT_TRUE(env.RemoveFile(path).ok());
}

TEST(FaultInjectionEnvTest, RenameWithoutSyncIsEmptyAfterCrash) {
  // The classic bug WriteBinaryGraph guards against: write temp, rename
  // into place, crash — the rename survives (directory metadata) but the
  // data pages were never flushed, leaving a named-but-empty file.
  FaultInjectionEnv env;
  const std::string temp = UniqueTempPath("fault_unsynced_tmp");
  const std::string final_path = UniqueTempPath("fault_unsynced_final");
  auto file = env.NewWritableFile(temp);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("never synced").ok());
  ASSERT_TRUE(file.value()->Close().ok());
  ASSERT_TRUE(env.RenameFile(temp, final_path).ok());
  env.DropUnsyncedData();
  const auto contents = env.ReadFileToString(final_path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "");  // renamed, but empty
  ASSERT_TRUE(env.RemoveFile(final_path).ok());
}

}  // namespace
}  // namespace dpkron
