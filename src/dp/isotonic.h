// Isotonic (monotone) least-squares regression via pool-adjacent-violators.
//
// Hay et al.'s constrained-inference post-processing of the noisy sorted
// degree sequence is exactly the projection of the noisy vector onto the
// cone of non-decreasing sequences under L2 — which PAVA computes in
// linear time. Post-processing cannot weaken differential privacy, and it
// removes most of the Laplace noise in long constant runs of the degree
// sequence.

#ifndef DPKRON_DP_ISOTONIC_H_
#define DPKRON_DP_ISOTONIC_H_

#include <vector>

namespace dpkron {

// The non-decreasing vector s minimizing Σ (s_i − values_i)². O(n).
std::vector<double> IsotonicRegression(const std::vector<double>& values);

}  // namespace dpkron

#endif  // DPKRON_DP_ISOTONIC_H_
