#include "src/kronfit/kronfit.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/common/stat_cache.h"
#include "src/estimation/kronmom.h"
#include "src/graph/graph_builder.h"

namespace dpkron {

Graph PadWithIsolatedNodes(GraphView graph, uint32_t num_nodes) {
  DPKRON_CHECK_GE(num_nodes, graph.NumNodes());
  GraphBuilder builder(num_nodes);
  graph.ForEachEdge(
      [&builder](Graph::NodeId u, Graph::NodeId v) { builder.AddEdge(u, v); });
  return builder.Build();
}

namespace {

// Runs `count` Metropolis swap steps on sigma under the current model.
// Serial: one chain is one Markov trajectory.
void RunSwaps(GraphView graph, const KronFitLikelihood& model,
              PermutationState* sigma, Rng& rng, uint64_t count) {
  // The AVX2 path runs the whole loop inside the AVX2 translation unit
  // (likelihood_kernels.h) — same trajectory as the scalar loop below,
  // swap for swap.
  if (model.MetropolisSwaps(graph, sigma, rng, count)) return;
  const uint32_t n = graph.NumNodes();
  for (uint64_t step = 0; step < count; ++step) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    if (u == v) continue;
    const double delta = model.SwapDelta(graph, *sigma, u, v);
    if (delta >= 0.0 || rng.NextDouble() < std::exp(delta)) {
      sigma->SwapNodes(u, v);
    }
  }
}

}  // namespace

MetropolisChains::MetropolisChains(GraphView graph, uint32_t k,
                                   uint32_t num_chains, Rng& rng)
    : graph_(graph) {
  DPKRON_CHECK_GE(num_chains, 1u);
  DPKRON_CHECK_EQ(graph.NumNodes(), uint64_t{1} << k);
  rngs_ = SplitRngStreams(rng, num_chains);
  const PermutationState init = DegreeGuidedInit(graph, k);
  chains_.reserve(num_chains);
  for (uint32_t c = 0; c < num_chains; ++c) chains_.push_back(init);
  // Jitter every chain but the first with its own stream (n/4 random
  // transpositions): overdispersed starts decorrelate the bank without
  // costing chain 0 the degree-guided head start.
  ParallelFor(num_chains, 1, [&](size_t c) {
    if (c == 0) return;
    PerturbUniform(&chains_[c], graph.NumNodes() / 4, rngs_[c]);
  });
}

void MetropolisChains::Advance(const KronFitLikelihood& model,
                               uint64_t swaps_per_chain) {
  ParallelFor(chains_.size(), 1, [&](size_t c) {
    RunSwaps(graph_, model, &chains_[c], rngs_[c], swaps_per_chain);
  });
}

Gradient3 MetropolisChains::SampleGradient(const KronFitLikelihood& model,
                                           uint64_t swaps_per_chain) {
  // Advance and evaluate inside one parallel section: the nested
  // EdgeGradient degrades to serial chunk order inside a worker, which
  // matches its 1-thread evaluation bit for bit.
  std::vector<Gradient3> grads(chains_.size());
  ParallelFor(chains_.size(), 1, [&](size_t c) {
    RunSwaps(graph_, model, &chains_[c], rngs_[c], swaps_per_chain);
    grads[c] = model.EdgeGradient(graph_, chains_[c]);
  });
  Gradient3 mean{0.0, 0.0, 0.0};
  for (const Gradient3& grad : grads) {
    for (int i = 0; i < 3; ++i) mean[i] += grad[i];
  }
  for (int i = 0; i < 3; ++i) mean[i] /= static_cast<double>(chains_.size());
  return mean;
}

double MetropolisChains::BestLogLikelihood(
    const KronFitLikelihood& model) const {
  std::vector<double> lls(chains_.size());
  ParallelFor(chains_.size(), 1, [&](size_t c) {
    lls[c] = model.LogLikelihood(graph_, chains_[c]);
  });
  double best = lls[0];
  for (double ll : lls) best = std::max(best, ll);
  return best;
}

KronFitResult FitKronFit(GraphView graph, Rng& rng,
                         const KronFitOptions& options) {
  DPKRON_CHECK_GE(graph.NumNodes(), 2u);
  const uint32_t k = ChooseKroneckerOrder(graph.NumNodes());
  const uint32_t n = uint32_t{1} << k;
  // Views don't own: when padding is needed, the padded Graph lives here
  // so the chain bank's view of it stays valid for the whole fit.
  Graph padded_storage;
  GraphView padded = graph;
  if (graph.NumNodes() != n) {
    padded_storage = PadWithIsolatedNodes(graph, n);
    padded = padded_storage;
  }

  Initiator2 theta = options.init.Clamped(0.005, 0.995);
  const uint32_t num_chains = std::max(options.samples_per_iteration, 1u);
  MetropolisChains chains(padded, k, num_chains, rng);

  // Initial burn-in under the starting parameters.
  {
    const KronFitLikelihood model(theta, k);
    chains.Advance(model,
                   static_cast<uint64_t>(options.warmup_factor * n));
  }

  double tail_a = 0.0, tail_b = 0.0, tail_c = 0.0;
  uint32_t tail_count = 0;
  const uint32_t tail_start =
      options.iterations > options.tail_average
          ? options.iterations - options.tail_average
          : 0;

  for (uint32_t it = 0; it < options.iterations; ++it) {
    const KronFitLikelihood model(theta, k);
    // Chain-averaged edge gradient, one decorrelated sample per chain.
    Gradient3 gradient = chains.SampleGradient(
        model, static_cast<uint64_t>(options.decorrelation_factor * n));
    const Gradient3 no_edge = model.NoEdgeGradient();
    for (int i = 0; i < 3; ++i) gradient[i] -= no_edge[i];

    // Ascent step, rescaled to the trust region.
    const double limit = options.max_step / (1.0 + options.step_decay * it);
    const double magnitude = std::max(
        {std::fabs(gradient[0]), std::fabs(gradient[1]),
         std::fabs(gradient[2]), 1e-30});
    const double scale = std::min(limit / magnitude, 1e-4);
    theta = Initiator2{theta.a + scale * gradient[0],
                       theta.b + scale * gradient[1],
                       theta.c + scale * gradient[2]}
                .Clamped(0.005, 0.995);

    if (it >= tail_start) {
      tail_a += theta.a;
      tail_b += theta.b;
      tail_c += theta.c;
      ++tail_count;
    }
  }

  if (tail_count > 0) {
    theta = Initiator2{tail_a / tail_count, tail_b / tail_count,
                       tail_c / tail_count};
  }

  KronFitResult result;
  result.k = k;
  result.theta = theta.Canonical();
  const KronFitLikelihood final_model(result.theta, k);
  result.log_likelihood = chains.BestLogLikelihood(final_model);
  return result;
}

KronFitResult FitKronFitCached(GraphView graph, Rng& rng,
                               const KronFitOptions& options) {
  StatCache& cache = StatCache::Instance();
  if (!cache.enabled()) return FitKronFit(graph, rng, options);
  const uint64_t key =
      CacheKey()
          .Mix(graph.ContentFingerprint())
          .Mix(rng.StateFingerprint())
          .Mix(options.iterations)
          .MixDouble(options.warmup_factor)
          .Mix(options.samples_per_iteration)
          .MixDouble(options.decorrelation_factor)
          .MixDouble(options.max_step)
          .MixDouble(options.step_decay)
          .Mix(options.tail_average)
          .MixDouble(options.init.a)
          .MixDouble(options.init.b)
          .MixDouble(options.init.c)
          .digest();
  struct Entry {
    KronFitResult result;
    Rng::State end_state;
  };
  // Durable entry = the fit plus the Rng state its stream reached, so a
  // warm-start from disk replays the stream advance exactly like an
  // in-memory hit.
  const auto entry = cache.GetOrComputeDurable<Entry>(
      "kronfit", key,
      [&] {
        Entry e;
        e.result = FitKronFit(graph, rng, options);
        e.end_state = rng.SaveState();
        return e;
      },
      [](const Entry& e, RecordBuilder& rec) {
        rec.Double(e.result.theta.a)
            .Double(e.result.theta.b)
            .Double(e.result.theta.c)
            .Double(e.result.log_likelihood)
            .U32(e.result.k);
        EncodeRngState(rec, e.end_state);
      },
      [](RecordParser& rec) -> std::optional<Entry> {
        Entry e;
        e.result.theta.a = rec.Double();
        e.result.theta.b = rec.Double();
        e.result.theta.c = rec.Double();
        e.result.log_likelihood = rec.Double();
        e.result.k = rec.U32();
        if (!DecodeRngState(rec, &e.end_state)) return std::nullopt;
        return e;
      });
  // Replay the stream advance on a hit (no-op for the computing caller):
  // downstream consumers of `rng` see the same draws either way.
  rng.RestoreState(entry->end_state);
  return entry->result;
}

}  // namespace dpkron
