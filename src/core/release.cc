#include "src/core/release.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/common/stat_cache.h"
#include "src/graph/anf.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/hop_plot.h"
#include "src/graph/node_stats.h"
#include "src/linalg/lanczos.h"
#include "src/linalg/network_value.h"

namespace dpkron {
namespace {

// Field-wise GraphStatistics codec for the disk StatCache tier (all
// five panel series are flat POD vectors).
void EncodeGraphStatistics(RecordBuilder& rec, const GraphStatistics& stats) {
  EncodePodVector(rec, stats.degree_histogram);
  EncodePodVector(rec, stats.hop_plot);
  EncodePodVector(rec, stats.scree);
  EncodePodVector(rec, stats.network_value);
  EncodePodVector(rec, stats.clustering_by_degree);
}

bool DecodeGraphStatistics(RecordParser& rec, GraphStatistics* stats) {
  return DecodePodVector(rec, &stats->degree_histogram) &&
         DecodePodVector(rec, &stats->hop_plot) &&
         DecodePodVector(rec, &stats->scree) &&
         DecodePodVector(rec, &stats->network_value) &&
         DecodePodVector(rec, &stats->clustering_by_degree);
}

// The panels paired with the Rng state the computation reached:
// restoring it on a hit replays the stream advance (ANF trials, Lanczos
// starts), so every downstream draw matches the uncached path.
struct StatisticsCacheEntry {
  GraphStatistics stats;
  Rng::State end_state;
};

size_t ApproxCacheBytes(const StatisticsCacheEntry& entry) {
  return ApproxCacheBytes(entry.stats) + sizeof(entry.end_state);
}

}  // namespace

ReleasePipeline::ReleasePipeline(StatisticsOptions options,
                                 SkgSampleMethod method)
    : options_(options), method_(method) {}

GraphStatistics ReleasePipeline::Compute(GraphView graph,
                                         Rng& rng) const {
  StatCache& cache = StatCache::Instance();
  if (!cache.enabled()) return ComputeImpl(graph, rng, /*cache_leaves=*/false);
  const uint64_t key = CacheKey()
                           .Mix(graph.ContentFingerprint())
                           .Mix(rng.StateFingerprint())
                           .Mix(options_.num_singular_values)
                           .Mix(options_.num_network_values)
                           .Mix(options_.exact_hop_plot_limit)
                           .Mix(options_.anf_trials)
                           .digest();
  const auto entry = cache.GetOrComputeDurable<StatisticsCacheEntry>(
      "statistics", key,
      [&] {
        StatisticsCacheEntry e;
        e.stats = ComputeImpl(graph, rng, /*cache_leaves=*/true);
        e.end_state = rng.SaveState();
        return e;
      },
      [](const StatisticsCacheEntry& e, RecordBuilder& rec) {
        EncodeGraphStatistics(rec, e.stats);
        EncodeRngState(rec, e.end_state);
      },
      [](RecordParser& rec) -> std::optional<StatisticsCacheEntry> {
        StatisticsCacheEntry e;
        if (!DecodeGraphStatistics(rec, &e.stats) ||
            !DecodeRngState(rec, &e.end_state)) {
          return std::nullopt;
        }
        return e;
      });
  rng.RestoreState(entry->end_state);
  return entry->stats;
}

GraphStatistics ReleasePipeline::ComputeImpl(GraphView graph, Rng& rng,
                                             bool cache_leaves) const {
  GraphStatistics stats;

  // The explicit fused-pass plan (tests/graph_view_test.cc pins it with
  // a PassCounter):
  //
  //   pass 1  "node_stats"  degree vector + per-node triangle counts
  //                         (the clustering numerators) in ONE CSR
  //                         traversal → degree histogram + clustering
  //                         panels; consumes no RNG.
  //   pass 2+ hop plot      the iterative family: either n BFS sweeps
  //                         (exact, small graphs) or one "anf_round"
  //                         pass per ANF expansion round — true data
  //                         dependencies (round h reads round h-1).
  //   then    spectral      Lanczos / power iteration, one "spmv" pass
  //                         per matvec (iterative by nature).
  //
  // RNG order is unchanged from the unfused pipeline: the node-stats
  // pass draws nothing, so ANF → Lanczos → power-iteration consume the
  // stream exactly as before — outputs stay byte-identical.
  StatCache& cache = StatCache::Instance();
  const bool use_cache = cache_leaves && cache.enabled();
  // One durable leaf for the fused pass, keyed purely by the graph:
  // in-RAM and mmap backings of the same CSR bytes share the entry
  // bit-identically (fingerprints agree by construction).
  std::shared_ptr<const NodeStats> node_stats;
  if (!use_cache) {
    node_stats = std::make_shared<const NodeStats>(ComputeNodeStats(graph));
  } else {
    const uint64_t graph_key =
        CacheKey().Mix(graph.ContentFingerprint()).digest();
    node_stats = cache.GetOrComputeDurable<NodeStats>(
        "node_stats", graph_key, [&graph] { return ComputeNodeStats(graph); },
        [](const NodeStats& value, RecordBuilder& rec) {
          EncodePodVector(rec, value.degrees);
          EncodePodVector(rec, value.triangles);
        },
        [](RecordParser& rec) -> std::optional<NodeStats> {
          NodeStats value;
          if (!DecodePodVector(rec, &value.degrees) ||
              !DecodePodVector(rec, &value.triangles)) {
            return std::nullopt;
          }
          return value;
        });
  }
  const std::vector<uint32_t>& degrees = node_stats->degrees;

  for (const auto& [degree, count] : DegreeHistogramFromDegrees(degrees)) {
    stats.degree_histogram.emplace_back(double(degree), double(count));
  }

  std::vector<uint64_t> hops;
  if (graph.NumNodes() <= options_.exact_hop_plot_limit) {
    hops = ExactHopPlot(graph);
  } else {
    AnfOptions anf;
    anf.num_trials = options_.anf_trials;
    hops = ApproxHopPlot(graph, rng, anf);
  }
  stats.hop_plot.assign(hops.begin(), hops.end());

  const uint32_t k_singular =
      std::min(options_.num_singular_values, graph.NumNodes());
  if (k_singular > 0 && graph.NumEdges() > 0) {
    stats.scree = TopSingularValues(graph, k_singular, rng);
  }

  if (graph.NumEdges() > 0) {
    stats.network_value = NetworkValue(graph, rng);
    if (stats.network_value.size() > options_.num_network_values) {
      stats.network_value.resize(options_.num_network_values);
    }
  }

  for (const auto& [degree, cc] :
       ClusteringByDegreeFromParts(degrees, node_stats->triangles)) {
    stats.clustering_by_degree.emplace_back(double(degree), cc);
  }
  return stats;
}

namespace {

// Averages positional series, padding shorter ones with their last value.
std::vector<double> AveragePositional(
    const std::vector<std::vector<double>>& series) {
  size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());
  std::vector<double> mean(longest, 0.0);
  if (series.empty()) return mean;
  for (const auto& s : series) {
    for (size_t i = 0; i < longest; ++i) {
      const double value = s.empty() ? 0.0 : (i < s.size() ? s[i] : s.back());
      mean[i] += value;
    }
  }
  for (double& value : mean) value /= double(series.size());
  return mean;
}

}  // namespace

GraphStatistics ReleasePipeline::Expected(const Initiator2& theta, uint32_t k,
                                          uint32_t realizations,
                                          Rng& rng) const {
  DPKRON_CHECK_GE(realizations, 1u);

  // The parent stream is split BEFORE the cache lookup and regardless of
  // its outcome, so `rng` advances identically on hit and miss — the
  // expected table is a pure function of (θ, k, R, options, method,
  // parent state), which is exactly the cache key.
  StatCache& cache = StatCache::Instance();
  const uint64_t rng_fingerprint = rng.StateFingerprint();
  std::vector<Rng> streams = SplitRngStreams(rng, realizations);
  if (!cache.enabled()) return ExpectedImpl(theta, k, realizations, streams);
  const uint64_t key = CacheKey()
                           .MixDouble(theta.a)
                           .MixDouble(theta.b)
                           .MixDouble(theta.c)
                           .Mix(k)
                           .Mix(realizations)
                           .Mix(options_.num_singular_values)
                           .Mix(options_.num_network_values)
                           .Mix(options_.exact_hop_plot_limit)
                           .Mix(options_.anf_trials)
                           .Mix(static_cast<uint64_t>(method_))
                           .Mix(rng_fingerprint)
                           .digest();
  return *cache.GetOrComputeDurable<GraphStatistics>(
      "expected", key,
      [&] { return ExpectedImpl(theta, k, realizations, streams); },
      [](const GraphStatistics& stats, RecordBuilder& rec) {
        EncodeGraphStatistics(rec, stats);
      },
      [](RecordParser& rec) -> std::optional<GraphStatistics> {
        GraphStatistics stats;
        if (!DecodeGraphStatistics(rec, &stats)) return std::nullopt;
        return stats;
      });
}

GraphStatistics ReleasePipeline::ExpectedImpl(const Initiator2& theta,
                                              uint32_t k,
                                              uint32_t realizations,
                                              std::vector<Rng>& streams) const {
  // Fan the realizations across the pool: stream r drives realization r
  // end to end (sample + statistics), so each per-realization result is a
  // pure function of (θ, k, options, stream r) and the grain-1 chunk
  // decomposition depends only on `realizations` — never on the thread
  // count. The statistics kernels inside each realization degrade to
  // serial execution when nested in a pool worker, which by the parallel.h
  // contract computes the same values they would in parallel.
  std::vector<GraphStatistics> per_realization(realizations);
  ParallelForChunks(realizations, 1, [&](const ParallelChunk& chunk) {
    for (size_t r = chunk.begin; r < chunk.end; ++r) {
      const Graph sample = Sample(theta, k, streams[r]);
      // ComputeImpl without leaf caching: the whole Expected table is
      // cached as one entry, so memoizing a realization's one-off
      // sample (or its intermediates) would only fill the memo with
      // unreusable entries.
      per_realization[r] = ComputeImpl(sample, streams[r],
                                       /*cache_leaves=*/false);
    }
  });

  // Aggregate in realization order — the chunk-ordered reduction that
  // makes the floating-point mean thread-count-invariant.
  // Degree histogram: mean count per degree. Clustering: mean of per-
  // realization degree-averages, tracked with how many realizations had
  // that degree present.
  std::map<double, double> histogram_sum;
  std::map<double, std::pair<double, uint32_t>> clustering_sum;
  std::vector<std::vector<double>> hop_series, scree_series, netval_series;
  for (GraphStatistics& stats : per_realization) {
    for (const auto& [degree, count] : stats.degree_histogram) {
      histogram_sum[degree] += count;
    }
    for (const auto& [degree, cc] : stats.clustering_by_degree) {
      auto& [sum, count] = clustering_sum[degree];
      sum += cc;
      ++count;
    }
    hop_series.push_back(std::move(stats.hop_plot));
    scree_series.push_back(std::move(stats.scree));
    netval_series.push_back(std::move(stats.network_value));
  }

  GraphStatistics mean;
  for (const auto& [degree, total] : histogram_sum) {
    mean.degree_histogram.emplace_back(degree, total / realizations);
  }
  for (const auto& [degree, entry] : clustering_sum) {
    mean.clustering_by_degree.emplace_back(degree,
                                           entry.first / entry.second);
  }
  mean.hop_plot = AveragePositional(hop_series);
  mean.scree = AveragePositional(scree_series);
  mean.network_value = AveragePositional(netval_series);
  return mean;
}

GraphStatistics ReleasePipeline::ComputeEphemeral(GraphView graph,
                                                  Rng& rng) const {
  return ComputeImpl(graph, rng, /*cache_leaves=*/false);
}

GraphStatistics ReleasePipeline::ExpectedEphemeral(const Initiator2& theta,
                                                   uint32_t k,
                                                   uint32_t realizations,
                                                   Rng& rng) const {
  DPKRON_CHECK_GE(realizations, 1u);
  std::vector<Rng> streams = SplitRngStreams(rng, realizations);
  return ExpectedImpl(theta, k, realizations, streams);
}

Graph ReleasePipeline::Sample(const Initiator2& theta, uint32_t k,
                              Rng& rng) const {
  SkgSampleOptions options;
  options.method = method_;
  return SampleSkg(theta, k, rng, options);
}

GraphStatistics ComputeStatistics(GraphView graph, Rng& rng,
                                  const StatisticsOptions& options) {
  return ReleasePipeline(options).Compute(graph, rng);
}

GraphStatistics ExpectedStatistics(const Initiator2& theta, uint32_t k,
                                   uint32_t realizations, Rng& rng,
                                   const StatisticsOptions& options,
                                   SkgSampleMethod method) {
  return ReleasePipeline(options, method).Expected(theta, k, realizations,
                                                   rng);
}

Graph SampleSyntheticGraph(const Initiator2& theta, uint32_t k, Rng& rng,
                           SkgSampleMethod method) {
  return ReleasePipeline({}, method).Sample(theta, k, rng);
}

}  // namespace dpkron
