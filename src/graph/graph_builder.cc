#include "src/graph/graph_builder.h"

#include <algorithm>

#include "src/common/macros.h"

namespace dpkron {

GraphBuilder::GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::AddEdge(Graph::NodeId u, Graph::NodeId v) {
  DPKRON_CHECK_LT(u, num_nodes_);
  DPKRON_CHECK_LT(v, num_nodes_);
  if (u == v) return;  // Simple graph: ignore loops at the door.
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::Build() {
  std::vector<uint64_t> keys;
  keys.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    keys.push_back((uint64_t{u} << 32) | v);
  }
  edges_.clear();
  return FromPackedEdges(num_nodes_, std::move(keys));
}

Graph GraphBuilder::FromEdges(
    uint32_t num_nodes,
    const std::vector<std::pair<Graph::NodeId, Graph::NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

Graph GraphBuilder::FromPackedEdges(uint32_t num_nodes,
                                    std::vector<uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<uint32_t> degree(num_nodes, 0);
  for (const uint64_t key : keys) {
    const auto u = static_cast<Graph::NodeId>(key >> 32);
    const auto v = static_cast<Graph::NodeId>(key);
    DPKRON_CHECK_LT(u, v);
    DPKRON_CHECK_LT(v, num_nodes);
    ++degree[u];
    ++degree[v];
  }
  // 64-byte-aligned CSR arenas (Graph::CsrVector): the contract the
  // SIMD kernels' aligned loads rely on.
  Graph::OffsetVector offsets(num_nodes + 1, 0);
  for (uint32_t u = 0; u < num_nodes; ++u) {
    offsets[u + 1] = offsets[u] + degree[u];
  }
  Graph::AdjacencyVector adjacency(offsets.back());
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  // Keys are sorted by (u, v), so filling forward keeps each adjacency
  // list sorted: u's list receives v's in increasing order, and v's list
  // receives u's in increasing order because keys are grouped by u.
  for (const uint64_t key : keys) {
    const auto u = static_cast<Graph::NodeId>(key >> 32);
    const auto v = static_cast<Graph::NodeId>(key);
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }
  return Graph::FromCsr(std::move(offsets), std::move(adjacency));
}

}  // namespace dpkron
