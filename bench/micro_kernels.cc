// Google-benchmark microbenchmarks for the computational kernels behind
// the experiments: graph statistics, SKG sampling, moment evaluation,
// the DP mechanisms, and the spectral solver.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/fnv.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/release.h"
#include "src/graph/graph_io.h"
#include "src/dp/degree_sequence.h"
#include "src/dp/isotonic.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/estimation/kronmom.h"
#include "src/graph/anf.h"
#include "src/kronfit/kronfit.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"
#include "src/graph/clustering.h"
#include "src/graph/triangles.h"
#include "src/linalg/lanczos.h"
#include "src/skg/moments.h"
#include "src/skg/sampler.h"

namespace {

using namespace dpkron;

const Graph& TestGraph(uint32_t k) {
  static Rng rng(1);
  static const Graph& g10 = *new Graph(SampleSkg({0.99, 0.55, 0.35}, 10, rng));
  static const Graph& g12 = *new Graph(SampleSkg({0.99, 0.55, 0.35}, 12, rng));
  return k == 10 ? g10 : g12;
}

void BM_SampleSkgExact(benchmark::State& state) {
  Rng rng(2);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng));
  }
}
BENCHMARK(BM_SampleSkgExact)->Arg(8)->Arg(10)->Arg(12);

void BM_SampleSkgBallDrop(benchmark::State& state) {
  Rng rng(3);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kBallDrop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng, options));
  }
}
BENCHMARK(BM_SampleSkgBallDrop)->Arg(10)->Arg(12)->Arg(14);

void BM_SampleSkgClassSkip(benchmark::State& state) {
  Rng rng(8);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kClassSkip;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng, options));
  }
}
BENCHMARK(BM_SampleSkgClassSkip)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

void BM_SampleSkgEdgeSkip(benchmark::State& state) {
  Rng rng(9);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng, options));
  }
}
BENCHMARK(BM_SampleSkgEdgeSkip)->Arg(10)->Arg(14)->Arg(17)->Arg(20)
    ->Unit(benchmark::kMillisecond);

// Pins the pool width for the duration of one benchmark run and restores
// the ambient width afterwards (other benchmarks use the default).
class ScopedBenchThreads {
 public:
  explicit ScopedBenchThreads(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedBenchThreads() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

// Thread-scaling curves for the two heaviest statistics kernels on the
// k=12 graph — the perf-trajectory series CI archives as BENCH_micro.json.
void BM_Triangles(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
}
BENCHMARK(BM_Triangles)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Anf(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxHopPlot(g, rng));
  }
}
BENCHMARK(BM_Anf)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The release pipeline's realization fan-out — the path behind every
// "Expected" series (the paper's 100-realization averages). k = 10,
// 16 realizations keeps one iteration in benchmark range while still
// exposing the cross-realization parallelism.
void BM_ExpectedStatistics(benchmark::State& state) {
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  StatisticsOptions options;
  options.num_singular_values = 16;
  for (auto _ : state) {
    Rng rng(77);
    benchmark::DoNotOptimize(
        ExpectedStatistics({0.99, 0.55, 0.35}, 10, 16, rng, options));
  }
}
BENCHMARK(BM_ExpectedStatistics)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ------------------------- KronFit hot path -------------------------
// The PR 2 perf-trajectory series: one full gradient iteration of the
// multi-chain Metropolis sampler (4 chains × 2N swaps + chain-averaged
// edge gradient) at k ∈ {10, 12, 14}, swept over thread counts. The
// k=12 single-thread point is the ≥5× acceptance gate versus the
// pre-table baseline.
const Graph& KronFitGraph(uint32_t k) {
  static Rng rng(11);
  static const Graph& g10 =
      *new Graph(SampleSkg({0.99, 0.55, 0.35}, 10, rng));
  static const Graph& g12 =
      *new Graph(SampleSkg({0.99, 0.55, 0.35}, 12, rng));
  static const Graph& g14 = *new Graph([] {
    Rng r(12);
    SkgSampleOptions options;
    options.method = SkgSampleMethod::kEdgeSkip;
    return SampleSkg({0.99, 0.55, 0.35}, 14, r, options);
  }());
  return k == 10 ? g10 : (k == 12 ? g12 : g14);
}

void BM_KronFitIteration(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const Graph& g = KronFitGraph(k);
  ScopedBenchThreads threads(static_cast<int>(state.range(1)));
  const KronFitLikelihood model({0.9, 0.6, 0.2}, k);
  Rng rng(13);
  MetropolisChains chains(g, k, /*num_chains=*/4, rng);
  const uint64_t swaps = 2 * uint64_t{g.NumNodes()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chains.SampleGradient(model, swaps));
  }
}
BENCHMARK(BM_KronFitIteration)
    ->Args({10, 1})
    ->Args({12, 1})
    ->Args({12, 2})
    ->Args({12, 4})
    ->Args({12, 8})
    ->Args({14, 1})
    ->Args({14, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SwapDelta(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const Graph& g = KronFitGraph(k);
  const KronFitLikelihood model({0.9, 0.6, 0.2}, k);
  const PermutationState sigma = DegreeGuidedInit(g, k);
  // Pre-drawn node pairs: at ~100 ns per SwapDelta, in-loop RNG draws
  // would contribute double-digit percent noise to the measurement.
  Rng rng(14);
  const uint32_t n = g.NumNodes();
  std::vector<std::pair<uint32_t, uint32_t>> pairs(4096);
  for (auto& [u, v] : pairs) {
    u = static_cast<uint32_t>(rng.NextBounded(n));
    v = static_cast<uint32_t>(rng.NextBounded(n));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = pairs[i];
    i = (i + 1) & (pairs.size() - 1);
    benchmark::DoNotOptimize(model.SwapDelta(g, sigma, u, v));
  }
}
BENCHMARK(BM_SwapDelta)->Arg(10)->Arg(12)->Arg(14);

void BM_KronFitEdgeGradient(benchmark::State& state) {
  const Graph& g = KronFitGraph(12);
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  const KronFitLikelihood model({0.9, 0.6, 0.2}, 12);
  const PermutationState sigma = DegreeGuidedInit(g, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EdgeGradient(g, sigma));
  }
}
BENCHMARK(BM_KronFitEdgeGradient)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CountTriangles(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
}
BENCHMARK(BM_CountTriangles)->Arg(10)->Arg(12);

void BM_ClusteringByDegree(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusteringByDegree(g));
  }
}
BENCHMARK(BM_ClusteringByDegree);

void BM_ExpectedMoments(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedMoments({0.99, 0.45, 0.25}, 14));
  }
}
BENCHMARK(BM_ExpectedMoments);

void BM_FitKronMom(benchmark::State& state) {
  const GraphFeatures observed =
      FromMoments(ExpectedMoments({0.99, 0.45, 0.25}, 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitKronMomToFeatures(observed, 14));
  }
}
BENCHMARK(BM_FitKronMom);

void BM_IsotonicRegression(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> values(state.range(0));
  for (double& v : values) v = rng.NextGaussian() * 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsotonicRegression(values));
  }
}
BENCHMARK(BM_IsotonicRegression)->Arg(1 << 12)->Arg(1 << 16);

void BM_PrivateDegreeSequence(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateDegreeSequence(g, 0.1, rng));
  }
}
BENCHMARK(BM_PrivateDegreeSequence);

void BM_TriangleSensitivityProfile(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TriangleSensitivityProfile(g));
  }
}
BENCHMARK(BM_TriangleSensitivityProfile)->Arg(10)->Arg(12);

// Thread sweep over the parallel class-1 candidate enumeration on the
// k=12 graph (BM_TriangleSensitivityProfile above tracks the default-
// width configuration across graph sizes).
void BM_SmoothSensitivityProfile(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TriangleSensitivityProfile(g));
  }
}
BENCHMARK(BM_SmoothSensitivityProfile)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SmoothSensitivityEvaluation(benchmark::State& state) {
  const TriangleSensitivityProfile& profile =
      *new TriangleSensitivityProfile(TestGraph(12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.SmoothSensitivity(0.0167));
  }
}
BENCHMARK(BM_SmoothSensitivityEvaluation);

void BM_Lanczos50(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopSingularValues(g, 50, rng));
  }
}
BENCHMARK(BM_Lanczos50)->Arg(10)->Arg(12);

void BM_ApproxHopPlot(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxHopPlot(g, rng));
  }
}
BENCHMARK(BM_ApproxHopPlot);

// --------------------------- ingestion hot path ---------------------------
// Parser throughput (bytes_per_second in BENCH_micro.json is MB/s) and
// the binary-cache reload, on a ~1M-line sparse-id edge list. The
// bytes_per_second ratio BM_EdgeListCacheReload / BM_ReadEdgeListFile is
// the cache-load speedup over the text parse it replaces (both are
// normalized to the text file's size).

struct IngestFixture {
  std::string text;         // in-memory SNAP-style edge list
  std::string text_path;    // the same bytes on disk
  std::string binary_path;  // warm .dpkb sidecar of the parsed graph
};

const IngestFixture& Ingest() {
  static const IngestFixture& fixture = *new IngestFixture([] {
    IngestFixture f;
    Rng rng(77);
    const uint32_t n = 1u << 17;
    f.text = "# dpkron ingestion benchmark fixture\n";
    f.text.reserve(16u << 20);
    char line[48];
    for (size_t i = 0; i < (1u << 20); ++i) {
      const uint64_t u = rng.NextBounded(n);
      const uint64_t v = rng.NextBounded(n);
      if (u == v) continue;
      // Sparse raw ids so the parse exercises densification too.
      std::snprintf(line, sizeof(line), "%llu\t%llu\n",
                    static_cast<unsigned long long>(u * 97 + 5),
                    static_cast<unsigned long long>(v * 97 + 5));
      f.text += line;
    }
    const auto dir = std::filesystem::temp_directory_path();
    f.text_path = (dir / "dpkron_ingest_bench.edges").string();
    f.binary_path = BinaryCachePath(f.text_path);
    std::ofstream(f.text_path, std::ios::binary) << f.text;
    const auto graph = ParseEdgeList(f.text);
    // Record the source stamp so the sidecar passes cache validation.
    (void)WriteBinaryGraph(
        graph.value(), f.binary_path,
        DpkbSourceStamp{f.text.size(),
                        Fnv1a64Words(f.text.data(), f.text.size())});
    return f;
  }());
  return fixture;
}

void BM_ParseEdgeList(benchmark::State& state) {
  const IngestFixture& f = Ingest();
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseEdgeList(f.text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.text.size()));
}
BENCHMARK(BM_ParseEdgeList)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParseEdgeListSerial(benchmark::State& state) {
  const IngestFixture& f = Ingest();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseEdgeListSerial(f.text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.text.size()));
}
BENCHMARK(BM_ParseEdgeListSerial)->Unit(benchmark::kMillisecond);

void BM_ReadEdgeListFile(benchmark::State& state) {
  const IngestFixture& f = Ingest();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadEdgeList(f.text_path));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.text.size()));
}
BENCHMARK(BM_ReadEdgeListFile)->Unit(benchmark::kMillisecond);

void BM_ReadBinaryGraph(benchmark::State& state) {
  const IngestFixture& f = Ingest();
  const auto binary_size = std::filesystem::file_size(f.binary_path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadBinaryGraph(f.binary_path));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(binary_size));
}
BENCHMARK(BM_ReadBinaryGraph)->Unit(benchmark::kMillisecond);

// Warm-cache reload, normalized to the text size it stands in for.
void BM_EdgeListCacheReload(benchmark::State& state) {
  const IngestFixture& f = Ingest();
  bool hit = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadEdgeListCached(f.text_path, &hit));
  }
  if (!hit) state.SkipWithError("cache miss on warm sidecar");
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.text.size()));
}
BENCHMARK(BM_EdgeListCacheReload)->Unit(benchmark::kMillisecond);

// The largest single-machine realization the paper's scaling story
// needs: k=24 (~16.8M nodes) via the edge-skip sampler, then the full
// triangle count over it. One iteration, measured in real seconds —
// this is a minutes-scale data point, not a statistical sample, and
// BENCH_micro.json records it as the capacity ceiling of the pipeline.
void BM_EdgeSkipRealizeK24(benchmark::State& state) {
  uint64_t edges = 0;
  for (auto _ : state) {
    Rng rng(24);
    SkgSampleOptions options;
    options.method = SkgSampleMethod::kEdgeSkip;
    const Graph g = SampleSkg({0.95, 0.40, 0.25}, 24, rng, options);
    edges = g.NumEdges();
    benchmark::DoNotOptimize(CountTriangles(g));
    state.counters["nodes"] = static_cast<double>(g.NumNodes());
    state.counters["edges"] = static_cast<double>(edges);
  }
}
BENCHMARK(BM_EdgeSkipRealizeK24)
    ->Iterations(1)
    ->Unit(benchmark::kSecond)
    ->UseRealTime();

}  // namespace

// Hand-rolled main (instead of BENCHMARK_MAIN) so every BENCH_micro.json
// carries the SIMD dispatch decision and the CPU it was made on —
// without these, cross-machine perf-trajectory comparisons can silently
// mix vectorized and scalar runs.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("simd_dispatch",
                              SimdLevelName(ActiveSimdLevel()));
  benchmark::AddCustomContext("simd_detected",
                              SimdLevelName(DetectedSimdLevel()));
  benchmark::AddCustomContext("cpu_brand", CpuBrandString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
