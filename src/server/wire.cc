#include "src/server/wire.h"

#include <cmath>
#include <cstdlib>

#include "src/common/table_writer.h"

namespace dpkron {
namespace {

// ------------------------------------------------- flat JSON scanning
//
// A hand-rolled scanner for exactly the protocol's shape: one object,
// string keys, scalar values. No recursion, no containers-in-values —
// the request line is a fixed form, not a document language.

struct Scanner {
  std::string_view in;
  size_t pos = 0;
  std::string error;  // first structural offence, empty = none

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < in.size() &&
           (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos >= in.size() || in[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos < in.size() && in[pos] == c;
  }

  // Consume without recording an error on mismatch — for optional
  // separators where absence just ends the list.
  bool TryConsume(char c) {
    SkipSpace();
    if (pos >= in.size() || in[pos] != c) return false;
    ++pos;
    return true;
  }

  bool String(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos < in.size()) {
      const char c = in[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= in.size()) break;
        const char esc = in[pos++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          default:
            // \uXXXX (and anything else) is refused rather than
            // half-decoded: no protocol field needs non-ASCII escapes,
            // and a wrong decode would silently corrupt a request_id.
            return Fail("unsupported string escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool Literal(std::string_view word) {
    if (in.size() - pos < word.size() ||
        in.substr(pos, word.size()) != word) {
      return Fail("unrecognized literal");
    }
    pos += word.size();
    return true;
  }

  bool Number(double* out) {
    SkipSpace();
    const size_t start = pos;
    if (pos < in.size() && (in[pos] == '-' || in[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < in.size() &&
           ((in[pos] >= '0' && in[pos] <= '9') || in[pos] == '.' ||
            in[pos] == 'e' || in[pos] == 'E' || in[pos] == '-' ||
            in[pos] == '+')) {
      digits = digits || (in[pos] >= '0' && in[pos] <= '9');
      ++pos;
    }
    if (!digits) return Fail("expected number");
    const std::string text(in.substr(start, pos - start));
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(*out)) {
      return Fail("malformed number");
    }
    return true;
  }
};

bool NonNegativeIntegral(double value, uint64_t* out) {
  if (value < 0 || value != std::floor(value) || value > 1.8e19) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

Result<ReleaseRequest> ParseRequestLine(std::string_view line) {
  Scanner scan{line, 0, {}};
  ReleaseRequest request;
  std::string type = "release";
  bool have_epsilon = false;

  if (!scan.Consume('{')) {
    return Status::InvalidArgument("request is not a JSON object: " +
                                   scan.error);
  }
  if (!scan.Peek('}')) {
    do {
      std::string key;
      if (!scan.String(&key) || !scan.Consume(':')) break;
      scan.SkipSpace();
      // Scalar members only. Unknown keys are parsed and dropped.
      if (scan.Peek('"')) {
        std::string value;
        if (!scan.String(&value)) break;
        if (key == "type") type = value;
        else if (key == "analyst") request.analyst = value;
        else if (key == "scenario") request.scenario = value;
        else if (key == "dataset") request.dataset = value;
        else if (key == "request_id") request.request_id = value;
      } else if (scan.Peek('t')) {
        if (!scan.Literal("true")) break;
      } else if (scan.Peek('f')) {
        if (!scan.Literal("false")) break;
      } else if (scan.Peek('n')) {
        if (!scan.Literal("null")) break;
      } else if (scan.Peek('{') || scan.Peek('[')) {
        scan.Fail("nested containers are not part of the protocol");
        break;
      } else {
        double value = 0.0;
        if (!scan.Number(&value)) break;
        if (key == "epsilon") {
          request.epsilon = value;
          have_epsilon = true;
        } else if (key == "seed") {
          uint64_t seed = 0;
          if (!NonNegativeIntegral(value, &seed)) {
            scan.Fail("seed must be a non-negative integer");
            break;
          }
          request.seed = seed;
        } else if (key == "deadline_ms") {
          if (value != std::floor(value)) {
            scan.Fail("deadline_ms must be an integer");
            break;
          }
          request.deadline_ms = static_cast<int64_t>(value);
        }
      }
    } while (scan.error.empty() && scan.TryConsume(','));
  }
  if (scan.error.empty()) scan.Consume('}');
  if (scan.error.empty()) {
    scan.SkipSpace();
    if (scan.pos != scan.in.size()) scan.Fail("trailing garbage");
  }
  if (!scan.error.empty()) {
    return Status::InvalidArgument("malformed request: " + scan.error);
  }

  if (type == "healthz") {
    request.type = RequestType::kHealthz;
    return request;
  }
  if (type != "release") {
    return Status::InvalidArgument("unknown request type '" + type + "'");
  }
  request.type = RequestType::kRelease;
  if (request.analyst.empty()) {
    return Status::InvalidArgument("release request needs an analyst");
  }
  if (request.scenario.empty()) {
    return Status::InvalidArgument("release request needs a scenario");
  }
  if (!have_epsilon || !(request.epsilon > 0.0)) {
    return Status::InvalidArgument("release request needs epsilon > 0");
  }
  return request;
}

std::string ErrorResponseJson(const std::string& request_id,
                              const Status& status,
                              int64_t retry_after_ms) {
  JsonWriter json;
  json.BeginObject();
  json.Key("request_id");
  json.String(request_id);
  json.Key("ok");
  json.Bool(false);
  json.Key("code");
  json.String(StatusCodeName(status.code()));
  json.Key("status");
  json.String(status.ToString());
  if (retry_after_ms >= 0) {
    json.Key("retry_after_ms");
    json.Int(retry_after_ms);
  }
  json.EndObject();
  return json.str();
}

}  // namespace dpkron
