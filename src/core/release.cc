#include "src/core/release.h"

#include <algorithm>
#include <map>

#include "src/common/macros.h"
#include "src/graph/anf.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/hop_plot.h"
#include "src/linalg/lanczos.h"
#include "src/linalg/network_value.h"

namespace dpkron {

GraphStatistics ComputeStatistics(const Graph& graph, Rng& rng,
                                  const StatisticsOptions& options) {
  GraphStatistics stats;

  for (const auto& [degree, count] : DegreeHistogram(graph)) {
    stats.degree_histogram.emplace_back(double(degree), double(count));
  }

  std::vector<uint64_t> hops;
  if (graph.NumNodes() <= options.exact_hop_plot_limit) {
    hops = ExactHopPlot(graph);
  } else {
    AnfOptions anf;
    anf.num_trials = options.anf_trials;
    hops = ApproxHopPlot(graph, rng, anf);
  }
  stats.hop_plot.assign(hops.begin(), hops.end());

  const uint32_t k_singular =
      std::min(options.num_singular_values, graph.NumNodes());
  if (k_singular > 0 && graph.NumEdges() > 0) {
    stats.scree = TopSingularValues(graph, k_singular, rng);
  }

  if (graph.NumEdges() > 0) {
    stats.network_value = NetworkValue(graph, rng);
    if (stats.network_value.size() > options.num_network_values) {
      stats.network_value.resize(options.num_network_values);
    }
  }

  for (const auto& [degree, cc] : ClusteringByDegree(graph)) {
    stats.clustering_by_degree.emplace_back(double(degree), cc);
  }
  return stats;
}

namespace {

// Averages positional series, padding shorter ones with their last value.
std::vector<double> AveragePositional(
    const std::vector<std::vector<double>>& series) {
  size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());
  std::vector<double> mean(longest, 0.0);
  if (series.empty()) return mean;
  for (const auto& s : series) {
    for (size_t i = 0; i < longest; ++i) {
      const double value = s.empty() ? 0.0 : (i < s.size() ? s[i] : s.back());
      mean[i] += value;
    }
  }
  for (double& value : mean) value /= double(series.size());
  return mean;
}

}  // namespace

GraphStatistics ExpectedStatistics(const Initiator2& theta, uint32_t k,
                                   uint32_t realizations, Rng& rng,
                                   const StatisticsOptions& options,
                                   SkgSampleMethod method) {
  DPKRON_CHECK_GE(realizations, 1u);
  // Degree histogram: mean count per degree. Clustering: mean of per-
  // realization degree-averages, tracked with how many realizations had
  // that degree present.
  std::map<double, double> histogram_sum;
  std::map<double, std::pair<double, uint32_t>> clustering_sum;
  std::vector<std::vector<double>> hop_series, scree_series, netval_series;

  for (uint32_t r = 0; r < realizations; ++r) {
    const Graph sample = SampleSyntheticGraph(theta, k, rng, method);
    const GraphStatistics stats = ComputeStatistics(sample, rng, options);
    for (const auto& [degree, count] : stats.degree_histogram) {
      histogram_sum[degree] += count;
    }
    for (const auto& [degree, cc] : stats.clustering_by_degree) {
      auto& [sum, count] = clustering_sum[degree];
      sum += cc;
      ++count;
    }
    hop_series.push_back(stats.hop_plot);
    scree_series.push_back(stats.scree);
    netval_series.push_back(stats.network_value);
  }

  GraphStatistics mean;
  for (const auto& [degree, total] : histogram_sum) {
    mean.degree_histogram.emplace_back(degree, total / realizations);
  }
  for (const auto& [degree, entry] : clustering_sum) {
    mean.clustering_by_degree.emplace_back(degree,
                                           entry.first / entry.second);
  }
  mean.hop_plot = AveragePositional(hop_series);
  mean.scree = AveragePositional(scree_series);
  mean.network_value = AveragePositional(netval_series);
  return mean;
}

Graph SampleSyntheticGraph(const Initiator2& theta, uint32_t k, Rng& rng,
                           SkgSampleMethod method) {
  SkgSampleOptions options;
  options.method = method;
  return SampleSkg(theta, k, rng, options);
}

}  // namespace dpkron
