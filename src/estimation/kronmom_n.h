// Moment-matching estimation for general symmetric N1×N1 initiators —
// the model-selection direction the paper points at in §3.3 ("An
// appropriate size for N1 is decided upon using standard techniques of
// model selection ... for many real-world graphs, having N1 > 2 does not
// accrue a significant advantage"). With moments_n.h this lets us test
// that claim rather than assume it (see bench/ablation_model_selection).

#ifndef DPKRON_ESTIMATION_KRONMOM_N_H_
#define DPKRON_ESTIMATION_KRONMOM_N_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/estimation/features.h"
#include "src/estimation/objective.h"
#include "src/graph/graph_view.h"
#include "src/skg/initiator.h"

namespace dpkron {

struct KronMomNOptions {
  ObjectiveOptions objective;
  uint32_t num_starts = 24;       // random multi-starts
  uint32_t max_iterations = 3000; // per Nelder–Mead run
};

struct KronMomNResult {
  // Fitted symmetric initiator (row-major, dim*dim entries).
  std::vector<double> entries;
  uint32_t dim = 0;
  uint32_t k = 0;
  double objective = 0.0;
};

// Smallest k with dim^k >= num_nodes.
uint32_t ChooseOrderN(uint64_t num_nodes, uint32_t dim);

// Eq. (2) objective against general-initiator expected moments. Upper-
// triangle parameters outside [0,1] are clamped + penalized, as in the
// 2×2 objective.
double MomentObjectiveN(const std::vector<double>& upper_triangle,
                        uint32_t dim, uint32_t k,
                        const GraphFeatures& observed,
                        const ObjectiveOptions& options = {});

// Fits a symmetric dim×dim initiator to observed features at order k.
// `rng` drives the multi-start; results are deterministic given the seed.
KronMomNResult FitKronMomN(const GraphFeatures& observed, uint32_t dim,
                           uint32_t k, Rng& rng,
                           const KronMomNOptions& options = {});

// Convenience: features from `graph`, k = ChooseOrderN(nodes, dim).
KronMomNResult FitKronMomN(GraphView graph, uint32_t dim, Rng& rng,
                           const KronMomNOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_ESTIMATION_KRONMOM_N_H_
