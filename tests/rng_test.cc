#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a.NextU64() != b.NextU64());
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  uint64_t x = 0;
  for (int i = 0; i < 16; ++i) x |= rng.NextU64();
  EXPECT_NE(x, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedRange) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(5);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / double(bound), 5 * std::sqrt(n / double(bound)));
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  const double p = 0.3;
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
  EXPECT_NEAR(hits / double(n), p, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(19);
  const double scale = 2.5;
  const int n = 200000;
  double sum = 0.0, sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextLaplace(scale);
    sum += x;
    sum_abs += std::fabs(x);
  }
  // E[X] = 0; E[|X|] = scale.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_abs / n, scale, 0.05);
}

TEST(RngTest, LaplaceTailProbability) {
  // P(|X| > t·b) = exp(−t).
  Rng rng(23);
  const int n = 100000;
  int beyond = 0;
  for (int i = 0; i < n; ++i) beyond += std::fabs(rng.NextLaplace(1.0)) > 2.0;
  EXPECT_NEAR(beyond / double(n), std::exp(-2.0), 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  const double lambda = 3.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(RngTest, GeometricMean) {
  Rng rng(31);
  const double p = 0.25;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += double(rng.NextGeometric(p));
  // Mean number of failures: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(41);
  for (uint32_t n : {0u, 1u, 2u, 10u, 1000u}) {
    std::vector<uint32_t> perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::vector<uint32_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(43);
  const std::vector<uint32_t> p1 = rng.Permutation(100);
  const std::vector<uint32_t> p2 = rng.Permutation(100);
  EXPECT_NE(p1, p2);
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng parent(47);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(51), b(51);
  Rng ca = a.Split(), cb = b.Split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

TEST(RngTest, SplitGoldenValues) {
  // Pinned outputs of the split-tree around seed 20120330: child,
  // grandchild, second child, and the parent stream after the splits.
  // xoshiro256** + splitmix64 are pure 64-bit integer arithmetic, so
  // these values must be identical on every platform and compiler; a
  // failure here means the Split() derivation changed and every
  // experiment seeded through split streams (parallel sampling, ANF
  // sketches) silently lost reproducibility.
  Rng parent(20120330);
  Rng child = parent.Split();
  Rng grandchild = child.Split();
  Rng sibling = parent.Split();
  const uint64_t expected_child[4] = {
      0x5cd6f79af1e554abULL, 0xec5f0011c182b6f6ULL, 0xce650640a69fa4f5ULL,
      0xb0fbc22897449bc7ULL};
  const uint64_t expected_grandchild[4] = {
      0xa96e4740549353cdULL, 0x481bb43112008a57ULL, 0x7aa1d129e0e6e7ccULL,
      0x7f06edfeab11a44bULL};
  const uint64_t expected_sibling[4] = {
      0x1cf11a91424244b1ULL, 0x259bfd863f1f55c8ULL, 0xd10996c5b6ca4ba8ULL,
      0x8762d4aa96b08b9aULL};
  const uint64_t expected_parent_after[4] = {
      0xf97bd5d4fda83149ULL, 0x1ada05b30ed379eeULL, 0xf59b6cbf8e4fbae0ULL,
      0x2d0c2136840f14bfULL};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(child.NextU64(), expected_child[i]);
    EXPECT_EQ(grandchild.NextU64(), expected_grandchild[i]);
    EXPECT_EQ(sibling.NextU64(), expected_sibling[i]);
    EXPECT_EQ(parent.NextU64(), expected_parent_after[i]);
  }
}

TEST(RngTest, SplitStreamsPairwiseUncorrelated) {
  // Statistical independence proxy across the whole split family:
  // sign-agreement between any two of {parent-after, child, grandchild,
  // sibling} should be a fair coin.
  Rng parent(20120330);
  Rng child = parent.Split();
  Rng grandchild = child.Split();
  Rng sibling = parent.Split();
  Rng* streams[4] = {&parent, &child, &grandchild, &sibling};
  const int n = 4096;
  std::vector<std::vector<uint64_t>> draws(4, std::vector<uint64_t>(n));
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < n; ++i) draws[s][i] = streams[s]->NextU64();
  }
  for (int s = 0; s < 4; ++s) {
    for (int t = s + 1; t < 4; ++t) {
      int agree = 0;
      for (int i = 0; i < n; ++i) {
        agree += ((draws[s][i] >> 63) == (draws[t][i] >> 63));
      }
      // 5σ band around n/2 for a fair coin (σ = √n / 2 = 32).
      EXPECT_NEAR(agree, n / 2, 160) << "streams " << s << " vs " << t;
    }
  }
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(61);
  EXPECT_EQ(rng.NextBinomial(0, 0.5), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 0.0), 0u);
  EXPECT_EQ(rng.NextBinomial(100, -0.5), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 1.0), 100u);
  EXPECT_EQ(rng.NextBinomial(100, 1.5), 100u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.NextBinomial(7, 0.4), 7u);
  }
}

TEST(RngTest, BinomialMomentsSmallMean) {
  // n·p small: exercises the geometric-skipping path.
  Rng rng(67);
  const uint64_t n = 1000;
  const double p = 0.002;
  const int runs = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int r = 0; r < runs; ++r) {
    const double x = static_cast<double>(rng.NextBinomial(n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / runs;
  const double variance = sum_sq / runs - mean * mean;
  EXPECT_NEAR(mean, n * p, 0.05);                  // E = 2
  EXPECT_NEAR(variance, n * p * (1 - p), 0.1);     // Var ≈ 2
}

TEST(RngTest, BinomialMomentsLargeMean) {
  // n·p·(1−p) large: exercises the clamped normal-approximation path.
  Rng rng(71);
  const uint64_t n = 1u << 20;
  const double p = 0.25;
  const int runs = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int r = 0; r < runs; ++r) {
    const double x = static_cast<double>(rng.NextBinomial(n, p));
    EXPECT_LE(x, static_cast<double>(n));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / runs;
  const double variance = sum_sq / runs - mean * mean;
  const double expected_sd = std::sqrt(n * p * (1 - p));  // ≈ 443.4
  EXPECT_NEAR(mean, n * p, 5 * expected_sd / std::sqrt(double(runs)));
  EXPECT_NEAR(variance / (n * p * (1 - p)), 1.0, 0.05);
}

TEST(RngTest, BinomialHighPUsesSymmetry) {
  Rng rng(73);
  const uint64_t n = 500;
  const double p = 0.995;
  const int runs = 50000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    const uint64_t x = rng.NextBinomial(n, p);
    EXPECT_LE(x, n);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / runs, n * p, 0.05);
}

}  // namespace
}  // namespace dpkron
