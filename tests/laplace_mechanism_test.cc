#include "src/dp/laplace_mechanism.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"

namespace dpkron {
namespace {

TEST(LaplaceMechanismTest, UnbiasedAroundTrueValue) {
  Rng rng(1);
  const double truth = 1000.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += AddLaplaceNoise(truth, 1.0, 0.5, rng);
  }
  EXPECT_NEAR(sum / n, truth, 0.05);
}

TEST(LaplaceMechanismTest, NoiseScaleIsSensitivityOverEpsilon) {
  Rng rng(2);
  const double sensitivity = 2.0, epsilon = 0.25;
  const int n = 100000;
  double sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    sum_abs += std::fabs(AddLaplaceNoise(0.0, sensitivity, epsilon, rng));
  }
  // E[|Lap(b)|] = b = sensitivity / epsilon = 8.
  EXPECT_NEAR(sum_abs / n, sensitivity / epsilon, 0.1);
}

TEST(LaplaceMechanismTest, HigherEpsilonLessNoise) {
  Rng rng(3);
  double spread_low = 0.0, spread_high = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    spread_low += std::fabs(AddLaplaceNoise(0, 1.0, 0.1, rng));
    spread_high += std::fabs(AddLaplaceNoise(0, 1.0, 10.0, rng));
  }
  EXPECT_GT(spread_low, 10 * spread_high);
}

TEST(LaplaceMechanismTest, VectorVariantSizeAndIndependence) {
  Rng rng(4);
  const std::vector<double> values(100, 5.0);
  const auto noisy = AddLaplaceNoiseVector(values, 2.0, 1.0, rng);
  ASSERT_EQ(noisy.size(), values.size());
  // All coordinates perturbed (probability of any exact tie ~ 0).
  int unchanged = 0;
  for (size_t i = 0; i < noisy.size(); ++i) unchanged += noisy[i] == 5.0;
  EXPECT_EQ(unchanged, 0);
  // Not all the same noise.
  EXPECT_NE(noisy[0], noisy[1]);
}

TEST(LaplaceMechanismDeathTest, RejectsNonPositiveParameters) {
  Rng rng(5);
  EXPECT_DEATH(AddLaplaceNoise(0, 0.0, 1.0, rng), "CHECK");
  EXPECT_DEATH(AddLaplaceNoise(0, 1.0, 0.0, rng), "CHECK");
}

}  // namespace
}  // namespace dpkron
