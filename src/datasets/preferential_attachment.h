// Preferential-attachment (Barabási–Albert) generator — the stand-in for
// the paper's AS20 router topology. AS-level internet graphs are the
// canonical PA-like networks: heavy-tailed degrees around a small core,
// low degree-dependent clustering (the regime where the paper observes
// the SKG models clustering well), tiny effective diameter.

#ifndef DPKRON_DATASETS_PREFERENTIAL_ATTACHMENT_H_
#define DPKRON_DATASETS_PREFERENTIAL_ATTACHMENT_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace dpkron {

struct PreferentialAttachmentOptions {
  uint32_t num_nodes = 6474;
  // Edges contributed by each arriving node (BA parameter m); the final
  // edge count is ≈ m·(num_nodes − m).
  uint32_t edges_per_node = 4;
};

Graph PreferentialAttachmentGraph(const PreferentialAttachmentOptions& options,
                                  Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_DATASETS_PREFERENTIAL_ATTACHMENT_H_
