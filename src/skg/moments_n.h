// Expected feature counts E, H, ∆, T for a general symmetric N1×N1
// initiator — the generalization of Eq. (1) beyond the paper's 2×2 case.
//
// The paper fixes N1 = 2 to compare with Gleich & Owen, noting (§3.3)
// that N1 is ordinarily chosen by model selection. These formulas enable
// exactly that: moment-matching estimation at any initiator size.
//
// Derivation (same power-sum machinery as the corrected 2×2 tripins; see
// moments.cc): with R_j(c) = Σ_u P_cu^j and d(c) = P_cc, all of
//   Σ_c R^α d^β R2^γ ...
// factorize per digit into k-th powers of O(N1²) sums over the initiator,
// and the triangle term uses the cyclic tensor sum Σ_ijl θ_ij θ_jl θ_li.

#ifndef DPKRON_SKG_MOMENTS_N_H_
#define DPKRON_SKG_MOMENTS_N_H_

#include <cstdint>

#include "src/skg/initiator.h"
#include "src/skg/moments.h"

namespace dpkron {

// Expected (E, H, ∆, T) of the SKG Θ^[k] under the unordered-pair
// convention. Requires a symmetric initiator (aborts otherwise) and
// k ≥ 1.
SkgMoments ExpectedMomentsN(const InitiatorN& theta, uint32_t k);

// Brute-force reference over the dense Kronecker power (tests only;
// O(N1^3k)).
SkgMoments ExpectedMomentsBruteForceN(const InitiatorN& theta, uint32_t k);

}  // namespace dpkron

#endif  // DPKRON_SKG_MOMENTS_N_H_
