#include "src/skg/class_sampler.h"

#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "src/graph/triangles.h"
#include "src/skg/kronecker.h"
#include "src/skg/moments.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

using internal_class_sampler::Choose;
using internal_class_sampler::ClassSize;
using internal_class_sampler::PairUV;
using internal_class_sampler::UnrankCombination;
using internal_class_sampler::UnrankPair;

TEST(ChooseTest, SmallValues) {
  EXPECT_EQ(Choose(0, 0), 1u);
  EXPECT_EQ(Choose(5, 0), 1u);
  EXPECT_EQ(Choose(5, 5), 1u);
  EXPECT_EQ(Choose(5, 2), 10u);
  EXPECT_EQ(Choose(14, 7), 3432u);
  EXPECT_EQ(Choose(30, 15), 155117520u);
  EXPECT_EQ(Choose(3, 5), 0u);
}

TEST(ClassSizeTest, SumsToAllOffDiagonalPairs) {
  for (uint32_t k : {1u, 2u, 3u, 5u, 8u}) {
    uint64_t total = 0;
    for (uint32_t i = 0; i <= k; ++i) {
      for (uint32_t j = 0; i + j <= k; ++j) {
        total += ClassSize(k, i, j);
      }
    }
    const uint64_t n = uint64_t{1} << k;
    EXPECT_EQ(total, n * (n - 1) / 2) << "k=" << k;
  }
}

TEST(ClassSizeTest, DiagonalClassesEmpty) {
  EXPECT_EQ(ClassSize(5, 2, 0), 0u);
  EXPECT_EQ(ClassSize(5, 0, 0), 0u);
}

TEST(UnrankCombinationTest, EnumeratesLexicographically) {
  // C(5,2) = 10 combinations; check full order.
  uint32_t out[2];
  std::set<std::pair<uint32_t, uint32_t>> seen;
  std::pair<uint32_t, uint32_t> previous{0, 0};
  for (uint64_t rank = 0; rank < 10; ++rank) {
    UnrankCombination(5, 2, rank, out);
    EXPECT_LT(out[0], out[1]);
    const std::pair<uint32_t, uint32_t> combo{out[0], out[1]};
    EXPECT_TRUE(seen.insert(combo).second);
    if (rank > 0) {
      EXPECT_LT(previous, combo);
    }
    previous = combo;
  }
}

TEST(UnrankPairTest, BijectionOntoClass) {
  // For every class of a k=5 cube, the unranked pairs must be distinct,
  // canonical (u < v) and have exactly the class's digit profile.
  const uint32_t k = 5;
  std::set<std::pair<uint64_t, uint64_t>> all_pairs;
  for (uint32_t i = 0; i + 1 <= k; ++i) {
    for (uint32_t j = 1; i + j <= k; ++j) {
      const uint64_t size = ClassSize(k, i, j);
      for (uint64_t rank = 0; rank < size; ++rank) {
        const PairUV pair = UnrankPair(k, i, j, rank);
        EXPECT_LT(pair.u, pair.v);
        const uint64_t both = pair.u & pair.v;
        const uint64_t differ = pair.u ^ pair.v;
        EXPECT_EQ(uint32_t(__builtin_popcountll(both)), i);
        EXPECT_EQ(uint32_t(__builtin_popcountll(differ)), j);
        EXPECT_TRUE(all_pairs.insert({pair.u, pair.v}).second)
            << "duplicate pair at class (" << i << "," << j << ") rank "
            << rank;
      }
    }
  }
  const uint64_t n = 32;
  EXPECT_EQ(all_pairs.size(), n * (n - 1) / 2);
}

TEST(ClassSamplerTest, DeterministicGivenSeed) {
  Rng a(5), b(5);
  EXPECT_EQ(SampleSkgClassSkip({0.9, 0.5, 0.2}, 8, a).Edges(),
            SampleSkgClassSkip({0.9, 0.5, 0.2}, 8, b).Edges());
}

TEST(ClassSamplerTest, AllOnesGivesCompleteGraph) {
  Rng rng(7);
  const Graph g = SampleSkgClassSkip({1.0, 1.0, 1.0}, 4, rng);
  EXPECT_EQ(g.NumEdges(), 16u * 15 / 2);
}

TEST(ClassSamplerTest, AllZerosGivesEmptyGraph) {
  Rng rng(9);
  EXPECT_EQ(SampleSkgClassSkip({0.0, 0.0, 0.0}, 6, rng).NumEdges(), 0u);
}

TEST(ClassSamplerTest, PerPairFrequencyMatchesProbability) {
  const Initiator2 theta{0.9, 0.6, 0.3};
  const EdgeProbability2 prob(theta, 3);
  Rng rng(11);
  const int runs = 4000;
  int hits_25 = 0, hits_07 = 0;
  for (int r = 0; r < runs; ++r) {
    const Graph g = SampleSkgClassSkip(theta, 3, rng);
    hits_25 += g.HasEdge(2, 5);
    hits_07 += g.HasEdge(0, 7);
  }
  EXPECT_NEAR(hits_25 / double(runs), prob(2, 5), 0.03);
  EXPECT_NEAR(hits_07 / double(runs), prob(0, 7), 0.03);
}

TEST(ClassSamplerTest, MomentsMatchClosedForm) {
  const Initiator2 theta{0.99, 0.45, 0.25};
  const uint32_t k = 7;
  Rng rng(13);
  double edges = 0, wedges = 0, triangles = 0;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    const Graph g = SampleSkgClassSkip(theta, k, rng);
    edges += double(g.NumEdges());
    wedges += double(CountWedges(g));
    triangles += double(CountTriangles(g));
  }
  const SkgMoments m = ExpectedMoments(theta, k);
  EXPECT_NEAR(edges / runs, m.edges, 0.05 * m.edges + 2);
  EXPECT_NEAR(wedges / runs, m.hairpins, 0.10 * m.hairpins + 10);
  EXPECT_NEAR(triangles / runs, m.triangles, 0.25 * m.triangles + 4);
}

TEST(ClassSamplerTest, AgreesWithExactSamplerInDistribution) {
  // Same theta, k: mean/variance of the edge count should agree between
  // the O(4^k) sweep and the class-skipping sampler.
  const Initiator2 theta{0.9, 0.5, 0.3};
  const uint32_t k = 6;
  Rng rng_a(17), rng_b(19);
  const int runs = 400;
  double sum_a = 0, sum_b = 0, sq_a = 0, sq_b = 0;
  for (int r = 0; r < runs; ++r) {
    const double ea = double(SampleSkg(theta, k, rng_a).NumEdges());
    SkgSampleOptions options;
    options.method = SkgSampleMethod::kClassSkip;
    const double eb = double(SampleSkg(theta, k, rng_b, options).NumEdges());
    sum_a += ea;
    sum_b += eb;
    sq_a += ea * ea;
    sq_b += eb * eb;
  }
  const double mean_a = sum_a / runs, mean_b = sum_b / runs;
  const double var_a = sq_a / runs - mean_a * mean_a;
  const double var_b = sq_b / runs - mean_b * mean_b;
  EXPECT_NEAR(mean_b, mean_a, 0.05 * mean_a);
  EXPECT_NEAR(var_b, var_a, 0.5 * var_a + 5);
}

TEST(ClassSamplerTest, LargeOrderRuns) {
  // k = 16 is far beyond the exact sweep's reach; class skipping samples
  // it in milliseconds with the exact law.
  Rng rng(23);
  const Graph g = SampleSkgClassSkip({0.99, 0.45, 0.25}, 16, rng);
  EXPECT_EQ(g.NumNodes(), uint32_t{1} << 16);
  const double expected = ExpectedEdges({0.99, 0.45, 0.25}, 16);
  EXPECT_NEAR(double(g.NumEdges()), expected, 6 * std::sqrt(expected));
}

TEST(ClassSamplerDeathTest, RejectsHugeK) {
  Rng rng(29);
  EXPECT_DEATH(SampleSkgClassSkip({0.5, 0.5, 0.5}, 31, rng), "CHECK");
}

}  // namespace
}  // namespace dpkron
