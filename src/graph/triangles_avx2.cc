// AVX2 implementation of the sorted-set intersection kernels (see
// intersect_kernels.h for the algorithm and dispatch contract).

#include "src/graph/intersect_kernels.h"

#include <algorithm>

#include "src/common/macros.h"

#ifdef __AVX2__
#include <immintrin.h>

namespace dpkron {
namespace {

// A length ratio this skewed makes per-element galloping beat the
// block merge (which walks the long list 8 elements at a time).
constexpr size_t kGallopRatioShift = 5;  // ratio 32

// Loads up to 8 lanes from p (remaining < 8 → masked load) with the
// invalid lanes forced to UINT32_MAX. Node ids fit in 31 bits, so the
// sentinel can never equal a real list value: sentinel lanes only ever
// "match" other sentinel lanes, and those matches are stripped by the
// a-side validity mask at the compare site. This is what lets the block
// merge run entirely in vector registers — SKG adjacency is sparse
// (most forward lists are shorter than one 8-lane block), so a scalar
// tail loop would otherwise BE the kernel, not its remainder.
inline __m256i LoadBlockPadded(const uint32_t* p, size_t remaining) {
  if (remaining >= 8) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i valid = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int>(remaining)), lane);
  const __m256i v =
      _mm256_maskload_epi32(reinterpret_cast<const int*>(p), valid);
  return _mm256_blendv_epi8(_mm256_set1_epi32(-1), v, valid);
}

// OR of lane-wise equality between a and all 8 rotations of b: bit i of
// the result is set iff a's lane i occurs anywhere in b's block.
inline unsigned MatchMask8(__m256i a, __m256i b) {
  __m256i m = _mm256_cmpeq_epi32(a, b);
#define DPKRON_ROT_CMP(r)                                              \
  m = _mm256_or_si256(                                                 \
      m, _mm256_cmpeq_epi32(                                           \
             a, _mm256_permutevar8x32_epi32(                           \
                    b, _mm256_setr_epi32((r) % 8, ((r) + 1) % 8,       \
                                         ((r) + 2) % 8, ((r) + 3) % 8, \
                                         ((r) + 4) % 8, ((r) + 5) % 8, \
                                         ((r) + 6) % 8, ((r) + 7) % 8))))
  DPKRON_ROT_CMP(1);
  DPKRON_ROT_CMP(2);
  DPKRON_ROT_CMP(3);
  DPKRON_ROT_CMP(4);
  DPKRON_ROT_CMP(5);
  DPKRON_ROT_CMP(6);
  DPKRON_ROT_CMP(7);
#undef DPKRON_ROT_CMP
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

// Galloping intersection of a short list against a long one; calls
// emit(x) for each common value, ascending.
template <typename Emit>
inline void GallopIntersect(const uint32_t* small_list, size_t small_len,
                            const uint32_t* large_list, size_t large_len,
                            Emit&& emit) {
  size_t base = 0;
  for (size_t i = 0; i < small_len && base < large_len; ++i) {
    const uint32_t x = small_list[i];
    size_t offset = 1;
    while (base + offset < large_len && large_list[base + offset] < x) {
      offset <<= 1;
    }
    const size_t hi = std::min(base + offset + 1, large_len);
    base = static_cast<size_t>(
        std::lower_bound(large_list + base, large_list + hi, x) -
        large_list);
    if (base < large_len && large_list[base] == x) {
      emit(x);
      ++base;
    }
  }
}

// Block-merge main loop, fully vectorized: tail blocks are loaded
// masked with UINT32_MAX sentinel padding (LoadBlockPadded), so there
// is no scalar merge — every comparison is an 8×8 block compare. Each
// (a-block, b-block) pair whose ranges overlap is compared exactly
// once: the block with the smaller maximum advances, on a tie both do,
// and a sentinel-padded tail (max = UINT32_MAX, above every real id)
// never advances before the other side exhausts. Sentinel lanes of a
// are stripped from the match mask before emission; sentinel lanes of b
// can only match sentinel lanes of a (already stripped), never a real
// id. Matches are emitted in ascending value order — within one block
// pair by lane order, across block pairs because both lists are
// strictly sorted.
template <typename OnBlockMask>
inline void BlockIntersect(const uint32_t* a, size_t a_len,
                           const uint32_t* b, size_t b_len,
                           OnBlockMask&& on_mask) {
  const uint32_t a_last = a[a_len - 1], b_last = b[b_len - 1];
  size_t i = 0, j = 0;
  __m256i va = LoadBlockPadded(a, a_len);
  __m256i vb = LoadBlockPadded(b, b_len);
  for (;;) {
    unsigned m = MatchMask8(va, vb);
    const size_t a_rem = a_len - i;
    if (a_rem < 8) m &= (1u << a_rem) - 1;
    if (m) on_mask(m, i);
    const uint32_t amax = (a_rem > 8) ? a[i + 7] : a_last;
    const uint32_t bmax = (b_len - j > 8) ? b[j + 7] : b_last;
    if (amax <= bmax) {
      i += 8;
      // No remaining a value can match once the whole of b lies below
      // the next a block (and vice versa below): both lists are sorted.
      if (i >= a_len || a[i] > b_last) break;
      va = LoadBlockPadded(a + i, a_len - i);
    }
    if (bmax <= amax) {
      j += 8;
      if (j >= b_len || b[j] > a_last) break;
      vb = LoadBlockPadded(b + j, b_len - j);
    }
  }
}

// Internal bodies, shared by the single-pair entry points and the
// chunk loops below. Only the public functions issue vzeroupper — the
// chunk loops stay in AVX state across every intersection and clear the
// uppers once on exit.
inline uint64_t IntersectCountImpl(const uint32_t* a, size_t a_len,
                                   const uint32_t* b, size_t b_len) {
  if (a_len > b_len) {
    std::swap(a, b);
    std::swap(a_len, b_len);
  }
  if (a_len == 0) return 0;
  // Dominant case at SKG degrees: both lists fit one (padded) block —
  // a single all-rotations compare, no merge loop at all.
  if (a_len <= 8 && b_len <= 8) {
    const unsigned m = MatchMask8(LoadBlockPadded(a, a_len),
                                  LoadBlockPadded(b, b_len)) &
                       ((1u << a_len) - 1);
    return static_cast<unsigned>(__builtin_popcount(m));
  }
  uint64_t count = 0;
  if ((b_len >> kGallopRatioShift) >= a_len) {
    GallopIntersect(a, a_len, b, b_len, [&](uint32_t) { ++count; });
    return count;
  }
  BlockIntersect(a, a_len, b, b_len, [&](unsigned mask, size_t) {
    count += static_cast<unsigned>(__builtin_popcount(mask));
  });
  return count;
}

inline size_t IntersectImpl(const uint32_t* a, size_t a_len,
                            const uint32_t* b, size_t b_len,
                            uint32_t* out) {
  if (a_len > b_len) {
    std::swap(a, b);
    std::swap(a_len, b_len);
  }
  size_t n = 0;
  if (a_len == 0) return 0;
  if (a_len <= 8 && b_len <= 8) {
    unsigned m = MatchMask8(LoadBlockPadded(a, a_len),
                            LoadBlockPadded(b, b_len)) &
                 ((1u << a_len) - 1);
    while (m) {
      out[n++] = a[static_cast<unsigned>(__builtin_ctz(m))];
      m &= m - 1;
    }
    return n;
  }
  if ((b_len >> kGallopRatioShift) >= a_len) {
    GallopIntersect(a, a_len, b, b_len,
                    [&](uint32_t x) { out[n++] = x; });
    return n;
  }
  BlockIntersect(a, a_len, b, b_len, [&](unsigned mask, size_t i) {
    while (mask) {
      out[n++] = a[i + static_cast<unsigned>(__builtin_ctz(mask))];
      mask &= mask - 1;
    }
  });
  return n;
}

}  // namespace

uint64_t IntersectCountAvx2(const uint32_t* a, size_t a_len,
                            const uint32_t* b, size_t b_len) {
  const uint64_t count = IntersectCountImpl(a, a_len, b, b_len);
  // Clear dirty ymm uppers before returning to (possibly) legacy-SSE
  // caller code — without this the caller's SSE instructions all gain
  // false dependencies on the stale upper halves.
  _mm256_zeroupper();
  return count;
}

size_t IntersectAvx2(const uint32_t* a, size_t a_len, const uint32_t* b,
                     size_t b_len, uint32_t* out) {
  const size_t n = IntersectImpl(a, a_len, b, b_len, out);
  _mm256_zeroupper();
  return n;
}

uint64_t CountTrianglesChunkAvx2(const uint32_t* offsets,
                                 const uint32_t* targets, size_t begin,
                                 size_t end) {
  uint64_t local = 0;
  for (size_t u = begin; u < end; ++u) {
    const uint32_t* fu = targets + offsets[u];
    const size_t fu_len = offsets[u + 1] - offsets[u];
    for (size_t vi = 0; vi < fu_len; ++vi) {
      const uint32_t v = fu[vi];
      local += IntersectCountImpl(fu, fu_len, targets + offsets[v],
                                  offsets[v + 1] - offsets[v]);
    }
  }
  _mm256_zeroupper();
  return local;
}

void PerNodeTrianglesChunkAvx2(const uint32_t* offsets,
                               const uint32_t* targets, size_t begin,
                               size_t end, uint64_t* counts,
                               uint32_t* scratch) {
  for (size_t u = begin; u < end; ++u) {
    const uint32_t* fu = targets + offsets[u];
    const size_t fu_len = offsets[u + 1] - offsets[u];
    for (size_t vi = 0; vi < fu_len; ++vi) {
      const uint32_t v = fu[vi];
      const size_t matches =
          IntersectImpl(fu, fu_len, targets + offsets[v],
                        offsets[v + 1] - offsets[v], scratch);
      counts[u] += matches;
      counts[v] += matches;
      for (size_t m = 0; m < matches; ++m) ++counts[scratch[m]];
    }
  }
  _mm256_zeroupper();
}

}  // namespace dpkron

#else  // !__AVX2__ — unreachable stubs (dispatch never selects kAvx2).

namespace dpkron {

uint64_t IntersectCountAvx2(const uint32_t*, size_t, const uint32_t*,
                            size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return 0;
}

size_t IntersectAvx2(const uint32_t*, size_t, const uint32_t*, size_t,
                     uint32_t*) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return 0;
}

uint64_t CountTrianglesChunkAvx2(const uint32_t*, const uint32_t*, size_t,
                                 size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return 0;
}

void PerNodeTrianglesChunkAvx2(const uint32_t*, const uint32_t*, size_t,
                               size_t, uint64_t*, uint32_t*) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
}

}  // namespace dpkron

#endif  // __AVX2__
