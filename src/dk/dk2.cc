#include "src/dk/dk2.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/macros.h"
#include "src/graph/graph_builder.h"

namespace dpkron {

Dk2Table Dk2Table::FromGraph(GraphView graph) {
  Dk2Table table;
  graph.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
    const uint32_t du = graph.Degree(u), dv = graph.Degree(v);
    const DegreePair key{std::min(du, dv), std::max(du, dv)};
    table.cells_[key] += 1.0;
    table.max_degree_ = std::max(table.max_degree_, key.second);
  });
  return table;
}

double Dk2Table::Count(uint32_t x, uint32_t y) const {
  if (x > y) std::swap(x, y);
  const auto it = cells_.find({x, y});
  return it == cells_.end() ? 0.0 : it->second;
}

void Dk2Table::Set(uint32_t x, uint32_t y, double count) {
  if (x > y) std::swap(x, y);
  if (count == 0.0) {
    cells_.erase({x, y});
    return;
  }
  cells_[{x, y}] = count;
  max_degree_ = std::max(max_degree_, y);
}

double Dk2Table::TotalEdges() const {
  double total = 0.0;
  for (const auto& [key, count] : cells_) total += count;
  return total;
}

double Dk2Table::ImpliedNodeCount(uint32_t d) const {
  DPKRON_CHECK_GT(d, 0u);
  double stubs = 0.0;
  for (const auto& [key, count] : cells_) {
    if (key.first == d) stubs += count;
    if (key.second == d) stubs += count;  // (d, d) cells counted twice
  }
  return stubs / double(d);
}

double Dk2Table::L1Distance(const Dk2Table& a, const Dk2Table& b) {
  double distance = 0.0;
  for (const auto& [key, count] : a.cells_) {
    distance += std::fabs(count - b.Count(key.first, key.second));
  }
  for (const auto& [key, count] : b.cells_) {
    if (a.cells_.find(key) == a.cells_.end()) distance += std::fabs(count);
  }
  return distance;
}

Result<Dk2Table> PrivatizeDk2(const Dk2Table& exact, double epsilon,
                              PrivacyBudget& budget, Rng& rng,
                              const Dk2PrivatizeOptions& options) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const uint32_t cap =
      options.degree_cap > 0 ? options.degree_cap : exact.max_degree();
  if (cap == 0) {
    return Status::InvalidArgument("empty dK-2 table and no degree cap");
  }
  if (Status s = budget.Spend(epsilon, 0.0, "dk2_series (Laplace)"); !s.ok()) {
    return s;
  }
  const double sensitivity = 4.0 * double(cap) + 1.0;
  const double scale = sensitivity / epsilon;
  const double num_cells = double(cap) * double(cap + 1) / 2.0;
  const double threshold = options.threshold_sparsify
                               ? options.threshold_factor * scale *
                                     std::log(std::max(num_cells, 2.0))
                               : 0.0;

  Dk2Table noisy;
  // Noise every cell of the capped grid, including empty ones — releasing
  // only occupied cells would leak which degree pairs exist.
  for (uint32_t x = 1; x <= cap; ++x) {
    for (uint32_t y = x; y <= cap; ++y) {
      double value = exact.Count(x, y) + rng.NextLaplace(scale);
      if (value < threshold) value = 0.0;
      if (options.clamp_nonnegative) value = std::max(value, 0.0);
      if (value > 0.0) noisy.Set(x, y, value);
    }
  }
  return noisy;
}

Graph SampleDk2Graph(const Dk2Table& table, Rng& rng) {
  // 1. Integerize cell counts and derive per-degree node budgets.
  std::map<Dk2Table::DegreePair, uint64_t> target;
  std::map<uint32_t, uint64_t> stubs_needed;  // degree -> stub count
  for (const auto& [key, count] : table.cells()) {
    const uint64_t m = static_cast<uint64_t>(std::llround(count));
    if (m == 0) continue;
    target[key] = m;
    stubs_needed[key.first] += m;
    stubs_needed[key.second] += m;
  }
  // Nodes per degree class: ceil(stubs / d) (ceil keeps every class
  // realizable; the last node of a class may end up under-filled).
  std::map<uint32_t, uint32_t> nodes_of_degree;
  uint32_t total_nodes = 0;
  for (const auto& [degree, stubs] : stubs_needed) {
    const uint32_t count =
        static_cast<uint32_t>((stubs + degree - 1) / degree);
    nodes_of_degree[degree] = count;
    total_nodes += count;
  }
  GraphBuilder builder(std::max(total_nodes, 1u));
  if (target.empty()) return builder.Build();

  // 2. Assign node-id ranges per degree class and per-node remaining
  // capacity.
  std::map<uint32_t, std::pair<uint32_t, uint32_t>> range;  // d -> [lo, hi)
  std::vector<uint32_t> capacity(total_nodes, 0);
  {
    uint32_t next = 0;
    for (const auto& [degree, count] : nodes_of_degree) {
      range[degree] = {next, next + count};
      for (uint32_t u = next; u < next + count; ++u) capacity[u] = degree;
      next += count;
    }
  }

  // 3. Greedy stub matching per cell with best-effort simplicity: pick
  // random endpoints with remaining capacity from each class; retry on
  // loops and duplicate edges a bounded number of times.
  std::unordered_set<uint64_t> placed_edges;
  auto edge_key = [](uint32_t u, uint32_t v) {
    return (uint64_t{std::min(u, v)} << 32) | std::max(u, v);
  };
  // Endpoints are drawn from the nodes of the class with the MOST
  // remaining capacity (random tie-break): balanced filling keeps nearly
  // every node at exactly its class degree, so the re-extracted JDD stays
  // close to the target.
  for (const auto& [key, m] : target) {
    const auto [x, y] = key;
    auto candidates = [&](uint32_t degree, uint32_t exclude) {
      std::vector<uint32_t> nodes;
      uint32_t best = 0;
      const auto [lo, hi] = range[degree];
      for (uint32_t u = lo; u < hi; ++u) {
        if (u == exclude || capacity[u] == 0) continue;
        if (capacity[u] > best) {
          best = capacity[u];
          nodes.clear();
        }
        if (capacity[u] == best) nodes.push_back(u);
      }
      return nodes;
    };
    for (uint64_t edge = 0; edge < m; ++edge) {
      bool placed = false;
      for (int attempt = 0; attempt < 24 && !placed; ++attempt) {
        const std::vector<uint32_t> from = candidates(x, UINT32_MAX);
        if (from.empty()) break;
        const uint32_t u = from[rng.NextBounded(from.size())];
        const std::vector<uint32_t> to = candidates(y, u);
        if (to.empty()) break;
        const uint32_t v = to[rng.NextBounded(to.size())];
        if (!placed_edges.insert(edge_key(u, v)).second) continue;
        builder.AddEdge(u, v);
        --capacity[u];
        --capacity[v];
        placed = true;
      }
      if (!placed) break;  // class exhausted; drop the remainder
    }
  }
  return builder.Build();
}

Result<Graph> PrivateDk2Release(GraphView graph, double epsilon,
                                PrivacyBudget& budget, Rng& rng,
                                const Dk2PrivatizeOptions& options) {
  const Dk2Table exact = Dk2Table::FromGraph(graph);
  Result<Dk2Table> noisy = PrivatizeDk2(exact, epsilon, budget, rng, options);
  if (!noisy.ok()) return noisy.status();
  return SampleDk2Graph(noisy.value(), rng);
}

}  // namespace dpkron
