#include "src/skg/initiator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/macros.h"

namespace dpkron {

bool Initiator2::IsValid() const {
  auto in_unit = [](double x) { return x >= 0.0 && x <= 1.0; };
  return in_unit(a) && in_unit(b) && in_unit(c);
}

Initiator2 Initiator2::Canonical() const {
  return a >= c ? *this : Initiator2{c, b, a};
}

Initiator2 Initiator2::Clamped(double lo, double hi) const {
  auto clamp = [lo, hi](double x) { return std::min(hi, std::max(lo, x)); };
  return Initiator2{clamp(a), clamp(b), clamp(c)};
}

std::string Initiator2::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.4f %.4f; %.4f %.4f]", a, b, b, c);
  return buf;
}

double MaxAbsDifference(const Initiator2& x, const Initiator2& y) {
  return std::max({std::fabs(x.a - y.a), std::fabs(x.b - y.b),
                   std::fabs(x.c - y.c)});
}

Result<InitiatorN> InitiatorN::Create(uint32_t dim,
                                      std::vector<double> entries) {
  if (dim == 0) return Status::InvalidArgument("initiator dim must be >= 1");
  if (entries.size() != static_cast<size_t>(dim) * dim) {
    return Status::InvalidArgument("initiator entries size != dim*dim");
  }
  for (double value : entries) {
    if (!(value >= 0.0 && value <= 1.0)) {
      return Status::InvalidArgument("initiator entry outside [0,1]");
    }
  }
  return InitiatorN(dim, std::move(entries));
}

InitiatorN InitiatorN::From2x2(const Initiator2& theta) {
  DPKRON_CHECK_MSG(theta.IsValid(), "initiator entries outside [0,1]");
  return InitiatorN(2, {theta.a, theta.b, theta.b, theta.c});
}

double InitiatorN::EntrySum() const {
  double sum = 0.0;
  for (double value : entries_) sum += value;
  return sum;
}

double InitiatorN::TraceSum() const {
  double sum = 0.0;
  for (uint32_t i = 0; i < dim_; ++i) sum += At(i, i);
  return sum;
}

bool InitiatorN::IsSymmetric(double tol) const {
  for (uint32_t i = 0; i < dim_; ++i) {
    for (uint32_t j = i + 1; j < dim_; ++j) {
      if (std::fabs(At(i, j) - At(j, i)) > tol) return false;
    }
  }
  return true;
}

}  // namespace dpkron
