// Hay, Li, Miklau & Jensen (ICDM'09): differentially private estimation of
// a graph's degree sequence — step 2 of Algorithm 1.
//
// The sorted degree sequence d_S has global sensitivity 2 under edge
// neighborhood (adding/removing one edge moves two degrees by one, and
// sorting cannot increase L1 distance), so
//     d̂ = d_S + ⟨Lap(2/ε)⟩^N
// is (ε, 0)-private, and the constrained-inference post-processing
// (isotonic L2 projection, see isotonic.h) yields the accuracy-boosted d̃.

#ifndef DPKRON_DP_DEGREE_SEQUENCE_H_
#define DPKRON_DP_DEGREE_SEQUENCE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/graph/graph_view.h"

namespace dpkron {

// Global L1 sensitivity of the sorted degree sequence (edge neighbors).
inline constexpr double kDegreeSequenceSensitivity = 2.0;

struct PrivateDegreeOptions {
  // Apply the Hay et al. constrained inference (isotonic projection).
  bool postprocess = true;
  // Clamp the final estimates into the feasible degree range [0, N−1]
  // (also pure post-processing).
  bool clamp_to_range = true;
};

// (ε, 0)-differentially private estimate of the sorted degree sequence.
// InvalidArgument on a degenerate ε (≤ 0, non-finite) — a data-dependent
// condition a sweep can reach, so it surfaces as a Status the run
// report records, not a process abort.
Result<std::vector<double>> PrivateDegreeSequence(
    GraphView graph, double epsilon, Rng& rng,
    const PrivateDegreeOptions& options = {});

// The same mechanism applied to a pre-sorted degree vector (exposed so
// tests and ablations can drive it without a Graph).
Result<std::vector<double>> PrivatizeSortedDegrees(
    const std::vector<uint32_t>& sorted_degrees, double epsilon,
    uint32_t num_nodes, Rng& rng, const PrivateDegreeOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_DP_DEGREE_SEQUENCE_H_
