#include "src/dp/privacy_accountant.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace dpkron {
namespace {

// Record 0 of every accountant journal: identifies the format and pins
// the per-analyst totals the ledger was opened with. Version 2 added
// tagged records (request-id dedup + compaction snapshots); version-1
// journals are refused with a distinct message rather than mis-parsed.
constexpr char kHeaderMagic[8] = {'D', 'P', 'K', 'A', 'C', 'C', 'T', '2'};
constexpr char kHeaderMagicV1[8] = {'D', 'P', 'K', 'A', 'C', 'C', 'T', '1'};

// Tags on every post-header record.
enum RecordTag : uint32_t {
  // One acknowledged charge: analyst, label, request_id, epsilon, delta.
  kTagSpend = 1,
  // Compaction snapshot of one analyst's whole history: analyst,
  // epsilon_spent, delta_spent, collapsed spend count.
  kTagSnapshot = 2,
  // One request_id from the dedup set, re-emitted during compaction.
  kTagRequestId = 3,
};

std::string HeaderRecord(double epsilon_total, double delta_total) {
  return RecordBuilder()
      .Str(std::string_view(kHeaderMagic, sizeof(kHeaderMagic)))
      .Double(epsilon_total)
      .Double(delta_total)
      .str();
}

struct SpendRecord {
  std::string analyst;
  std::string label;
  std::string request_id;
  double epsilon = 0.0;
  double delta = 0.0;
};

std::string EncodeSpend(const SpendRecord& spend) {
  return RecordBuilder()
      .U32(kTagSpend)
      .Str(spend.analyst)
      .Str(spend.label)
      .Str(spend.request_id)
      .Double(spend.epsilon)
      .Double(spend.delta)
      .str();
}

}  // namespace

Result<std::unique_ptr<PrivacyAccountant>> PrivacyAccountant::Open(
    const std::string& path, double epsilon_total, double delta_total,
    Env* env, uint64_t compact_threshold) {
  if (!(epsilon_total > 0.0) || delta_total < 0.0 || delta_total >= 1.0) {
    return Status::InvalidArgument("accountant totals out of range");
  }

  JournalRecovery recovery;
  auto read = ReadJournal(path, env);
  if (read.ok()) {
    recovery = std::move(read).value();
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  }

  // Validate the header before taking the journal over. An empty
  // recovery (fresh file, or a journal whose very first append tore)
  // restarts from scratch — nothing was ever acknowledged from it.
  if (!recovery.records.empty()) {
    RecordParser header(recovery.records.front());
    const std::string magic = header.Str();
    const double recorded_epsilon = header.Double();
    const double recorded_delta = header.Double();
    if (magic == std::string_view(kHeaderMagicV1, sizeof(kHeaderMagicV1))) {
      return Status::InvalidArgument(
          path + ": version-1 accountant journal is not supported");
    }
    if (!header.done() ||
        magic != std::string_view(kHeaderMagic, sizeof(kHeaderMagic))) {
      return Status::InvalidArgument(path +
                                     ": not a privacy-accountant journal");
    }
    if (recorded_epsilon != epsilon_total || recorded_delta != delta_total) {
      return Status::InvalidArgument(
          path + ": journal totals differ from requested totals");
    }
  }

  // Replay into a journal-less accountant first: compaction (below)
  // needs the fully recovered state before a writer pins the file.
  std::unique_ptr<PrivacyAccountant> accountant(
      new PrivacyAccountant(epsilon_total, delta_total, nullptr));
  for (size_t i = 1; i < recovery.records.size(); ++i) {
    // Every replayed charge passed CheckSpend before being journaled,
    // so a replay that does not parse or does not fit can only mean a
    // foreign file that happened to checksum — refuse it.
    const Status malformed = Status::InvalidArgument(
        path + ": malformed accountant record " + std::to_string(i));
    RecordParser parser(recovery.records[i]);
    const uint32_t tag = parser.U32();
    Status applied;
    switch (tag) {
      case kTagSpend: {
        SpendRecord spend;
        spend.analyst = parser.Str();
        spend.label = parser.Str();
        spend.request_id = parser.Str();
        spend.epsilon = parser.Double();
        spend.delta = parser.Double();
        if (!parser.done()) return malformed;
        applied = accountant->BudgetLocked(spend.analyst)
                      .Spend(spend.epsilon, spend.delta, spend.label);
        if (applied.ok()) {
          ++accountant->total_spends_;
          ++accountant->spend_counts_[spend.analyst];
          if (!spend.request_id.empty()) {
            accountant->request_ids_.insert(spend.request_id);
          }
        }
        break;
      }
      case kTagSnapshot: {
        const std::string analyst = parser.Str();
        const double epsilon_spent = parser.Double();
        const double delta_spent = parser.Double();
        const uint64_t spends = parser.U64();
        if (!parser.done()) return malformed;
        applied = accountant->BudgetLocked(analyst).Spend(
            epsilon_spent, delta_spent,
            "compacted(" + std::to_string(spends) + " spends)");
        if (applied.ok()) {
          accountant->total_spends_ += spends;
          accountant->spend_counts_[analyst] += spends;
        }
        break;
      }
      case kTagRequestId: {
        const std::string request_id = parser.Str();
        if (!parser.done() || request_id.empty()) return malformed;
        accountant->request_ids_.insert(request_id);
        break;
      }
      default:
        return malformed;
    }
    if (!applied.ok()) {
      return Status::InvalidArgument(path + ": journal replay refused: " +
                                     applied.ToString());
    }
  }

  if (recovery.records.empty()) {
    // Fresh journal: write the header through the writer (durable).
    auto writer = JournalWriter::Open(path, 0, env);
    if (!writer.ok()) return writer.status();
    accountant->journal_ = std::move(writer).value();
    const Status status =
        accountant->journal_->Append(HeaderRecord(epsilon_total, delta_total));
    if (!status.ok()) return status;
    return accountant;
  }

  // Compaction: collapse an over-long history to one snapshot record
  // per analyst plus the request-id set, installed ATOMICALLY over the
  // old journal (write-temp → fsync → rename → dir-fsync). A crash at
  // any point leaves either the old journal or the complete snapshot —
  // never less than every acknowledged spend. A write failure merely
  // keeps the uncompacted journal: correctness never depends on
  // compaction succeeding.
  if (recovery.records.size() - 1 > compact_threshold) {
    const std::string image = accountant->CompactedImageLocked();
    const Status installed = WriteFileDurable(path, image, env);
    if (installed.ok()) {
      recovery.valid_bytes = image.size();
    } else {
      std::fprintf(stderr,
                   "# warning: accountant journal compaction failed (%s); "
                   "continuing with the uncompacted journal\n",
                   installed.ToString().c_str());
    }
  }

  auto writer = JournalWriter::Open(path, recovery.valid_bytes, env);
  if (!writer.ok()) return writer.status();
  accountant->journal_ = std::move(writer).value();
  return accountant;
}

PrivacyBudget& PrivacyAccountant::BudgetLocked(const std::string& analyst) {
  auto it = budgets_.find(analyst);
  if (it == budgets_.end()) {
    it = budgets_
             .emplace(analyst, PrivacyBudget(epsilon_total_, delta_total_))
             .first;
  }
  return it->second;
}

std::string PrivacyAccountant::CompactedImageLocked() const {
  std::string image;
  AppendFramedRecord(&image, HeaderRecord(epsilon_total_, delta_total_));
  for (const auto& [analyst, budget] : budgets_) {
    const auto count = spend_counts_.find(analyst);
    AppendFramedRecord(
        &image,
        RecordBuilder()
            .U32(kTagSnapshot)
            .Str(analyst)
            .Double(budget.epsilon_spent())
            .Double(budget.delta_spent())
            .U64(count == spend_counts_.end() ? 0 : count->second)
            .str());
  }
  for (const std::string& request_id : request_ids_) {
    AppendFramedRecord(
        &image, RecordBuilder().U32(kTagRequestId).Str(request_id).str());
  }
  return image;
}

Status PrivacyAccountant::Spend(const std::string& analyst, double epsilon,
                                double delta, const std::string& label) {
  return SpendOnce(analyst, epsilon, delta, label, /*request_id=*/"");
}

Status PrivacyAccountant::SpendOnce(const std::string& analyst,
                                    double epsilon, double delta,
                                    const std::string& label,
                                    const std::string& request_id,
                                    bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  // Idempotency first: a retried request_id is acknowledged without a
  // second charge — even if the analyst's budget has since exhausted
  // (the FIRST attempt paid; refusing the retry would strand a client
  // that never saw its ack).
  if (!request_id.empty() && request_ids_.count(request_id) > 0) {
    if (deduped != nullptr) *deduped = true;
    return Status::Ok();
  }
  PrivacyBudget& budget = BudgetLocked(analyst);
  // Validate first: a refused charge must leave no trace in the journal
  // (recovery would otherwise re-apply a spend that never happened).
  const Status check = budget.CheckSpend(epsilon, delta, label);
  if (!check.ok()) return check;
  // Durability before acknowledgment: the record hits stable storage
  // (or the spend is refused) before the in-memory state moves.
  const Status journaled = journal_->Append(
      EncodeSpend({analyst, label, request_id, epsilon, delta}));
  if (!journaled.ok()) return journaled;
  const Status applied = budget.Spend(epsilon, delta, label);
  DPKRON_CHECK_MSG(applied.ok(), "checked spend must apply");
  if (!request_id.empty()) request_ids_.insert(request_id);
  ++total_spends_;
  ++spend_counts_[analyst];
  return Status::Ok();
}

bool PrivacyAccountant::SeenRequest(const std::string& request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !request_id.empty() && request_ids_.count(request_id) > 0;
}

Status PrivacyAccountant::CheckSpend(const std::string& analyst,
                                     double epsilon, double delta) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  if (it == budgets_.end()) {
    // First-touch analysts check against a pristine budget without
    // mutating the map (this accessor is const and hot).
    return PrivacyBudget(epsilon_total_, delta_total_)
        .CheckSpend(epsilon, delta, "precheck");
  }
  return it->second.CheckSpend(epsilon, delta, "precheck");
}

double PrivacyAccountant::epsilon_spent(const std::string& analyst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  return it == budgets_.end() ? 0.0 : it->second.epsilon_spent();
}

double PrivacyAccountant::delta_spent(const std::string& analyst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  return it == budgets_.end() ? 0.0 : it->second.delta_spent();
}

double PrivacyAccountant::epsilon_remaining(const std::string& analyst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = budgets_.find(analyst);
  return it == budgets_.end() ? epsilon_total_
                              : it->second.epsilon_remaining();
}

uint64_t PrivacyAccountant::total_spends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_spends_;
}

std::vector<std::string> PrivacyAccountant::analysts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(budgets_.size());
  for (const auto& [name, budget] : budgets_) names.push_back(name);
  return names;
}

bool PrivacyAccountant::wounded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_->wounded();
}

std::string PrivacyAccountant::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "PrivacyAccountant (" + std::to_string(budgets_.size()) +
                    " analysts)\n";
  for (const auto& [name, budget] : budgets_) {
    out += "analyst " + name + ": " + budget.ToString();
  }
  return out;
}

}  // namespace dpkron
