#include <vector>

#include <gtest/gtest.h>
#include "src/graph/bfs.h"
#include "src/graph/components.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::MakeGraph;
using testing::PathGraph;

TEST(BfsTest, PathDistances) {
  const Graph g = PathGraph(5);
  const auto d = BfsDistances(g, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsTest, CycleDistances) {
  const Graph g = CycleGraph(6);
  const auto d = BfsDistances(g, 0);
  const std::vector<int32_t> expected = {0, 1, 2, 3, 2, 1};
  EXPECT_EQ(d, std::vector<int32_t>(expected));
}

TEST(BfsTest, UnreachableMarked) {
  const Graph g = MakeGraph(4, {{0, 1}});
  const auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(BfsTest, ScratchReusableAcrossSources) {
  const Graph g = PathGraph(6);
  BfsScratch scratch(6);
  EXPECT_EQ(scratch.Run(g, 0), 6u);
  EXPECT_EQ(scratch.Distance(5), 5);
  EXPECT_EQ(scratch.Run(g, 5), 6u);
  EXPECT_EQ(scratch.Distance(0), 5);
  EXPECT_EQ(scratch.Distance(5), 0);
}

TEST(BfsTest, VisitedInBfsOrder) {
  const Graph g = testing::StarGraph(5);
  BfsScratch scratch(5);
  scratch.Run(g, 0);
  const auto& visited = scratch.Visited();
  ASSERT_EQ(visited.size(), 5u);
  EXPECT_EQ(visited[0], 0u);
}

TEST(ComponentsTest, SingleComponent) {
  const ComponentInfo info = ConnectedComponents(CompleteGraph(5));
  EXPECT_EQ(info.num_components(), 1u);
  EXPECT_EQ(info.sizes[0], 5u);
}

TEST(ComponentsTest, MultipleComponentsAndIsolates) {
  // {0,1,2} triangle, {3,4} edge, {5} isolated.
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components(), 3u);
  EXPECT_EQ(info.sizes[0], 3u);
  EXPECT_EQ(info.sizes[1], 2u);
  EXPECT_EQ(info.sizes[2], 1u);
  EXPECT_EQ(info.component_of[0], info.component_of[2]);
  EXPECT_NE(info.component_of[0], info.component_of[3]);
}

TEST(ComponentsTest, EmptyGraph) {
  const ComponentInfo info = ConnectedComponents(Graph());
  EXPECT_EQ(info.num_components(), 0u);
}

TEST(LargestComponentTest, ExtractsAndRelabels) {
  // Large component {2,3,4,5} path; small {0,1}.
  const Graph g = MakeGraph(6, {{0, 1}, {2, 3}, {3, 4}, {4, 5}});
  const ExtractedComponent extracted = LargestComponent(g);
  EXPECT_EQ(extracted.graph.NumNodes(), 4u);
  EXPECT_EQ(extracted.graph.NumEdges(), 3u);
  ASSERT_EQ(extracted.original_id.size(), 4u);
  EXPECT_EQ(extracted.original_id[0], 2u);
  EXPECT_EQ(extracted.original_id[3], 5u);
}

TEST(LargestComponentTest, WholeGraphWhenConnected) {
  const Graph g = CycleGraph(7);
  const ExtractedComponent extracted = LargestComponent(g);
  EXPECT_EQ(extracted.graph.NumNodes(), 7u);
  EXPECT_EQ(extracted.graph.NumEdges(), 7u);
}

TEST(LargestComponentTest, EmptyGraph) {
  const ExtractedComponent extracted = LargestComponent(Graph());
  EXPECT_EQ(extracted.graph.NumNodes(), 0u);
}

}  // namespace
}  // namespace dpkron
