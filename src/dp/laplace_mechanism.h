// The Laplace mechanism (Dwork, McSherry, Nissim & Smith — Theorem 4.5 of
// the paper): adding Lap(GS_Q/ε) noise to a query with global sensitivity
// GS_Q gives (ε, 0)-differential privacy.
//
// Degenerate parameters (sensitivity ≤ 0, ε ≤ 0) are data-dependent
// conditions a batch sweep over arbitrary --dataset inputs can reach
// (e.g. a zero-sensitivity statistic on a degenerate graph, or ε = 0 in
// a sweep grid), so they surface as an InvalidArgument Status the run
// report can record — not a process abort that would kill the batch.

#ifndef DPKRON_DP_LAPLACE_MECHANISM_H_
#define DPKRON_DP_LAPLACE_MECHANISM_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace dpkron {

// value + Lap(sensitivity/epsilon). InvalidArgument unless
// sensitivity > 0 and epsilon > 0 (both finite).
Result<double> AddLaplaceNoise(double value, double sensitivity,
                               double epsilon, Rng& rng);

// Element-wise noisy copy of `values`, i.i.d. Lap(sensitivity/epsilon) —
// for vector queries whose L1 global sensitivity is `sensitivity`
// (e.g. the sorted degree sequence, GS = 2). Same parameter validation
// as AddLaplaceNoise; on error no noise is drawn from `rng`.
Result<std::vector<double>> AddLaplaceNoiseVector(
    const std::vector<double>& values, double sensitivity, double epsilon,
    Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_DP_LAPLACE_MECHANISM_H_
