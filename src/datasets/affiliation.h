// Affiliation (clique-cover) graph generator — the stand-in for the
// paper's arXiv co-authorship networks (CA-GrQC, CA-HepTh), which are not
// redistributable in this environment.
//
// Authors join "papers"; every paper's author set becomes a clique, and
// the co-authorship graph is the union of those cliques. Paper sizes are
// Zipf-distributed and authors are selected with preferential attachment
// on their current paper count. This reproduces the properties the
// paper's experiments measure on co-authorship data: heavy-tailed
// degrees, very high degree-dependent clustering (which the SKG model
// visibly under-fits — the paper's key qualitative observation on these
// graphs), and short path lengths.

#ifndef DPKRON_DATASETS_AFFILIATION_H_
#define DPKRON_DATASETS_AFFILIATION_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace dpkron {

struct AffiliationOptions {
  uint32_t num_authors = 5000;
  uint32_t num_papers = 3000;
  // Paper sizes drawn from P(s) ∝ s^(−size_exponent), s ∈ [min, max].
  double size_exponent = 2.5;
  uint32_t min_paper_size = 2;
  uint32_t max_paper_size = 30;
  // Probability that an author slot is filled preferentially (by current
  // paper count) rather than uniformly. Controls degree-tail heaviness.
  double preferential_probability = 0.55;
};

// The co-authorship projection. Authors that never co-author remain
// isolated nodes (as in the raw arXiv snapshots before pruning).
Graph AffiliationGraph(const AffiliationOptions& options, Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_DATASETS_AFFILIATION_H_
