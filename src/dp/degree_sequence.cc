#include "src/dp/degree_sequence.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/dp/isotonic.h"
#include "src/dp/laplace_mechanism.h"
#include "src/graph/degree.h"

namespace dpkron {

std::vector<double> PrivatizeSortedDegrees(
    const std::vector<uint32_t>& sorted_degrees, double epsilon,
    uint32_t num_nodes, Rng& rng, const PrivateDegreeOptions& options) {
  DPKRON_CHECK_GT(epsilon, 0.0);
  std::vector<double> noisy(sorted_degrees.size());
  const double scale = kDegreeSequenceSensitivity / epsilon;
  for (size_t i = 0; i < sorted_degrees.size(); ++i) {
    noisy[i] = static_cast<double>(sorted_degrees[i]) + rng.NextLaplace(scale);
  }
  if (options.postprocess) {
    noisy = IsotonicRegression(noisy);
  }
  if (options.clamp_to_range) {
    const double max_degree =
        num_nodes > 0 ? static_cast<double>(num_nodes - 1) : 0.0;
    for (double& d : noisy) d = std::clamp(d, 0.0, max_degree);
  }
  return noisy;
}

std::vector<double> PrivateDegreeSequence(const Graph& graph, double epsilon,
                                          Rng& rng,
                                          const PrivateDegreeOptions& options) {
  return PrivatizeSortedDegrees(SortedDegreeVector(graph), epsilon,
                                graph.NumNodes(), rng, options);
}

}  // namespace dpkron
