#include "src/graph/graph.h"

#include <vector>

#include <gtest/gtest.h>
#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::MakeGraph;
using testing::PathGraph;

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, SingleEdge) {
  const Graph g = MakeGraph(2, {{0, 1}});
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, BuilderDropsSelfLoops) {
  const Graph g = MakeGraph(3, {{0, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, BuilderDeduplicatesBothOrientations) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 0}, {0, 1}, {2, 1}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphTest, NeighborsAreSorted) {
  const Graph g = MakeGraph(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}, {3, 2}});
  const auto neighbors = g.Neighbors(3);
  ASSERT_EQ(neighbors.size(), 5u);
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_LT(neighbors[i - 1], neighbors[i]);
  }
}

TEST(GraphTest, IsolatedNodesHaveNoNeighbors) {
  const Graph g = MakeGraph(5, {{0, 1}});
  for (Graph::NodeId u = 2; u < 5; ++u) {
    EXPECT_EQ(g.Degree(u), 0u);
    EXPECT_TRUE(g.Neighbors(u).empty());
  }
}

TEST(GraphTest, ForEachEdgeVisitsEachOnceOrdered) {
  const Graph g = CompleteGraph(5);
  uint64_t count = 0;
  g.ForEachEdge([&count](Graph::NodeId u, Graph::NodeId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 10u);
}

TEST(GraphTest, EdgesMatchesForEachEdge) {
  const Graph g = PathGraph(6);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(edges[i].first, i);
    EXPECT_EQ(edges[i].second, i + 1);
  }
}

TEST(GraphTest, HasEdgeNegativeCases) {
  const Graph g = PathGraph(4);
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST(GraphTest, CopyIsIndependent) {
  Graph g = PathGraph(3);
  Graph copy = g;
  g = CompleteGraph(4);
  EXPECT_EQ(copy.NumNodes(), 3u);
  EXPECT_EQ(copy.NumEdges(), 2u);
}

TEST(GraphTest, FromCsrAcceptsValidInput) {
  // Triangle 0-1-2.
  const Graph g = Graph::FromCsr({0, 2, 4, 6}, {1, 2, 0, 2, 0, 1});
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(GraphDeathTest, FromCsrRejectsSelfLoop) {
  EXPECT_DEATH(Graph::FromCsr({0, 2, 4}, {0, 1, 0, 1}), "self-loop");
}

TEST(GraphDeathTest, FromCsrRejectsUnsortedAdjacency) {
  EXPECT_DEATH(Graph::FromCsr({0, 2, 3, 4}, {2, 1, 0, 0}), "sorted");
}

TEST(GraphDeathTest, BuilderRejectsOutOfRangeNode) {
  GraphBuilder builder(3);
  EXPECT_DEATH(builder.AddEdge(0, 3), "CHECK");
}

TEST(GraphBuilderTest, ReusableAfterBuild) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const Graph first = builder.Build();
  EXPECT_EQ(first.NumEdges(), 1u);
  builder.AddEdge(2, 3);
  const Graph second = builder.Build();
  EXPECT_EQ(second.NumEdges(), 1u);
  EXPECT_TRUE(second.HasEdge(2, 3));
  EXPECT_FALSE(second.HasEdge(0, 1));
}

TEST(GraphBuilderTest, PendingEdgesCountsRawInsertions) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 1);  // loop dropped at the door
  EXPECT_EQ(builder.PendingEdges(), 2u);
}

TEST(GraphBuilderTest, LargeStarDegrees) {
  const uint32_t n = 10001;
  GraphBuilder builder(n);
  for (uint32_t v = 1; v < n; ++v) builder.AddEdge(0, v);
  const Graph g = builder.Build();
  EXPECT_EQ(g.Degree(0), n - 1);
  EXPECT_EQ(g.NumEdges(), uint64_t{n - 1});
}

}  // namespace
}  // namespace dpkron
