#include "src/kronfit/kronfit.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

TEST(PermutationStateTest, IdentityAndSwaps) {
  PermutationState sigma(4);
  for (uint32_t u = 0; u < 4; ++u) EXPECT_EQ(sigma.Position(u), u);
  sigma.SwapNodes(0, 3);
  EXPECT_EQ(sigma.Position(0), 3u);
  EXPECT_EQ(sigma.Position(3), 0u);
  EXPECT_EQ(sigma.NodeAt(3), 0u);
  EXPECT_EQ(sigma.NodeAt(0), 3u);
  sigma.SwapNodes(0, 3);
  for (uint32_t u = 0; u < 4; ++u) EXPECT_EQ(sigma.Position(u), u);
}

TEST(PermutationStateTest, ExplicitMappingValidated) {
  PermutationState sigma({2, 0, 1});
  EXPECT_EQ(sigma.Position(0), 2u);
  EXPECT_EQ(sigma.NodeAt(2), 0u);
}

TEST(PermutationStateDeathTest, RejectsNonPermutation) {
  EXPECT_DEATH(PermutationState({0, 0, 1}), "not a permutation");
}

TEST(DegreeGuidedInitTest, HighestDegreeGetsLowestPopcount) {
  const Graph g = PadWithIsolatedNodes(testing::StarGraph(5), 8);
  const PermutationState sigma = DegreeGuidedInit(g, 3);
  EXPECT_EQ(sigma.Position(0), 0u);  // center (degree 4) -> position 0
}

// The O(k²) lookup tables must reproduce the direct computation to the
// last bit — EXPECT_EQ on doubles, not EXPECT_NEAR. Sweeps several
// initiators (including the clamped-floor corner) and orders, with
// exhaustive position pairs at small k and a deterministic sample at
// larger k.
TEST(LikelihoodTest, TablePathMatchesDirectBitExactly) {
  const Initiator2 thetas[] = {
      {0.9, 0.5, 0.2}, {0.99, 0.55, 0.35}, {0.5, 0.5, 0.5},
      {1.0, 0.7, 0.0},  // c clamps to kThetaFloor
      {0.3, 0.9, 0.6},  // non-canonical a < c
  };
  for (const Initiator2& theta : thetas) {
    for (uint32_t k : {1u, 2u, 5u, 8u, 14u, 20u}) {
      const KronFitLikelihood model(theta, k);
      const uint32_t n = uint32_t{1} << std::min(k, 6u);
      Rng rng(k * 1000003u);
      for (uint32_t trial = 0; trial < (k <= 6 ? n * n : 2000u); ++trial) {
        uint32_t p, q;
        if (k <= 6) {
          p = trial / n;
          q = trial % n;
        } else {
          p = static_cast<uint32_t>(rng.NextBounded(uint64_t{1} << k));
          q = static_cast<uint32_t>(rng.NextBounded(uint64_t{1} << k));
        }
        ASSERT_EQ(model.EdgeTerm(p, q), model.EdgeTermDirect(p, q))
            << "k=" << k << " p=" << p << " q=" << q;
        const Gradient3 table = model.EdgeGradientTerm(p, q);
        const Gradient3 direct = model.EdgeGradientTermDirect(p, q);
        for (int i = 0; i < 3; ++i) {
          ASSERT_EQ(table[i], direct[i])
              << "component " << i << " k=" << k << " p=" << p << " q=" << q;
        }
      }
    }
  }
}

TEST(LikelihoodTest, EdgeTermValue) {
  const KronFitLikelihood model({0.9, 0.5, 0.2}, 2);
  // P(0,0) = 0.81.
  const double p = 0.81;
  EXPECT_NEAR(model.EdgeTerm(0, 0), std::log(p) + p + p * p / 2, 1e-12);
}

TEST(LikelihoodTest, NoEdgeTermMatchesDirectSummation) {
  // C(Θ) should equal Σ_{u<v} (P_uv + P_uv²/2) over all pairs.
  const Initiator2 theta{0.9, 0.5, 0.2};
  const uint32_t k = 4;
  const KronFitLikelihood model(theta, k);
  const EdgeProbability2 prob(theta, k);
  double direct = 0.0;
  const uint32_t n = 16;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      const double p = prob(u, v);
      direct += p + p * p / 2;
    }
  }
  EXPECT_NEAR(model.NoEdgeTerm(), direct, 1e-9);
}

TEST(LikelihoodTest, SwapDeltaMatchesRecomputation) {
  Rng rng(99);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 5, rng);
  const KronFitLikelihood model({0.85, 0.55, 0.25}, 5);
  PermutationState sigma(32);
  // Randomize sigma a bit.
  for (int i = 0; i < 50; ++i) {
    sigma.SwapNodes(uint32_t(rng.NextBounded(32)),
                    uint32_t(rng.NextBounded(32)));
  }
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t u = uint32_t(rng.NextBounded(32));
    const uint32_t v = uint32_t(rng.NextBounded(32));
    const double before = model.LogLikelihood(g, sigma);
    const double delta = model.SwapDelta(g, sigma, u, v);
    PermutationState swapped = sigma;
    swapped.SwapNodes(u, v);
    const double after = model.LogLikelihood(g, swapped);
    EXPECT_NEAR(delta, after - before, 1e-8);
  }
}

TEST(LikelihoodTest, EdgeGradientMatchesFiniteDifferences) {
  Rng rng(7);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 5, rng);
  const Initiator2 theta{0.8, 0.5, 0.3};
  const uint32_t k = 5;
  PermutationState sigma(32);
  const KronFitLikelihood model(theta, k);
  const Gradient3 analytic = model.EdgeGradient(g, sigma);

  const double h = 1e-6;
  auto edge_sum = [&](const Initiator2& t) {
    const KronFitLikelihood m(t, k);
    double sum = 0.0;
    g.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
      sum += m.EdgeTerm(sigma.Position(u), sigma.Position(v));
    });
    return sum;
  };
  const double base = edge_sum(theta);
  EXPECT_NEAR(analytic[0],
              (edge_sum({theta.a + h, theta.b, theta.c}) - base) / h,
              1e-3 * std::fabs(analytic[0]) + 1e-3);
  EXPECT_NEAR(analytic[1],
              (edge_sum({theta.a, theta.b + h, theta.c}) - base) / h,
              1e-3 * std::fabs(analytic[1]) + 1e-3);
  EXPECT_NEAR(analytic[2],
              (edge_sum({theta.a, theta.b, theta.c + h}) - base) / h,
              1e-3 * std::fabs(analytic[2]) + 1e-3);
}

TEST(LikelihoodTest, NoEdgeGradientMatchesFiniteDifferences) {
  const Initiator2 theta{0.8, 0.5, 0.3};
  const uint32_t k = 9;
  const KronFitLikelihood model(theta, k);
  const Gradient3 analytic = model.NoEdgeGradient();
  const double h = 1e-7;
  auto value = [&](const Initiator2& t) {
    return KronFitLikelihood(t, k).NoEdgeTerm();
  };
  const double base = value(theta);
  EXPECT_NEAR(analytic[0],
              (value({theta.a + h, theta.b, theta.c}) - base) / h,
              1e-4 * std::fabs(analytic[0]) + 1e-4);
  EXPECT_NEAR(analytic[1],
              (value({theta.a, theta.b + h, theta.c}) - base) / h,
              1e-4 * std::fabs(analytic[1]) + 1e-4);
  EXPECT_NEAR(analytic[2],
              (value({theta.a, theta.b, theta.c + h}) - base) / h,
              1e-4 * std::fabs(analytic[2]) + 1e-4);
}

TEST(PadWithIsolatedNodesTest, PreservesEdges) {
  const Graph g = testing::CycleGraph(5);
  const Graph padded = PadWithIsolatedNodes(g, 8);
  EXPECT_EQ(padded.NumNodes(), 8u);
  EXPECT_EQ(padded.NumEdges(), 5u);
  EXPECT_EQ(padded.Degree(7), 0u);
}

TEST(KronFitTest, RecoversDensityOnSyntheticGraph) {
  // Full KronFit on a small synthetic SKG: we expect rough recovery —
  // the entry sum (edge-count driver) should land near the truth and the
  // ordering a > b > c should hold.
  const Initiator2 truth{0.9, 0.5, 0.2};
  const uint32_t k = 9;  // 512 nodes
  Rng rng(12345);
  const Graph g = SampleSkg(truth, k, rng);
  KronFitOptions options;
  options.iterations = 40;
  const KronFitResult fit = FitKronFit(g, rng, options);
  EXPECT_EQ(fit.k, k);
  EXPECT_TRUE(fit.theta.IsValid());
  EXPECT_NEAR(fit.theta.EntrySum(), truth.EntrySum(), 0.25);
  EXPECT_GT(fit.theta.a, fit.theta.b);
  EXPECT_GT(fit.theta.b, fit.theta.c);
}

TEST(KronFitTest, LikelihoodImprovesOverInit) {
  const Initiator2 truth{0.95, 0.45, 0.25};
  const uint32_t k = 8;
  Rng rng(777);
  const Graph g = SampleSkg(truth, k, rng);
  KronFitOptions options;
  options.iterations = 30;
  options.init = {0.6, 0.6, 0.6};
  const KronFitResult fit = FitKronFit(g, rng, options);

  const KronFitLikelihood init_model(options.init, k);
  PermutationState sigma = DegreeGuidedInit(g, k);
  const double init_ll = init_model.LogLikelihood(g, sigma);
  EXPECT_GT(fit.log_likelihood, init_ll);
}

TEST(KronFitTest, DeterministicGivenSeed) {
  Rng g_rng(55);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 8, g_rng);
  KronFitOptions options;
  options.iterations = 10;
  Rng rng1(42), rng2(42);
  const KronFitResult r1 = FitKronFit(g, rng1, options);
  const KronFitResult r2 = FitKronFit(g, rng2, options);
  EXPECT_DOUBLE_EQ(r1.theta.a, r2.theta.a);
  EXPECT_DOUBLE_EQ(r1.theta.b, r2.theta.b);
  EXPECT_DOUBLE_EQ(r1.theta.c, r2.theta.c);
}

}  // namespace
}  // namespace dpkron
