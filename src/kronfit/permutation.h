// Node-to-Kronecker-position permutations for KronFit (§3.3).
//
// The SKG likelihood P(G | Θ) marginalizes over the unknown alignment σ
// between observed nodes and Kronecker node ids. KronFit samples σ with a
// Metropolis swap chain; this header provides the permutation state and
// the degree-guided initialization heuristic.

#ifndef DPKRON_KRONFIT_PERMUTATION_H_
#define DPKRON_KRONFIT_PERMUTATION_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"

namespace dpkron {

// σ and σ⁻¹ with O(1) swap application.
class PermutationState {
 public:
  // Identity permutation on n elements.
  explicit PermutationState(uint32_t n);
  // Takes an explicit mapping node -> position (must be a permutation).
  explicit PermutationState(std::vector<uint32_t> sigma);

  uint32_t size() const { return static_cast<uint32_t>(sigma_.size()); }

  // Position of node u in the Kronecker id space.
  uint32_t Position(uint32_t u) const { return sigma_[u]; }
  // Node occupying Kronecker position p.
  uint32_t NodeAt(uint32_t p) const { return inverse_[p]; }

  // Exchanges the positions of nodes u and v.
  void SwapNodes(uint32_t u, uint32_t v);

  const std::vector<uint32_t>& sigma() const { return sigma_; }

 private:
  std::vector<uint32_t> sigma_;    // node -> position
  std::vector<uint32_t> inverse_;  // position -> node
};

// Degree-guided initial alignment: the SKG expected degree of Kronecker
// id p is decreasing in popcount(p) (given a + b ≥ b + c), so the highest-
// degree observed nodes are mapped to the lowest-popcount ids. A good
// initial σ shortens the Metropolis burn-in considerably.
PermutationState DegreeGuidedInit(GraphView graph, uint32_t k);

// Applies `swaps` uniformly random transpositions to sigma. The
// multi-chain Metropolis sampler uses this to overdisperse chain starts:
// every chain begins at the degree-guided init jittered by its own RNG
// stream, so chains decorrelate faster than identical starts would.
void PerturbUniform(PermutationState* sigma, uint64_t swaps, Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_KRONFIT_PERMUTATION_H_
