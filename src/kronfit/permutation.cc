#include "src/kronfit/permutation.h"

#include <algorithm>
#include <numeric>

#include "src/common/macros.h"

namespace dpkron {

PermutationState::PermutationState(uint32_t n)
    : sigma_(n), inverse_(n) {
  std::iota(sigma_.begin(), sigma_.end(), 0u);
  std::iota(inverse_.begin(), inverse_.end(), 0u);
}

PermutationState::PermutationState(std::vector<uint32_t> sigma)
    : sigma_(std::move(sigma)), inverse_(sigma_.size(), UINT32_MAX) {
  for (uint32_t u = 0; u < sigma_.size(); ++u) {
    DPKRON_CHECK_LT(sigma_[u], sigma_.size());
    DPKRON_CHECK_MSG(inverse_[sigma_[u]] == UINT32_MAX,
                     "sigma is not a permutation");
    inverse_[sigma_[u]] = u;
  }
}

void PermutationState::SwapNodes(uint32_t u, uint32_t v) {
  DPKRON_CHECK_LT(u, sigma_.size());
  DPKRON_CHECK_LT(v, sigma_.size());
  std::swap(sigma_[u], sigma_[v]);
  inverse_[sigma_[u]] = u;
  inverse_[sigma_[v]] = v;
}

PermutationState DegreeGuidedInit(GraphView graph, uint32_t k) {
  const uint32_t n = graph.NumNodes();
  DPKRON_CHECK_LE(n, uint64_t{1} << k);
  DPKRON_CHECK_EQ(n, uint64_t{1} << k);  // callers pad the graph to 2^k

  // Nodes by degree, descending.
  std::vector<uint32_t> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0u);
  std::sort(nodes.begin(), nodes.end(), [&graph](uint32_t x, uint32_t y) {
    const uint32_t dx = graph.Degree(x), dy = graph.Degree(y);
    return dx != dy ? dx > dy : x < y;
  });

  // Kronecker positions by popcount, ascending (ties by id).
  std::vector<uint32_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0u);
  std::sort(positions.begin(), positions.end(), [](uint32_t x, uint32_t y) {
    const int px = __builtin_popcount(x), py = __builtin_popcount(y);
    return px != py ? px < py : x < y;
  });

  std::vector<uint32_t> sigma(n);
  for (uint32_t rank = 0; rank < n; ++rank) {
    sigma[nodes[rank]] = positions[rank];
  }
  return PermutationState(std::move(sigma));
}

void PerturbUniform(PermutationState* sigma, uint64_t swaps, Rng& rng) {
  const uint32_t n = sigma->size();
  if (n < 2) return;
  for (uint64_t i = 0; i < swaps; ++i) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    sigma->SwapNodes(u, v);
  }
}

}  // namespace dpkron
