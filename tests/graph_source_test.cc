// GraphSource resolution and loading: registry names, edge-list files,
// .dpkb binaries, the sidecar cache option, and the registry's
// generator-carrying redesign.

#include "src/datasets/graph_source.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/graph_io.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphSourceTest, ResolvesRegistryName) {
  const auto source = ResolveGraphSource("AS20-like");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value().kind, GraphSourceKind::kGenerator);
  ASSERT_NE(source.value().info, nullptr);
  EXPECT_EQ(source.value().info->paper_name, "AS20");
}

TEST(GraphSourceTest, ResolvesDpkbPathAsBinary) {
  const std::string path = TempPath("resolve.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(testing::PetersenGraph(), path).ok());
  const auto source = ResolveGraphSource(path);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value().kind, GraphSourceKind::kBinary);
  EXPECT_EQ(source.value().info, nullptr);
  std::remove(path.c_str());

  // Same fail-fast contract as edge lists: a missing .dpkb path is a
  // resolution error, not a load failure deep inside a scenario.
  const auto missing = ResolveGraphSource("/some/dir/graph.dpkb");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(GraphSourceTest, ResolvesExistingFileAsEdgeList) {
  const std::string path = TempPath("source.edges");
  std::ofstream(path) << "0 1\n";
  const auto source = ResolveGraphSource(path);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value().kind, GraphSourceKind::kEdgeList);
  std::remove(path.c_str());
}

TEST(GraphSourceTest, UnknownReferenceListsRegistry) {
  const auto source = ResolveGraphSource("no-such-dataset");
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kNotFound);
  EXPECT_NE(source.status().message().find("CA-GrQC-like"),
            std::string::npos);
}

TEST(GraphSourceTest, KindNames) {
  EXPECT_STREQ(GraphSourceKindName(GraphSourceKind::kGenerator), "generator");
  EXPECT_STREQ(GraphSourceKindName(GraphSourceKind::kEdgeList), "edge-list");
  EXPECT_STREQ(GraphSourceKindName(GraphSourceKind::kBinary), "binary");
}

TEST(GraphSourceTest, GeneratorLoadMatchesMakeDataset) {
  Rng rng_a(42), rng_b(42);
  const auto loaded = LoadGraphRef("AS20-like", rng_a);
  ASSERT_TRUE(loaded.ok());
  const Graph direct = MakeDataset("AS20-like", rng_b);
  EXPECT_EQ(loaded.value().Edges(), direct.Edges());
}

TEST(GraphSourceTest, EdgeListLoadIgnoresRng) {
  const std::string path = TempPath("load.edges");
  std::ofstream(path) << "0 1\n1 2\n";
  Rng rng(7);
  const uint64_t before = [&] {
    Rng probe(7);
    return probe.NextU64();
  }();
  const auto loaded = LoadGraphRef(path, rng);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumEdges(), 2u);
  EXPECT_EQ(rng.NextU64(), before);  // stream untouched by a file load
  std::remove(path.c_str());
}

TEST(GraphSourceTest, BinaryLoad) {
  const std::string path = TempPath("load.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(testing::PetersenGraph(), path).ok());
  Rng rng(1);
  const auto loaded = LoadGraphRef(path, rng);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), 10u);
  EXPECT_EQ(loaded.value().NumEdges(), 15u);
  std::remove(path.c_str());
}

TEST(GraphSourceTest, CacheOptionCreatesSidecar) {
  const std::string path = TempPath("cache_opt.edges");
  std::ofstream(path) << "0 1\n1 2\n2 0\n";
  const std::string cache = BinaryCachePath(path);
  std::remove(cache.c_str());

  Rng rng(1);
  GraphLoadOptions options;
  options.use_cache = true;
  const auto first = LoadGraphRef(path, rng, options);
  ASSERT_TRUE(first.ok());
  std::ifstream sidecar(cache);
  EXPECT_TRUE(sidecar.good());
  const auto second = LoadGraphRef(path, rng, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().Edges(), second.value().Edges());

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(GraphSourceTest, RegistryEntriesCarryGenerators) {
  for (const DatasetInfo& info : PaperDatasets()) {
    EXPECT_NE(info.generator, nullptr) << info.name;
    EXPECT_EQ(FindDataset(info.name), &info);
  }
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

}  // namespace
}  // namespace dpkron
