// Initiator matrices for the (stochastic) Kronecker graph model (§3.1–3.2).
//
// The paper — following Gleich & Owen — works with the symmetric 2×2
// initiator
//       Θ = [ a b ]
//           [ b c ],   a, b, c ∈ [0,1], a ≥ c,
// whose k-th Kronecker power defines a probability on every node pair of a
// 2^k-node graph. A general N1×N1 initiator type is provided for the model
// definition and the sampler; the estimators are 2×2-specific like the
// paper's.

#ifndef DPKRON_SKG_INITIATOR_H_
#define DPKRON_SKG_INITIATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpkron {

// Symmetric 2×2 initiator (a, b, c).
struct Initiator2 {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  // All entries in [0,1]?
  bool IsValid() const;

  // Enforces the paper's canonical form a ≥ c by swapping if needed
  // (relabeling 0↔1 on every digit yields an isomorphic distribution).
  Initiator2 Canonical() const;

  // Clamps entries into [lo, hi] ⊆ [0,1]; the optimizers use this to
  // project iterates back into the box.
  Initiator2 Clamped(double lo = 0.0, double hi = 1.0) const;

  // Sum of all four entries: a + 2b + c.
  double EntrySum() const { return a + 2.0 * b + c; }

  std::string ToString() const;  // "[a b; b c]" with 4 decimals
};

// L∞ distance between two initiators (used in tests/benches).
double MaxAbsDifference(const Initiator2& x, const Initiator2& y);

// General N1×N1 initiator, row-major. Used by the model/sampler layer.
class InitiatorN {
 public:
  // Validates entries ∈ [0,1]; size must be dim*dim.
  static Result<InitiatorN> Create(uint32_t dim, std::vector<double> entries);

  // Conversion from the symmetric 2×2 parameterization.
  static InitiatorN From2x2(const Initiator2& theta);

  uint32_t dim() const { return dim_; }
  double At(uint32_t i, uint32_t j) const { return entries_[i * dim_ + j]; }
  double EntrySum() const;
  double TraceSum() const;  // Σ_i θ_ii
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  InitiatorN(uint32_t dim, std::vector<double> entries)
      : dim_(dim), entries_(std::move(entries)) {}
  uint32_t dim_;
  std::vector<double> entries_;
};

}  // namespace dpkron

#endif  // DPKRON_SKG_INITIATOR_H_
