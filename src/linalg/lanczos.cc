#include "src/linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/linalg/spmv.h"

namespace dpkron {
namespace {

inline double Sign(double a, double b) { return b >= 0.0 ? std::fabs(a) : -std::fabs(a); }

// sqrt(a^2 + b^2) without destructive overflow.
inline double Pythag(double a, double b) {
  const double absa = std::fabs(a), absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

}  // namespace

TridiagonalEigenResult TridiagonalEigen(std::vector<double> diag,
                                        std::vector<double> offdiag) {
  const size_t m = diag.size();
  DPKRON_CHECK_GT(m, 0u);
  DPKRON_CHECK_EQ(offdiag.size(), m - 1);

  // e[i] holds the subdiagonal shifted up by one (NR convention).
  std::vector<double> e(m, 0.0);
  for (size_t i = 1; i < m; ++i) e[i - 1] = offdiag[i - 1];
  e[m - 1] = 0.0;

  // z: eigenvector accumulation, starts as identity (column-major access
  // z[row*m + col]; column col will hold eigenvector col).
  std::vector<double> z(m * m, 0.0);
  for (size_t i = 0; i < m; ++i) z[i * m + i] = 1.0;

  for (size_t l = 0; l < m; ++l) {
    int iterations = 0;
    size_t target = l;
    while (true) {
      // Find a negligible subdiagonal element to split the matrix.
      size_t split = target;
      for (; split + 1 < m; ++split) {
        const double dd =
            std::fabs(diag[split]) + std::fabs(diag[split + 1]);
        if (std::fabs(e[split]) <= 1e-15 * dd) break;
      }
      if (split == target) break;  // eigenvalue target converged

      DPKRON_CHECK_MSG(++iterations <= 50, "TQLI failed to converge");
      // Form implicit shift from the 2x2 corner.
      double g = (diag[target + 1] - diag[target]) / (2.0 * e[target]);
      double r = Pythag(g, 1.0);
      g = diag[split] - diag[target] + e[target] / (g + Sign(r, g));
      double s = 1.0, c = 1.0, p = 0.0;
      for (size_t i = split; i-- > target;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = Pythag(f, g);
        e[i + 1] = r;
        if (r == 0.0) {  // Recover from underflow.
          diag[i + 1] -= p;
          e[split] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = diag[i + 1] - p;
        r = (diag[i] - g) * s + 2.0 * c * b;
        p = s * r;
        diag[i + 1] = g + p;
        g = c * r - b;
        // Accumulate the rotation into the eigenvector matrix.
        for (size_t row = 0; row < m; ++row) {
          f = z[row * m + (i + 1)];
          z[row * m + (i + 1)] = s * z[row * m + i] + c * f;
          z[row * m + i] = c * z[row * m + i] - s * f;
        }
      }
      if (r == 0.0 && split > target) continue;
      diag[target] -= p;
      e[target] = g;
      e[split] = 0.0;
    }
  }

  // Repackage: eigenvalue i with eigenvector row i.
  TridiagonalEigenResult result;
  result.eigenvalues = diag;
  result.eigenvectors.resize(m * m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t row = 0; row < m; ++row) {
      result.eigenvectors[i * m + row] = z[row * m + i];
    }
  }
  return result;
}

namespace {

// Runs Lanczos with full reorthogonalization; returns all Ritz values.
std::vector<double> RitzValues(GraphView graph, uint32_t iterations,
                               Rng& rng) {
  const uint32_t n = graph.NumNodes();
  const uint32_t m = std::min(iterations, n);
  std::vector<std::vector<double>> basis;  // v_1 .. v_m
  basis.reserve(m);

  std::vector<double> v(n);
  for (double& value : v) value = rng.NextGaussian();
  Scale(1.0 / Norm2(v), &v);
  basis.push_back(v);

  std::vector<double> alpha, beta;
  std::vector<double> w(n);
  for (uint32_t j = 0; j < m; ++j) {
    AdjacencyMatVec(graph, basis[j], &w);
    const double a = Dot(basis[j], w);
    alpha.push_back(a);
    Axpy(-a, basis[j], &w);
    if (j > 0) Axpy(-beta[j - 1], basis[j - 1], &w);
    // Full reorthogonalization (two passes of classical Gram–Schmidt).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& q : basis) Axpy(-Dot(q, w), q, &w);
    }
    const double b = Norm2(w);
    if (j + 1 == m) break;
    if (b < 1e-12) {
      // Invariant subspace exhausted: restart with a random vector
      // orthogonal to the current basis.
      for (double& value : w) value = rng.NextGaussian();
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : basis) Axpy(-Dot(q, w), q, &w);
      }
      const double wn = Norm2(w);
      if (wn < 1e-12) break;  // Full spectrum captured.
      Scale(1.0 / wn, &w);
      beta.push_back(0.0);
    } else {
      Scale(1.0 / b, &w);
      beta.push_back(b);
    }
    basis.push_back(w);
  }

  TridiagonalEigenResult eigen = TridiagonalEigen(
      alpha, std::vector<double>(beta.begin(), beta.end()));
  return eigen.eigenvalues;
}

}  // namespace

std::vector<double> TopEigenvalues(GraphView graph, uint32_t k, Rng& rng,
                                   const LanczosOptions& options) {
  DPKRON_CHECK_GE(k, 1u);
  DPKRON_CHECK_LE(k, graph.NumNodes());
  const uint32_t iterations =
      options.iterations > 0 ? options.iterations
                             : std::min(graph.NumNodes(), 3 * k + 30);
  std::vector<double> ritz = RitzValues(graph, iterations, rng);
  std::sort(ritz.begin(), ritz.end(), [](double a, double b) {
    return std::fabs(a) > std::fabs(b);
  });
  ritz.resize(std::min<size_t>(k, ritz.size()));
  return ritz;
}

std::vector<double> TopSingularValues(GraphView graph, uint32_t k,
                                      Rng& rng,
                                      const LanczosOptions& options) {
  std::vector<double> eigenvalues = TopEigenvalues(graph, k, rng, options);
  for (double& value : eigenvalues) value = std::fabs(value);
  std::sort(eigenvalues.rbegin(), eigenvalues.rend());
  return eigenvalues;
}

}  // namespace dpkron
