#include "src/dp/private_features.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

TEST(PrivateFeaturesTest, ChargesBudgetPerAlgorithmOne) {
  Rng rng(1);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 7, rng);
  PrivacyBudget budget(0.2, 0.01);
  const auto result = ComputePrivateFeatures(g, 0.2, 0.01, budget, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(budget.epsilon_spent(), 0.2, 1e-12);
  EXPECT_NEAR(budget.delta_spent(), 0.01, 1e-12);
  ASSERT_EQ(budget.ledger().size(), 2u);
  EXPECT_NEAR(budget.ledger()[0].epsilon, 0.1, 1e-12);  // degrees: ε/2
  EXPECT_NEAR(budget.ledger()[1].epsilon, 0.1, 1e-12);  // triangles: ε/2
  EXPECT_NEAR(budget.ledger()[1].delta, 0.01, 1e-12);
}

TEST(PrivateFeaturesTest, RefusedWhenBudgetInsufficient) {
  Rng rng(2);
  const Graph g = testing::CycleGraph(16);
  PrivacyBudget budget(0.1, 0.01);
  const auto result = ComputePrivateFeatures(g, 0.2, 0.01, budget, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PrivateFeaturesTest, RejectsInvalidParameters) {
  Rng rng(3);
  const Graph g = testing::CycleGraph(16);
  EXPECT_FALSE(ComputePrivateFeatures(g, -1.0, 0.01, rng).ok());
  EXPECT_FALSE(ComputePrivateFeatures(g, 0.2, 0.0, rng).ok());
  EXPECT_FALSE(ComputePrivateFeatures(g, 0.2, 1.5, rng).ok());
}

TEST(PrivateFeaturesTest, ClampedFeaturesRespectFloor) {
  Rng rng(4);
  // Sparse graph + tiny epsilon: raw noisy counts go negative; clamped
  // outputs must sit at the floor.
  const Graph g = testing::PathGraph(32);
  const auto result = ComputePrivateFeatures(g, 0.01, 0.001, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().features.edges, 1.0);
  EXPECT_GE(result.value().features.hairpins, 1.0);
  EXPECT_GE(result.value().features.triangles, 1.0);
  EXPECT_GE(result.value().features.tripins, 1.0);
}

TEST(PrivateFeaturesTest, AccurateAtHighEpsilon) {
  Rng rng(5);
  const Graph g = SampleSkg({0.95, 0.55, 0.25}, 10, rng);
  const GraphFeatures exact = ComputeFeatures(g);
  const auto result = ComputePrivateFeatures(g, 50.0, 0.01, rng);
  ASSERT_TRUE(result.ok());
  const GraphFeatures& f = result.value().features;
  EXPECT_NEAR(f.edges, exact.edges, 0.02 * exact.edges);
  EXPECT_NEAR(f.hairpins, exact.hairpins, 0.05 * exact.hairpins);
  EXPECT_NEAR(f.triangles, exact.triangles, 0.10 * exact.triangles + 50);
  EXPECT_NEAR(f.tripins, exact.tripins, 0.10 * exact.tripins);
}

TEST(PrivateFeaturesTest, PaperEpsilonGivesUsableFeatures) {
  // (ε, δ) = (0.2, 0.01), the paper's setting, on a graph with the
  // density of the paper's co-authorship networks (mean degree ≈ 10;
  // relative degree-noise bias shrinks with density).
  Rng rng(6);
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, 12, rng);
  const GraphFeatures exact = ComputeFeatures(g);
  const auto result = ComputePrivateFeatures(g, 0.2, 0.01, rng);
  ASSERT_TRUE(result.ok());
  const GraphFeatures& f = result.value().features;
  // Degrees dominate E and H; they are very accurate even at ε/2 = 0.1.
  EXPECT_NEAR(f.edges, exact.edges, 0.05 * exact.edges);
  EXPECT_NEAR(f.hairpins, exact.hairpins, 0.15 * exact.hairpins);
}

TEST(PrivateFeaturesTest, DeterministicGivenSeed) {
  Rng g_rng(7);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 8, g_rng);
  Rng rng1(99), rng2(99);
  const auto r1 = ComputePrivateFeatures(g, 0.2, 0.01, rng1);
  const auto r2 = ComputePrivateFeatures(g, 0.2, 0.01, rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1.value().features.edges, r2.value().features.edges);
  EXPECT_DOUBLE_EQ(r1.value().features.triangles,
                   r2.value().features.triangles);
}

TEST(PrivateFeaturesTest, RawAndClampedDifferOnlyByFloor) {
  Rng rng(8);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, rng);
  const auto result = ComputePrivateFeatures(g, 1.0, 0.01, rng);
  ASSERT_TRUE(result.ok());
  const auto& raw = result.value().raw;
  const auto& clamped = result.value().features;
  EXPECT_DOUBLE_EQ(clamped.edges, std::max(raw.edges, 1.0));
  EXPECT_DOUBLE_EQ(clamped.triangles, std::max(raw.triangles, 1.0));
}

TEST(ClampFeaturesTest, Pointwise) {
  GraphFeatures f;
  f.edges = -3.0;
  f.hairpins = 0.5;
  f.triangles = 100.0;
  f.tripins = 1.0;
  const GraphFeatures clamped = ClampFeatures(f, 1.0);
  EXPECT_DOUBLE_EQ(clamped.edges, 1.0);
  EXPECT_DOUBLE_EQ(clamped.hairpins, 1.0);
  EXPECT_DOUBLE_EQ(clamped.triangles, 100.0);
  EXPECT_DOUBLE_EQ(clamped.tripins, 1.0);
}

}  // namespace
}  // namespace dpkron
