#include "src/datasets/registry.h"

#include "src/common/macros.h"
#include "src/datasets/affiliation.h"
#include "src/datasets/preferential_attachment.h"
#include "src/skg/sampler.h"

namespace dpkron {

Graph CaGrQcLike(Rng& rng) {
  AffiliationOptions options;
  options.num_authors = 5242;
  options.num_papers = 2700;
  options.size_exponent = 2.5;
  options.min_paper_size = 2;
  options.max_paper_size = 30;
  options.preferential_probability = 0.55;
  return AffiliationGraph(options, rng);
}

Graph CaHepThLike(Rng& rng) {
  AffiliationOptions options;
  options.num_authors = 9877;
  options.num_papers = 4550;
  options.size_exponent = 2.5;
  options.min_paper_size = 2;
  options.max_paper_size = 30;
  options.preferential_probability = 0.55;
  return AffiliationGraph(options, rng);
}

Graph As20Like(Rng& rng) {
  PreferentialAttachmentOptions options;
  options.num_nodes = 6474;
  options.edges_per_node = 4;
  return PreferentialAttachmentGraph(options, rng);
}

Graph SyntheticKronecker(Rng& rng) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kExact;
  return SampleSkg(kSyntheticTrueTheta, kSyntheticK, rng, options);
}

const std::vector<DatasetInfo>& PaperDatasets() {
  static const std::vector<DatasetInfo>& datasets =
      *new std::vector<DatasetInfo>{
          {"CA-GrQC-like", "CA-GrQC", "affiliation", 5242, 28980,
           /*kronfit=*/{0.999, 0.245, 0.691},
           /*kronmom=*/{1.000, 0.4674, 0.2790},
           /*private=*/{1.000, 0.4618, 0.2930},
           /*generator=*/&CaGrQcLike},
          {"CA-HepTh-like", "CA-HepTh", "affiliation", 9877, 51971,
           /*kronfit=*/{0.999, 0.271, 0.587},
           /*kronmom=*/{1.000, 0.4012, 0.3789},
           /*private=*/{1.000, 0.4048, 0.3720},
           /*generator=*/&CaHepThLike},
          {"AS20-like", "AS20", "preferential", 6474, 26467,
           /*kronfit=*/{0.987, 0.571, 0.049},
           /*kronmom=*/{1.000, 0.6300, 0.000},
           /*private=*/{1.000, 0.6286, 0.000},
           /*generator=*/&As20Like},
          {"Synthetic-SKG", "Synthetic Kronecker", "kronecker", 16384, 0,
           /*kronfit=*/{0.9523, 0.4743, 0.2493},
           /*kronmom=*/{0.9894, 0.5396, 0.2388},
           /*private=*/{0.9924, 0.5343, 0.2466},
           /*generator=*/&SyntheticKronecker},
      };
  return datasets;
}

const DatasetInfo* FindDataset(const std::string& name) {
  for (const DatasetInfo& info : PaperDatasets()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Graph MakeDataset(const std::string& name, Rng& rng) {
  const DatasetInfo* info = FindDataset(name);
  DPKRON_CHECK_MSG(info != nullptr && info->generator != nullptr,
                   ("unknown dataset: " + name).c_str());
  return info->generator(rng);
}

}  // namespace dpkron
