// GraphView — the zero-copy CSR seam: view/Graph equivalence, raw-span
// backings, the shared fingerprint memo, PassCounter accounting, the
// fused node-stats kernel, and the pass-plan pin on
// ReleasePipeline::Compute (the regression alarm for anyone un-fusing
// the degree/triangle/clustering family back into separate traversals).

#include "src/graph/graph_view.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/core/release.h"
#include "src/graph/degree.h"
#include "src/graph/node_stats.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::MakeGraph;
using testing::PathGraph;
using testing::PetersenGraph;
using testing::StarGraph;

TEST(GraphViewTest, DefaultViewIsTheEmptyGraph) {
  const GraphView view;
  EXPECT_EQ(view.NumNodes(), 0u);
  EXPECT_EQ(view.NumEdges(), 0u);
  EXPECT_TRUE(view.Edges().empty());
  ASSERT_EQ(view.Offsets().size(), 1u);  // CSR shape invariant: n + 1
  EXPECT_EQ(view.Offsets()[0], 0u);
}

TEST(GraphViewTest, ViewMatchesItsGraph) {
  const Graph g = PetersenGraph();
  const GraphView view = g;  // the implicit conversion every kernel uses
  EXPECT_EQ(view.NumNodes(), g.NumNodes());
  EXPECT_EQ(view.NumEdges(), g.NumEdges());
  for (Graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(view.Degree(u), g.Degree(u));
    const auto expected = g.Neighbors(u);
    const auto actual = view.Neighbors(u);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]);
    }
  }
  EXPECT_TRUE(view.HasEdge(0, 1));
  EXPECT_FALSE(view.HasEdge(0, 2));
  EXPECT_EQ(view.Edges(), g.Edges());
}

TEST(GraphViewTest, RawSpanBackingIsEquivalentToTheGraph) {
  const Graph g = CompleteGraph(5);
  // The MmapGraph shape: bare arrays, no Graph in sight.
  std::vector<uint32_t> offsets(g.Offsets().begin(), g.Offsets().end());
  std::vector<Graph::NodeId> adjacency(g.Adjacency().begin(),
                                       g.Adjacency().end());
  const GraphView view({offsets.data(), offsets.size()},
                       {adjacency.data(), adjacency.size()},
                       /*fingerprint_memo=*/nullptr);
  EXPECT_EQ(view.NumNodes(), g.NumNodes());
  EXPECT_EQ(view.NumEdges(), g.NumEdges());
  EXPECT_EQ(view.Edges(), g.Edges());
  // No memo: the digest is recomputed per call, and must still equal the
  // Graph's — same bytes, same fingerprint (the StatCache key contract).
  EXPECT_EQ(view.ContentFingerprint(), g.ContentFingerprint());
}

TEST(GraphViewTest, FingerprintMemoIsSharedAndTrusted) {
  const Graph g = PetersenGraph();
  // Whichever side computes first serves both: the view's digest lands
  // in the Graph's memo cell.
  const GraphView view = g;
  const uint64_t digest = view.ContentFingerprint();
  EXPECT_EQ(digest, g.ContentFingerprint());
  EXPECT_NE(digest, 0u);

  // A pre-seeded memo is trusted verbatim — the MmapGraph contract,
  // where the cell holds the .dpkb header checksum and the payload is
  // never re-hashed on the fast path. Seed a sentinel and observe it
  // served as-is.
  std::vector<uint32_t> offsets(g.Offsets().begin(), g.Offsets().end());
  std::vector<Graph::NodeId> adjacency(g.Adjacency().begin(),
                                       g.Adjacency().end());
  std::atomic<uint64_t> memo{0xfeedfacecafebeefull};
  const GraphView seeded({offsets.data(), offsets.size()},
                         {adjacency.data(), adjacency.size()}, &memo);
  EXPECT_EQ(seeded.ContentFingerprint(), 0xfeedfacecafebeefull);

  // An unseeded (0) memo computes once and memoizes.
  std::atomic<uint64_t> cold{0};
  const GraphView lazy({offsets.data(), offsets.size()},
                       {adjacency.data(), adjacency.size()}, &cold);
  EXPECT_EQ(lazy.ContentFingerprint(), digest);
  EXPECT_EQ(cold.load(), digest);
}

TEST(GraphViewTest, PassCounterRecordsOnePassPerTraversal) {
  const Graph g = PetersenGraph();
  PassCounter passes;
  const GraphView view = GraphView(g).WithPassCounter(&passes);

  (void)DegreeVector(view);
  (void)DegreeVector(view);
  (void)MaxDegree(view);
  (void)CountTriangles(view);

  EXPECT_EQ(passes.count("degree_vector"), 2u);
  EXPECT_EQ(passes.count("max_degree"), 1u);
  EXPECT_EQ(passes.count("triangles"), 1u);
  EXPECT_EQ(passes.count("never_ran"), 0u);
  EXPECT_EQ(passes.total(), 4u);

  const auto snapshot = passes.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);  // label-ordered
  EXPECT_EQ(snapshot[0].first, "degree_vector");
  EXPECT_EQ(snapshot[0].second, 2u);

  // A plain copy of the view drops nothing; a counter-free view records
  // nothing (CountPass on null is the common production path).
  const GraphView unattached = g;
  (void)DegreeVector(unattached);
  EXPECT_EQ(passes.count("degree_vector"), 2u);
}

TEST(NodeStatsTest, FusedPassMatchesTheUnfusedKernels) {
  const Graph graphs[] = {PetersenGraph(), CompleteGraph(7), StarGraph(9),
                          PathGraph(6), MakeGraph(1, {}), Graph()};
  for (const Graph& g : graphs) {
    const NodeStats fused = ComputeNodeStats(g);
    EXPECT_EQ(fused.degrees, DegreeVector(g));
    EXPECT_EQ(fused.triangles, PerNodeTriangles(g));
  }
}

TEST(NodeStatsTest, FusedPassCostsExactlyOneTraversal) {
  const Graph g = CompleteGraph(8);
  PassCounter passes;
  const NodeStats stats =
      ComputeNodeStats(GraphView(g).WithPassCounter(&passes));
  ASSERT_EQ(stats.degrees.size(), 8u);
  EXPECT_EQ(passes.count("node_stats"), 1u);
  // The constituent kernels stay silent — their labels appearing here
  // would mean the "fused" pass re-walked the backing store.
  EXPECT_EQ(passes.count("degree_vector"), 0u);
  EXPECT_EQ(passes.count("triangles_per_node"), 0u);
  EXPECT_EQ(passes.total(), 1u);
}

// The pass-plan pin: Compute's degree/triangle/clustering family costs
// ONE traversal of the backing store ("node_stats"), the hop plot is
// exact BFS below the limit, and the un-fused leaf kernels never run.
// This is the test that fails loudly if someone re-introduces separate
// DegreeVector / PerNodeTriangles walks into the pipeline.
TEST(ReleasePassPlanTest, ComputeFusesTheNodeStatsFamily) {
  Rng rng(2026);
  const Graph g = SampleSkg(Initiator2{0.9, 0.6, 0.2}, 8, rng);

  PassCounter passes;
  StatisticsOptions options;
  options.exact_hop_plot_limit = 4096;  // 2^8 nodes → exact BFS route
  const ReleasePipeline pipeline(options);
  Rng compute_rng(7);
  const GraphStatistics stats =
      pipeline.ComputeEphemeral(GraphView(g).WithPassCounter(&passes),
                                compute_rng);
  ASSERT_FALSE(stats.degree_histogram.empty());
  ASSERT_FALSE(stats.clustering_by_degree.empty());

  EXPECT_EQ(passes.count("node_stats"), 1u);
  EXPECT_EQ(passes.count("degree_vector"), 0u);
  EXPECT_EQ(passes.count("triangles_per_node"), 0u);
  EXPECT_EQ(passes.count("triangles"), 0u);
  EXPECT_EQ(passes.count("degree_histogram"), 0u);
  EXPECT_EQ(passes.count("exact_hop_plot"), 1u);
  EXPECT_EQ(passes.count("anf_round"), 0u);

  // Identical statistics with no counter attached — instrumentation is
  // observation only.
  Rng plain_rng(7);
  EXPECT_EQ(pipeline.ComputeEphemeral(g, plain_rng), stats);
}

// Above the exact-BFS limit the hop plot switches to ANF: one
// "anf_round" pass per expansion round, still exactly one "node_stats".
TEST(ReleasePassPlanTest, LargeGraphRouteUsesAnfRounds) {
  Rng rng(2027);
  const Graph g = SampleSkg(Initiator2{0.9, 0.6, 0.2}, 8, rng);

  PassCounter passes;
  StatisticsOptions options;
  options.exact_hop_plot_limit = 8;  // force the ANF route
  options.anf_trials = 4;
  const ReleasePipeline pipeline(options);
  Rng compute_rng(7);
  (void)pipeline.ComputeEphemeral(GraphView(g).WithPassCounter(&passes),
                                  compute_rng);
  EXPECT_EQ(passes.count("node_stats"), 1u);
  EXPECT_EQ(passes.count("exact_hop_plot"), 0u);
  EXPECT_GE(passes.count("anf_round"), 1u);
}

}  // namespace
}  // namespace dpkron
