// Side-by-side comparison of the three estimators the paper evaluates:
// KronFit (approximate MLE), KronMom (moment matching) and the private
// estimator, on a synthetic SKG where the true parameter is known.
//
// Usage: ./build/examples/model_comparison [k] [epsilon]

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/estimation/kronmom.h"
#include "src/kronfit/kronfit.h"
#include "src/skg/moments.h"
#include "src/skg/sampler.h"

namespace {

void PrintRow(const char* name, const dpkron::Initiator2& theta,
              const dpkron::Initiator2& truth, uint32_t k,
              double true_edges) {
  const double err = dpkron::MaxAbsDifference(theta, truth);
  const double model_edges = dpkron::ExpectedEdges(theta, k);
  std::printf("%-10s a=%.4f b=%.4f c=%.4f   |err|_inf=%.4f   E[E]=%.0f"
              " (true %.0f)\n",
              name, theta.a, theta.b, theta.c, err, model_edges, true_edges);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpkron;
  const uint32_t k = argc > 1 ? std::atoi(argv[1]) : 12;
  const double epsilon = argc > 2 ? std::atof(argv[2]) : 0.2;
  const Initiator2 truth{0.99, 0.45, 0.25};

  std::printf("source: stochastic Kronecker graph, Theta=%s, k=%u\n",
              truth.ToString().c_str(), k);
  Rng rng(4242);
  const Graph g = SampleSkg(truth, k, rng);
  std::printf("realization: %u nodes, %llu edges\n\n", g.NumNodes(),
              static_cast<unsigned long long>(g.NumEdges()));

  const double true_edges = double(g.NumEdges());

  const KronMomResult kronmom = FitKronMom(g);
  KronFitOptions kf_options;
  kf_options.iterations = 50;
  const KronFitResult kronfit = FitKronFit(g, rng, kf_options);
  const auto private_fit = EstimatePrivateSkg(g, epsilon, 0.01, rng);
  if (!private_fit.ok()) {
    std::fprintf(stderr, "%s\n", private_fit.status().ToString().c_str());
    return 1;
  }

  PrintRow("truth", truth, truth, k, true_edges);
  PrintRow("KronFit", kronfit.theta, truth, k, true_edges);
  PrintRow("KronMom", kronmom.theta, truth, k, true_edges);
  PrintRow("Private", private_fit.value().theta, truth, k, true_edges);

  std::printf("\nprivate vs non-private moment estimate: |diff|_inf = %.4f"
              "  (paper, Table 1 synthetic row: ~0.006)\n",
              MaxAbsDifference(private_fit.value().theta, kronmom.theta));
  std::printf("exact features:   %s\n",
              private_fit.value().exact_features.ToString().c_str());
  std::printf("private features: %s\n",
              private_fit.value().private_features.ToString().c_str());
  std::printf("smooth sensitivity of triangle count: %.2f\n",
              private_fit.value().smooth_sensitivity);
  return 0;
}
