#include "src/graph/triangles.h"

#include <algorithm>

#include "src/common/parallel.h"
#include "src/common/simd.h"
#include "src/graph/intersect_kernels.h"

namespace dpkron {
namespace {

using internal::ForwardCsr;

// Rank nodes by (degree, id); orienting every edge from lower to higher
// rank makes each triangle counted exactly once and bounds the forward
// out-degree by O(sqrt(m)).
struct RankOrder {
  GraphView graph;
  bool Less(Graph::NodeId a, Graph::NodeId b) const {
    const uint32_t da = graph.Degree(a), db = graph.Degree(b);
    return da != db ? da < db : a < b;
  }
};

// Chunk size for the enumeration loops: small, because hub nodes make
// per-node work heavily skewed and the pool's dynamic chunk claiming is
// the load balancer.
constexpr size_t kNodeGrain = 64;

// forward[u] = neighbors of u with higher rank, sorted by node id.
// Per-node independent, so the fill parallelizes directly.
std::vector<std::vector<Graph::NodeId>> BuildForwardLists(GraphView graph) {
  const RankOrder rank{graph};
  const uint32_t n = graph.NumNodes();
  std::vector<std::vector<Graph::NodeId>> forward(n);
  ParallelFor(n, kNodeGrain, [&](size_t u_index) {
    const auto u = static_cast<Graph::NodeId>(u_index);
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (rank.Less(u, v)) forward[u_index].push_back(v);
    }
  });
  return forward;
}

// Enumerates the triangles whose lowest-rank apex lies in [begin, end):
// sorted-merge intersection of forward[u] and forward[v].
template <typename OnTriangle>
void ForEachTriangleInRange(
    const std::vector<std::vector<Graph::NodeId>>& forward, size_t begin,
    size_t end, OnTriangle&& on_triangle) {
  for (size_t u = begin; u < end; ++u) {
    const auto& fu = forward[u];
    for (Graph::NodeId v : fu) {
      const auto& fv = forward[v];
      size_t i = 0, j = 0;
      while (i < fu.size() && j < fv.size()) {
        if (fu[i] < fv[j]) {
          ++i;
        } else if (fu[i] > fv[j]) {
          ++j;
        } else {
          on_triangle(static_cast<Graph::NodeId>(u), v, fu[i]);
          ++i;
          ++j;
        }
      }
    }
  }
}

// Two-sweep flattened build (count, then fill): no per-node allocation,
// the fastest route when the adjacency is RAM-resident. The fused
// kernel uses BuildForwardCsrFused below instead, which reads the
// view's adjacency exactly once.
ForwardCsr BuildForwardCsr(GraphView graph) {
  const RankOrder rank{graph};
  const uint32_t n = graph.NumNodes();
  ForwardCsr fwd;
  fwd.offsets.assign(size_t{n} + 1, 0);
  ParallelFor(n, 4096, [&](size_t u_index) {
    const auto u = static_cast<Graph::NodeId>(u_index);
    uint32_t count = 0;
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (rank.Less(u, v)) ++count;
    }
    fwd.offsets[u_index + 1] = count;
  });
  for (uint32_t u = 0; u < n; ++u) fwd.offsets[u + 1] += fwd.offsets[u];
  fwd.targets.resize(fwd.offsets.back());
  ParallelFor(n, 4096, [&](size_t u_index) {
    const auto u = static_cast<Graph::NodeId>(u_index);
    uint32_t out = fwd.offsets[u_index];
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (rank.Less(u, v)) fwd.targets[out++] = v;
    }
  });
  return fwd;
}

}  // namespace

namespace internal {

ForwardCsr BuildForwardCsrFused(GraphView graph,
                                std::vector<uint32_t>* degrees) {
  const RankOrder rank{graph};
  const uint32_t n = graph.NumNodes();
  if (degrees != nullptr) degrees->resize(n);
  // Single sweep of the view's adjacency: per-node forward lists and
  // (optionally) the degree vector fall out of the same traversal. The
  // flatten below touches only the just-built in-RAM lists — an
  // out-of-core backing's pages are read once.
  std::vector<std::vector<Graph::NodeId>> forward(n);
  ParallelFor(n, kNodeGrain, [&](size_t u_index) {
    const auto u = static_cast<Graph::NodeId>(u_index);
    if (degrees != nullptr) (*degrees)[u_index] = graph.Degree(u);
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (rank.Less(u, v)) forward[u_index].push_back(v);
    }
  });
  ForwardCsr fwd;
  fwd.offsets.assign(size_t{n} + 1, 0);
  for (uint32_t u = 0; u < n; ++u) {
    fwd.offsets[u + 1] =
        fwd.offsets[u] + static_cast<uint32_t>(forward[u].size());
  }
  fwd.targets.resize(fwd.offsets.back());
  ParallelFor(n, 4096, [&](size_t u_index) {
    std::copy(forward[u_index].begin(), forward[u_index].end(),
              fwd.targets.begin() + fwd.offsets[u_index]);
  });
  return fwd;
}

std::vector<uint64_t> PerNodeTrianglesFromForward(const ForwardCsr& fwd,
                                                  uint32_t num_nodes) {
  const size_t n = num_nodes;
  // A triangle increments all three of its corners, which live in
  // arbitrary chunks — so accumulate into per-worker arrays. Integer
  // addition commutes, so the merged totals are thread-count-invariant
  // even though worker→chunk assignment is not.
  std::vector<std::vector<uint64_t>> locals(
      static_cast<size_t>(ParallelThreadCount()));
  if (Avx2Active()) {
    // Per-worker scratch for intersection outputs, sized to the longest
    // forward list (allocated lazily per worker, like `locals`).
    std::vector<std::vector<Graph::NodeId>> scratch(locals.size());
    uint32_t max_forward = 0;
    for (size_t u = 0; u < n; ++u) {
      max_forward =
          std::max(max_forward, fwd.offsets[u + 1] - fwd.offsets[u]);
    }
    ParallelForChunks(n, kNodeGrain, [&](const ParallelChunk& chunk) {
      auto& local = locals[chunk.worker];
      if (local.empty()) local.assign(n, 0);
      auto& buffer = scratch[chunk.worker];
      if (buffer.size() < max_forward) buffer.resize(max_forward);
      PerNodeTrianglesChunkAvx2(fwd.offsets.data(), fwd.targets.data(),
                                chunk.begin, chunk.end, local.data(),
                                buffer.data());
    });
  } else {
    ParallelForChunks(n, kNodeGrain, [&](const ParallelChunk& chunk) {
      auto& local = locals[chunk.worker];
      if (local.empty()) local.assign(n, 0);
      for (size_t u = chunk.begin; u < chunk.end; ++u) {
        const uint32_t fu_begin = fwd.offsets[u], fu_end = fwd.offsets[u + 1];
        for (uint32_t vi = fu_begin; vi < fu_end; ++vi) {
          const Graph::NodeId v = fwd.targets[vi];
          uint32_t i = fu_begin, j = fwd.offsets[v];
          const uint32_t j_end = fwd.offsets[v + 1];
          while (i < fu_end && j < j_end) {
            if (fwd.targets[i] < fwd.targets[j]) {
              ++i;
            } else if (fwd.targets[i] > fwd.targets[j]) {
              ++j;
            } else {
              ++local[u];
              ++local[v];
              ++local[fwd.targets[i]];
              ++i;
              ++j;
            }
          }
        }
      }
    });
  }
  std::vector<uint64_t> per_node(n, 0);
  ParallelFor(n, 4096, [&](size_t u) {
    uint64_t total = 0;
    for (const auto& local : locals) {
      if (!local.empty()) total += local[u];
    }
    per_node[u] = total;
  });
  return per_node;
}

std::vector<uint64_t> PerNodeTrianglesImpl(GraphView graph) {
  const ForwardCsr fwd = BuildForwardCsr(graph);
  return PerNodeTrianglesFromForward(fwd, graph.NumNodes());
}

}  // namespace internal

uint64_t CountTriangles(GraphView graph) {
  graph.CountPass("triangles");
  if (Avx2Active()) {
    const ForwardCsr fwd = BuildForwardCsr(graph);
    const size_t n = graph.NumNodes();
    std::vector<uint64_t> partials(ParallelChunkCount(n, kNodeGrain), 0);
    ParallelForChunks(n, kNodeGrain, [&](const ParallelChunk& chunk) {
      partials[chunk.index] =
          CountTrianglesChunkAvx2(fwd.offsets.data(), fwd.targets.data(),
                                  chunk.begin, chunk.end);
    });
    uint64_t triangles = 0;
    for (uint64_t partial : partials) triangles += partial;
    return triangles;
  }
  const auto forward = BuildForwardLists(graph);
  const size_t n = forward.size();
  // Per-chunk integer partials, combined in chunk order: exact and
  // thread-count-invariant.
  std::vector<uint64_t> partials(ParallelChunkCount(n, kNodeGrain), 0);
  ParallelForChunks(n, kNodeGrain, [&](const ParallelChunk& chunk) {
    uint64_t local = 0;
    ForEachTriangleInRange(
        forward, chunk.begin, chunk.end,
        [&local](Graph::NodeId, Graph::NodeId, Graph::NodeId) { ++local; });
    partials[chunk.index] = local;
  });
  uint64_t triangles = 0;
  for (uint64_t partial : partials) triangles += partial;
  return triangles;
}

std::vector<uint64_t> PerNodeTriangles(GraphView graph) {
  graph.CountPass("triangles_per_node");
  return internal::PerNodeTrianglesImpl(graph);
}

uint32_t CommonNeighbors(GraphView graph, Graph::NodeId u,
                         Graph::NodeId v) {
  const auto nu = graph.Neighbors(u);
  const auto nv = graph.Neighbors(v);
  if (Avx2Active()) {
    return static_cast<uint32_t>(
        IntersectCountAvx2(nu.data(), nu.size(), nv.data(), nv.size()));
  }
  uint32_t common = 0;
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace dpkron
