#!/usr/bin/env python3
"""Crash-safety smoke driver for dpkrond (used by CI).

Talks the line-delimited JSON protocol (src/server/wire.h) to a daemon
on localhost and runs one of two phases:

  load    N analyst threads issue release requests until every analyst
          is refused with RESOURCE_EXHAUSTED (budget spent) or the
          connection dies -- the CI job kill -9s the daemon under us,
          and that is the point. Every acknowledged spend is appended
          to --state and flushed+fsynced BEFORE the next request goes
          out, so the state file is a strict lower bound on what the
          daemon acknowledged. Exit 0 on clean exhaustion AND on a
          dropped connection; anything protocol-violating exits 1.

  verify  After the daemon restarted on the same accountant journal:
          assert per-analyst epsilon_spent >= the sum of acked spends
          (acked spend is never lost), replay one acked request line
          verbatim and require ok+deduped with epsilon_spent unchanged
          (idempotent retry), and for every analyst that was refused
          for budget during load, require a fresh spend to still be
          refused (budgets never reset across a crash).

State file: one JSON object per line,
  {"event": "ack", "analyst": ..., "request_id": ..., "epsilon": ...,
   "line": <the exact request line>}
  {"event": "exhausted", "analyst": ...}
"""

import argparse
import json
import os
import socket
import sys
import threading
import time


def connect(port, timeout=60.0):
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    return sock, sock.makefile("rwb")


def roundtrip(stream, obj):
    """Send one request object, return the parsed response object."""
    stream.write((json.dumps(obj) + "\n").encode())
    stream.flush()
    line = stream.readline()
    if not line:
        raise ConnectionError("daemon closed the connection")
    return json.loads(line)


def healthz(port):
    sock, stream = connect(port)
    try:
        return roundtrip(stream, {"type": "healthz"})
    finally:
        sock.close()


class StateWriter:
    """Append-only, fsynced per record: survives our caller's kill -9."""

    def __init__(self, path):
        self.fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self.lock = threading.Lock()

    def record(self, obj):
        data = (json.dumps(obj) + "\n").encode()
        with self.lock:
            os.write(self.fd, data)
            os.fsync(self.fd)


def load_phase(args):
    state = StateWriter(args.state)
    failures = []

    def analyst_main(analyst):
        try:
            sock, stream = connect(args.port)
        except OSError as err:
            print(f"{analyst}: could not connect: {err}")
            return
        try:
            for i in range(args.max_requests):
                request_id = f"{analyst}-{args.run}-{i:04d}"
                request = {
                    "analyst": analyst,
                    "scenario": args.scenario,
                    "dataset": args.dataset,
                    "epsilon": args.epsilon,
                    "seed": 7,
                    "request_id": request_id,
                }
                line = json.dumps(request)
                stream.write((line + "\n").encode())
                stream.flush()
                raw = stream.readline()
                if not raw:
                    print(f"{analyst}: connection dropped mid-load (expected "
                          "under kill -9)")
                    return
                response = json.loads(raw)
                if response.get("ok"):
                    state.record({"event": "ack", "analyst": analyst,
                                  "request_id": request_id,
                                  "epsilon": args.epsilon, "line": line})
                    continue
                code = response.get("code")
                if code == "RESOURCE_EXHAUSTED":
                    if "retry_after_ms" in response:  # shed, not broke
                        time.sleep(response["retry_after_ms"] / 1000.0)
                        continue
                    state.record({"event": "exhausted", "analyst": analyst})
                    print(f"{analyst}: budget exhausted after acked spends")
                    return
                if code == "UNAVAILABLE":  # draining under SIGTERM
                    print(f"{analyst}: server draining, stopping")
                    return
                failures.append(f"{analyst}: unexpected refusal: {response}")
                return
            failures.append(f"{analyst}: never exhausted after "
                            f"{args.max_requests} requests")
        except (OSError, ConnectionError) as err:
            print(f"{analyst}: connection error mid-load (expected under "
                  f"kill -9): {err}")
        finally:
            sock.close()

    analysts = [f"analyst{i}" for i in range(args.analysts)]
    threads = [threading.Thread(target=analyst_main, args=(a,))
               for a in analysts]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def read_state(path):
    acked, exhausted = [], set()
    with open(path) as f:
        for line in f:
            record = json.loads(line)
            if record["event"] == "ack":
                acked.append(record)
            elif record["event"] == "exhausted":
                exhausted.add(record["analyst"])
    return acked, exhausted


def verify_phase(args):
    acked, exhausted = read_state(args.state)
    if not acked:
        print("FAIL: state file has no acked spends -- nothing to verify")
        return 1

    spent_by_analyst = {}
    for record in acked:
        spent_by_analyst.setdefault(record["analyst"], 0.0)
        spent_by_analyst[record["analyst"]] += record["epsilon"]

    health = healthz(args.port)
    recovered = health["analysts"]
    ok = True
    for analyst, acked_eps in sorted(spent_by_analyst.items()):
        got = recovered.get(analyst, {}).get("epsilon_spent", 0.0)
        if got < acked_eps - 1e-9:
            print(f"FAIL: {analyst}: recovered epsilon_spent {got} < "
                  f"acked {acked_eps} -- acked spend was lost")
            ok = False
        else:
            print(f"{analyst}: recovered {got:.4f} >= acked {acked_eps:.4f}")
        total = health["budget"]["epsilon_total"]
        if got > total + 1e-9:
            print(f"FAIL: {analyst}: spent {got} exceeds budget {total}")
            ok = False

    # Idempotent retry: replay the first acked request line verbatim.
    replay = acked[0]
    sock, stream = connect(args.port)
    try:
        response = roundtrip(stream, json.loads(replay["line"]))
        if not (response.get("ok") and response.get("deduped")):
            print(f"FAIL: replay of {replay['request_id']} not acked as "
                  f"deduped: {response}")
            ok = False
        after = roundtrip(stream, {"type": "healthz"})
        before_eps = recovered[replay["analyst"]]["epsilon_spent"]
        after_eps = after["analysts"][replay["analyst"]]["epsilon_spent"]
        if abs(after_eps - before_eps) > 1e-9:
            print(f"FAIL: replay changed epsilon_spent "
                  f"{before_eps} -> {after_eps}")
            ok = False
        else:
            print(f"replay of {replay['request_id']}: deduped, spend "
                  f"unchanged at {after_eps:.4f}")

        # Exhaustion must survive the crash: a fresh id is still refused.
        for analyst in sorted(exhausted):
            fresh = {"analyst": analyst, "scenario": args.scenario,
                     "dataset": args.dataset, "epsilon": args.epsilon,
                     "seed": 7, "request_id": f"{analyst}-post-crash"}
            response = roundtrip(stream, fresh)
            if response.get("ok") or response.get("code") != \
                    "RESOURCE_EXHAUSTED":
                print(f"FAIL: {analyst} was exhausted pre-crash but a new "
                      f"spend was not refused: {response}")
                ok = False
            else:
                print(f"{analyst}: still exhausted after restart")
    finally:
        sock.close()
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase", choices=["load", "verify"], required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--state", required=True,
                        help="append-only ack ledger shared by both phases")
    parser.add_argument("--analysts", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--scenario", default="fig2_as20")
    parser.add_argument("--dataset", default="data/ca_test.edges")
    parser.add_argument("--max-requests", type=int, default=64)
    parser.add_argument("--run", default="r0",
                        help="request_id namespace so two load rounds "
                             "against one ledger never collide")
    args = parser.parse_args()
    if args.phase == "load":
        sys.exit(load_phase(args))
    sys.exit(verify_phase(args))


if __name__ == "__main__":
    main()
