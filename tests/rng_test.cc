#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a.NextU64() != b.NextU64());
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  uint64_t x = 0;
  for (int i = 0; i < 16; ++i) x |= rng.NextU64();
  EXPECT_NE(x, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedRange) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(5);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / double(bound), 5 * std::sqrt(n / double(bound)));
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  const double p = 0.3;
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
  EXPECT_NEAR(hits / double(n), p, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(19);
  const double scale = 2.5;
  const int n = 200000;
  double sum = 0.0, sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextLaplace(scale);
    sum += x;
    sum_abs += std::fabs(x);
  }
  // E[X] = 0; E[|X|] = scale.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_abs / n, scale, 0.05);
}

TEST(RngTest, LaplaceTailProbability) {
  // P(|X| > t·b) = exp(−t).
  Rng rng(23);
  const int n = 100000;
  int beyond = 0;
  for (int i = 0; i < n; ++i) beyond += std::fabs(rng.NextLaplace(1.0)) > 2.0;
  EXPECT_NEAR(beyond / double(n), std::exp(-2.0), 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  const double lambda = 3.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(RngTest, GeometricMean) {
  Rng rng(31);
  const double p = 0.25;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += double(rng.NextGeometric(p));
  // Mean number of failures: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(41);
  for (uint32_t n : {0u, 1u, 2u, 10u, 1000u}) {
    std::vector<uint32_t> perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::vector<uint32_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(43);
  const std::vector<uint32_t> p1 = rng.Permutation(100);
  const std::vector<uint32_t> p2 = rng.Permutation(100);
  EXPECT_NE(p1, p2);
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng parent(47);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(51), b(51);
  Rng ca = a.Split(), cb = b.Split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

}  // namespace
}  // namespace dpkron
