// Exact triangle counting.
//
// Node-iterator over sorted adjacency lists restricted to higher-degree
// "forward" neighbors (the compact-forward algorithm): O(m^{3/2}) worst
// case, exact, no hashing. Also provides per-node and per-edge triangle
// counts — the latter feed the smooth-sensitivity computation (number of
// common neighbors a_ij, NRS'07).

#ifndef DPKRON_GRAPH_TRIANGLES_H_
#define DPKRON_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// Total number of triangles ∆(G).
uint64_t CountTriangles(GraphView graph);

// t_u = number of triangles through node u (Σ_u t_u = 3∆).
std::vector<uint64_t> PerNodeTriangles(GraphView graph);

// Number of common neighbors of u and v (= triangles through edge {u,v}
// when the edge exists, but defined for any pair). O(deg u + deg v).
uint32_t CommonNeighbors(GraphView graph, Graph::NodeId u,
                         Graph::NodeId v);

namespace internal {

// The (degree, id)-rank forward orientation in compact CSR form: the
// shared substrate of every triangle intersection path. Once built, the
// intersections read only these arrays — never the view again — which
// is what lets the fused node-stats kernel charge the whole triangle
// family to a single pass over the backing store.
struct ForwardCsr {
  std::vector<uint32_t> offsets;       // n+1
  std::vector<Graph::NodeId> targets;  // concatenated forward lists
};

// Builds the forward orientation with a SINGLE sweep of the view's
// adjacency (per-node lists, then an in-RAM flatten), emitting the
// degree vector from the same traversal when `degrees` is non-null.
ForwardCsr BuildForwardCsrFused(GraphView graph,
                                std::vector<uint32_t>* degrees);

// t_u from a prebuilt forward orientation (AVX2-dispatched; scalar and
// AVX2 agree exactly — integer counts of the same triangle set).
std::vector<uint64_t> PerNodeTrianglesFromForward(const ForwardCsr& fwd,
                                                  uint32_t num_nodes);

// PerNodeTriangles without its pass-count record: the fused node-stats
// kernel (node_stats.h) accounts the traversal itself.
std::vector<uint64_t> PerNodeTrianglesImpl(GraphView graph);

}  // namespace internal

}  // namespace dpkron

#endif  // DPKRON_GRAPH_TRIANGLES_H_
