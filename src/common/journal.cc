#include "src/common/journal.h"

#include <cstring>

#include "src/common/fnv.h"

namespace dpkron {
namespace {

constexpr size_t kFrameBytes = sizeof(uint32_t) + sizeof(uint64_t);

// Records carrying more than this are a programming error upstream, and
// a plausibility bound lets recovery reject a torn length field without
// attempting a multi-gigabyte read.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

}  // namespace

Result<JournalRecovery> ReadJournal(const std::string& path, Env* env) {
  auto bytes = env->ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& data = bytes.value();

  JournalRecovery recovery;
  size_t offset = 0;
  while (offset + kFrameBytes <= data.size()) {
    uint32_t len;
    uint64_t checksum;
    std::memcpy(&len, data.data() + offset, sizeof(len));
    std::memcpy(&checksum, data.data() + offset + sizeof(len),
                sizeof(checksum));
    if (len > kMaxRecordBytes ||
        offset + kFrameBytes + len > data.size()) {
      break;  // torn length field or torn payload
    }
    const char* payload = data.data() + offset + kFrameBytes;
    if (Fnv1a64Words(payload, len) != checksum) break;  // torn/corrupt
    recovery.records.emplace_back(payload, len);
    offset += kFrameBytes + len;
  }
  recovery.valid_bytes = offset;
  recovery.truncated_tail = offset != data.size();
  return recovery;
}

void AppendFramedRecord(std::string* out, std::string_view payload) {
  DPKRON_CHECK_MSG(payload.size() <= kMaxRecordBytes,
                   "journal record too large");
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint64_t checksum = Fnv1a64Words(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out->append(payload);
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, uint64_t valid_bytes, Env* env) {
  // Clear any torn tail FIRST: appending after garbage would strand the
  // new records behind bytes recovery refuses to cross.
  if (env->FileExists(path)) {
    auto size = env->FileSize(path);
    if (!size.ok()) return size.status();
    if (size.value() < valid_bytes) {
      return Status::InvalidArgument(
          path + ": journal shrank below its recovered prefix");
    }
    if (size.value() > valid_bytes) {
      const Status status = env->TruncateFile(path, valid_bytes);
      if (!status.ok()) return status;
    }
  } else if (valid_bytes != 0) {
    return Status::InvalidArgument(path +
                                   ": journal vanished since recovery");
  }
  auto file = env->NewAppendableFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<JournalWriter>(new JournalWriter(
      path, std::move(file).value(), valid_bytes, env));
}

Status JournalWriter::Append(std::string_view payload) {
  if (wounded_) {
    return Status::Internal(path_ +
                            ": journal wounded by an earlier failed append");
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument(path_ + ": journal record too large");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint64_t checksum = Fnv1a64Words(payload.data(), payload.size());
  char frame[kFrameBytes];
  std::memcpy(frame, &len, sizeof(len));
  std::memcpy(frame + sizeof(len), &checksum, sizeof(checksum));

  Status status = file_->Append(frame, sizeof(frame));
  if (status.ok()) status = file_->Append(payload.data(), payload.size());
  if (status.ok()) status = file_->Sync();
  if (status.ok()) {
    acknowledged_bytes_ += kFrameBytes + payload.size();
    return status;
  }

  // The file may now hold a torn record. Repair by truncating back to
  // the acknowledged prefix (through a fresh handle — the current one's
  // write position is past the tear). If the repair itself fails the
  // journal is wounded: its on-disk tail is unknown, so taking further
  // records would risk stranding them behind garbage.
  (void)file_->Close();
  file_.reset();
  Status repair = env_->TruncateFile(path_, acknowledged_bytes_);
  if (repair.ok()) {
    auto reopened = env_->NewAppendableFile(path_);
    if (reopened.ok()) {
      file_ = std::move(reopened).value();
    } else {
      repair = reopened.status();
    }
  }
  if (!repair.ok()) wounded_ = true;
  return status;
}

Status JournalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  auto file = std::move(file_);
  return file->Close();
}

}  // namespace dpkron
