#include "src/core/k_edge.h"

namespace dpkron {

Result<PrivateEstimatorResult> EstimateKEdgePrivateSkg(
    GraphView graph, uint32_t k_edges, double epsilon, double delta,
    Rng& rng, const PrivateEstimatorOptions& options) {
  if (k_edges == 0) {
    return Status::InvalidArgument("k_edges must be >= 1");
  }
  const double scaled_epsilon = epsilon / k_edges;
  const double scaled_delta = delta / k_edges;
  if (scaled_delta <= 0.0) {
    return Status::InvalidArgument("delta too small for requested k_edges");
  }
  return EstimatePrivateSkg(graph, scaled_epsilon, scaled_delta, rng,
                            options);
}

}  // namespace dpkron
