// The determinism contract of src/common/parallel.h, enforced: every
// parallel kernel must produce identical results at 1, 2 and 8 threads.

#include "src/common/parallel.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/core/release.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/anf.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/graph.h"
#include "src/graph/triangles.h"
#include "src/kronfit/kronfit.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"
#include "src/linalg/spmv.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

// Restores the ambient thread count when a test scope ends, so tests
// can't leak pool configuration into each other.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int threads)
      : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedThreadCount() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

constexpr int kThreadCounts[] = {1, 2, 8};

// Runs `compute` once per thread count and requires all results equal.
template <typename Fn>
void ExpectThreadCountInvariant(Fn&& compute) {
  ScopedThreadCount guard(1);
  const auto reference = compute();
  for (int threads : {2, 8}) {
    SetParallelThreadCount(threads);
    EXPECT_EQ(compute(), reference) << "at " << threads << " threads";
  }
}

Graph SampleTestGraph() {
  Rng rng(20120330);
  return SampleSkg({0.95, 0.55, 0.3}, 9, rng);  // 512 nodes, exact sampler
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : kThreadCounts) {
    ScopedThreadCount guard(threads);
    const size_t n = 10007;  // prime: chunks don't divide evenly
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(n, 64, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ParallelForTest, ChunkDecompositionIgnoresThreadCount) {
  EXPECT_EQ(ParallelChunkCount(0, 64), 0u);
  EXPECT_EQ(ParallelChunkCount(1, 64), 1u);
  EXPECT_EQ(ParallelChunkCount(64, 64), 1u);
  EXPECT_EQ(ParallelChunkCount(65, 64), 2u);
  EXPECT_EQ(ParallelChunkCount(100, 0), 100u);  // grain clamps to 1

  for (int threads : kThreadCounts) {
    ScopedThreadCount guard(threads);
    std::vector<std::pair<size_t, size_t>> ranges(ParallelChunkCount(1000, 96));
    ParallelForChunks(1000, 96, [&](const ParallelChunk& chunk) {
      ranges[chunk.index] = {chunk.begin, chunk.end};
      EXPECT_LT(chunk.worker, static_cast<size_t>(ParallelThreadCount()));
    });
    for (size_t c = 0; c < ranges.size(); ++c) {
      EXPECT_EQ(ranges[c].first, c * 96);
      EXPECT_EQ(ranges[c].second, std::min<size_t>(1000, c * 96 + 96));
    }
  }
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  ScopedThreadCount guard(4);
  std::atomic<uint64_t> total{0};
  ParallelFor(16, 1, [&](size_t) {
    // Nested section must not deadlock on the pool.
    ParallelFor(100, 10, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 1600u);
}

TEST(ParallelSumTest, DeterministicAcrossThreadCounts) {
  // Pseudo-random doubles whose naive reordered sum would differ in the
  // low bits; the chunk-ordered reduction must not.
  Rng rng(99);
  std::vector<double> values(100000);
  for (double& v : values) v = rng.NextGaussian() * 1e6;
  ExpectThreadCountInvariant([&] {
    return ParallelSum(values.size(), 1024, [&](size_t begin, size_t end) {
      double s = 0.0;
      for (size_t i = begin; i < end; ++i) s += values[i];
      return s;
    });
  });
}

TEST(SplitRngStreamsTest, DeterministicAndDistinct) {
  Rng a(7), b(7);
  std::vector<Rng> sa = SplitRngStreams(a, 8);
  std::vector<Rng> sb = SplitRngStreams(b, 8);
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].NextU64(), sb[i].NextU64()) << "stream " << i;
  }
  // First outputs across streams should all differ.
  std::vector<uint64_t> firsts;
  for (Rng& stream : sa) firsts.push_back(stream.NextU64());
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::unique(firsts.begin(), firsts.end()), firsts.end());
}

// ------------------- kernel thread-count invariance -------------------

TEST(KernelInvarianceTest, Triangles) {
  const Graph g = SampleTestGraph();
  ExpectThreadCountInvariant([&] { return CountTriangles(g); });
  ExpectThreadCountInvariant([&] { return PerNodeTriangles(g); });
}

TEST(KernelInvarianceTest, DegreeKernels) {
  const Graph g = SampleTestGraph();
  ExpectThreadCountInvariant([&] { return DegreeVector(g); });
  ExpectThreadCountInvariant([&] { return MaxDegree(g); });
  ExpectThreadCountInvariant([&] { return DegreeHistogram(g); });
  ExpectThreadCountInvariant([&] { return CountWedges(g); });
  ExpectThreadCountInvariant([&] { return CountTripins(g); });
}

TEST(KernelInvarianceTest, Clustering) {
  const Graph g = SampleTestGraph();
  // Doubles compared bit-exactly: the chunk-ordered reduction promises
  // identical floating-point results, not merely close ones.
  ExpectThreadCountInvariant([&] { return LocalClustering(g); });
  ExpectThreadCountInvariant([&] { return AverageClustering(g); });
  ExpectThreadCountInvariant([&] { return ClusteringByDegree(g); });
  ExpectThreadCountInvariant([&] { return GlobalClustering(g); });
}

TEST(KernelInvarianceTest, Anf) {
  const Graph g = SampleTestGraph();
  ExpectThreadCountInvariant([&] {
    Rng rng(4242);  // same seed per thread count — sketches must match
    AnfOptions options;
    options.num_trials = 16;
    return ApproxHopPlot(g, rng, options);
  });
}

TEST(KernelInvarianceTest, SpmvAndDot) {
  const Graph g = SampleTestGraph();
  Rng rng(17);
  std::vector<double> x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  ExpectThreadCountInvariant([&] {
    std::vector<double> y(g.NumNodes());
    AdjacencyMatVec(g, x, &y);
    return y;
  });
  ExpectThreadCountInvariant([&] { return Dot(x, x); });
  ExpectThreadCountInvariant([&] { return Norm2(x); });
}

TEST(KernelInvarianceTest, ParallelSumArray) {
  Rng rng(321);
  std::vector<std::array<double, 3>> values(50000);
  for (auto& v : values) {
    for (double& x : v) x = rng.NextGaussian() * 1e6;
  }
  ExpectThreadCountInvariant([&] {
    return ParallelSumArray<3>(values.size(), 512,
                               [&](size_t begin, size_t end) {
                                 std::array<double, 3> s{};
                                 for (size_t i = begin; i < end; ++i) {
                                   for (int j = 0; j < 3; ++j) {
                                     s[j] += values[i][j];
                                   }
                                 }
                                 return s;
                               });
  });
}

TEST(KernelInvarianceTest, KronFitLikelihoodKernels) {
  const Graph g = SampleTestGraph();
  const KronFitLikelihood model({0.9, 0.55, 0.25}, 9);
  const PermutationState sigma = DegreeGuidedInit(g, 9);
  // Doubles compared bit-exactly, as everywhere in this file.
  ExpectThreadCountInvariant([&] { return model.LogLikelihood(g, sigma); });
  ExpectThreadCountInvariant([&] { return model.EdgeGradient(g, sigma); });
}

TEST(KernelInvarianceTest, MetropolisChainsSampleGradient) {
  const Graph g = SampleTestGraph();
  const KronFitLikelihood model({0.9, 0.55, 0.25}, 9);
  ExpectThreadCountInvariant([&] {
    Rng rng(2024);
    MetropolisChains chains(g, 9, 4, rng);
    const Gradient3 g1 = chains.SampleGradient(model, 2 * g.NumNodes());
    const Gradient3 g2 = chains.SampleGradient(model, 2 * g.NumNodes());
    return std::array<double, 7>{g1[0], g1[1], g1[2], g2[0],
                                 g2[1], g2[2],
                                 chains.BestLogLikelihood(model)};
  });
}

// The PR 2 acceptance bar: the full fit — multi-chain Metropolis,
// table-driven likelihood, chunk-ordered reductions — must produce a
// bit-identical KronFitResult at 1, 2 and 8 threads.
TEST(KernelInvarianceTest, FitKronFit) {
  Rng g_rng(606);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 8, g_rng);
  KronFitOptions options;
  options.iterations = 8;
  options.warmup_factor = 2.0;
  options.tail_average = 4;
  ExpectThreadCountInvariant([&] {
    Rng rng(42);
    const KronFitResult fit = FitKronFit(g, rng, options);
    return std::array<double, 4>{fit.theta.a, fit.theta.b, fit.theta.c,
                                 fit.log_likelihood};
  });
}

TEST(KernelInvarianceTest, TriangleSensitivityProfile) {
  const Graph g = SampleTestGraph();
  ExpectThreadCountInvariant([&] {
    const TriangleSensitivityProfile profile(g);
    return profile.frontier();
  });
  ExpectThreadCountInvariant([&] {
    return TriangleSensitivityProfile(g).SmoothSensitivity(0.05);
  });
}

TEST(KernelInvarianceTest, EdgeSkipSampler) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  ExpectThreadCountInvariant([&] {
    Rng rng(555);
    return SampleSkg({0.95, 0.55, 0.3}, 12, rng, options).Edges();
  });
}

// The parallel release pipeline: realizations fan out across the pool on
// per-realization Rng::Split streams with realization-ordered
// aggregation, so the 5-panel mean must be bit-identical at 1/2/8
// threads.
TEST(KernelInvarianceTest, ExpectedStatistics) {
  StatisticsOptions options;
  options.num_singular_values = 8;
  options.anf_trials = 8;
  ExpectThreadCountInvariant([&] {
    Rng rng(20120330);
    return ExpectedStatistics({0.9, 0.5, 0.2}, 8, 6, rng, options);
  });
}

}  // namespace
}  // namespace dpkron
