#include "src/common/table_writer.h"

#include <cmath>
#include <utility>

#include "src/common/macros.h"

namespace dpkron {

SeriesTable::SeriesTable(std::string experiment)
    : experiment_(std::move(experiment)) {}

void SeriesTable::Add(const std::string& series, double x, double y) {
  rows_.push_back(Row{series, x, y});
}

void SeriesTable::Print(std::FILE* out) const {
  std::fprintf(out, "# experiment\tseries\tx\ty\n");
  for (const Row& row : rows_) {
    std::fprintf(out, "%s\t%s\t%.10g\t%.10g\n", experiment_.c_str(),
                 row.series.c_str(), row.x, row.y);
  }
}

SummaryBlock::SummaryBlock(std::string title) : title_(std::move(title)) {}

void SummaryBlock::Add(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  items_.emplace_back(key, buf);
}

void SummaryBlock::Add(const std::string& key, const std::string& value) {
  items_.emplace_back(key, value);
}

void SummaryBlock::Print(std::FILE* out) const {
  std::fprintf(out, "== %s ==\n", title_.c_str());
  for (const auto& [key, value] : items_) {
    std::fprintf(out, "  %-32s %s\n", key.c_str(), value.c_str());
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter() = default;

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!scopes_.empty()) {
    // Bare values are only legal inside arrays; object members need Key().
    DPKRON_CHECK_MSG(scopes_.back().kind == '[',
                     "JsonWriter: value without Key inside an object");
    if (scopes_.back().has_element) out_ += ',';
    scopes_.back().has_element = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scopes_.push_back(Scope{'{', false});
}

void JsonWriter::EndObject() {
  DPKRON_CHECK_MSG(
      !scopes_.empty() && scopes_.back().kind == '{' && !after_key_,
      "JsonWriter: EndObject outside an object");
  scopes_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scopes_.push_back(Scope{'[', false});
}

void JsonWriter::EndArray() {
  DPKRON_CHECK_MSG(
      !scopes_.empty() && scopes_.back().kind == '[' && !after_key_,
      "JsonWriter: EndArray outside an array");
  scopes_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  DPKRON_CHECK_MSG(
      !scopes_.empty() && scopes_.back().kind == '{' && !after_key_,
      "JsonWriter: Key outside an object");
  if (scopes_.back().has_element) out_ += ',';
  scopes_.back().has_element = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
}

void JsonWriter::Number(double value) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

}  // namespace dpkron
