// Synthetic-graph release pipeline and the five evaluation statistics.
//
// Once an estimator Θ̃ is published, "anyone interested in studying
// statistical properties of the original graph G can sample the
// distribution to yield a synthetic graph GS" (§1) — and average a
// statistic over several samples. This module packages exactly that:
// the five statistics panels of Figs 1–4, computed on one graph or
// averaged over R realizations of an initiator.

#ifndef DPKRON_CORE_RELEASE_H_
#define DPKRON_CORE_RELEASE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"
#include "src/skg/initiator.h"
#include "src/skg/sampler.h"

namespace dpkron {

// The five statistics the paper plots. Series use double y-values so the
// same struct holds single-realization counts and cross-realization means.
struct GraphStatistics {
  // (degree, count) — panel (b).
  std::vector<std::pair<double, double>> degree_histogram;
  // N(h) for h = 0, 1, ... — panel (a).
  std::vector<double> hop_plot;
  // top singular values, descending — panel (c).
  std::vector<double> scree;
  // |principal eigenvector| components, descending — panel (d).
  std::vector<double> network_value;
  // (degree, mean clustering coefficient) — panel (e).
  std::vector<std::pair<double, double>> clustering_by_degree;

  // Exact equality — the currency of the thread-count-invariance tests.
  bool operator==(const GraphStatistics&) const = default;
};

// StatCache byte-budget accounting (see ApproxCacheBytes in
// common/stat_cache.h): the five panel series are the footprint.
inline size_t ApproxCacheBytes(const GraphStatistics& stats) {
  return sizeof(stats) +
         stats.degree_histogram.capacity() * sizeof(std::pair<double, double>) +
         stats.hop_plot.capacity() * sizeof(double) +
         stats.scree.capacity() * sizeof(double) +
         stats.network_value.capacity() * sizeof(double) +
         stats.clustering_by_degree.capacity() * sizeof(std::pair<double, double>);
}

struct StatisticsOptions {
  uint32_t num_singular_values = 50;
  // Components of the network-value series kept (plots truncate anyway).
  uint32_t num_network_values = 1000;
  // Use the ANF sketch for hop plots above this node count (exact below).
  uint32_t exact_hop_plot_limit = 4096;
  uint32_t anf_trials = 32;
};

// The release pipeline behind every scenario: sample synthetic graphs
// from an initiator and compute the five statistics panels, once or
// averaged over R realizations.
//
// Determinism contract (matching src/common/parallel.h): Expected() fans
// realizations across the thread pool with one Rng::Split stream per
// realization — stream r belongs to realization r regardless of which
// worker runs it — and aggregates the per-realization results in
// realization order, so the mean is bit-identical at 1, 2 or 8 threads
// (tests/parallel_test.cc enforces it).
//
// StatCache integration: when the process-wide StatCache is enabled,
// Compute() and Expected() are memoized on every input they are a pure
// function of — graph fingerprint / (Θ, k, R), the statistics options,
// and the Rng state — and Compute() restores the rng to the state the
// original computation left it in, so downstream draws are identical
// whether the panels were computed or served. An ε sweep thus computes
// each deterministic panel set once, not once per ε.
class ReleasePipeline {
 public:
  explicit ReleasePipeline(
      StatisticsOptions options = {},
      SkgSampleMethod method = SkgSampleMethod::kClassSkip);

  // All five statistics of one concrete graph. The degree vector and
  // per-node triangle counts are materialized once — served through the
  // StatCache when enabled — and feed both the histogram and the
  // clustering-by-degree panel.
  GraphStatistics Compute(GraphView graph, Rng& rng) const;

  // "Expected" statistics: mean of each statistic over `realizations`
  // samples of the SKG (Θ, k) — the paper's 100-realization averages.
  // Degree histogram / clustering series are aggregated per degree value;
  // positional series (hop plot, scree, network value) are averaged per
  // index (shorter series are padded with their final value, matching how
  // saturated hop plots behave).
  GraphStatistics Expected(const Initiator2& theta, uint32_t k,
                           uint32_t realizations, Rng& rng) const;

  // One synthetic graph from an estimated parameter (the "KronFit" /
  // "KronMom" / "Private" single-realization series).
  Graph Sample(const Initiator2& theta, uint32_t k, Rng& rng) const;

  // Compute()/Expected() without memoization, for inputs that cannot
  // recur — e.g. the sample of a per-run private Θ̃, whose ε-dependent
  // fingerprint no later run shares. Values and rng consumption are
  // identical to the cached paths; the only difference is that nothing
  // is stored, which keeps the never-evicted StatCache from
  // accumulating one-off O(N) entries across a sweep.
  GraphStatistics ComputeEphemeral(GraphView graph, Rng& rng) const;
  GraphStatistics ExpectedEphemeral(const Initiator2& theta, uint32_t k,
                                    uint32_t realizations, Rng& rng) const;

  const StatisticsOptions& options() const { return options_; }
  SkgSampleMethod method() const { return method_; }

 private:
  // `cache_leaves` routes the degree vector / per-node triangle
  // intermediates through the StatCache; Expected() passes false for
  // its one-off realization samples, whose entries could never be
  // reused and would only grow the memo.
  GraphStatistics ComputeImpl(GraphView graph, Rng& rng,
                              bool cache_leaves) const;
  GraphStatistics ExpectedImpl(const Initiator2& theta, uint32_t k,
                               uint32_t realizations,
                               std::vector<Rng>& streams) const;

  StatisticsOptions options_;
  SkgSampleMethod method_;
};

// Free-function façade over a default-constructed pipeline (the pre-
// pipeline API; examples and tests use it for one-off computations).
GraphStatistics ComputeStatistics(GraphView graph, Rng& rng,
                                  const StatisticsOptions& options = {});

GraphStatistics ExpectedStatistics(const Initiator2& theta, uint32_t k,
                                   uint32_t realizations, Rng& rng,
                                   const StatisticsOptions& options = {},
                                   SkgSampleMethod method =
                                       SkgSampleMethod::kClassSkip);

Graph SampleSyntheticGraph(const Initiator2& theta, uint32_t k, Rng& rng,
                           SkgSampleMethod method = SkgSampleMethod::kClassSkip);

}  // namespace dpkron

#endif  // DPKRON_CORE_RELEASE_H_
