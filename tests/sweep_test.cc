// The sweep engine: matrix expansion order, per-run byte-identity with
// the sequential --scenario path (at several thread counts), clean
// failure isolation for degenerate runs, the JSON document, and the
// Release-build ≥3× amortization gate for a 5-ε × 3-seed sweep.

#include "src/core/sweep.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/env.h"
#include "src/common/parallel.h"
#include "src/common/stat_cache.h"
#include "src/datasets/preferential_attachment.h"
#include "src/graph/graph_io.h"
#include "src/scenarios/scenarios.h"

namespace dpkron {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterAllScenarios();
    StatCache::Instance().set_enabled(false);
    StatCache::Instance().Clear();
  }
  void TearDown() override {
    StatCache::Instance().set_enabled(false);
    StatCache::Instance().DetachDiskTier();
    StatCache::Instance().set_byte_budget(0);
    StatCache::Instance().Clear();
  }
};

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedThreads() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

// Process-unique fixture path: concurrent test runs from different
// build trees share /tmp, so a fixed name lets one process delete a
// fixture out from under another mid-test.
std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".edges";
}

// The per-run JSON with the wall-time field zeroed — everything else in
// a run document is deterministic.
std::string RunJson(ScenarioOutput& output) {
  output.set_elapsed_seconds(0.0);
  JsonWriter json;
  output.AppendRunJson(json);
  return json.str();
}

TEST_F(SweepTest, SeedAxisIsDeterministicAndAnchoredAtBase) {
  const auto seeds = SweepSeeds(20120330, 4);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds[0], 20120330u);  // a 1-seed sweep is the plain run
  EXPECT_EQ(seeds, SweepSeeds(20120330, 4));
  // Prefix-stable: growing the axis never renumbers existing cells.
  const auto longer = SweepSeeds(20120330, 6);
  for (size_t j = 0; j < seeds.size(); ++j) EXPECT_EQ(longer[j], seeds[j]);
  // Distinct seeds, and a different base gives a different axis.
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
  EXPECT_NE(SweepSeeds(1, 4)[1], seeds[1]);
}

TEST_F(SweepTest, RejectsBadSpecsWithoutRunning) {
  EXPECT_FALSE(RunSweep(SweepSpec{}).ok());
  SweepSpec unknown;
  unknown.scenarios = {"no_such_scenario"};
  EXPECT_EQ(RunSweep(unknown).status().code(), StatusCode::kNotFound);
  SweepSpec zero_seeds;
  zero_seeds.scenarios = {"fig2_as20"};
  zero_seeds.seeds = 0;
  EXPECT_FALSE(RunSweep(zero_seeds).ok());
}

TEST_F(SweepTest, MatrixExpandsInDeclaredOrder) {
  SweepSpec spec;
  spec.scenarios = {"smooth_sensitivity"};
  spec.epsilons = {0.5, 1.0};
  spec.seeds = 2;
  spec.base.smoke = true;
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok());
  const auto& runs = result.value().runs;
  ASSERT_EQ(runs.size(), 4u);  // 1 scenario × 1 dataset × 2 ε × 2 seeds
  const auto seeds = SweepSeeds(7, 2);  // smooth_sensitivity default seed
  // ε-major, seed-minor, in declared order.
  EXPECT_EQ(runs[0].epsilon, 0.5);
  EXPECT_EQ(runs[0].seed, seeds[0]);
  EXPECT_EQ(runs[1].epsilon, 0.5);
  EXPECT_EQ(runs[1].seed, seeds[1]);
  EXPECT_EQ(runs[2].epsilon, 1.0);
  EXPECT_EQ(runs[2].seed, seeds[0]);
  EXPECT_EQ(runs[3].epsilon, 1.0);
  EXPECT_EQ(runs[3].seed, seeds[1]);
  for (const SweepRun& run : runs) {
    EXPECT_TRUE(run.status.ok()) << run.status.ToString();
    EXPECT_EQ(run.scenario, "smooth_sensitivity");
    EXPECT_EQ(run.seed_index, run.seed == seeds[0] ? 0u : 1u);
  }
  EXPECT_EQ(result.value().failed_runs, 0u);
}

// The headline determinism contract: every cell of the sweep matrix is
// byte-identical to a standalone --scenario invocation with the same
// (ε, seed) — the sequential path runs UNCACHED, so this simultaneously
// proves sweep aggregation order, cross-run isolation, and
// cached-equals-uncached — and the whole document is invariant to the
// worker count.
TEST_F(SweepTest, RunsByteIdenticalToSequentialPathAtAnyThreadCount) {
  const ScenarioSpec* spec = FindScenario("fig2_as20");
  ASSERT_NE(spec, nullptr);

  // A small file-backed dataset keeps the 16 runs below (4 reference +
  // 3 thread counts × 4 sweep cells) affordable under sanitizers; the
  // dataset axis exercises the override plumbing at the same time.
  const std::string path = UniqueTempPath("sweep_ident");
  {
    Rng rng(99);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());

  SweepSpec sweep;
  sweep.scenarios = {"fig2_as20"};
  sweep.datasets = {path};
  sweep.epsilons = {0.3, 0.6};
  sweep.seeds = 2;
  sweep.base.smoke = true;
  sweep.base.kronfit_iterations = 2;
  sweep.base.dataset_cache = true;

  // Sequential reference, cache disabled: today's --scenario path.
  const auto seeds = SweepSeeds(spec->defaults.seed, 2);
  std::vector<std::string> reference;
  for (double epsilon : sweep.epsilons) {
    for (uint64_t seed : seeds) {
      ScenarioOverrides overrides = sweep.base;
      overrides.dataset = path;
      overrides.epsilon = epsilon;
      overrides.seed = seed;
      ScenarioOutput output(spec->name, /*text_out=*/nullptr);
      ASSERT_TRUE(RunScenario(*spec, overrides, output).ok());
      reference.push_back(RunJson(output));
    }
  }

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ScopedThreads scope(threads);
    StatCache::Instance().Clear();
    auto result = RunSweep(sweep);
    ASSERT_TRUE(result.ok());
    auto& runs = result.value().runs;
    ASSERT_EQ(runs.size(), reference.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_TRUE(runs[i].status.ok());
      EXPECT_EQ(RunJson(runs[i].output), reference[i]);
    }
    EXPECT_GT(StatCache::Instance().TotalCounters().hits, 0u);
  }
  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

TEST_F(SweepTest, DegenerateRunFailsInReportNotBatch) {
  SweepSpec spec;
  spec.scenarios = {"fig2_as20"};
  spec.epsilons = {0.5, 0.0};  // ε = 0 is the degenerate cell
  spec.base.smoke = true;
  spec.base.kronfit_iterations = 2;
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok());  // the batch itself succeeds
  ASSERT_EQ(result.value().runs.size(), 2u);
  EXPECT_TRUE(result.value().runs[0].status.ok());
  EXPECT_FALSE(result.value().runs[1].status.ok());
  EXPECT_EQ(result.value().runs[1].status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value().failed_runs, 1u);

  const std::string json = SweepsJson(result.value(), 1);
  EXPECT_NE(json.find("\"schema\":\"dpkron.sweeps.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"failed_runs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(json.find("\"cache\":{"), std::string::npos);
  EXPECT_NE(json.find("\"exact_sensitivity\":"), std::string::npos);
}

TEST_F(SweepTest, DatasetAxisOverridesScenarioDatasets) {
  const std::string path = UniqueTempPath("sweep_axis");
  {
    std::ofstream out(path);
    for (int i = 1; i < 80; ++i) {
      out << 0 << '\t' << i << '\n';
      out << i << '\t' << (i % 7) + 80 << '\n';
    }
  }
  std::remove(BinaryCachePath(path).c_str());

  SweepSpec spec;
  spec.scenarios = {"fig2_as20"};
  spec.datasets = {path};
  spec.base.smoke = true;
  spec.base.kronfit_iterations = 2;
  spec.base.dataset_cache = true;
  auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().runs.size(), 1u);
  EXPECT_TRUE(result.value().runs[0].status.ok())
      << result.value().runs[0].status.ToString();
  EXPECT_EQ(result.value().runs[0].dataset, path);
  EXPECT_NE(RunJson(result.value().runs[0].output).find("sweep_axis"),
            std::string::npos);
  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

// The amortization gate of the sweep engine (acceptance criterion): a
// 5-ε × 3-seed sweep of the Table 1 estimation workload over a
// ca_test.edges-scale dataset (150-node preferential-attachment graph,
// the data/ fixture's construction) must beat 15 sequential uncached
// --scenario runs by ≥3× — the cross-run stat cache pays for each
// (graph, seed) KronFit and each graph's KronMom fit, sensitivity
// profile, degree sequence and triangle counts once instead of once per
// ε. Table 1 is the scenario whose per-run work is the estimators
// themselves (a figure scenario spends most of each run computing the
// statistics panels of its ε-dependent private sample, which no cache
// can share); 150 gradient iterations is a paper-quality fit rather
// than the CI-budget default. Release builds only: Debug codegen
// shifts the cached/uncached cost ratio unpredictably.
TEST_F(SweepTest, FiveEpsilonThreeSeedSweepIsThreeTimesFaster) {
#ifndef NDEBUG
  GTEST_SKIP() << "perf gate is calibrated for Release builds";
#endif
  // The data/ca_test.edges fixture regenerated in temp (tests cannot
  // assume the repo checkout as cwd): same generator family, same size.
  const std::string path = UniqueTempPath("sweep_perf");
  {
    Rng rng(2026);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    const Graph g = PreferentialAttachmentGraph(options, rng);
    ASSERT_TRUE(WriteEdgeList(g, path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());

  SweepSpec spec;
  spec.scenarios = {"table1_parameters"};
  spec.datasets = {path};
  spec.epsilons = {0.05, 0.1, 0.2, 0.5, 1.0};
  spec.seeds = 3;
  spec.base.dataset_cache = true;
  spec.base.kronfit_iterations = 150;

  using Clock = std::chrono::steady_clock;
  // Sequential path first, uncached — 15 standalone runs.
  const ScenarioSpec* scenario = FindScenario("table1_parameters");
  ASSERT_NE(scenario, nullptr);
  const auto seeds = SweepSeeds(scenario->defaults.seed, spec.seeds);
  const auto sequential_start = Clock::now();
  for (double epsilon : spec.epsilons) {
    for (uint64_t seed : seeds) {
      ScenarioOverrides overrides = spec.base;
      overrides.dataset = path;
      overrides.epsilon = epsilon;
      overrides.seed = seed;
      ScenarioOutput output(scenario->name, /*text_out=*/nullptr);
      ASSERT_TRUE(RunScenario(*scenario, overrides, output).ok());
    }
  }
  const double sequential_seconds =
      std::chrono::duration<double>(Clock::now() - sequential_start).count();

  StatCache::Instance().Clear();  // cold cache: the sweep pays its own misses
  const auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().runs.size(), 15u);
  EXPECT_EQ(result.value().failed_runs, 0u);
  EXPECT_GT(StatCache::Instance().TotalCounters().hits, 0u);

  const double speedup = sequential_seconds / result.value().elapsed_seconds;
  EXPECT_GE(speedup, 3.0) << "sequential " << sequential_seconds
                          << "s, sweep " << result.value().elapsed_seconds
                          << "s";
  std::printf("# sweep amortization: sequential %.2fs, sweep %.2fs (%.1fx)\n",
              sequential_seconds, result.value().elapsed_seconds, speedup);

  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

// ------------------------------------------------- checkpoint / resume

TEST_F(SweepTest, RejectsBadCheckpointKnobs) {
  SweepSpec resume_without_path;
  resume_without_path.scenarios = {"fig2_as20"};
  resume_without_path.resume = true;
  EXPECT_EQ(RunSweep(resume_without_path).status().code(),
            StatusCode::kInvalidArgument);

  SweepSpec zero_attempts;
  zero_attempts.scenarios = {"fig2_as20"};
  zero_attempts.max_attempts = 0;
  EXPECT_EQ(RunSweep(zero_attempts).status().code(),
            StatusCode::kInvalidArgument);
}

// The acceptance criterion: interrupt a checkpointed sweep anywhere
// (simulated by truncating its checkpoint journal at arbitrary byte
// offsets — including mid-record), resume, and the emitted document is
// byte-identical to the uninterrupted run's — at 1, 2 and 8 threads.
TEST_F(SweepTest, InterruptedThenResumedDocumentIsByteIdentical) {
  const std::string path = UniqueTempPath("sweep_resume");
  {
    Rng rng(99);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());
  const std::string ckpt = UniqueTempPath("sweep_resume_ckpt") + ".journal";

  SweepSpec sweep;
  sweep.scenarios = {"fig2_as20"};
  sweep.datasets = {path};
  sweep.epsilons = {0.3, 0.6};
  sweep.base.smoke = true;
  sweep.base.kronfit_iterations = 2;
  sweep.base.dataset_cache = true;
  sweep.checkpoint_path = ckpt;

  // The `threads` label in the document comes from the caller; fix it so
  // documents from different worker counts are comparable bytes.
  constexpr int kDocThreads = 1;
  std::string reference;  // the uninterrupted document (threads == 1)

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ScopedThreads scope(threads);

    // Uninterrupted checkpointed run — overwrites any prior checkpoint.
    SweepSpec fresh = sweep;
    fresh.resume = false;
    auto uninterrupted = RunSweep(fresh);
    ASSERT_TRUE(uninterrupted.ok());
    EXPECT_TRUE(uninterrupted.value().stable_document);
    EXPECT_EQ(uninterrupted.value().resumed_runs, 0u);
    EXPECT_EQ(uninterrupted.value().failed_runs, 0u);
    const std::string unint_json =
        SweepsJson(uninterrupted.value(), kDocThreads);
    if (reference.empty()) {
      reference = unint_json;
      // Stable form: wall time pinned, volatile cache counters omitted.
      EXPECT_NE(reference.find("\"stable\":true"), std::string::npos);
      EXPECT_NE(reference.find("\"elapsed_seconds\":0,"), std::string::npos);
      EXPECT_EQ(reference.find("\"hits\""), std::string::npos);
    }
    // ...and invariant to the worker count, like the unstable form.
    EXPECT_EQ(unint_json, reference);

    const std::string full = GetEnv()->ReadFileToString(ckpt).value();
    // Crash points: nothing durable yet, a mid-record tear, and a fully
    // intact checkpoint (the sweep finished; only the merge was lost).
    for (const uint64_t cut :
         {uint64_t{0}, uint64_t{full.size() / 2}, uint64_t{full.size()}}) {
      SCOPED_TRACE(cut);
      ASSERT_TRUE(WriteFileDurable(ckpt, full.substr(0, cut)).ok());
      SweepSpec resumed = sweep;
      resumed.resume = true;
      auto result = RunSweep(resumed);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(SweepsJson(result.value(), kDocThreads), reference);
      if (cut == full.size()) {
        // Every cell restored, none re-executed.
        EXPECT_EQ(result.value().resumed_runs, result.value().runs.size());
        for (const SweepRun& run : result.value().runs) {
          EXPECT_EQ(run.attempts, 0u);
          EXPECT_FALSE(run.checkpointed_run_json.empty());
        }
      }
    }
  }

  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
  std::remove(ckpt.c_str());
}

TEST_F(SweepTest, ResumeRefusesACheckpointFromADifferentSpec) {
  const std::string ckpt = UniqueTempPath("sweep_foreign_ckpt") + ".journal";
  SweepSpec spec;
  spec.scenarios = {"smooth_sensitivity"};
  spec.epsilons = {0.5};
  spec.base.smoke = true;
  spec.checkpoint_path = ckpt;
  auto first = RunSweep(spec);
  ASSERT_TRUE(first.ok());

  // Same checkpoint, different ε-grid: a different matrix. Merging the
  // old cells would attribute results to the wrong (ε, seed).
  SweepSpec other = spec;
  other.epsilons = {0.5, 1.0};
  other.resume = true;
  const auto refused = RunSweep(other);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("different sweep spec"),
            std::string::npos);
  std::remove(ckpt.c_str());
}

// ------------------------------------------------------ transient retry

TEST_F(SweepTest, TransientUnavailableRetriesAndMatchesCleanRun) {
  const std::string path = UniqueTempPath("sweep_retry");
  {
    Rng rng(99);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());

  SweepSpec spec;
  spec.scenarios = {"fig2_as20"};
  spec.datasets = {path};
  spec.epsilons = {0.5};
  spec.base.smoke = true;
  spec.base.kronfit_iterations = 2;
  spec.max_attempts = 3;

  // Clean reference first (also proves retries are a no-op without
  // faults: one attempt).
  auto reference = RunSweep(spec);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference.value().runs.size(), 1u);
  ASSERT_TRUE(reference.value().runs[0].status.ok());
  EXPECT_EQ(reference.value().runs[0].attempts, 1u);
  const std::string expect = RunJson(reference.value().runs[0].output);

  // Flaky storage: the first dataset read fails UNAVAILABLE, the retry
  // succeeds — and produces the exact clean-run document.
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  env.FailReads(/*after=*/0, Status::Unavailable("flaky storage"));
  auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().runs.size(), 1u);
  EXPECT_TRUE(result.value().runs[0].status.ok())
      << result.value().runs[0].status.ToString();
  EXPECT_EQ(result.value().runs[0].attempts, 2u);
  EXPECT_EQ(RunJson(result.value().runs[0].output), expect);

  // A permanent failure must NOT retry: burning the retry budget (and
  // its backoff sleeps) on a deterministic error helps nobody.
  SweepSpec permanent = spec;
  permanent.datasets = {path + ".does_not_exist"};
  auto failed = RunSweep(permanent);
  ASSERT_TRUE(failed.ok());
  EXPECT_FALSE(failed.value().runs[0].status.ok());
  EXPECT_EQ(failed.value().runs[0].attempts, 1u);

  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

TEST_F(SweepTest, ResourceExhaustedIsTerminalNotRetried) {
  const std::string path = UniqueTempPath("sweep_exhausted");
  {
    Rng rng(99);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());

  SweepSpec spec;
  spec.scenarios = {"fig2_as20"};
  spec.datasets = {path};
  spec.epsilons = {0.5};
  spec.base.smoke = true;
  spec.base.kronfit_iterations = 2;
  spec.max_attempts = 3;

  // RESOURCE_EXHAUSTED (full disk, spent budget) is deterministic for
  // the cell: unlike kUnavailable it must fail on the FIRST attempt —
  // no retries, no backoff sleeps.
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  env.FailReads(/*after=*/0, Status::ResourceExhausted("quota exceeded"));
  auto result = RunSweep(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().runs.size(), 1u);
  EXPECT_EQ(result.value().runs[0].status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(result.value().runs[0].attempts, 1u);
  env.ClearFaults();

  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

TEST_F(SweepTest, RetryExhaustedCellIsNotCheckpointedAndResumeRerunsIt) {
  const std::string path = UniqueTempPath("sweep_unavail");
  {
    Rng rng(99);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());
  const std::string ckpt = UniqueTempPath("sweep_unavail_ckpt") + ".journal";

  SweepSpec spec;
  spec.scenarios = {"fig2_as20"};
  spec.datasets = {path};
  spec.epsilons = {0.5};
  spec.base.smoke = true;
  spec.base.kronfit_iterations = 2;
  spec.checkpoint_path = ckpt;

  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  // Storage stays down past the (single) attempt: the cell ends
  // UNAVAILABLE and must NOT be checkpointed — it never produced a
  // result worth merging.
  env.FailReads(/*after=*/0, Status::Unavailable("storage down"));
  auto down = RunSweep(spec);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down.value().failed_runs, 1u);
  EXPECT_EQ(down.value().runs[0].status.code(), StatusCode::kUnavailable);
  env.ClearFaults();

  // --resume IS the retry: the cell executes now that storage is back,
  // nothing is served from the checkpoint, and the document matches an
  // uninterrupted checkpointed run's bytes.
  SweepSpec resumed = spec;
  resumed.resume = true;
  auto recovered = RunSweep(resumed);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().resumed_runs, 0u);
  EXPECT_EQ(recovered.value().failed_runs, 0u);
  EXPECT_TRUE(recovered.value().runs[0].status.ok());

  const std::string ckpt2 = ckpt + "2";
  SweepSpec clean = spec;
  clean.checkpoint_path = ckpt2;
  auto uninterrupted = RunSweep(clean);
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(SweepsJson(recovered.value(), 1),
            SweepsJson(uninterrupted.value(), 1));

  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
  std::remove(ckpt.c_str());
  std::remove(ckpt2.c_str());
}

// ------------------------------------------------- multi-process shards

TEST_F(SweepTest, RejectsBadShardKnobs) {
  SweepSpec spec;
  spec.scenarios = {"smooth_sensitivity"};
  spec.base.smoke = true;

  SweepSpec zero_shards = spec;
  zero_shards.shards = 0;
  EXPECT_EQ(RunSweep(zero_shards).status().code(),
            StatusCode::kInvalidArgument);

  SweepSpec bad_id = spec;
  bad_id.shards = 2;
  bad_id.shard_id = 2;
  EXPECT_EQ(RunSweep(bad_id).status().code(), StatusCode::kInvalidArgument);

  // A shard worker without a checkpoint journal would execute its cells
  // and then have nowhere to put them — there is nothing to merge.
  SweepSpec no_journal = spec;
  no_journal.shards = 2;
  EXPECT_EQ(RunSweep(no_journal).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(MergeSweepShards(spec, {}).status().code(),
            StatusCode::kInvalidArgument);
}

// The tentpole acceptance criterion: run the matrix as N worker
// "processes" (isolated StatCaches sharing one on-disk tier), merge
// their shard journals, and the merged document is byte-identical to a
// single-process checkpointed run — at 1, 2 and 8 threads, cold and
// warm disk cache. Also proves the partition (each cell executed by
// exactly one worker) and that warm workers draw from the shared disk
// tier.
TEST_F(SweepTest, ShardedAndMergedDocumentIsByteIdenticalToSingleProcess) {
  const std::string path = UniqueTempPath("sweep_shard");
  {
    Rng rng(99);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());
  const std::string ckpt = UniqueTempPath("sweep_shard_ckpt") + ".journal";
  const std::string cache_root = ::testing::TempDir() + "/sweep_shard_dc_" +
                                 std::to_string(::getpid());
  std::filesystem::remove_all(cache_root);

  SweepSpec sweep;
  sweep.scenarios = {"fig2_as20"};
  sweep.datasets = {path};
  sweep.epsilons = {0.3, 0.6};
  sweep.seeds = 2;
  sweep.base.smoke = true;
  sweep.base.kronfit_iterations = 2;
  sweep.base.dataset_cache = true;

  constexpr int kDocThreads = 1;
  // The single-process reference: an ordinary checkpointed run with NO
  // disk tier.
  SweepSpec single = sweep;
  single.checkpoint_path = ckpt;
  auto ref = RunSweep(single);
  ASSERT_TRUE(ref.ok());
  const size_t cells = ref.value().runs.size();
  ASSERT_EQ(cells, 4u);
  const std::string reference = SweepsJson(ref.value(), kDocThreads);

  constexpr uint32_t kShards = 2;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(cache_root).ok());
  bool warm_worker_hit_disk = false;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ScopedThreads scope(threads);
    std::vector<size_t> executions(cells, 0);
    std::vector<std::string> shard_paths;
    for (uint32_t i = 0; i < kShards; ++i) {
      SCOPED_TRACE(i);
      StatCache::Instance().Clear();  // each worker is its own process
      SweepSpec worker = sweep;
      worker.shards = kShards;
      worker.shard_id = i;
      worker.checkpoint_path = ShardCheckpointPath(ckpt, i);
      auto result = RunSweep(worker);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value().failed_runs, 0u);
      ASSERT_EQ(result.value().runs.size(), cells);
      for (size_t c = 0; c < cells; ++c) {
        if (!result.value().runs[c].shard_skipped) ++executions[c];
      }
      if (i > 0 || threads > 1) {
        // Any worker after the very first has a warm disk tier: the
        // shared graph-keyed entries were written by its predecessors.
        EXPECT_GT(result.value().cache_total.disk_hits, 0u);
        warm_worker_hit_disk = true;
      }
      shard_paths.push_back(worker.checkpoint_path);
    }
    // The partition covers the matrix exactly once.
    for (size_t c = 0; c < cells; ++c) {
      EXPECT_EQ(executions[c], 1u) << "cell " << c;
    }
    auto merged = MergeSweepShards(sweep, shard_paths);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_TRUE(merged.value().stable_document);
    EXPECT_EQ(merged.value().failed_runs, 0u);
    EXPECT_EQ(merged.value().resumed_runs, cells);
    for (const SweepRun& run : merged.value().runs) {
      EXPECT_FALSE(run.shard_skipped);
    }
    EXPECT_EQ(SweepsJson(merged.value(), kDocThreads), reference);
  }
  EXPECT_TRUE(warm_worker_hit_disk);

  StatCache::Instance().DetachDiskTier();
  std::filesystem::remove_all(cache_root);
  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
  std::remove(ckpt.c_str());
  for (uint32_t i = 0; i < kShards; ++i) {
    std::remove(ShardCheckpointPath(ckpt, i).c_str());
  }
}

TEST_F(SweepTest, MergeRefusesMissingForeignAndIncompleteShards) {
  const std::string ckpt = UniqueTempPath("sweep_merge_ref") + ".journal";
  SweepSpec spec;
  spec.scenarios = {"smooth_sensitivity"};
  spec.epsilons = {0.5, 1.0};
  spec.base.smoke = true;

  // Run only worker 0 of 2.
  SweepSpec worker = spec;
  worker.shards = 2;
  worker.shard_id = 0;
  worker.checkpoint_path = ShardCheckpointPath(ckpt, 0);
  ASSERT_TRUE(RunSweep(worker).ok());

  // Worker 1's journal does not exist: merge refuses by name.
  const auto missing = MergeSweepShards(
      spec, {ShardCheckpointPath(ckpt, 0), ShardCheckpointPath(ckpt, 1)});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().message().find("worker never ran"),
            std::string::npos);

  // Worker 0 alone holds only its own cells: incomplete, with the
  // remedy named.
  const auto incomplete =
      MergeSweepShards(spec, {ShardCheckpointPath(ckpt, 0)});
  ASSERT_FALSE(incomplete.ok());
  EXPECT_EQ(incomplete.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(incomplete.status().message().find("cells missing"),
            std::string::npos);

  // A journal from a DIFFERENT spec (foreign ε grid → foreign matrix
  // fingerprint) refuses exactly like --resume would.
  SweepSpec other = spec;
  other.epsilons = {0.5};
  const auto foreign =
      MergeSweepShards(other, {ShardCheckpointPath(ckpt, 0)});
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(foreign.status().message().find("different sweep spec"),
            std::string::npos);

  std::remove(ShardCheckpointPath(ckpt, 0).c_str());
}

// The perf half of the tentpole (acceptance criterion): with a
// persistent tier attached, a REPEATED sweep — new process, memo gone,
// disk warm — must beat its own cold run by ≥3×, because every durable
// domain (KronFit above all, at paper-quality iteration counts) is
// deserialized instead of recomputed. Release builds only, like the
// in-memory amortization gate above.
TEST_F(SweepTest, WarmDiskRepeatedSweepIsThreeTimesFasterThanCold) {
#ifndef NDEBUG
  GTEST_SKIP() << "perf gate is calibrated for Release builds";
#endif
  const std::string path = UniqueTempPath("sweep_warm_disk");
  {
    Rng rng(2026);
    PreferentialAttachmentOptions options;
    options.num_nodes = 150;
    options.edges_per_node = 2;
    ASSERT_TRUE(
        WriteEdgeList(PreferentialAttachmentGraph(options, rng), path).ok());
  }
  std::remove(BinaryCachePath(path).c_str());
  const std::string cache_root = ::testing::TempDir() + "/sweep_warm_dc_" +
                                 std::to_string(::getpid());
  std::filesystem::remove_all(cache_root);

  SweepSpec spec;
  spec.scenarios = {"table1_parameters"};
  spec.datasets = {path};
  spec.epsilons = {0.05, 0.1, 0.2, 0.5, 1.0};
  spec.seeds = 3;
  spec.base.dataset_cache = true;
  spec.base.kronfit_iterations = 150;

  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(cache_root).ok());
  const auto cold = RunSweep(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().failed_runs, 0u);
  EXPECT_GT(cold.value().cache_total.disk_misses, 0u);
  EXPECT_EQ(cold.value().cache_total.disk_hits, 0u);

  StatCache::Instance().Clear();  // restart: memo gone, disk warm
  const auto warm = RunSweep(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().failed_runs, 0u);
  EXPECT_GT(warm.value().cache_total.disk_hits, 0u);

  // The disk hit/miss counters are part of the document (unstable form).
  const std::string json = SweepsJson(warm.value(), 1);
  EXPECT_NE(json.find("\"disk_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"disk_misses\":"), std::string::npos);

  const double speedup =
      cold.value().elapsed_seconds / warm.value().elapsed_seconds;
  EXPECT_GE(speedup, 3.0) << "cold " << cold.value().elapsed_seconds
                          << "s, warm " << warm.value().elapsed_seconds << "s";
  std::printf("# disk warm-start: cold %.2fs, warm %.2fs (%.1fx)\n",
              cold.value().elapsed_seconds, warm.value().elapsed_seconds,
              speedup);

  StatCache::Instance().DetachDiskTier();
  std::filesystem::remove_all(cache_root);
  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

}  // namespace
}  // namespace dpkron
