// Reusable parallel-execution layer: a persistent thread pool plus
// ParallelFor-style helpers that every hot kernel (sampling, triangles,
// ANF, SpMV, …) shares.
//
// Determinism contract — the load-bearing design decision:
//   * Work is divided into chunks whose boundaries depend ONLY on the
//     problem size `n` and the `grain`, never on the thread count.
//   * Chunks are identified by a deterministic index; anything
//     order-sensitive (floating-point reduction, RNG streams) is keyed
//     to the chunk index and combined in chunk order after the parallel
//     section.
//   * Which OS thread executes which chunk is dynamic (work stealing via
//     an atomic cursor), so per-*worker* state may be used only for
//     commutative accumulation (e.g. integer counts).
// Under this contract every kernel in dpkron produces bit-identical
// results at 1, 2 or 64 threads (tests/parallel_test.cc enforces it).
//
// Thread count: DPKRON_THREADS environment variable if set, else
// std::thread::hardware_concurrency(); overridable at runtime with
// SetParallelThreadCount(). Nested ParallelFor calls degrade gracefully
// to serial execution inside a worker.

#ifndef DPKRON_COMMON_PARALLEL_H_
#define DPKRON_COMMON_PARALLEL_H_

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "src/common/rng.h"

namespace dpkron {

// Current number of workers (>= 1). The calling thread counts as a
// worker, so 1 means fully serial.
int ParallelThreadCount();

// Sets the worker count (values < 1 clamp to 1). Safe to call between
// parallel sections; tears down and respawns the pool threads.
void SetParallelThreadCount(int threads);

// One chunk of an index range [0, n).
struct ParallelChunk {
  size_t begin = 0;  // first index, inclusive
  size_t end = 0;    // last index, exclusive
  size_t index = 0;  // chunk number — deterministic, 0-based
  size_t worker = 0; // executing worker in [0, ParallelThreadCount())
};

// Number of chunks ParallelForChunks creates for (n, grain): the fixed
// decomposition ceil(n / max(grain, 1)).
size_t ParallelChunkCount(size_t n, size_t grain);

// Runs fn over every chunk of [0, n); blocks until all chunks finish.
// fn must be thread-safe across chunks.
void ParallelForChunks(size_t n, size_t grain,
                       const std::function<void(const ParallelChunk&)>& fn);

// Element-wise convenience: fn(i) for every i in [0, n).
template <typename Fn>
void ParallelFor(size_t n, size_t grain, Fn&& fn) {
  ParallelForChunks(n, grain, [&fn](const ParallelChunk& chunk) {
    for (size_t i = chunk.begin; i < chunk.end; ++i) fn(i);
  });
}

// Deterministic floating-point reduction: partial_fn(begin, end) is
// evaluated per chunk and the partials are added left-to-right in chunk
// order, so the result is independent of the thread count (though it can
// differ from a single un-chunked summation — the chunking, not the
// threading, defines the value).
double ParallelSum(size_t n, size_t grain,
                   const std::function<double(size_t begin, size_t end)>&
                       partial_fn);

// N-component variant of ParallelSum under the same determinism
// contract: partial_fn(begin, end) returns a chunk-local array and the
// partials are combined component-wise in chunk order. Used for
// small fixed-width reductions (e.g. the 3-component KronFit gradient)
// where one fused pass beats N scalar reductions.
template <size_t N, typename Fn>
std::array<double, N> ParallelSumArray(size_t n, size_t grain,
                                       Fn&& partial_fn) {
  std::array<double, N> total{};
  if (n == 0) return total;
  std::vector<std::array<double, N>> partials(ParallelChunkCount(n, grain));
  ParallelForChunks(n, grain, [&](const ParallelChunk& chunk) {
    partials[chunk.index] = partial_fn(chunk.begin, chunk.end);
  });
  for (const std::array<double, N>& partial : partials) {
    for (size_t i = 0; i < N; ++i) total[i] += partial[i];
  }
  return total;
}

// `count` independent child streams split off `parent` in index order —
// the per-chunk RNG protocol: stream i belongs to chunk i regardless of
// which worker runs it.
std::vector<Rng> SplitRngStreams(Rng& parent, size_t count);

// ParallelForChunks with a per-chunk Rng derived via SplitRngStreams.
void ParallelForChunksWithRng(
    size_t n, size_t grain, Rng& rng,
    const std::function<void(const ParallelChunk&, Rng&)>& fn);

}  // namespace dpkron

#endif  // DPKRON_COMMON_PARALLEL_H_
