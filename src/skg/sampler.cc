#include "src/skg/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/macros.h"
#include "src/graph/graph_builder.h"
#include "src/skg/class_sampler.h"
#include "src/skg/kronecker.h"
#include "src/skg/moments.h"

namespace dpkron {
namespace {

Graph SampleExact2(const Initiator2& theta, uint32_t k, Rng& rng) {
  DPKRON_CHECK_MSG(k <= 14, "exact sampler limited to k <= 14 (O(4^k))");
  const EdgeProbability2 prob(theta, k);
  const uint32_t n = static_cast<uint32_t>(prob.num_nodes());
  GraphBuilder builder(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(prob(u, v))) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph SampleBallDrop(const Initiator2& theta, uint32_t k, Rng& rng,
                     const SkgSampleOptions& options) {
  DPKRON_CHECK_LT(k, 32u);
  const uint32_t n = uint32_t{1} << k;
  const double mean_edges = ExpectedEdges(theta, k);
  // Edge count is Poisson-binomial over ~N²/2 pairs with small biases:
  // variance = Σ p(1−p) ≈ mean. Normal approximation, clamped.
  double target_d = mean_edges + std::sqrt(std::max(mean_edges, 1.0)) *
                                     rng.NextGaussian();
  const double max_edges = 0.5 * double(n) * (double(n) - 1.0);
  target_d = std::min(std::max(target_d, 0.0), max_edges);
  const uint64_t target = static_cast<uint64_t>(std::llround(target_d));

  const double sum = theta.EntrySum();
  GraphBuilder builder(n);
  if (sum <= 0.0 || target == 0) return builder.Build();
  // Quadrant CDF over (bit_u, bit_v) ∈ {(0,0),(0,1),(1,0),(1,1)}.
  const double cdf0 = theta.a / sum;
  const double cdf1 = cdf0 + theta.b / sum;
  const double cdf2 = cdf1 + theta.b / sum;

  std::unordered_set<uint64_t> seen;
  seen.reserve(target * 2);
  uint64_t placed = 0;
  const uint64_t max_attempts = static_cast<uint64_t>(
      options.attempt_factor * static_cast<double>(target)) + 64;
  for (uint64_t attempt = 0; attempt < max_attempts && placed < target;
       ++attempt) {
    uint32_t u = 0, v = 0;
    for (uint32_t level = 0; level < k; ++level) {
      const double r = rng.NextDouble();
      uint32_t bu = 0, bv = 0;
      if (r >= cdf2) {
        bu = 1;
        bv = 1;
      } else if (r >= cdf1) {
        bu = 1;
      } else if (r >= cdf0) {
        bv = 1;
      }
      u = (u << 1) | bu;
      v = (v << 1) | bv;
    }
    if (u == v) continue;
    const uint64_t key = (uint64_t{std::min(u, v)} << 32) | std::max(u, v);
    if (seen.insert(key).second) {
      builder.AddEdge(u, v);
      ++placed;
    }
  }
  return builder.Build();
}

}  // namespace

Graph SampleSkg(const Initiator2& theta, uint32_t k, Rng& rng,
                const SkgSampleOptions& options) {
  DPKRON_CHECK_MSG(theta.IsValid(), "initiator entries outside [0,1]");
  DPKRON_CHECK_GE(k, 1u);
  switch (options.method) {
    case SkgSampleMethod::kExact:
      return SampleExact2(theta, k, rng);
    case SkgSampleMethod::kBallDrop:
      return SampleBallDrop(theta, k, rng, options);
    case SkgSampleMethod::kClassSkip:
      return SampleSkgClassSkip(theta, k, rng);
  }
  DPKRON_CHECK_MSG(false, "unknown sample method");
  return Graph();
}

Graph SampleSkgN(const InitiatorN& theta, uint32_t k, Rng& rng) {
  const uint64_t n64 = KroneckerNodeCount(theta.dim(), k);
  DPKRON_CHECK_MSG(n64 <= (uint64_t{1} << 14),
                   "general exact sampler limited to 2^14 nodes");
  const uint32_t n = static_cast<uint32_t>(n64);
  GraphBuilder builder(n);
  // Directed realization restricted to the lower triangle (u > v): this is
  // precisely "symmetrize A* by keeping A*_uv for u > v and drop loops".
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < u; ++v) {
      if (rng.NextBernoulli(EdgeProbabilityN(theta, k, u, v))) {
        builder.AddEdge(u, v);
      }
    }
  }
  return builder.Build();
}

}  // namespace dpkron
