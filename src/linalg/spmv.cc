#include "src/linalg/spmv.h"

#include <cmath>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/common/simd.h"
#include "src/common/vec_kernels.h"

namespace dpkron {
namespace {

// Row work is proportional to degree; modest chunks let the pool balance
// hub-heavy CSR rows. Vector helpers use coarser chunks (O(1) per item).
constexpr size_t kRowGrain = 256;
constexpr size_t kVectorGrain = 8192;

}  // namespace

void AdjacencyMatVec(GraphView graph, const std::vector<double>& x,
                     std::vector<double>* y) {
  DPKRON_CHECK_EQ(x.size(), graph.NumNodes());
  DPKRON_CHECK_EQ(y->size(), graph.NumNodes());
  DPKRON_CHECK(&x != y);
  graph.CountPass("spmv");
  // Each row's sum keeps its sequential neighbor order, so outputs are
  // bit-identical to the serial kernel at any thread count.
  ParallelFor(graph.NumNodes(), kRowGrain, [&](size_t u) {
    double sum = 0.0;
    for (Graph::NodeId v : graph.Neighbors(static_cast<Graph::NodeId>(u))) {
      sum += x[v];
    }
    (*y)[u] = sum;
  });
}

double Norm2(const std::vector<double>& x) {
  return std::sqrt(Dot(x, x));
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  DPKRON_CHECK_EQ(x.size(), y.size());
  // Chunk-ordered reduction: deterministic for a given vector length
  // regardless of thread count (see ParallelSum's contract).
  return ParallelSum(x.size(), kVectorGrain,
                     [&](size_t begin, size_t end) {
                       double sum = 0.0;
                       for (size_t i = begin; i < end; ++i) {
                         sum += x[i] * y[i];
                       }
                       return sum;
                     });
}

// Axpy and Scale are element-wise (one independent rounding per
// element), so their AVX2 paths are bit-identical by construction. Dot
// and AdjacencyMatVec stay scalar on purpose: their sequential
// chunk/row reduction order is the frozen determinism contract behind
// the Lanczos-derived scenario outputs, and vectorizing a summation
// means reassociating it.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  DPKRON_CHECK_EQ(x.size(), y->size());
  if (Avx2Active()) {
    double* y_data = y->data();
    const double* x_data = x.data();
    ParallelForChunks(x.size(), kVectorGrain,
                      [&](const ParallelChunk& chunk) {
                        AxpyAvx2(alpha, x_data + chunk.begin,
                                 y_data + chunk.begin,
                                 chunk.end - chunk.begin);
                      });
    return;
  }
  ParallelFor(x.size(), kVectorGrain,
              [&](size_t i) { (*y)[i] += alpha * x[i]; });
}

void Scale(double alpha, std::vector<double>* x) {
  if (Avx2Active()) {
    double* x_data = x->data();
    ParallelForChunks(x->size(), kVectorGrain,
                      [&](const ParallelChunk& chunk) {
                        ScaleAvx2(alpha, x_data + chunk.begin,
                                  chunk.end - chunk.begin);
                      });
    return;
  }
  ParallelFor(x->size(), kVectorGrain,
              [&](size_t i) { (*x)[i] *= alpha; });
}

}  // namespace dpkron
