#include "src/dp/star_sensitivity.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/dp/laplace_mechanism.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/degree.h"

namespace dpkron {
namespace {

// Two largest degrees of the graph.
std::pair<uint64_t, uint64_t> TopTwoDegrees(GraphView graph) {
  uint64_t top1 = 0, top2 = 0;
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    const uint64_t d = graph.Degree(u);
    if (d >= top1) {
      top2 = top1;
      top1 = d;
    } else if (d > top2) {
      top2 = d;
    }
  }
  return {top1, top2};
}

// max_s e^{−βs}·min(profile(s), cap), where profile grows at most
// linearly-with-slope `slope_bound` so the scan can stop at the cap.
template <typename Profile>
double SmoothMax(double beta, double cap, Profile&& profile) {
  DPKRON_CHECK_GT(beta, 0.0);
  double best = 0.0;
  for (uint64_t s = 0;; ++s) {
    const double value = std::min(profile(s), cap);
    best = std::max(best, std::exp(-beta * double(s)) * value);
    if (value >= cap) break;
    if (std::exp(-beta * double(s + 1)) * cap <= best) break;
  }
  return best;
}

}  // namespace

double SmoothSensitivityWedges(GraphView graph, double beta) {
  const uint32_t n = graph.NumNodes();
  if (n < 3) return 0.0;
  const auto [d1, d2] = TopTwoDegrees(graph);
  const double base = double(d1 + d2);
  const double cap = 2.0 * double(n) - 2.0;
  return SmoothMax(beta, cap,
                   [base](uint64_t s) { return base + 2.0 * double(s); });
}

double SmoothSensitivityTripins(GraphView graph, double beta) {
  const uint32_t n = graph.NumNodes();
  if (n < 4) return 0.0;
  const auto [d1, d2] = TopTwoDegrees(graph);
  const double cap = double(n - 1) * double(n - 2);
  auto choose2 = [](double d) { return d * (d - 1.0) / 2.0; };
  return SmoothMax(beta, cap, [&, d1 = d1, d2 = d2](uint64_t s) {
    return choose2(double(d1 + s)) + choose2(double(d2 + s));
  });
}

namespace {

PrivateCountResult PrivatizeWithSmoothSensitivity(double exact, double ss,
                                                  double epsilon, double beta,
                                                  Rng& rng) {
  PrivateCountResult result;
  result.beta = beta;
  result.smooth_sensitivity = ss;
  result.value = exact + 2.0 * ss / epsilon * rng.NextLaplace(1.0);
  return result;
}

}  // namespace

PrivateCountResult PrivateWedgeCount(GraphView graph, double epsilon,
                                     double delta, Rng& rng) {
  DPKRON_CHECK_GT(epsilon, 0.0);
  DPKRON_CHECK_GT(delta, 0.0);
  DPKRON_CHECK_LT(delta, 1.0);
  const double beta = epsilon / (2.0 * std::log(2.0 / delta));
  return PrivatizeWithSmoothSensitivity(
      double(CountWedges(graph)), SmoothSensitivityWedges(graph, beta),
      epsilon, beta, rng);
}

PrivateCountResult PrivateTripinCount(GraphView graph, double epsilon,
                                      double delta, Rng& rng) {
  DPKRON_CHECK_GT(epsilon, 0.0);
  DPKRON_CHECK_GT(delta, 0.0);
  DPKRON_CHECK_LT(delta, 1.0);
  const double beta = epsilon / (2.0 * std::log(2.0 / delta));
  return PrivatizeWithSmoothSensitivity(
      double(CountTripins(graph)), SmoothSensitivityTripins(graph, beta),
      epsilon, beta, rng);
}

Result<GraphFeatures> ComputeDirectPrivateFeatures(
    GraphView graph, double epsilon, double delta, PrivacyBudget& budget,
    Rng& rng, double feature_floor) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  const double eps_each = epsilon / 4.0;
  const double delta_each = delta / 3.0;
  if (Status s = budget.Spend(eps_each, 0.0, "edge_count (Laplace)"); !s.ok()) {
    return s;
  }
  if (Status s = budget.Spend(eps_each, delta_each, "wedge_count (smooth)");
      !s.ok()) {
    return s;
  }
  if (Status s = budget.Spend(eps_each, delta_each, "tripin_count (smooth)");
      !s.ok()) {
    return s;
  }
  if (Status s =
          budget.Spend(eps_each, delta_each, "triangle_count (NRS smooth)");
      !s.ok()) {
    return s;
  }

  GraphFeatures features;
  const auto noisy_edges =
      AddLaplaceNoise(double(graph.NumEdges()), 1.0, eps_each, rng);
  if (!noisy_edges.ok()) return noisy_edges.status();
  features.edges = noisy_edges.value();
  features.hairpins =
      PrivateWedgeCount(graph, eps_each, delta_each, rng).value;
  features.tripins =
      PrivateTripinCount(graph, eps_each, delta_each, rng).value;
  features.triangles =
      PrivateTriangleCount(graph, eps_each, delta_each, rng).value;
  return ClampFeatures(features, feature_floor);
}

}  // namespace dpkron
