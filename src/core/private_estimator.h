// Algorithm 1 — the paper's contribution: an (ε, δ)-differentially
// private estimator Θ̃ of the SKG initiator matrix of a sensitive graph.
//
//   1. compute the degree vector of G;
//   2. privatize it with Hay et al. at ε/2            (dp/degree_sequence);
//   3. derive Ẽ, H̃, T̃ from the noisy degrees          (estimation/features);
//   4. compute the smooth sensitivity of ∆            (dp/smooth_sensitivity);
//   5. privatize ∆ at (ε/2, δ)                        (dp/smooth_sensitivity);
//   6. run the Gleich–Owen moment estimator on ~F     (estimation/kronmom).
//
// Everything after steps 2 & 5 is post-processing of private values, so
// Θ̃ is (ε, δ)-differentially private (Corollary 4.11).

#ifndef DPKRON_CORE_PRIVATE_ESTIMATOR_H_
#define DPKRON_CORE_PRIVATE_ESTIMATOR_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dp/private_features.h"
#include "src/estimation/kronmom.h"
#include "src/graph/graph_view.h"
#include "src/skg/initiator.h"

namespace dpkron {

struct PrivateEstimatorOptions {
  PrivateFeaturesOptions features;
  KronMomOptions kronmom;
  // Kronecker order; 0 means ChooseKroneckerOrder(NumNodes()).
  uint32_t k = 0;
};

struct PrivateEstimatorResult {
  Initiator2 theta;               // Θ̃, safe to publish
  uint32_t k = 0;                 // model order, public
  double objective = 0.0;         // Eq. (2) value at Θ̃ (vs private features)
  GraphFeatures private_features; // ~F, safe to publish
  // Diagnostics — functions of the sensitive graph; NOT private, do not
  // publish (exposed for experiments that compare against ground truth).
  GraphFeatures exact_features;
  double smooth_sensitivity = 0.0;
  bool converged = false;
  // False if the triangle mechanism's smooth sensitivity came from the
  // conservative far-pair fallback; scenarios record this in their run
  // JSON so the fallback is auditable.
  bool exact_sensitivity = true;
};

// Runs Algorithm 1 on `graph` with privacy parameters (epsilon, delta),
// charging the two mechanism invocations to `budget`.
Result<PrivateEstimatorResult> EstimatePrivateSkg(
    GraphView graph, double epsilon, double delta, PrivacyBudget& budget,
    Rng& rng, const PrivateEstimatorOptions& options = {});

// Convenience overload provisioning a fresh (epsilon, delta) budget.
Result<PrivateEstimatorResult> EstimatePrivateSkg(
    GraphView graph, double epsilon, double delta, Rng& rng,
    const PrivateEstimatorOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_CORE_PRIVATE_ESTIMATOR_H_
