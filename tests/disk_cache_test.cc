// DiskCache + the StatCache disk tier: entry round-trips, every
// corruption/crash shape degrading to a clean miss (never a wrong hit,
// never an abort), the cross-process claim protocol (winner computes,
// loser adopts, stale locks break), byte-budget eviction, and the
// bit-identical-on-hit contract across a simulated process restart —
// including Rng stream replay for KronFit.

#include "src/common/disk_cache.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/env.h"
#include "src/common/stat_cache.h"
#include "src/kronfit/kronfit.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

// Process-unique cache root, removed on destruction.
class TempCacheRoot {
 public:
  explicit TempCacheRoot(const std::string& stem)
      : path_(::testing::TempDir() + "/" + stem + "_" +
              std::to_string(::getpid())) {
    std::filesystem::remove_all(path_);
  }
  ~TempCacheRoot() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Enables a clean cache (optionally with a disk tier) for one test and
// restores the disabled, detached default.
class ScopedCache {
 public:
  ScopedCache() {
    StatCache::Instance().Clear();
    StatCache::Instance().set_enabled(true);
  }
  ~ScopedCache() {
    StatCache::Instance().set_enabled(false);
    StatCache::Instance().DetachDiskTier();
    StatCache::Instance().set_byte_budget(0);
    StatCache::Instance().Clear();
  }
};

std::unique_ptr<DiskCache> MustOpen(const std::string& root) {
  auto cache = DiskCache::Open(root);
  EXPECT_TRUE(cache.ok()) << cache.status().ToString();
  return std::move(cache).value();
}

TEST(DiskCacheTest, StoreLoadRoundTripUnderANestedRoot) {
  TempCacheRoot root("disk_cache_roundtrip");
  // Nested path: Open must create every missing level.
  const auto cache = MustOpen(root.path() + "/a/b");

  EXPECT_EQ(cache->Load("d", 7).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(cache->Store("d", 7, "payload bytes").ok());
  auto loaded = cache->Load("d", 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), "payload bytes");
  EXPECT_TRUE(GetEnv()->FileExists(cache->EntryPath("d", 7)));

  // Distinct (domain, key) pairs are distinct entries.
  EXPECT_EQ(cache->Load("d", 8).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache->Load("e", 7).status().code(), StatusCode::kNotFound);

  // A second cache object on the same root (another process) sees it.
  EXPECT_EQ(MustOpen(root.path() + "/a/b")->Load("d", 7).value(),
            "payload bytes");
}

TEST(DiskCacheTest, RejectsAnEmptyRoot) {
  EXPECT_EQ(DiskCache::Open("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiskCacheTest, EveryCorruptionShapeIsACleanMissAndRewritable) {
  TempCacheRoot root("disk_cache_corrupt");
  const auto cache = MustOpen(root.path());
  const std::string path = cache->EntryPath("d", 42);
  ASSERT_TRUE(cache->Store("d", 42, "the value").ok());
  const std::string good = GetEnv()->ReadFileToString(path).value();

  // Each mutation of the entry file must read as kNotFound — and leave
  // the slot rewritable (the corpse is unlinked, the rewrite hits).
  const std::string flipped = [&] {
    std::string s = good;
    s[s.size() / 2] ^= 0x40;  // payload bit rot
    return s;
  }();
  const std::vector<std::pair<const char*, std::string>> mutations = {
      {"empty file", ""},
      {"torn tail", good.substr(0, good.size() / 2)},
      {"header only", good.substr(0, 8)},
      {"bit rot", flipped},
      {"garbage", "not a cache entry at all"},
      {"trailing junk", good + "extra bytes past the record"},
  };
  for (const auto& [label, bytes] : mutations) {
    SCOPED_TRACE(label);
    ASSERT_TRUE(WriteFileDurable(path, bytes).ok());
    EXPECT_EQ(cache->Load("d", 42).status().code(), StatusCode::kNotFound);
    EXPECT_FALSE(GetEnv()->FileExists(path));  // corpse unlinked
    ASSERT_TRUE(cache->Store("d", 42, "the value").ok());
    EXPECT_EQ(cache->Load("d", 42).value(), "the value");
  }
}

TEST(DiskCacheTest, AMisfiledEntryIsAMissNotAWrongHit) {
  TempCacheRoot root("disk_cache_misfile");
  const auto cache = MustOpen(root.path());
  ASSERT_TRUE(cache->Store("d1", 1, "value for d1/1").ok());
  // Simulate a filename collision / a tampered store: the bytes of
  // (d1, 1) sitting at (d2, 1)'s and (d1, 2)'s paths. The embedded
  // (domain, key) must refuse both.
  const std::string good =
      GetEnv()->ReadFileToString(cache->EntryPath("d1", 1)).value();
  ASSERT_TRUE(WriteFileDurable(cache->EntryPath("d2", 1), good).ok());
  ASSERT_TRUE(WriteFileDurable(cache->EntryPath("d1", 2), good).ok());
  EXPECT_EQ(cache->Load("d2", 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache->Load("d1", 2).status().code(), StatusCode::kNotFound);
  // The legitimate entry is untouched.
  EXPECT_EQ(cache->Load("d1", 1).value(), "value for d1/1");
}

TEST(DiskCacheFaultInjectionTest, CrashMidStoreNeverPublishesATornEntry) {
  TempCacheRoot root("disk_cache_crash");
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  const auto cache = MustOpen(root.path());

  // A short write followed by the kill −9 (every unsynced byte dropped):
  // the store reports failure and no entry — torn or otherwise — exists.
  env.FailWrites(/*after=*/0, Status::Internal("disk error"),
                 /*short_write_bytes=*/5);
  EXPECT_FALSE(cache->Store("d", 9, "a value that never lands").ok());
  env.ClearFaults();
  env.DropUnsyncedData();
  EXPECT_EQ(cache->Load("d", 9).status().code(), StatusCode::kNotFound);

  // A failed fsync: same contract (WriteFileDurable refuses to rename).
  env.FailSyncs(/*after=*/0, Status::Internal("fsync error"));
  EXPECT_FALSE(cache->Store("d", 9, "still never lands").ok());
  env.ClearFaults();
  EXPECT_EQ(cache->Load("d", 9).status().code(), StatusCode::kNotFound);

  // And once storage recovers, the slot fills normally — and the entry
  // survives the crash because Store synced before renaming.
  ASSERT_TRUE(cache->Store("d", 9, "durable now").ok());
  env.DropUnsyncedData();
  EXPECT_EQ(cache->Load("d", 9).value(), "durable now");
}

TEST(DiskCacheTest, ClaimLoserAdoptsTheWinnersEntry) {
  TempCacheRoot root("disk_cache_claim");
  DiskCache::Options options;
  options.lock_poll_ms = 2;
  // Two cache objects on one root — the in-process analogue of two
  // processes racing on the same cold key (no shared memory state).
  auto a = DiskCache::Open(root.path(), options);
  auto b = DiskCache::Open(root.path(), options);
  ASSERT_TRUE(a.ok() && b.ok());

  std::atomic<bool> winner_holds_lock{false};
  std::atomic<int> computes{0};
  std::string winner_bytes, loser_bytes;

  std::thread winner([&] {
    DiskEntryClaim claim(a.value().get(), "race", 77);
    ASSERT_FALSE(claim.TryLoad(&winner_bytes));  // cold key: we own it
    winner_holds_lock.store(true);
    // Hold the lock across a real compute window so the loser is forced
    // through its poll loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ++computes;
    winner_bytes = "computed once";
    claim.Store(winner_bytes);
  });
  std::thread loser([&] {
    while (!winner_holds_lock.load()) std::this_thread::yield();
    DiskEntryClaim claim(b.value().get(), "race", 77);
    if (!claim.TryLoad(&loser_bytes)) {
      ++computes;  // would only happen if the protocol degraded
      loser_bytes = "computed once";
      claim.Store(loser_bytes);
    }
  });
  winner.join();
  loser.join();

  // Both observers agree; the loser adopted instead of recomputing.
  EXPECT_EQ(winner_bytes, "computed once");
  EXPECT_EQ(loser_bytes, "computed once");
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(a.value()->Load("race", 77).value(), "computed once");
  // The lock is gone — no debris blocks the next cold key.
  EXPECT_FALSE(
      GetEnv()->FileExists(a.value()->EntryPath("race", 77) + ".lock"));
}

TEST(DiskCacheTest, AStaleLockIsBrokenNotWaitedOnForever) {
  TempCacheRoot root("disk_cache_stale");
  DiskCache::Options options;
  options.lock_poll_ms = 2;
  options.lock_stale_ms = 30;  // presume-orphaned threshold
  auto cache = DiskCache::Open(root.path(), options);
  ASSERT_TRUE(cache.ok());

  // An orphaned lock (its holder was kill −9'd mid-compute) with no
  // entry behind it.
  const std::string lock = cache.value()->EntryPath("d", 5) + ".lock";
  ASSERT_TRUE(GetEnv()->NewExclusiveFile(lock).ok());

  DiskEntryClaim claim(cache.value().get(), "d", 5);
  std::string bytes;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(claim.TryLoad(&bytes));  // broke the lock, reports a miss
  // ...after roughly the stale threshold, not hanging indefinitely.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  claim.Store("recovered");
  EXPECT_EQ(cache.value()->Load("d", 5).value(), "recovered");
  EXPECT_FALSE(GetEnv()->FileExists(lock));
}

TEST(DiskCacheTest, NullCacheClaimIsAMissWithNoopStore) {
  DiskEntryClaim claim(nullptr, "d", 1);
  std::string bytes;
  EXPECT_FALSE(claim.TryLoad(&bytes));
  claim.Store("dropped on the floor");  // must not crash
}

TEST(DiskCacheTest, PodVectorAndRngStateCodecsRoundTrip) {
  const std::vector<uint32_t> degrees = {5, 0, 17, 3};
  const std::vector<std::pair<uint64_t, uint64_t>> frontier = {{1, 2},
                                                               {30, 40}};
  const std::vector<double> empty;
  Rng rng(123);
  (void)rng.NextGaussian();  // odd draw count: have_gaussian set
  const Rng::State state = rng.SaveState();

  RecordBuilder rec;
  EncodePodVector(rec, degrees);
  EncodePodVector(rec, frontier);
  EncodePodVector(rec, empty);
  EncodeRngState(rec, state);

  RecordParser parser(rec.str());
  std::vector<uint32_t> degrees2;
  std::vector<std::pair<uint64_t, uint64_t>> frontier2;
  std::vector<double> empty2 = {1.0};  // must be cleared by decode
  Rng::State state2;
  EXPECT_TRUE(DecodePodVector(parser, &degrees2));
  EXPECT_TRUE(DecodePodVector(parser, &frontier2));
  EXPECT_TRUE(DecodePodVector(parser, &empty2));
  EXPECT_TRUE(DecodeRngState(parser, &state2));
  EXPECT_TRUE(parser.done());
  EXPECT_EQ(degrees2, degrees);
  EXPECT_EQ(frontier2, frontier);
  EXPECT_TRUE(empty2.empty());

  // The restored stream IS the saved stream.
  Rng replay(1);
  replay.RestoreState(state2);
  EXPECT_EQ(replay.StateFingerprint(), rng.StateFingerprint());

  // A byte count that is not a multiple of the element size is a
  // decode failure, not a partial vector.
  RecordBuilder bad;
  bad.Str("12345");  // 5 bytes into uint32_t elements
  RecordParser bad_parser(bad.str());
  std::vector<uint32_t> out;
  EXPECT_FALSE(DecodePodVector(bad_parser, &out));
}

// ------------------------------------------------- StatCache disk tier

TEST(StatCacheDiskTierTest, DurableEntrySurvivesAProcessRestart) {
  TempCacheRoot root("stat_cache_disk");
  ScopedCache cache;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(root.path()).ok());
  EXPECT_TRUE(StatCache::Instance().disk_attached());
  EXPECT_EQ(StatCache::Instance().disk_root(), root.path());

  int computes = 0;
  auto get = [&] {
    return StatCache::Instance().GetOrComputeDurable<std::vector<uint32_t>>(
        "test_vec", 11,
        [&] {
          ++computes;
          return std::vector<uint32_t>{4, 5, 6};
        },
        [](const std::vector<uint32_t>& v, RecordBuilder& rec) {
          EncodePodVector(rec, v);
        },
        [](RecordParser& rec) -> std::optional<std::vector<uint32_t>> {
          std::vector<uint32_t> v;
          if (!DecodePodVector(rec, &v)) return std::nullopt;
          return v;
        });
  };

  const auto cold = get();
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_misses, 1u);
  // In-memory hit: the disk is not consulted again.
  (void)get();
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_hits, 0u);

  // "Restart": the memo dies, the disk survives — a warm hit serves the
  // exact value without calling the compute function.
  StatCache::Instance().Clear();
  const auto warm = get();
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*warm, *cold);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_hits, 1u);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_misses, 0u);
}

TEST(StatCacheDiskTierTest, CorruptEntryRecomputesAndRewrites) {
  TempCacheRoot root("stat_cache_disk_corrupt");
  ScopedCache cache;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(root.path()).ok());

  int computes = 0;
  auto get = [&] {
    return StatCache::Instance().GetOrComputeDurable<uint64_t>(
        "test_u64", 3,
        [&] {
          ++computes;
          return uint64_t{777};
        },
        [](uint64_t v, RecordBuilder& rec) { rec.U64(v); },
        [](RecordParser& rec) -> std::optional<uint64_t> {
          const uint64_t v = rec.U64();
          if (!rec.ok()) return std::nullopt;
          return v;
        });
  };
  (void)get();
  ASSERT_EQ(computes, 1);

  // Corrupt the entry on disk; a "restarted" process must recompute —
  // never serve the corrupt bytes — and heal the entry for the next one.
  const auto disk = MustOpen(root.path());
  const std::string path = disk->EntryPath("test_u64", 3);
  ASSERT_TRUE(WriteFileDurable(path, "scrambled").ok());
  StatCache::Instance().Clear();
  EXPECT_EQ(*get(), 777u);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_misses, 1u);

  StatCache::Instance().Clear();
  EXPECT_EQ(*get(), 777u);  // healed: served from disk
  EXPECT_EQ(computes, 2);
}

TEST(StatCacheDiskTierTest, ADecoderShortReadIsADiskMissNotAWrongValue) {
  TempCacheRoot root("stat_cache_disk_short");
  ScopedCache cache;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(root.path()).ok());

  // A valid cache FILE whose payload is one field short of what the
  // decoder expects (a foreign/older producer): the frame-level checks
  // all pass, so only the decode-layer validation stands between this
  // entry and a wrong hit.
  const auto disk = MustOpen(root.path());
  RecordBuilder half;
  half.U32(1);  // decoder below wants two U32s
  ASSERT_TRUE(disk->Store("test_pair", 6, half.str()).ok());

  int computes = 0;
  const auto value =
      StatCache::Instance().GetOrComputeDurable<std::pair<uint32_t, uint32_t>>(
          "test_pair", 6,
          [&] {
            ++computes;
            return std::make_pair(uint32_t{1}, uint32_t{2});
          },
          [](const std::pair<uint32_t, uint32_t>& v, RecordBuilder& rec) {
            rec.U32(v.first).U32(v.second);
          },
          [](RecordParser& rec) -> std::optional<std::pair<uint32_t, uint32_t>> {
            const uint32_t a = rec.U32();
            const uint32_t b = rec.U32();
            if (!rec.ok()) return std::nullopt;
            return std::make_pair(a, b);
          });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(value->second, 2u);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_misses, 1u);
}

TEST(StatCacheDiskTierTest, StoreFailureDegradesToComputeOnly) {
  TempCacheRoot root("stat_cache_disk_storefail");
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  ScopedCache cache;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(root.path()).ok());

  env.FailWrites(/*after=*/0, Status::ResourceExhausted("disk full"));
  const auto value = StatCache::Instance().GetOrComputeDurable<uint64_t>(
      "test_u64", 8, [] { return uint64_t{31}; },
      [](uint64_t v, RecordBuilder& rec) { rec.U64(v); },
      [](RecordParser& rec) -> std::optional<uint64_t> {
        const uint64_t v = rec.U64();
        if (!rec.ok()) return std::nullopt;
        return v;
      });
  // The caller still gets its value; only persistence was lost.
  EXPECT_EQ(*value, 31u);
  env.ClearFaults();
  EXPECT_EQ(MustOpen(root.path())->Load("test_u64", 8).status().code(),
            StatusCode::kNotFound);
}

TEST(StatCacheDiskTierTest, KronFitWarmStartReplaysTheRngStream) {
  // The sharpest durable contract: a KronFit served from DISK must
  // leave the caller's rng exactly where the real fit left it, so every
  // downstream draw in a warm process matches a cold one.
  TempCacheRoot root("stat_cache_disk_kronfit");
  const Graph g = testing::CompleteGraph(32);
  KronFitOptions options;
  options.iterations = 2;

  Rng uncached_rng(42);
  const KronFitResult uncached = FitKronFit(g, uncached_rng, options);
  const uint64_t end_state = uncached_rng.StateFingerprint();

  ScopedCache cache;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(root.path()).ok());
  Rng cold_rng(42);
  (void)FitKronFitCached(g, cold_rng, options);
  ASSERT_EQ(StatCache::Instance().TotalCounters().disk_misses, 1u);

  StatCache::Instance().Clear();  // restart
  Rng warm_rng(42);
  const KronFitResult warm = FitKronFitCached(g, warm_rng, options);
  EXPECT_EQ(StatCache::Instance().TotalCounters().disk_hits, 1u);
  EXPECT_EQ(warm.theta.a, uncached.theta.a);
  EXPECT_EQ(warm.theta.b, uncached.theta.b);
  EXPECT_EQ(warm.theta.c, uncached.theta.c);
  EXPECT_EQ(warm.log_likelihood, uncached.log_likelihood);
  EXPECT_EQ(warm.k, uncached.k);
  EXPECT_EQ(warm_rng.StateFingerprint(), end_state);
}

// ------------------------------------------------- byte-budget eviction

TEST(StatCacheEvictionTest, OldestEntriesEvictToTheBudget) {
  ScopedCache cache;
  auto put = [&](uint64_t key) {
    return StatCache::Instance().GetOrCompute<std::vector<uint64_t>>(
        "test_vec", key, [&] { return std::vector<uint64_t>(128, key); });
  };
  StatCache::Instance().set_byte_budget(3000);  // fits ~2 of the ~1KiB values
  (void)put(1);
  (void)put(2);
  const uint64_t resident_two = StatCache::Instance().resident_bytes();
  EXPECT_GT(resident_two, 0u);
  EXPECT_LE(resident_two, 3000u);
  (void)put(3);  // pushes key 1 (oldest access) out
  EXPECT_LE(StatCache::Instance().resident_bytes(), 3000u);

  // Keys 2 and 3 are still resident (hits); key 1 recomputes (miss).
  const auto before = StatCache::Instance().TotalCounters();
  (void)put(3);
  (void)put(2);
  EXPECT_EQ(StatCache::Instance().TotalCounters().hits, before.hits + 2);
  (void)put(1);
  EXPECT_EQ(StatCache::Instance().TotalCounters().misses, before.misses + 1);

  // Raising the budget (or removing it) stops eviction.
  StatCache::Instance().set_byte_budget(0);
  (void)put(4);
  (void)put(5);
  const auto stable = StatCache::Instance().resident_bytes();
  (void)put(1);
  EXPECT_GT(StatCache::Instance().resident_bytes(), 0u);
  EXPECT_GE(StatCache::Instance().resident_bytes(), stable);
}

TEST(StatCacheEvictionTest, EvictedEntriesReloadFromDiskBitIdentically) {
  TempCacheRoot root("stat_cache_evict_disk");
  ScopedCache cache;
  ASSERT_TRUE(StatCache::Instance().AttachDiskTier(root.path()).ok());

  int computes = 0;
  auto get = [&](uint64_t key) {
    return StatCache::Instance().GetOrComputeDurable<std::vector<uint64_t>>(
        "test_vec", key,
        [&] {
          ++computes;
          return std::vector<uint64_t>(256, key);
        },
        [](const std::vector<uint64_t>& v, RecordBuilder& rec) {
          EncodePodVector(rec, v);
        },
        [](RecordParser& rec) -> std::optional<std::vector<uint64_t>> {
          std::vector<uint64_t> v;
          if (!DecodePodVector(rec, &v)) return std::nullopt;
          return v;
        });
  };
  // A budget that holds one ~2KiB value at a time: every get evicts the
  // previous key, so re-getting it exercises the disk reload path.
  StatCache::Instance().set_byte_budget(3000);
  const auto first = get(1);
  (void)get(2);  // evicts key 1 from memory; its bytes stay on disk
  ASSERT_EQ(computes, 2);
  const auto reloaded = get(1);
  EXPECT_EQ(computes, 2);  // reloaded, not recomputed
  EXPECT_EQ(*reloaded, *first);
  EXPECT_GE(StatCache::Instance().TotalCounters().disk_hits, 1u);
}

// ------------------------------------------- on-disk byte-budget tests

// Backdates an entry file so eviction order is deterministic regardless
// of filesystem timestamp granularity.
void AgeEntry(const std::string& path, int seconds_ago) {
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() -
                std::chrono::seconds(seconds_ago));
}

TEST(DiskCacheByteBudgetTest, ZeroBudgetMeansUnbounded) {
  TempCacheRoot root("disk_budget_unbounded");
  const auto cache = MustOpen(root.path());  // default Options: budget 0
  for (uint64_t key = 0; key < 16; ++key) {
    ASSERT_TRUE(cache->Store("d", key, std::string(1024, 'x')).ok());
  }
  for (uint64_t key = 0; key < 16; ++key) {
    EXPECT_TRUE(cache->Load("d", key).ok()) << key;
  }
  EXPECT_GE(cache->EntryBytes(), 16u * 1024);
}

TEST(DiskCacheByteBudgetTest, OldestEntriesEvictFirstAfterAStore) {
  TempCacheRoot root("disk_budget_oldest");
  DiskCache::Options options;
  // Each entry is ~1KiB of payload plus framing; room for about three.
  options.byte_budget = 3600;
  auto opened = DiskCache::Open(root.path(), options);
  ASSERT_TRUE(opened.ok());
  const auto& cache = opened.value();

  const std::string value(1024, 'v');
  ASSERT_TRUE(cache->Store("d", 1, value).ok());
  AgeEntry(cache->EntryPath("d", 1), 40);  // oldest
  ASSERT_TRUE(cache->Store("d", 2, value).ok());
  AgeEntry(cache->EntryPath("d", 2), 30);
  ASSERT_TRUE(cache->Store("d", 3, value).ok());
  AgeEntry(cache->EntryPath("d", 3), 20);
  EXPECT_TRUE(cache->Load("d", 1).ok());  // all three fit

  // The fourth store pushes the total over budget: key 1 (oldest) goes,
  // the newer entries and the just-stored one stay.
  ASSERT_TRUE(cache->Store("d", 4, value).ok());
  EXPECT_EQ(cache->Load("d", 1).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(cache->Load("d", 2).ok());
  EXPECT_TRUE(cache->Load("d", 3).ok());
  EXPECT_TRUE(cache->Load("d", 4).ok());
  EXPECT_LE(cache->EntryBytes(), options.byte_budget);
}

TEST(DiskCacheByteBudgetTest, TheJustStoredEntrySurvivesEvenAloneOverBudget) {
  TempCacheRoot root("disk_budget_keep");
  DiskCache::Options options;
  options.byte_budget = 64;  // smaller than any framed entry
  auto opened = DiskCache::Open(root.path(), options);
  ASSERT_TRUE(opened.ok());
  const auto& cache = opened.value();

  ASSERT_TRUE(cache->Store("d", 1, std::string(512, 'a')).ok());
  AgeEntry(cache->EntryPath("d", 1), 10);
  ASSERT_TRUE(cache->Store("d", 2, std::string(512, 'b')).ok());
  // Entry 1 was evictable; entry 2 is the store that triggered the pass
  // and is pinned — a budget too small for one entry must not turn
  // Store into a self-defeating write-then-unlink.
  EXPECT_EQ(cache->Load("d", 1).status().code(), StatusCode::kNotFound);
  auto kept = cache->Load("d", 2);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(kept.value(), std::string(512, 'b'));
}

TEST(DiskCacheByteBudgetTest, ALiveLockSidecarPinsItsEntry) {
  TempCacheRoot root("disk_budget_lock");
  DiskCache::Options options;
  options.byte_budget = 1500;  // room for one entry, not two
  auto opened = DiskCache::Open(root.path(), options);
  ASSERT_TRUE(opened.ok());
  const auto& cache = opened.value();

  const std::string value(1024, 'v');
  ASSERT_TRUE(cache->Store("d", 1, value).ok());
  AgeEntry(cache->EntryPath("d", 1), 60);
  // A loser of the claim race may be polling to adopt entry 1: its live
  // .lock sidecar pins the entry through an over-budget store...
  { std::ofstream(cache->EntryPath("d", 1) + ".lock"); }
  ASSERT_TRUE(cache->Store("d", 2, value).ok());
  EXPECT_TRUE(cache->Load("d", 1).ok());
  EXPECT_TRUE(cache->Load("d", 2).ok());

  // ...and once the lock releases, the next store evicts it normally.
  std::filesystem::remove(cache->EntryPath("d", 1) + ".lock");
  ASSERT_TRUE(cache->Store("d", 3, value).ok());
  EXPECT_EQ(cache->Load("d", 1).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(cache->Load("d", 3).ok());
}

TEST(DiskCacheByteBudgetTest, EvictionOnlyTouchesDpkcEntries) {
  TempCacheRoot root("disk_budget_foreign");
  DiskCache::Options options;
  options.byte_budget = 1500;
  auto opened = DiskCache::Open(root.path(), options);
  ASSERT_TRUE(opened.ok());
  const auto& cache = opened.value();

  // A foreign file sharing the root (a README, a stray journal) is
  // neither counted against the budget nor ever deleted.
  const std::string foreign = root.path() + "/README.txt";
  { std::ofstream(foreign) << std::string(4096, 'f'); }
  ASSERT_TRUE(cache->Store("d", 1, std::string(256, 'v')).ok());
  EXPECT_TRUE(cache->Load("d", 1).ok());
  EXPECT_TRUE(std::filesystem::exists(foreign));
  EXPECT_LT(cache->EntryBytes(), 4096u);  // the README isn't an entry
}

}  // namespace
}  // namespace dpkron
