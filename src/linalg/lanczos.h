// Symmetric Lanczos eigensolver for adjacency spectra.
//
// Produces the top-k eigenvalues by magnitude (and, being symmetric, the
// top-k singular values as their absolute values) — the "scree plot"
// panels of Figs 1–4. Full reorthogonalization is used: the graphs here
// are ≤ 2^14 nodes and k ≤ ~100, so robustness beats the O(m²n) cost.

#ifndef DPKRON_LINALG_LANCZOS_H_
#define DPKRON_LINALG_LANCZOS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"

namespace dpkron {

// Eigenvalues (all m Ritz values) and eigenvectors of the symmetric
// tridiagonal matrix with diagonal `diag` (size m) and off-diagonal
// `offdiag` (size m-1). Eigenvectors are returned row-major: vector i is
// eigenvectors[i*m .. i*m+m-1], matching eigenvalues[i]. Implicit-shift QL
// iteration. Exposed for testing.
struct TridiagonalEigenResult {
  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;  // row-major m x m
};
TridiagonalEigenResult TridiagonalEigen(std::vector<double> diag,
                                        std::vector<double> offdiag);

struct LanczosOptions {
  // Krylov dimension; 0 means min(n, 3k + 30).
  uint32_t iterations = 0;
};

// Top-k adjacency eigenvalues of `graph` sorted by descending magnitude.
// Requires 1 <= k <= NumNodes().
std::vector<double> TopEigenvalues(GraphView graph, uint32_t k, Rng& rng,
                                   const LanczosOptions& options = {});

// Top-k singular values (|eigenvalue|, descending) — the scree plot.
std::vector<double> TopSingularValues(GraphView graph, uint32_t k,
                                      Rng& rng,
                                      const LanczosOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_LINALG_LANCZOS_H_
