#include "src/dp/laplace_mechanism.h"

#include "src/common/macros.h"

namespace dpkron {

double AddLaplaceNoise(double value, double sensitivity, double epsilon,
                       Rng& rng) {
  DPKRON_CHECK_GT(sensitivity, 0.0);
  DPKRON_CHECK_GT(epsilon, 0.0);
  return value + rng.NextLaplace(sensitivity / epsilon);
}

std::vector<double> AddLaplaceNoiseVector(const std::vector<double>& values,
                                          double sensitivity, double epsilon,
                                          Rng& rng) {
  DPKRON_CHECK_GT(sensitivity, 0.0);
  DPKRON_CHECK_GT(epsilon, 0.0);
  const double scale = sensitivity / epsilon;
  std::vector<double> noisy(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    noisy[i] = values[i] + rng.NextLaplace(scale);
  }
  return noisy;
}

}  // namespace dpkron
