#include "src/common/table_writer.h"

#include <utility>

namespace dpkron {

SeriesTable::SeriesTable(std::string experiment)
    : experiment_(std::move(experiment)) {}

void SeriesTable::Add(const std::string& series, double x, double y) {
  rows_.push_back(Row{series, x, y});
}

void SeriesTable::Print(std::FILE* out) const {
  std::fprintf(out, "# experiment\tseries\tx\ty\n");
  for (const Row& row : rows_) {
    std::fprintf(out, "%s\t%s\t%.10g\t%.10g\n", experiment_.c_str(),
                 row.series.c_str(), row.x, row.y);
  }
}

SummaryBlock::SummaryBlock(std::string title) : title_(std::move(title)) {}

void SummaryBlock::Add(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  items_.emplace_back(key, buf);
}

void SummaryBlock::Add(const std::string& key, const std::string& value) {
  items_.emplace_back(key, value);
}

void SummaryBlock::Print(std::FILE* out) const {
  std::fprintf(out, "== %s ==\n", title_.c_str());
  for (const auto& [key, value] : items_) {
    std::fprintf(out, "  %-32s %s\n", key.c_str(), value.c_str());
  }
}

}  // namespace dpkron
