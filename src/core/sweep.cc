#include "src/core/sweep.h"

#include <chrono>
#include <utility>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/stat_cache.h"

namespace dpkron {

std::vector<uint64_t> SweepSeeds(uint64_t base_seed, uint32_t count) {
  std::vector<uint64_t> seeds;
  seeds.reserve(count);
  if (count == 0) return seeds;
  // Index 0 is the base itself: a 1-seed sweep is the plain run. Later
  // indices take the first output of independent Split streams, so the
  // axis inherits the stream-decorrelation properties of Rng::Split.
  seeds.push_back(base_seed);
  Rng root(base_seed);
  std::vector<Rng> streams = SplitRngStreams(root, count);
  for (uint32_t j = 1; j < count; ++j) seeds.push_back(streams[j].NextU64());
  return seeds;
}

Result<SweepResult> RunSweep(const SweepSpec& spec) {
  if (spec.scenarios.empty()) {
    return Status::InvalidArgument("sweep needs at least one scenario");
  }
  if (spec.seeds == 0) {
    return Status::InvalidArgument("sweep needs at least one seed");
  }
  std::vector<const ScenarioSpec*> scenario_specs;
  for (const std::string& name : spec.scenarios) {
    const ScenarioSpec* scenario = FindScenario(name);
    if (scenario == nullptr) {
      return Status::NotFound("unknown scenario in sweep: " + name);
    }
    scenario_specs.push_back(scenario);
  }

  // ------------------------------------------------- matrix expansion
  // Axis order is fixed — scenario, dataset, ε, seed — and the runs
  // vector IS the aggregation order: chunk i of the parallel section
  // writes runs[i] and nothing else, so the document never depends on
  // completion order.
  SweepResult result;
  struct RunPlan {
    const ScenarioSpec* scenario;
    ScenarioOverrides overrides;
  };
  std::vector<RunPlan> plans;
  for (const ScenarioSpec* scenario : scenario_specs) {
    const uint64_t base_seed =
        spec.base.seed ? *spec.base.seed : scenario->defaults.seed;
    const std::vector<uint64_t> seeds = SweepSeeds(base_seed, spec.seeds);
    // Collapsed single-entry axes: one pass with the base override left
    // as-is (unset = the scenario's own default).
    const size_t num_datasets = spec.datasets.empty() ? 1 : spec.datasets.size();
    const size_t num_epsilons = spec.epsilons.empty() ? 1 : spec.epsilons.size();
    for (size_t d = 0; d < num_datasets; ++d) {
      for (size_t e = 0; e < num_epsilons; ++e) {
        for (uint32_t j = 0; j < spec.seeds; ++j) {
          RunPlan plan{scenario, spec.base};
          if (!spec.datasets.empty()) plan.overrides.dataset = spec.datasets[d];
          if (!spec.epsilons.empty()) plan.overrides.epsilon = spec.epsilons[e];
          plan.overrides.seed = seeds[j];

          SweepRun run;
          run.scenario = scenario->name;
          run.dataset = plan.overrides.dataset ? *plan.overrides.dataset : "";
          run.seed = seeds[j];
          run.seed_index = j;
          result.runs.push_back(std::move(run));
          plans.push_back(std::move(plan));
        }
      }
    }
  }

  // -------------------------------------------------------- execution
  // Runs fan across the shared pool, one per chunk; nested ParallelFor
  // calls inside scenario bodies degrade to serial per the parallel.h
  // contract. The StatCache turns the matrix's redundancy (same graph
  // under many ε/seeds) into hits; the caller's enabled-state is
  // restored afterwards (counters stay readable either way), so a
  // library caller keeps the disabled-by-default contract.
  StatCache& cache = StatCache::Instance();
  const bool cache_was_enabled = cache.enabled();
  const auto counters_before = cache.DomainCounters();
  cache.set_enabled(true);
  const auto start = std::chrono::steady_clock::now();
  auto execute = [&](size_t i) {
    SweepRun& run = result.runs[i];
    // Text output suppressed: concurrent runs must not interleave on
    // stdout, and every row lands in the JSON document anyway. The
    // ScenarioOutput is built here (not during expansion) so its
    // construction cost is also off the serial path.
    run.output = ScenarioOutput(run.scenario, /*text_out=*/nullptr);
    run.status =
        RunScenario(*plans[i].scenario, plans[i].overrides, run.output);
    run.epsilon = run.output.params().epsilon;
  };
  if (plans.size() == 1) {
    // A single cell gets no cross-run concurrency from the pool, and
    // entering a parallel region would serialize the scenario's own
    // nested ParallelFor kernels — run it directly so a 1-cell sweep is
    // never slower than the standalone --scenario invocation.
    execute(0);
  } else {
    ParallelForChunks(plans.size(), 1, [&](const ParallelChunk& chunk) {
      for (size_t i = chunk.begin; i < chunk.end; ++i) execute(i);
    });
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cache.set_enabled(cache_was_enabled);
  result.cache_enabled = true;
  // Per-domain counter deltas: what THIS sweep hit and missed,
  // independent of prior activity in the process.
  for (const auto& [domain, after] : cache.DomainCounters()) {
    StatCache::Counters delta = after;
    for (const auto& [name, before] : counters_before) {
      if (name == domain) {
        delta.hits -= before.hits;
        delta.misses -= before.misses;
        break;
      }
    }
    if (delta.hits == 0 && delta.misses == 0) continue;
    result.cache_domains.emplace_back(domain, delta);
    result.cache_total.hits += delta.hits;
    result.cache_total.misses += delta.misses;
  }
  for (const SweepRun& run : result.runs) {
    if (!run.status.ok()) ++result.failed_runs;
  }
  return result;
}

std::string SweepsJson(const SweepResult& result, int threads) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("dpkron.sweeps.v1");
  json.Key("threads");
  json.Int(threads);
  json.Key("elapsed_seconds");
  json.Number(result.elapsed_seconds);
  json.Key("failed_runs");
  json.UInt(result.failed_runs);
  // This sweep's own deltas, not the live process totals.
  json.Key("cache");
  json.BeginObject();
  json.Key("enabled");
  json.Bool(result.cache_enabled);
  json.Key("hits");
  json.UInt(result.cache_total.hits);
  json.Key("misses");
  json.UInt(result.cache_total.misses);
  json.Key("domains");
  json.BeginObject();
  for (const auto& [domain, counters] : result.cache_domains) {
    json.Key(domain);
    json.BeginObject();
    json.Key("hits");
    json.UInt(counters.hits);
    json.Key("misses");
    json.UInt(counters.misses);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  json.Key("runs");
  json.BeginArray();
  for (const SweepRun& run : result.runs) {
    json.BeginObject();
    json.Key("scenario");
    json.String(run.scenario);
    json.Key("dataset");
    json.String(run.dataset);
    json.Key("epsilon");
    json.Number(run.epsilon);
    json.Key("seed");
    json.UInt(run.seed);
    json.Key("seed_index");
    json.UInt(run.seed_index);
    json.Key("ok");
    json.Bool(run.status.ok());
    json.Key("status");
    json.String(run.status.ToString());
    // The full per-run document — params, budgets (ledgers preserved),
    // exact_sensitivity, summaries, tables — exactly as the standalone
    // --scenario path emits it.
    json.Key("run");
    run.output.AppendRunJson(json);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dpkron
