#include "src/graph/bfs.h"

#include "src/common/macros.h"

namespace dpkron {

std::vector<int32_t> BfsDistances(GraphView graph, Graph::NodeId source) {
  BfsScratch scratch(graph.NumNodes());
  scratch.Run(graph, source);
  std::vector<int32_t> distances(graph.NumNodes());
  for (Graph::NodeId v = 0; v < graph.NumNodes(); ++v) {
    distances[v] = scratch.Distance(v);
  }
  return distances;
}

BfsScratch::BfsScratch(uint32_t num_nodes)
    : distance_(num_nodes, 0), stamp_(num_nodes, 0) {
  queue_.reserve(num_nodes);
}

uint32_t BfsScratch::Run(GraphView graph, Graph::NodeId source) {
  DPKRON_CHECK_EQ(graph.NumNodes(), distance_.size());
  DPKRON_CHECK_LT(source, graph.NumNodes());
  ++current_stamp_;
  queue_.clear();
  queue_.push_back(source);
  stamp_[source] = current_stamp_;
  distance_[source] = 0;
  for (size_t head = 0; head < queue_.size(); ++head) {
    const Graph::NodeId u = queue_[head];
    const int32_t next = distance_[u] + 1;
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (stamp_[v] != current_stamp_) {
        stamp_[v] = current_stamp_;
        distance_[v] = next;
        queue_.push_back(v);
      }
    }
  }
  return static_cast<uint32_t>(queue_.size());
}

}  // namespace dpkron
