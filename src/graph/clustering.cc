#include "src/graph/clustering.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/graph/degree.h"
#include "src/graph/triangles.h"

namespace dpkron {

std::vector<double> LocalClustering(GraphView graph) {
  const std::vector<uint64_t> triangles = PerNodeTriangles(graph);
  const uint32_t n = graph.NumNodes();
  std::vector<double> clustering(n, 0.0);
  ParallelFor(n, 4096, [&](size_t u) {
    const uint64_t d = graph.Degree(static_cast<Graph::NodeId>(u));
    if (d >= 2) {
      clustering[u] =
          2.0 * static_cast<double>(triangles[u]) / (double(d) * (d - 1));
    }
  });
  return clustering;
}

double AverageClustering(GraphView graph) {
  const std::vector<double> clustering = LocalClustering(graph);
  const uint32_t n = graph.NumNodes();
  // Chunk-ordered partial sums: the double reduction is a fixed function
  // of (n, grain), so the result is thread-count-invariant.
  constexpr size_t kGrain = 4096;
  std::vector<double> sums(ParallelChunkCount(n, kGrain), 0.0);
  std::vector<uint64_t> counts(sums.size(), 0);
  ParallelForChunks(n, kGrain, [&](const ParallelChunk& chunk) {
    double sum = 0.0;
    uint64_t eligible = 0;
    for (size_t u = chunk.begin; u < chunk.end; ++u) {
      if (graph.Degree(static_cast<Graph::NodeId>(u)) >= 2) {
        sum += clustering[u];
        ++eligible;
      }
    }
    sums[chunk.index] = sum;
    counts[chunk.index] = eligible;
  });
  double sum = 0.0;
  uint64_t eligible = 0;
  for (size_t chunk = 0; chunk < sums.size(); ++chunk) {
    sum += sums[chunk];
    eligible += counts[chunk];
  }
  return eligible == 0 ? 0.0 : sum / static_cast<double>(eligible);
}

double GlobalClustering(GraphView graph) {
  const uint64_t wedges = CountWedges(graph);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

std::vector<std::pair<uint32_t, double>> ClusteringByDegree(
    GraphView graph) {
  return ClusteringByDegreeFromParts(DegreeVector(graph),
                                     PerNodeTriangles(graph));
}

std::vector<std::pair<uint32_t, double>> ClusteringByDegreeFromParts(
    const std::vector<uint32_t>& degrees,
    const std::vector<uint64_t>& triangles) {
  DPKRON_CHECK_EQ(degrees.size(), triangles.size());
  uint32_t max_degree = 0;
  for (uint32_t d : degrees) max_degree = std::max(max_degree, d);
  // The by-degree aggregation is a cheap O(n) pass over already-computed
  // values; the double sums stay sequential (and therefore exactly
  // ordered) rather than paying per-degree chunked reductions.
  std::vector<double> sum(size_t(max_degree) + 1, 0.0);
  std::vector<uint64_t> count(size_t(max_degree) + 1, 0);
  for (size_t u = 0; u < degrees.size(); ++u) {
    const uint32_t d = degrees[u];
    if (d >= 2) {
      sum[d] += 2.0 * static_cast<double>(triangles[u]) /
                (double(d) * (d - 1));
      ++count[d];
    }
  }
  std::vector<std::pair<uint32_t, double>> by_degree;
  for (uint32_t d = 2; d <= max_degree; ++d) {
    if (count[d] > 0) {
      by_degree.emplace_back(d, sum[d] / static_cast<double>(count[d]));
    }
  }
  return by_degree;
}

}  // namespace dpkron
