// dpkron command-line tool: the full pipeline without writing C++.
//
//   dpkron_cli fit      <edges.txt> [--epsilon=0.2] [--delta=0.01]
//       Run Algorithm 1 on an edge-list file; print Θ̃, the budget ledger
//       and the released matching statistics.
//   dpkron_cli release  <edges.txt> <out.txt> [--epsilon=] [--delta=]
//       fit + sample one synthetic graph and write it as an edge list.
//   dpkron_cli sample   <a> <b> <c> <k> <out.txt> [--seed=]
//       Sample an SKG realization from explicit parameters (exact
//       class-skipping sampler).
//   dpkron_cli stats    <edges.txt>
//       Print the evaluation statistics of a graph (no privacy involved).
//   dpkron_cli compare  <edges.txt> [--epsilon=] [--delta=]
//       Fit KronFit, KronMom and Private side by side.
//
// Flags may appear anywhere after the subcommand.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/estimation/kronmom.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/extra_stats.h"
#include "src/graph/graph_io.h"
#include "src/graph/hop_plot.h"
#include "src/kronfit/kronfit.h"
#include "src/skg/sampler.h"

namespace {

using namespace dpkron;

struct Flags {
  double epsilon = 0.2;
  double delta = 0.01;
  uint64_t seed = 1;
  std::vector<std::string> positional;
};

Flags Parse(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epsilon=", 10) == 0) {
      flags.epsilon = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--delta=", 8) == 0) {
      flags.delta = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::atoll(argv[i] + 7);
    } else {
      flags.positional.emplace_back(argv[i]);
    }
  }
  return flags;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dpkron_cli <fit|release|sample|stats|compare> ...\n"
               "  fit <edges.txt> [--epsilon= --delta= --seed=]\n"
               "  release <edges.txt> <out.txt> [flags]\n"
               "  sample <a> <b> <c> <k> <out.txt> [--seed=]\n"
               "  stats <edges.txt>\n"
               "  compare <edges.txt> [flags]\n");
  return 2;
}

Result<Graph> Load(const std::string& path) {
  auto graph = ReadEdgeList(path);
  if (graph.ok()) {
    std::printf("loaded %s: %u nodes, %llu edges\n", path.c_str(),
                graph.value().NumNodes(),
                static_cast<unsigned long long>(graph.value().NumEdges()));
  }
  return graph;
}

int RunFit(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  auto graph = Load(flags.positional[0]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Rng rng(flags.seed);
  PrivacyBudget budget(flags.epsilon, flags.delta);
  const auto fit = EstimatePrivateSkg(graph.value(), flags.epsilon,
                                      flags.delta, budget, rng);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf("theta   = %s\n", fit.value().theta.ToString().c_str());
  std::printf("k       = %u\n", fit.value().k);
  std::printf("released statistics: %s\n",
              fit.value().private_features.ToString().c_str());
  std::printf("%s", budget.ToString().c_str());
  return 0;
}

int RunRelease(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  auto graph = Load(flags.positional[0]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Rng rng(flags.seed);
  PrivacyBudget budget(flags.epsilon, flags.delta);
  const auto fit = EstimatePrivateSkg(graph.value(), flags.epsilon,
                                      flags.delta, budget, rng);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  const Graph synthetic = SampleSyntheticGraph(fit.value().theta,
                                               fit.value().k, rng);
  if (Status s = WriteEdgeList(synthetic, flags.positional[1]); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("theta = %s (k = %u)\n", fit.value().theta.ToString().c_str(),
              fit.value().k);
  std::printf("synthetic graph (%u nodes, %llu edges) -> %s\n",
              synthetic.NumNodes(),
              static_cast<unsigned long long>(synthetic.NumEdges()),
              flags.positional[1].c_str());
  return 0;
}

int RunSample(const Flags& flags) {
  if (flags.positional.size() != 5) return Usage();
  const Initiator2 theta{std::atof(flags.positional[0].c_str()),
                         std::atof(flags.positional[1].c_str()),
                         std::atof(flags.positional[2].c_str())};
  const uint32_t k = std::atoi(flags.positional[3].c_str());
  if (!theta.IsValid() || k == 0 || k > 30) {
    std::fprintf(stderr, "invalid initiator or k\n");
    return 1;
  }
  Rng rng(flags.seed);
  const Graph g =
      SampleSyntheticGraph(theta, k, rng, SkgSampleMethod::kClassSkip);
  if (Status s = WriteEdgeList(g, flags.positional[4]); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("sampled %s^[%u]: %u nodes, %llu edges -> %s\n",
              theta.ToString().c_str(), k, g.NumNodes(),
              static_cast<unsigned long long>(g.NumEdges()),
              flags.positional[4].c_str());
  return 0;
}

int RunStats(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  auto graph = Load(flags.positional[0]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = graph.value();
  Rng rng(flags.seed);
  const GraphFeatures f = ComputeFeatures(g);
  std::printf("features:          %s\n", f.ToString().c_str());
  std::printf("max degree:        %u\n", MaxDegree(g));
  std::printf("avg clustering:    %.4f\n", AverageClustering(g));
  std::printf("global clustering: %.4f\n", GlobalClustering(g));
  std::printf("assortativity:     %+.4f\n", DegreeAssortativity(g));
  std::printf("degeneracy:        %u\n", Degeneracy(g));
  const auto hops = ExactHopPlot(g);
  std::printf("effective diam:    %u\n", EffectiveDiameter(hops));
  return 0;
}

int RunCompare(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  auto graph = Load(flags.positional[0]);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Rng rng(flags.seed);
  const KronMomResult kronmom = FitKronMom(graph.value());
  const KronFitResult kronfit = FitKronFit(graph.value(), rng);
  const auto private_fit = EstimatePrivateSkg(graph.value(), flags.epsilon,
                                              flags.delta, rng);
  std::printf("KronFit  %s\n", kronfit.theta.ToString().c_str());
  std::printf("KronMom  %s\n", kronmom.theta.ToString().c_str());
  if (private_fit.ok()) {
    std::printf("Private  %s   (eps=%g delta=%g)\n",
                private_fit.value().theta.ToString().c_str(), flags.epsilon,
                flags.delta);
    std::printf("|Private - KronMom|_inf = %.4f\n",
                MaxAbsDifference(private_fit.value().theta, kronmom.theta));
  } else {
    std::printf("Private  failed: %s\n",
                private_fit.status().ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = Parse(argc, argv, 2);
  if (command == "fit") return RunFit(flags);
  if (command == "release") return RunRelease(flags);
  if (command == "sample") return RunSample(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "compare") return RunCompare(flags);
  return Usage();
}
