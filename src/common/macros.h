// Assertion and utility macros used across dpkron.
//
// dpkron follows the Google C++ style: no exceptions. Programmer errors
// (precondition violations, broken invariants) abort via DPKRON_CHECK;
// recoverable errors flow through dpkron::Status / dpkron::Result.

#ifndef DPKRON_COMMON_MACROS_H_
#define DPKRON_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a diagnostic if `condition` is false. Active in all build
// modes: the estimation pipelines are cheap relative to the graph kernels,
// and silent precondition violations in a privacy mechanism are worse than
// the branch cost.
#define DPKRON_CHECK(condition)                                        \
  do {                                                                 \
    if (!(condition)) {                                                \
      std::fprintf(stderr, "DPKRON_CHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #condition);                    \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#define DPKRON_CHECK_MSG(condition, msg)                               \
  do {                                                                 \
    if (!(condition)) {                                                \
      std::fprintf(stderr, "DPKRON_CHECK failed at %s:%d: %s (%s)\n",  \
                   __FILE__, __LINE__, #condition, msg);               \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#define DPKRON_CHECK_GE(a, b) DPKRON_CHECK((a) >= (b))
#define DPKRON_CHECK_GT(a, b) DPKRON_CHECK((a) > (b))
#define DPKRON_CHECK_LE(a, b) DPKRON_CHECK((a) <= (b))
#define DPKRON_CHECK_LT(a, b) DPKRON_CHECK((a) < (b))
#define DPKRON_CHECK_EQ(a, b) DPKRON_CHECK((a) == (b))
#define DPKRON_CHECK_NE(a, b) DPKRON_CHECK((a) != (b))

#endif  // DPKRON_COMMON_MACROS_H_
