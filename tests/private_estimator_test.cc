#include "src/core/private_estimator.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

TEST(PrivateEstimatorTest, RecoversTruthAtHighEpsilon) {
  const Initiator2 truth{0.99, 0.45, 0.25};
  Rng rng(1);
  const Graph g = SampleSkg(truth, 12, rng);
  const auto result = EstimatePrivateSkg(g, 100.0, 0.01, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().k, 12u);
  EXPECT_NEAR(result.value().theta.a, truth.a, 0.08);
  EXPECT_NEAR(result.value().theta.b, truth.b, 0.12);
  EXPECT_NEAR(result.value().theta.c, truth.c, 0.12);
}

TEST(PrivateEstimatorTest, PaperSettingTracksNonPrivateEstimate) {
  // The paper's headline observation (Table 1, synthetic row): at
  // (ε, δ) = (0.2, 0.01) the private estimate is within ~1e-2 of the
  // non-private KronMom estimate.
  const Initiator2 truth{0.99, 0.45, 0.25};
  Rng rng(2);
  const Graph g = SampleSkg(truth, 14, rng);  // the paper's k = 14

  const KronMomResult non_private = FitKronMom(g);
  const auto private_fit = EstimatePrivateSkg(g, 0.2, 0.01, rng);
  ASSERT_TRUE(private_fit.ok());
  EXPECT_LT(MaxAbsDifference(private_fit.value().theta, non_private.theta),
            0.05);
}

TEST(PrivateEstimatorTest, BudgetLedgerMatchesAlgorithmOne) {
  Rng rng(3);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, rng);
  PrivacyBudget budget(0.5, 0.05);
  const auto result = EstimatePrivateSkg(g, 0.2, 0.01, budget, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(budget.epsilon_spent(), 0.2, 1e-12);
  EXPECT_NEAR(budget.delta_spent(), 0.01, 1e-12);
  EXPECT_NEAR(budget.epsilon_remaining(), 0.3, 1e-12);
}

TEST(PrivateEstimatorTest, FailsOnTinyGraph) {
  Rng rng(4);
  EXPECT_FALSE(EstimatePrivateSkg(testing::MakeGraph(1, {}), 1.0, 0.01, rng)
                   .ok());
}

TEST(PrivateEstimatorTest, FailsWhenBudgetExhausted) {
  Rng rng(5);
  const Graph g = testing::CycleGraph(32);
  PrivacyBudget budget(0.2, 0.01);
  ASSERT_TRUE(budget.Spend(0.15, 0.0, "previous release").ok());
  const auto result = EstimatePrivateSkg(g, 0.2, 0.01, budget, rng);
  EXPECT_FALSE(result.ok());
}

TEST(PrivateEstimatorTest, ExplicitKOverride) {
  Rng rng(6);
  const Graph g = testing::CycleGraph(100);  // ChooseK would give 7
  PrivateEstimatorOptions options;
  options.k = 9;
  const auto result = EstimatePrivateSkg(g, 1.0, 0.01, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().k, 9u);
}

TEST(PrivateEstimatorTest, OutputIsCanonicalAndValid) {
  Rng rng(7);
  const Graph g = SampleSkg({0.9, 0.6, 0.1}, 10, rng);
  const auto result = EstimatePrivateSkg(g, 0.2, 0.01, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().theta.IsValid());
  EXPECT_GE(result.value().theta.a, result.value().theta.c);
}

TEST(PrivateEstimatorTest, ReportsDiagnostics) {
  Rng rng(8);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, rng);
  const auto result = EstimatePrivateSkg(g, 0.2, 0.01, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().smooth_sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(result.value().exact_features.edges,
                   double(g.NumEdges()));
  EXPECT_GT(result.value().private_features.edges, 0.0);
}

TEST(PrivateEstimatorTest, SmallEpsilonStillProducesValidModel) {
  Rng rng(9);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, rng);
  const auto result = EstimatePrivateSkg(g, 0.01, 0.001, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().theta.IsValid());
}

TEST(PrivateEstimatorTest, DeterministicGivenSeed) {
  Rng g_rng(10);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 9, g_rng);
  Rng rng1(1234), rng2(1234);
  const auto r1 = EstimatePrivateSkg(g, 0.2, 0.01, rng1);
  const auto r2 = EstimatePrivateSkg(g, 0.2, 0.01, rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1.value().theta.a, r2.value().theta.a);
  EXPECT_DOUBLE_EQ(r1.value().theta.b, r2.value().theta.b);
  EXPECT_DOUBLE_EQ(r1.value().theta.c, r2.value().theta.c);
}

}  // namespace
}  // namespace dpkron
