// Sparse symmetric matrix–vector products for graph adjacency matrices.
//
// The Graph CSR *is* the sparse matrix; no separate copy is made. These
// kernels back the Lanczos eigensolver used for the scree and
// network-value panels.

#ifndef DPKRON_LINALG_SPMV_H_
#define DPKRON_LINALG_SPMV_H_

#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// y = A x for the (symmetric, 0/1) adjacency matrix A of `graph`.
// x.size() and y.size() must equal NumNodes(); x and y must not alias.
void AdjacencyMatVec(GraphView graph, const std::vector<double>& x,
                     std::vector<double>* y);

// Euclidean norm, dot product, and axpy helpers used by the iterative
// solvers (kept here so the solvers stay readable).
double Norm2(const std::vector<double>& x);
double Dot(const std::vector<double>& x, const std::vector<double>& y);
// y += alpha * x
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);
// x *= alpha
void Scale(double alpha, std::vector<double>* x);

}  // namespace dpkron

#endif  // DPKRON_LINALG_SPMV_H_
