#include "src/skg/kronecker.h"

#include "src/common/macros.h"

namespace dpkron {

double PowInt(double x, uint32_t n) {
  double result = 1.0;
  double base = x;
  while (n > 0) {
    if (n & 1) result *= base;
    base *= base;
    n >>= 1;
  }
  return result;
}

uint64_t KroneckerNodeCount(uint32_t initiator_dim, uint32_t k) {
  DPKRON_CHECK_GE(initiator_dim, 1u);
  uint64_t n = 1;
  for (uint32_t i = 0; i < k; ++i) {
    DPKRON_CHECK_MSG(n <= UINT64_MAX / initiator_dim,
                     "Kronecker node count overflows uint64");
    n *= initiator_dim;
  }
  return n;
}

double EdgeProbabilityN(const InitiatorN& theta, uint32_t k, uint64_t u,
                        uint64_t v) {
  const uint32_t dim = theta.dim();
  double p = 1.0;
  for (uint32_t t = 0; t < k; ++t) {
    p *= theta.At(static_cast<uint32_t>(u % dim),
                  static_cast<uint32_t>(v % dim));
    u /= dim;
    v /= dim;
  }
  return p;
}

EdgeProbability2::EdgeProbability2(const Initiator2& theta, uint32_t k)
    : k_(k) {
  DPKRON_CHECK_MSG(theta.IsValid(), "initiator entries outside [0,1]");
  DPKRON_CHECK_LT(k, 64u);
  pow_a_.resize(k + 1);
  pow_b_.resize(k + 1);
  pow_c_.resize(k + 1);
  pow_a_[0] = pow_b_[0] = pow_c_[0] = 1.0;
  for (uint32_t i = 1; i <= k; ++i) {
    pow_a_[i] = pow_a_[i - 1] * theta.a;
    pow_b_[i] = pow_b_[i - 1] * theta.b;
    pow_c_[i] = pow_c_[i - 1] * theta.c;
  }
}

std::vector<double> DenseKroneckerPower(const InitiatorN& theta, uint32_t k) {
  const uint64_t n = KroneckerNodeCount(theta.dim(), k);
  DPKRON_CHECK_MSG(n * n <= (uint64_t{1} << 26),
                   "dense Kronecker power too large");
  std::vector<double> dense(n * n);
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = 0; v < n; ++v) {
      dense[u * n + v] = EdgeProbabilityN(theta, k, u, v);
    }
  }
  return dense;
}

}  // namespace dpkron
