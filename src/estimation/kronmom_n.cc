#include "src/estimation/kronmom_n.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/macros.h"
#include "src/estimation/nelder_mead.h"
#include "src/skg/moments_n.h"

namespace dpkron {
namespace {

// Upper-triangle parameter vector <-> symmetric matrix.
std::vector<double> ToMatrix(const std::vector<double>& upper, uint32_t dim) {
  std::vector<double> entries(size_t(dim) * dim);
  size_t index = 0;
  for (uint32_t i = 0; i < dim; ++i) {
    for (uint32_t j = i; j < dim; ++j) {
      entries[i * dim + j] = upper[index];
      entries[j * dim + i] = upper[index];
      ++index;
    }
  }
  return entries;
}

double Term(const ObjectiveOptions& options, double observed,
            double expected) {
  const double distance = options.dist == DistKind::kSquared
                              ? (observed - expected) * (observed - expected)
                              : std::fabs(observed - expected);
  double norm = 1.0;
  switch (options.norm) {
    case NormKind::kF:
      norm = observed;
      break;
    case NormKind::kF2:
      norm = observed * observed;
      break;
    case NormKind::kE:
      norm = expected;
      break;
    case NormKind::kE2:
      norm = expected * expected;
      break;
  }
  return distance / std::max(std::fabs(norm), 1e-9);
}

}  // namespace

uint32_t ChooseOrderN(uint64_t num_nodes, uint32_t dim) {
  DPKRON_CHECK_GE(num_nodes, 2u);
  DPKRON_CHECK_GE(dim, 2u);
  uint32_t k = 0;
  uint64_t capacity = 1;
  while (capacity < num_nodes) {
    capacity *= dim;
    ++k;
  }
  return k;
}

double MomentObjectiveN(const std::vector<double>& upper_triangle,
                        uint32_t dim, uint32_t k,
                        const GraphFeatures& observed,
                        const ObjectiveOptions& options) {
  DPKRON_CHECK_EQ(upper_triangle.size(), size_t(dim) * (dim + 1) / 2);
  double overshoot = 0.0;
  std::vector<double> clamped = upper_triangle;
  for (double& x : clamped) {
    const double inside = std::clamp(x, 0.0, 1.0);
    overshoot += std::fabs(x - inside);
    x = inside;
  }
  const double penalty = 1e6 * overshoot * overshoot + 1e3 * overshoot;

  const auto theta = InitiatorN::Create(dim, ToMatrix(clamped, dim));
  DPKRON_CHECK(theta.ok());
  const SkgMoments expected = ExpectedMomentsN(theta.value(), k);
  double value = penalty;
  if (options.use_edges) value += Term(options, observed.edges, expected.edges);
  if (options.use_hairpins) {
    value += Term(options, observed.hairpins, expected.hairpins);
  }
  if (options.use_triangles) {
    value += Term(options, observed.triangles, expected.triangles);
  }
  if (options.use_tripins) {
    value += Term(options, observed.tripins, expected.tripins);
  }
  return value;
}

KronMomNResult FitKronMomN(const GraphFeatures& observed, uint32_t dim,
                           uint32_t k, Rng& rng,
                           const KronMomNOptions& options) {
  DPKRON_CHECK_GE(dim, 2u);
  DPKRON_CHECK_GE(k, 1u);
  const size_t num_params = size_t(dim) * (dim + 1) / 2;

  auto objective = [&](const std::vector<double>& x) {
    return MomentObjectiveN(x, dim, k, observed, options.objective);
  };

  NelderMeadOptions nm;
  nm.max_iterations = options.max_iterations;
  nm.initial_step = 0.15;

  KronMomNResult best;
  best.dim = dim;
  best.k = k;
  best.objective = std::numeric_limits<double>::infinity();
  for (uint32_t start = 0; start < options.num_starts; ++start) {
    std::vector<double> x0(num_params);
    if (start == 0) {
      // Canonical decreasing start: strong core, weaker periphery.
      size_t index = 0;
      for (uint32_t i = 0; i < dim; ++i) {
        for (uint32_t j = i; j < dim; ++j) {
          x0[index++] = std::max(0.1, 0.95 - 0.3 * (i + j));
        }
      }
    } else {
      for (double& x : x0) x = rng.NextDouble();
    }
    const NelderMeadResult run = NelderMead(objective, x0, nm);
    if (run.value < best.objective) {
      best.objective = run.value;
      std::vector<double> clamped = run.point;
      for (double& x : clamped) x = std::clamp(x, 0.0, 1.0);
      best.entries = ToMatrix(clamped, dim);
    }
  }
  return best;
}

KronMomNResult FitKronMomN(GraphView graph, uint32_t dim, Rng& rng,
                           const KronMomNOptions& options) {
  return FitKronMomN(ComputeFeatures(graph), dim,
                     ChooseOrderN(graph.NumNodes(), dim), rng, options);
}

}  // namespace dpkron
