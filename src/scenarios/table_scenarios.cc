// Table 1 and the Sala-et-al. dK-2 comparison as registered scenarios
// (ported from the deleted table1_parameters / comparison_dk2 binaries).
// RNG consumption order matches the pre-engine binaries, so fixed-seed
// rows reproduce them.

#include "src/scenarios/scenarios.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/core/scenario.h"
#include "src/datasets/registry.h"
#include "src/dk/dk2.h"
#include "src/estimation/kronmom.h"
#include "src/graph/anf.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/extra_stats.h"
#include "src/graph/hop_plot.h"
#include "src/kronfit/kronfit.h"

namespace dpkron {
namespace {

// ------------------------------------------------------------- Table 1
//
// Initiator-parameter estimates (a, b, c) from KronFit, KronMom and the
// Private estimator on the four evaluation datasets. Paper values are
// printed next to the measured ones; absolute agreement is expected only
// on the Synthetic-SKG row (identical construction).

Status RunTable1(const ScenarioSpec& spec, const ScenarioParams& p,
                 ScenarioOutput& out) {
  (void)spec;
  out.Printf("# table1_parameters: epsilon=%g delta=%g\n", p.epsilon,
             p.delta);
  out.Printf("# experiment\tseries\tx\ty\n");

  // JSON copy of the machine rows; the text rows keep the legacy printf
  // format verbatim, so the table itself stays out of the TSV pass.
  SeriesTable& json_rows = out.Table("parameters", /*print=*/false);

  auto print_row = [&out](const char* label, const Initiator2& theta) {
    out.Printf("  %-26s a=%.4f  b=%.4f  c=%.4f\n", label, theta.a, theta.b,
               theta.c);
  };

  Rng rng(p.seed);
  int dataset_index = 0;
  const std::vector<DatasetInfo> datasets = ScenarioDatasets(p);
  for (const DatasetInfo& info : datasets) {
    // Smoke mode keeps the first two rows (one affiliation graph, which
    // exercises the full route, would hide dataset-dispatch bugs).
    if (p.smoke && dataset_index >= 2) break;
    Rng dataset_rng = rng.Split();
    auto loaded = LoadScenarioGraph(info.name, p, dataset_rng);
    if (!loaded.ok()) return loaded.status();
    // The handle owns the backing (in-RAM or mmap'd); kernels see its
    // GraphView either way.
    const GraphHandle graph = std::move(loaded).value();

    const KronMomResult kronmom = FitKronMom(graph);

    KronFitOptions kf_options;
    kf_options.iterations = p.kronfit_iterations;
    Rng kronfit_rng = rng.Split();
    const KronFitResult kronfit =
        FitKronFitCached(graph, kronfit_rng, kf_options);

    // The private estimator is a randomized mechanism; a single draw can
    // be unlucky when the triangle count is noise-dominated (sparse
    // graphs at ε = 0.2). Run three independent trials and report the
    // one with median distance to the non-private estimate, plus the
    // spread, so the variability is visible rather than hidden behind a
    // seed choice. (The paper reports one draw.)
    struct PrivateTrial {
      Initiator2 theta;
      double distance;
    };
    std::vector<PrivateTrial> trials;
    for (int t = 0; t < 3; ++t) {
      Rng private_rng = rng.Split();
      PrivacyBudget budget(p.epsilon, p.delta);
      const auto fit =
          EstimatePrivateSkg(graph, p.epsilon, p.delta, budget, private_rng);
      if (!fit.ok()) {
        return Status(fit.status().code(),
                      "private estimation failed on " + info.name + ": " +
                          fit.status().ToString());
      }
      out.RecordBudget(budget, /*print=*/false);
      out.RecordExactSensitivity(fit.value().exact_sensitivity);
      trials.push_back({fit.value().theta,
                        MaxAbsDifference(fit.value().theta, kronmom.theta)});
    }
    std::sort(trials.begin(), trials.end(),
              [](const PrivateTrial& x, const PrivateTrial& y) {
                return x.distance < y.distance;
              });
    const PrivateTrial& median_trial = trials[1];

    out.Printf("\n== Table 1 row: %s (paper: %s, N=%u E=%llu) ==\n",
               info.name.c_str(), info.paper_name.c_str(), info.paper_nodes,
               static_cast<unsigned long long>(info.paper_edges));
    out.Printf("  measured: N=%u E=%llu\n", graph.NumNodes(),
               static_cast<unsigned long long>(graph.NumEdges()));
    // File-backed --dataset rows have no Table 1 paper column.
    const bool has_paper_row = info.generator != nullptr;
    print_row("KronFit (measured)", kronfit.theta);
    if (has_paper_row) print_row("KronFit (paper)", info.paper_kronfit);
    print_row("KronMom (measured)", kronmom.theta);
    if (has_paper_row) print_row("KronMom (paper)", info.paper_kronmom);
    print_row("Private (measured,median)", median_trial.theta);
    if (has_paper_row) print_row("Private (paper)", info.paper_private);
    out.Printf("  |Private - KronMom| (L_inf): median=%.4f"
               "  [min=%.4f max=%.4f over 3 trials]\n",
               median_trial.distance, trials.front().distance,
               trials.back().distance);

    // Machine-readable rows: x encodes dataset index, series the cell.
    auto emit = [&](const char* series, const Initiator2& t) {
      out.Printf("table1\t%s/%s/a\t%d\t%.6f\n", info.name.c_str(), series,
                 dataset_index, t.a);
      out.Printf("table1\t%s/%s/b\t%d\t%.6f\n", info.name.c_str(), series,
                 dataset_index, t.b);
      out.Printf("table1\t%s/%s/c\t%d\t%.6f\n", info.name.c_str(), series,
                 dataset_index, t.c);
      json_rows.Add(info.name + "/" + series + "/a", dataset_index, t.a);
      json_rows.Add(info.name + "/" + series + "/b", dataset_index, t.b);
      json_rows.Add(info.name + "/" + series + "/c", dataset_index, t.c);
    };
    emit("kronfit", kronfit.theta);
    emit("kronmom", kronmom.theta);
    emit("private", median_trial.theta);
    ++dataset_index;
  }
  return Status::Ok();
}

// ------------------------------------------------- dK-2 comparison (§5)
//
// Paper §5's first future-work item: compare the estimated statistics of
// synthetic graphs from the private SKG route against a Sala-style
// private dK-2 release, on the CA-GrQC-like workload over an ε sweep.

struct Dk2Summary {
  double edges = 0.0;
  double max_degree = 0.0;
  double avg_clustering = 0.0;
  double assortativity = 0.0;
  double effective_diameter = 0.0;
};

Dk2Summary Summarize(GraphView g, Rng& rng) {
  Dk2Summary s;
  s.edges = double(g.NumEdges());
  s.max_degree = double(MaxDegree(g));
  s.avg_clustering = AverageClustering(g);
  s.assortativity = DegreeAssortativity(g);
  AnfOptions anf;
  const auto hops =
      g.NumNodes() <= 4096 ? ExactHopPlot(g) : ApproxHopPlot(g, rng, anf);
  s.effective_diameter = hops.empty() ? 0.0 : double(EffectiveDiameter(hops));
  return s;
}

Status RunComparisonDk2(const ScenarioSpec& spec, const ScenarioParams& p,
                        ScenarioOutput& out) {
  out.Printf("# comparison_dk2: private SKG release vs Sala-style dK-2 "
             "release (paper section 5 future work)\n");
  Rng rng(p.seed);
  auto loaded = LoadScenarioGraph(spec.datasets.front(), p, rng);
  if (!loaded.ok()) return loaded.status();
  const GraphHandle original = std::move(loaded).value();
  Rng summary_rng = rng.Split();
  const Dk2Summary truth = Summarize(original, summary_rng);
  out.Printf("original: E=%.0f dmax=%.0f cc=%.3f r=%.3f diam90=%.0f\n",
             truth.edges, truth.max_degree, truth.avg_clustering,
             truth.assortativity, truth.effective_diameter);

  // The dK-2 route's own ground truth: the exact JDD truncated at the
  // public degree cap (the best any capped release could do).
  const uint32_t kDegreeCap = 64;
  const Dk2Table exact_table = Dk2Table::FromGraph(original);
  Dk2Table capped_exact;
  for (const auto& [key, count] : exact_table.cells()) {
    if (key.second <= kDegreeCap) {
      capped_exact.Set(key.first, key.second, count);
    }
  }
  out.Printf("dk2 cap=%u keeps %.0f of %.0f edges\n", kDegreeCap,
             capped_exact.TotalEdges(), exact_table.TotalEdges());

  SeriesTable& table = out.Table("statistic_vs_epsilon");
  auto emit = [&table, &truth](const char* method, double epsilon,
                               const Dk2Summary& s) {
    table.Add(std::string(method) + "/edges_rel_err", epsilon,
              std::fabs(s.edges - truth.edges) / truth.edges);
    table.Add(std::string(method) + "/clustering", epsilon, s.avg_clustering);
    table.Add(std::string(method) + "/assortativity", epsilon,
              s.assortativity);
    table.Add(std::string(method) + "/max_degree", epsilon, s.max_degree);
    table.Add(std::string(method) + "/effective_diameter", epsilon,
              s.effective_diameter);
  };
  // Reference rows at "epsilon = infinity" sentinel 1e6.
  emit("original", 1e6, truth);

  const ReleasePipeline pipeline;
  for (double epsilon : p.sweep_epsilons) {
    // (a) Paper's route: private SKG estimate, sample one realization.
    Rng skg_rng = rng.Split();
    PrivacyBudget skg_budget(epsilon, p.delta);
    const auto fit =
        EstimatePrivateSkg(original, epsilon, p.delta, skg_budget, skg_rng);
    if (fit.ok()) {
      out.RecordBudget(skg_budget, /*print=*/false);
      out.RecordExactSensitivity(fit.value().exact_sensitivity);
      const Graph sample =
          pipeline.Sample(fit.value().theta, fit.value().k, skg_rng);
      Rng stats_rng = rng.Split();
      const Dk2Summary s = Summarize(sample, stats_rng);
      emit("skg", epsilon, s);
      out.Printf("eps=%-6g skg: E=%.0f dmax=%.0f cc=%.3f r=%+.3f "
                 "diam90=%.0f\n",
                 epsilon, s.edges, s.max_degree, s.avg_clustering,
                 s.assortativity, s.effective_diameter);
    }

    // (b) Sala-style route: private dK-2, regenerate. The route needs its
    // own mitigations to be competitive at all (Sala et al.'s system adds
    // partitioned noise and operates at large ε): a public degree cap
    // keeps the sensitivity 4·cap+1 manageable (hubs above the cap are
    // truncated) and a softer sparsification threshold keeps small real
    // cells alive at the cost of some spurious ones.
    Rng dk_rng = rng.Split();
    PrivacyBudget dk_budget(epsilon, 0.0);
    Dk2PrivatizeOptions dk_options;
    dk_options.degree_cap = kDegreeCap;
    dk_options.threshold_factor = 0.5;
    const auto noisy_table =
        PrivatizeDk2(exact_table, epsilon, dk_budget, dk_rng, dk_options);
    if (noisy_table.ok()) {
      out.RecordBudget(dk_budget, /*print=*/false);
      const double jdd_l1 =
          Dk2Table::L1Distance(noisy_table.value(), capped_exact) /
          std::max(capped_exact.TotalEdges(), 1.0);
      table.Add("dk2/jdd_l1_rel", epsilon, jdd_l1);
      const Graph released = SampleDk2Graph(noisy_table.value(), dk_rng);
      Rng stats_rng = rng.Split();
      const Dk2Summary s = Summarize(released, stats_rng);
      emit("dk2", epsilon, s);
      out.Printf("eps=%-6g dk2: E=%.0f dmax=%.0f cc=%.3f r=%+.3f "
                 "diam90=%.0f jddL1rel=%.3f\n",
                 epsilon, s.edges, s.max_degree, s.avg_clustering,
                 s.assortativity, s.effective_diameter, jdd_l1);
    }
  }
  return Status::Ok();
}

}  // namespace

void RegisterTableScenarios() {
  {
    ScenarioSpec spec;
    spec.name = "table1_parameters";
    spec.legacy_binary = "table1_parameters";
    spec.description =
        "Table 1: initiator estimates (a, b, c) on all datasets, "
        "paper vs measured";
    for (const DatasetInfo& info : PaperDatasets()) {
      spec.datasets.push_back(info.name);
    }
    spec.estimators = {"kronfit", "kronmom", "private"};
    spec.run = RunTable1;
    RegisterScenario(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "comparison_dk2";
    spec.legacy_binary = "comparison_dk2";
    spec.description =
        "Section 5 comparison: private SKG release vs Sala-style dK-2 "
        "over an epsilon sweep";
    spec.datasets = {"CA-GrQC-like"};
    spec.estimators = {"private", "dk2"};
    spec.defaults.seed = 1234;
    spec.defaults.sweep_epsilons = {0.2, 1.0, 5.0, 20.0, 100.0};
    spec.run = RunComparisonDk2;
    RegisterScenario(std::move(spec));
  }
}

}  // namespace dpkron
