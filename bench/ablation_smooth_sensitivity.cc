// Ablation / paper §5 future work: "examine the smooth sensitivity of ∆
// as a function of the size of the graph G … preliminary experiments
// indicate that in the SKG model, SS_∆ might grow slowly."
//
// We measure LS_∆ and SS_{β,∆} on SKG samples of increasing order k
// (fixed Θ = [0.99 0.45; 0.45 0.25]) and on the co-authorship-like
// generator at increasing sizes, and print the noise scale 2·SS/ε that
// Algorithm 1 would add versus the true triangle count — the quantity
// that decides whether ∆̃ is usable.

#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/datasets/affiliation.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"

int main() {
  using namespace dpkron;
  const double epsilon = 0.1;  // the ε/2 share of Algorithm 1 at ε = 0.2
  const double delta = 0.01;
  const double beta = epsilon / (2.0 * std::log(2.0 / delta));
  std::printf("# ablation_smooth_sensitivity: epsilon=%g delta=%g beta=%g\n",
              epsilon, delta, beta);

  SeriesTable local("smooth_sensitivity/local_sensitivity");
  SeriesTable smooth("smooth_sensitivity/smooth_sensitivity");
  SeriesTable relative("smooth_sensitivity/noise_over_triangles");

  Rng rng(7);
  for (uint32_t k = 6; k <= 13; ++k) {
    const Graph g = SampleSkg({0.99, 0.45, 0.25}, k, rng);
    const TriangleSensitivityProfile profile(g);
    const double n = double(g.NumNodes());
    const double ss = profile.SmoothSensitivity(beta);
    const double triangles = double(CountTriangles(g));
    local.Add("skg", n, double(profile.LocalSensitivity()));
    smooth.Add("skg", n, ss);
    if (triangles > 0) {
      relative.Add("skg", n, (2.0 * ss / epsilon) / triangles);
    }
  }

  for (uint32_t authors = 512; authors <= 8192; authors *= 2) {
    AffiliationOptions options;
    options.num_authors = authors;
    options.num_papers = (authors * 5) / 8;
    const Graph g = AffiliationGraph(options, rng);
    const TriangleSensitivityProfile profile(g);
    const double ss = profile.SmoothSensitivity(beta);
    const double triangles = double(CountTriangles(g));
    local.Add("coauthorship", double(authors),
              double(profile.LocalSensitivity()));
    smooth.Add("coauthorship", double(authors), ss);
    if (triangles > 0) {
      relative.Add("coauthorship", double(authors),
                   (2.0 * ss / epsilon) / triangles);
    }
  }

  local.Print();
  smooth.Print();
  relative.Print();
  return 0;
}
