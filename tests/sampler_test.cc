#include "src/skg/sampler.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "src/graph/triangles.h"
#include "src/skg/kronecker.h"
#include "src/skg/moments.h"

namespace dpkron {
namespace {

TEST(SamplerTest, NodeCountIsTwoToK) {
  Rng rng(1);
  for (uint32_t k : {1u, 3u, 8u}) {
    const Graph g = SampleSkg({0.9, 0.5, 0.2}, k, rng);
    EXPECT_EQ(g.NumNodes(), uint32_t{1} << k);
  }
}

TEST(SamplerTest, AllOnesGivesCompleteGraph) {
  Rng rng(2);
  const Graph g = SampleSkg({1.0, 1.0, 1.0}, 4, rng);
  EXPECT_EQ(g.NumEdges(), 16u * 15 / 2);
}

TEST(SamplerTest, AllZerosGivesEmptyGraph) {
  Rng rng(3);
  const Graph g = SampleSkg({0.0, 0.0, 0.0}, 6, rng);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(SamplerTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const Graph ga = SampleSkg({0.9, 0.5, 0.2}, 7, a);
  const Graph gb = SampleSkg({0.9, 0.5, 0.2}, 7, b);
  EXPECT_EQ(ga.Edges(), gb.Edges());
}

TEST(SamplerTest, EmpiricalEdgeCountMatchesExpectation) {
  const Initiator2 theta{0.9, 0.5, 0.3};
  const uint32_t k = 7;
  Rng rng(5);
  double total = 0.0;
  const int runs = 200;
  for (int r = 0; r < runs; ++r) {
    total += double(SampleSkg(theta, k, rng).NumEdges());
  }
  const double mean = total / runs;
  const double expected = ExpectedEdges(theta, k);
  EXPECT_NEAR(mean, expected, 0.04 * expected);
}

TEST(SamplerTest, PerPairFrequencyMatchesProbability) {
  // Single fixed pair sampled many times at k=3.
  const Initiator2 theta{0.9, 0.6, 0.3};
  const EdgeProbability2 prob(theta, 3);
  Rng rng(7);
  const uint64_t u = 2, v = 5;
  int hits = 0;
  const int runs = 4000;
  for (int r = 0; r < runs; ++r) {
    hits += SampleSkg(theta, 3, rng).HasEdge(u, v);
  }
  EXPECT_NEAR(hits / double(runs), prob(u, v), 0.03);
}

TEST(BallDropTest, EdgeCountTracksExpectation) {
  const Initiator2 theta{0.99, 0.45, 0.25};
  const uint32_t k = 10;
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kBallDrop;
  Rng rng(11);
  double total = 0.0;
  const int runs = 30;
  for (int r = 0; r < runs; ++r) {
    total += double(SampleSkg(theta, k, rng, options).NumEdges());
  }
  const double mean = total / runs;
  const double expected = ExpectedEdges(theta, k);
  EXPECT_NEAR(mean, expected, 0.05 * expected);
}

TEST(BallDropTest, AggregateStatisticsCloseToExactSampler) {
  // The fast generator is approximate per-pair, but wedges/triangles —
  // what the estimators consume — must track the exact sampler closely.
  const Initiator2 theta{0.95, 0.55, 0.25};
  const uint32_t k = 9;
  Rng rng_exact(13), rng_fast(17);
  SkgSampleOptions fast;
  fast.method = SkgSampleMethod::kBallDrop;

  double exact_wedges = 0, fast_wedges = 0;
  double exact_tri = 0, fast_tri = 0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    const Graph ge = SampleSkg(theta, k, rng_exact);
    const Graph gf = SampleSkg(theta, k, rng_fast, fast);
    exact_wedges += double(CountWedges(ge));
    fast_wedges += double(CountWedges(gf));
    exact_tri += double(CountTriangles(ge));
    fast_tri += double(CountTriangles(gf));
  }
  EXPECT_NEAR(fast_wedges / exact_wedges, 1.0, 0.15);
  EXPECT_NEAR(fast_tri / exact_tri, 1.0, 0.30);
}

TEST(BallDropTest, HandlesDenseInitiator) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kBallDrop;
  Rng rng(19);
  const Graph g = SampleSkg({1.0, 1.0, 1.0}, 4, rng, options);
  // Target ≈ all 120 pairs; duplicate-retry must not spin forever.
  EXPECT_GT(g.NumEdges(), 100u);
  EXPECT_LE(g.NumEdges(), 120u);
}

TEST(EdgeSkipTest, NodeCountAndSimpleGraphInvariants) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  Rng rng(41);
  const Graph g = SampleSkg({0.9, 0.5, 0.2}, 10, rng, options);
  EXPECT_EQ(g.NumNodes(), 1024u);
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_LT(u, v);  // canonical, loop-free
  }
}

TEST(EdgeSkipTest, DeterministicGivenSeed) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  Rng a(42), b(42);
  const Graph ga = SampleSkg({0.9, 0.5, 0.2}, 11, a, options);
  const Graph gb = SampleSkg({0.9, 0.5, 0.2}, 11, b, options);
  EXPECT_EQ(ga.Edges(), gb.Edges());
}

TEST(EdgeSkipTest, AllZerosGivesEmptyGraph) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  Rng rng(43);
  EXPECT_EQ(SampleSkg({0.0, 0.0, 0.0}, 8, rng, options).NumEdges(), 0u);
}

TEST(EdgeSkipTest, ZeroProbabilityRegionsStayEmpty) {
  // b = c = 0: only the all-zero-digit quadrant chain has mass, and the
  // single cell it leads to is the diagonal (0,0) — dropped as a loop.
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  Rng rng(47);
  EXPECT_EQ(SampleSkg({1.0, 0.0, 0.0}, 10, rng, options).NumEdges(), 0u);
}

TEST(EdgeSkipTest, HandlesDenseInitiator) {
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  Rng rng(53);
  const Graph g = SampleSkg({1.0, 1.0, 1.0}, 4, rng, options);
  // Unlike BallDrop, EdgeSkip does not retry duplicate placements — the
  // realized graph is the *support* of the multinomial balls, so a dense
  // corner collapses collisions instead of spinning on them. ~120 balls
  // over 240 ordered cells leave ≈ 1 − e^(−0.94) ≈ 61% of the 120 pairs
  // occupied; anything in a generous band around that is healthy.
  EXPECT_GT(g.NumEdges(), 50u);
  EXPECT_LE(g.NumEdges(), 120u);
}

TEST(EdgeSkipTest, EdgeCountMatchesBallDropExpectation) {
  // kEdgeSkip reorganizes exactly the ball-dropping computation, so its
  // mean edge count at k = 10 must sit within statistical tolerance of
  // both the closed-form expectation and the ball-drop sampler.
  const Initiator2 theta{0.99, 0.45, 0.25};
  const uint32_t k = 10;
  SkgSampleOptions edge_skip;
  edge_skip.method = SkgSampleMethod::kEdgeSkip;
  SkgSampleOptions ball_drop;
  ball_drop.method = SkgSampleMethod::kBallDrop;
  Rng rng_skip(59), rng_drop(61);
  double skip_total = 0.0, drop_total = 0.0;
  const int runs = 30;
  for (int r = 0; r < runs; ++r) {
    skip_total += double(SampleSkg(theta, k, rng_skip, edge_skip).NumEdges());
    drop_total += double(SampleSkg(theta, k, rng_drop, ball_drop).NumEdges());
  }
  const double expected = ExpectedEdges(theta, k);
  EXPECT_NEAR(skip_total / runs, expected, 0.05 * expected);
  EXPECT_NEAR(skip_total / drop_total, 1.0, 0.05);
}

TEST(EdgeSkipTest, AggregateStatisticsCloseToExactSampler) {
  const Initiator2 theta{0.95, 0.55, 0.25};
  const uint32_t k = 9;
  Rng rng_exact(67), rng_skip(71);
  SkgSampleOptions skip;
  skip.method = SkgSampleMethod::kEdgeSkip;

  double exact_wedges = 0, skip_wedges = 0;
  double exact_tri = 0, skip_tri = 0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    const Graph ge = SampleSkg(theta, k, rng_exact);
    const Graph gs = SampleSkg(theta, k, rng_skip, skip);
    exact_wedges += double(CountWedges(ge));
    skip_wedges += double(CountWedges(gs));
    exact_tri += double(CountTriangles(ge));
    skip_tri += double(CountTriangles(gs));
  }
  EXPECT_NEAR(skip_wedges / exact_wedges, 1.0, 0.15);
  EXPECT_NEAR(skip_tri / exact_tri, 1.0, 0.30);
}

TEST(EdgeSkipTest, ScalesToLargeK) {
  // k = 16 (65536 nodes): far beyond the exact sampler's reach; checks
  // the multinomial recursion survives a realistically deep descent and
  // lands near the expected edge count in one realization.
  const Initiator2 theta{0.9, 0.5, 0.2};
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  Rng rng(73);
  const Graph g = SampleSkg(theta, 16, rng, options);
  EXPECT_EQ(g.NumNodes(), uint32_t{1} << 16);
  const double expected = ExpectedEdges(theta, 16);
  EXPECT_NEAR(double(g.NumEdges()), expected, 0.1 * expected);
}

TEST(SampleSkgNTest, MatchesSymmetricConvention) {
  // For a symmetric initiator the general sampler must produce the same
  // edge-count law as the 2x2 fast path.
  const Initiator2 theta{0.9, 0.5, 0.3};
  const InitiatorN general = InitiatorN::From2x2(theta);
  const uint32_t k = 5;
  Rng rng(23);
  double total = 0.0;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    total += double(SampleSkgN(general, k, rng).NumEdges());
  }
  EXPECT_NEAR(total / runs, ExpectedEdges(theta, k),
              0.06 * ExpectedEdges(theta, k));
}

TEST(SampleSkgNTest, AsymmetricInitiatorLowerTriangleLaw) {
  // Directed [0 1; 0 0] initiator: P_uv = 1 iff every digit pair is
  // (0, 1) — only (u, v) = (0, 2^k − 1) as an ordered pair. The
  // symmetrization keeps A*_uv for u > v, i.e. probability comes from
  // EdgeProbabilityN(theta, k, u, v) with u > v: P(2^k−1, 0) = 0 under
  // this initiator, so the realized graph is empty.
  const auto theta = InitiatorN::Create(2, {0.0, 1.0, 0.0, 0.0}).value();
  Rng rng(29);
  const Graph g = SampleSkgN(theta, 4, rng);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(SampleSkgNTest, TransposedAsymmetricInitiatorRealizesEdge) {
  // [0 0; 1 0]: P(u, v) = 1 iff digits of (u, v) are all (1, 0), i.e.
  // u = 2^k − 1, v = 0, which lies in the kept lower triangle.
  const auto theta = InitiatorN::Create(2, {0.0, 0.0, 1.0, 0.0}).value();
  Rng rng(31);
  const Graph g = SampleSkgN(theta, 4, rng);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(15, 0));
}

}  // namespace
}  // namespace dpkron
