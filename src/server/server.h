// dpkrond — the fault-tolerant private-release server (ROADMAP item 1).
//
// One process serves private graph releases to many concurrent
// analysts over line-delimited JSON / TCP (see wire.h). The request
// path is a fixed pipeline with the robustness decisions made at named
// points:
//
//   admission   bounded AdmissionQueue; full ⇒ shed with
//               kResourceExhausted + retry_after_ms, never unbounded
//               buffering. Draining ⇒ kUnavailable.
//   dequeue     deadline checkpoint: a request that aged out in the
//               queue is answered kDeadlineExceeded without touching
//               the release pipeline (and without spending budget).
//   compute     the deterministic half of the release (scenario run
//               over the shared thread pool, amortized by the
//               process-wide StatCache).
//   pre-spend   second deadline checkpoint: a request that missed its
//               deadline during compute is refused BEFORE the charge —
//               the budget is spent only for responses the client can
//               still use.
//   spend       PrivacyAccountant::SpendOnce — journal-then-apply with
//               fsync-before-ack, so a crash can only over-count, and
//               request_id dedup, so a retried request is charged
//               exactly once. Exhausted budgets map to
//               kResourceExhausted on the wire.
//
// Shutdown is two distinct contracts: Drain() (SIGTERM) stops
// admission, finishes every queued and in-flight request, and leaves
// the accountant journal synced — while kill -9 at ANY point recovers
// on restart by replaying the journal, never losing an acknowledged
// spend (tests/server_test.cc's torture test drives both with
// FaultInjectionEnv + FakeClock).

#ifndef DPKRON_SERVER_SERVER_H_
#define DPKRON_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/dp/privacy_accountant.h"
#include "src/server/admission_queue.h"
#include "src/server/clock.h"
#include "src/server/wire.h"

namespace dpkron {

struct ServerConfig {
  // Worker threads consuming the admission queue. Each request's
  // scenario kernels additionally use the shared parallel pool.
  int workers = 4;
  // Admission queue capacity — the server's entire buffering. At 2×
  // sustained capacity, the excess is shed, not queued.
  size_t queue_depth = 64;
  // Durable accountant journal path (required).
  std::string accountant_path;
  // Per-analyst (ε, δ) budget, pinned into the journal header. The δ
  // default is permissive (scenarios charge their default δ, e.g. 0.01,
  // per release; the accountant requires δ < 1) — tighten it to make δ
  // the binding constraint.
  double epsilon_budget = 1.0;
  double delta_budget = 0.5;
  uint64_t compact_threshold = PrivacyAccountant::kDefaultCompactThreshold;
  // When non-empty: attach the persistent StatCache tier rooted here at
  // startup (created if needed), so a restarted server warm-starts the
  // deterministic half of every release from disk instead of
  // recomputing — healthz's cache block reports the warm/cold split as
  // disk_hits / disk_misses.
  std::string disk_cache_path;
  // Cap on the in-memory StatCache footprint in bytes (0 = unbounded).
  // Evicted entries reload from the disk tier when one is attached.
  uint64_t cache_mem_budget = 0;
  // Cap on the disk tier's total entry bytes (0 = unbounded): after each
  // store, oldest entries are unlinked until the cache fits (in-flight
  // entries pinned). Long-lived daemons otherwise grow the root without
  // bound.
  uint64_t disk_cache_budget = 0;
  // Scenario execution knobs applied to every request.
  bool smoke = false;
  uint32_t kronfit_iterations = 0;  // 0 = scenario default
  bool dataset_cache = true;        // .dpkb sidecars for file datasets
  // Serve file datasets out-of-core via mmap'd .dpkb (bit-identical
  // releases; a daemon hosting many large datasets shares their pages
  // across requests instead of materializing per-load copies).
  bool dataset_mmap = false;
  // Back-off hint attached to shed-load rejections.
  int64_t shed_retry_after_ms = 50;
  // Time source; nullptr = the monotonic system clock. Tests inject
  // FakeClock to drive the deadline checkpoints deterministically.
  Clock* clock = nullptr;
};

// Monotonic counters (retrieved as one consistent-enough snapshot for
// healthz; each field is individually atomic).
struct ServerStats {
  uint64_t accepted = 0;         // admitted to the queue
  uint64_t shed = 0;             // rejected: queue full
  uint64_t drain_refused = 0;    // rejected: draining
  uint64_t completed = 0;        // responses delivered by workers
  uint64_t ok = 0;               // ... of which carried a release
  uint64_t deadline_missed = 0;  // kDeadlineExceeded at either checkpoint
  uint64_t budget_refused = 0;   // kResourceExhausted from the accountant
  uint64_t deduped = 0;          // request_id retries answered w/o charge
};

class DpkronServer {
 public:
  // Invoked exactly once with the response line (no trailing newline)
  // for every request that was ADMITTED. Runs on a worker thread.
  using ResponseCallback = std::function<void(std::string response_json)>;

  // Opens (recovering/compacting) the accountant and enables the
  // process-wide StatCache. Workers are NOT started — call Start();
  // the gap is the seam tests use to fill the queue deterministically.
  static Result<std::unique_ptr<DpkronServer>> Create(
      const ServerConfig& config);
  ~DpkronServer();

  DpkronServer(const DpkronServer&) = delete;
  DpkronServer& operator=(const DpkronServer&) = delete;

  void Start();

  // Admission (non-blocking). OK ⇒ `done` will be invoked exactly once
  // from a worker; non-OK ⇒ `done` is never invoked and the caller owns
  // the error response (kResourceExhausted = shed, retry after
  // config.shed_retry_after_ms; kUnavailable = draining). healthz
  // requests are answered inline through `done` without queueing —
  // health must be observable precisely when the queue is full.
  Status Submit(const ReleaseRequest& request, ResponseCallback done);

  // Parse + dispatch + wait: the blocking convenience the connection
  // threads (and tests) use. Always returns a response line.
  std::string HandleLine(std::string_view line);

  // The healthz gauge snapshot (also served via HandleLine).
  std::string HealthzJson() const;

  // Graceful drain: refuse new admissions, finish every queued and
  // in-flight request, join workers, close the journal. Idempotent.
  // The crash path needs no counterpart — kill -9 IS the test, and
  // recovery is Create() replaying the journal.
  void Drain();

  // ------------------------------------------------------ TCP front end
  // Binds and listens on `port` (0 = ephemeral, see port()).
  Status Listen(int port);
  int port() const { return port_; }
  // Accepts connections until *stop becomes true (checked every poll
  // interval) or Drain() is called; one thread per connection, each
  // serving line-delimited requests. Blocks the calling thread.
  void AcceptLoop(const std::atomic<bool>* stop);

  const PrivacyAccountant& accountant() const { return *accountant_; }
  ServerStats stats() const;
  size_t queue_size() const { return queue_.size(); }
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

 private:
  struct QueuedRequest {
    ReleaseRequest request;
    int64_t deadline_at_ms = -1;  // absolute; < 0 = none
    ResponseCallback done;
  };

  explicit DpkronServer(const ServerConfig& config);

  // One accepted TCP connection: the serving thread and its fd. The fd
  // is closed only after the thread is joined (reap or shutdown).
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void WorkerMain();
  std::string Process(const QueuedRequest& task);
  // kDeadlineExceeded naming `checkpoint` if the deadline passed.
  Status CheckDeadline(const QueuedRequest& task, const char* checkpoint);
  std::string SuccessResponseJson(const QueuedRequest& task, double epsilon,
                                  double delta, bool deduped,
                                  const class ScenarioOutput& output) const;
  void ServeConnection(Connection* conn);
  void CloseConnections();

  ServerConfig config_;
  Clock* clock_;
  std::unique_ptr<PrivacyAccountant> accountant_;
  AdmissionQueue<QueuedRequest> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::atomic<int> in_flight_{0};
  std::mutex lifecycle_mu_;  // guards Start/Drain transitions

  // Stats (relaxed atomics; healthz reads a snapshot).
  std::atomic<uint64_t> accepted_{0}, shed_{0}, drain_refused_{0},
      completed_{0}, ok_{0}, deadline_missed_{0}, budget_refused_{0},
      deduped_{0};

  // TCP state.
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace dpkron

#endif  // DPKRON_SERVER_SERVER_H_
