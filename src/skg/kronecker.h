// Kronecker-power machinery (Definitions 3.1–3.4).
//
// The k-th Kronecker power P = Θ^[k] of an N1×N1 initiator assigns every
// ordered node pair (u, v) of an N1^k-node graph the probability
//   P_uv = Π_t Θ[digit_t(u)][digit_t(v)],
// where digit_t(·) is the t-th base-N1 digit. For the 2×2 symmetric case
// the product collapses to a^n00 · b^(n01+n10) · c^n11 with the n's
// obtained from three popcounts — O(1) per pair after a pow table.

#ifndef DPKRON_SKG_KRONECKER_H_
#define DPKRON_SKG_KRONECKER_H_

#include <cstdint>
#include <vector>

#include "src/skg/initiator.h"

namespace dpkron {

// x^n by binary exponentiation (exact repeated multiplication; std::pow
// may differ in the last ulp across libms, and the moment formulas
// difference nearly-equal k-th powers).
double PowInt(double x, uint32_t n);

// Number of nodes N1^k. Aborts on overflow of uint64.
uint64_t KroneckerNodeCount(uint32_t initiator_dim, uint32_t k);

// P_uv for a general initiator; O(k·1) digit walk.
double EdgeProbabilityN(const InitiatorN& theta, uint32_t k, uint64_t u,
                        uint64_t v);

// Fast 2×2 evaluator with precomputed power tables.
class EdgeProbability2 {
 public:
  EdgeProbability2(const Initiator2& theta, uint32_t k);

  uint32_t k() const { return k_; }
  uint64_t num_nodes() const { return uint64_t{1} << k_; }

  // P_uv. Digit convention: bit 0 of a node id selects row/col of Θ at
  // level 0 (bit value 0 → 'a' corner).
  double operator()(uint64_t u, uint64_t v) const {
    const uint64_t both = u & v;          // digit pair (1,1) → c
    const uint64_t only_u = u & ~v;       // (1,0) → b
    const uint64_t only_v = ~u & v;       // (0,1) → b
    const uint32_t n11 = static_cast<uint32_t>(__builtin_popcountll(both));
    const uint32_t nb = static_cast<uint32_t>(__builtin_popcountll(only_u) +
                                              __builtin_popcountll(only_v));
    const uint32_t n00 = k_ - n11 - nb;
    return pow_a_[n00] * pow_b_[nb] * pow_c_[n11];
  }

 private:
  uint32_t k_;
  std::vector<double> pow_a_, pow_b_, pow_c_;
};

// Dense P = Θ^[k] for tiny k (testing / exact reference). Row-major
// N1^k × N1^k. Aborts if the matrix would exceed 2^26 entries.
std::vector<double> DenseKroneckerPower(const InitiatorN& theta, uint32_t k);

}  // namespace dpkron

#endif  // DPKRON_SKG_KRONECKER_H_
