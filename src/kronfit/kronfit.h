// KronFit: approximate maximum-likelihood estimation of the SKG initiator
// (Leskovec & Faloutsos, ICML'07) — the paper's "KronFit" baseline.
//
// Stochastic gradient ascent on the Taylor-approximated log-likelihood,
// with the node-to-position alignment σ marginalized by Metropolis swap
// chains (permutation sampling). The observed graph is padded with
// isolated nodes to 2^k, as in the original implementation.
//
// Parallel architecture: instead of one chain sampled
// `samples_per_iteration` times back-to-back, the sampler keeps that
// many *independent* chains — each with its own PermutationState and
// Rng::Split stream — and fans them across the thread pool, averaging
// their edge gradients in chain-index order. Total swap work per
// iteration is unchanged; wall-clock divides by min(chains, threads),
// and the chain-indexed RNG streams plus chunk-ordered reductions make
// FitKronFit bit-identical for any thread count
// (tests/parallel_test.cc enforces 1 vs 2 vs 8).

#ifndef DPKRON_KRONFIT_KRONFIT_H_
#define DPKRON_KRONFIT_KRONFIT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"
#include "src/skg/initiator.h"

namespace dpkron {

struct KronFitOptions {
  // Gradient-ascent iterations.
  uint32_t iterations = 60;
  // Metropolis warm-up swaps before the first sample, as a multiple of N.
  double warmup_factor = 10.0;
  // Number of independent permutation chains averaged per gradient
  // estimate (one Metropolis sample each per iteration).
  uint32_t samples_per_iteration = 4;
  // Swaps between consecutive samples, as a multiple of N.
  double decorrelation_factor = 2.0;
  // Largest per-iteration movement of any parameter; the raw gradient is
  // rescaled to respect it (the likelihood gradients are O(E/θ), so a raw
  // step would leave the box immediately).
  double max_step = 0.02;
  // Linear decay: step limit at iteration t is max_step/(1 + t·decay).
  double step_decay = 0.05;
  // Average the iterates of the last `tail_average` iterations (Polyak
  // tail averaging smooths the permutation-sampling noise).
  uint32_t tail_average = 10;
  Initiator2 init{0.9, 0.6, 0.2};
};

struct KronFitResult {
  Initiator2 theta;              // canonical (a ≥ c)
  double log_likelihood = 0.0;   // approx. ll of the final theta
  uint32_t k = 0;
};

// Bank of independent Metropolis permutation chains over one padded
// graph. Chain c starts from the degree-guided init perturbed by its own
// Split stream (chain 0 starts unperturbed) and is advanced only by that
// stream, so the trajectory of every chain — and therefore every result
// below — is a function of (graph, seed, num_chains) alone, never of the
// thread count. Exposed publicly so benchmarks can time one gradient
// iteration in isolation.
class MetropolisChains {
 public:
  // `graph` must already be padded to 2^k nodes.
  MetropolisChains(GraphView graph, uint32_t k, uint32_t num_chains,
                   Rng& rng);

  uint32_t num_chains() const {
    return static_cast<uint32_t>(chains_.size());
  }
  const PermutationState& chain(uint32_t c) const { return chains_[c]; }

  // Advances every chain by `swaps_per_chain` Metropolis steps under
  // `model` (chains fan across the pool; each chain is serial).
  void Advance(const KronFitLikelihood& model, uint64_t swaps_per_chain);

  // One gradient iteration: advances every chain by `swaps_per_chain`
  // steps, then returns the mean of the per-chain edge gradients
  // (summed in chain-index order).
  Gradient3 SampleGradient(const KronFitLikelihood& model,
                           uint64_t swaps_per_chain);

  // Highest LogLikelihood across chains under `model` (ties resolve to
  // the lowest chain index).
  double BestLogLikelihood(const KronFitLikelihood& model) const;

 private:
  GraphView graph_;  // non-owning; the padded graph outlives the bank
  std::vector<PermutationState> chains_;
  std::vector<Rng> rngs_;  // stream c drives chain c, whatever the worker
};

// Fits Θ to `graph`. The graph is padded to 2^k nodes internally with
// k = ChooseKroneckerOrder(NumNodes()).
KronFitResult FitKronFit(GraphView graph, Rng& rng,
                         const KronFitOptions& options = {});

// FitKronFit served through the process-wide StatCache when it is
// enabled, keyed by (graph fingerprint, rng state fingerprint, options)
// — the inputs the fit is a pure function of. On a hit `rng` is
// restored to the state the original fit left it in, so downstream
// draws are identical whether the fit ran or was served; a sweep that
// varies only ε therefore pays for each (graph, seed) fit exactly once.
// With the cache disabled this is exactly FitKronFit.
KronFitResult FitKronFitCached(GraphView graph, Rng& rng,
                               const KronFitOptions& options = {});

// `graph` with isolated nodes appended until NumNodes() == num_nodes.
// Requires num_nodes >= graph.NumNodes().
Graph PadWithIsolatedNodes(GraphView graph, uint32_t num_nodes);

}  // namespace dpkron

#endif  // DPKRON_KRONFIT_KRONFIT_H_
