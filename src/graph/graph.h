// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the substrate every other dpkron component operates on: the
// "sensitive graph database" of the paper, the synthetic realizations
// sampled from SKG distributions, and the inputs to every statistic.
//
// Invariants (validated at construction):
//   * no self-loops, no parallel edges;
//   * each undirected edge {u,v} stored twice (u→v and v→u);
//   * every adjacency list sorted ascending (enables O(log d) HasEdge and
//     linear-merge triangle counting).

#ifndef DPKRON_GRAPH_GRAPH_H_
#define DPKRON_GRAPH_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/common/aligned.h"

namespace dpkron {

class Graph {
 public:
  using NodeId = uint32_t;

  // CSR arenas are 64-byte (cache-line) aligned so the SIMD kernels'
  // vector loads start aligned and a row never pays an extra split line
  // at the array head. The alias keeps FromCsr call sites source-
  // compatible (braced initializer lists construct either vector type).
  template <typename T>
  using CsrVector = std::vector<T, AlignedAllocator<T, 64>>;
  using OffsetVector = CsrVector<uint32_t>;
  using AdjacencyVector = CsrVector<NodeId>;

  // An empty graph (0 nodes).
  Graph() : offsets_(1, 0) {}

  // Takes ownership of validated CSR arrays. `offsets` has num_nodes+1
  // entries; `adjacency` holds both directions of every edge with each
  // list sorted. Aborts (DPKRON_CHECK) if the invariants don't hold —
  // construction from untrusted data should go through GraphBuilder,
  // which establishes them.
  static Graph FromCsr(OffsetVector offsets, AdjacencyVector adjacency);

  // Hand-written only because of the atomic fingerprint memo below
  // (std::atomic is neither copyable nor movable); semantics are the
  // member-wise defaults, with the memo carried along — the fingerprint
  // is a pure function of the CSR arrays, so a copy shares it.
  Graph(const Graph& other)
      : offsets_(other.offsets_),
        adjacency_(other.adjacency_),
        fingerprint_(other.fingerprint_.load(std::memory_order_relaxed)) {}
  Graph& operator=(const Graph& other) {
    offsets_ = other.offsets_;
    adjacency_ = other.adjacency_;
    fingerprint_.store(other.fingerprint_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
  Graph(Graph&& other) noexcept
      : offsets_(std::move(other.offsets_)),
        adjacency_(std::move(other.adjacency_)),
        fingerprint_(other.fingerprint_.load(std::memory_order_relaxed)) {
    other.fingerprint_.store(0, std::memory_order_relaxed);
  }
  Graph& operator=(Graph&& other) noexcept {
    offsets_ = std::move(other.offsets_);
    adjacency_ = std::move(other.adjacency_);
    fingerprint_.store(other.fingerprint_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    other.fingerprint_.store(0, std::memory_order_relaxed);
    return *this;
  }

  uint32_t NumNodes() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }

  // Number of undirected edges.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  uint32_t Degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  // Sorted neighbor list of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  // O(log deg(u)). u and v must be valid node ids.
  bool HasEdge(NodeId u, NodeId v) const;

  // Invokes f(u, v) once per undirected edge, with u < v.
  template <typename F>
  void ForEachEdge(F&& f) const {
    for (NodeId u = 0; u < NumNodes(); ++u) {
      for (NodeId v : Neighbors(u)) {
        if (u < v) f(u, v);
      }
    }
  }

  // All edges as (u, v) pairs with u < v, in lexicographic order.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  // Raw CSR arrays. The CSR form is canonical (sorted lists, both edge
  // directions), so two Graphs are equal iff these arrays are equal —
  // the representation the binary .dpkb format serializes verbatim.
  std::span<const uint32_t> Offsets() const { return offsets_; }
  std::span<const NodeId> Adjacency() const { return adjacency_; }

  // FNV-1a digest of the CSR arrays — the graph component of StatCache
  // keys. Because the CSR form is canonical, equal fingerprints mean
  // equal graphs (up to hash collision), however the graphs were built;
  // and the value is exactly the checksum a .dpkb file of this graph
  // records. Computed lazily once per Graph object (O(N + E)) and then
  // served from the memo — several cached computations key off it per
  // scenario run, and the arrays are immutable after construction.
  uint64_t ContentFingerprint() const;

  // The memo cell behind ContentFingerprint, shared with GraphView
  // (graph_view.h): a view of this graph reads and publishes the digest
  // through the same cache, so whichever side computes it first serves
  // both. The cell is mutable state of an otherwise-immutable object,
  // hence exposable from a const Graph.
  std::atomic<uint64_t>* FingerprintMemo() const { return &fingerprint_; }

 private:
  Graph(OffsetVector offsets, AdjacencyVector adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {}

  OffsetVector offsets_;
  AdjacencyVector adjacency_;
  // Lazily memoized ContentFingerprint. 0 = not yet computed (a real
  // digest of 0 has probability 2^-64 and would merely be recomputed
  // per call — correct, just uncached). Atomic: concurrent first calls
  // race benignly, both publishing the same value.
  mutable std::atomic<uint64_t> fingerprint_{0};
};

}  // namespace dpkron

#endif  // DPKRON_GRAPH_GRAPH_H_
