// Bounded admission queue — dpkrond's load-shedding front door.
//
// The server's memory under overload is bounded by construction: a
// request either fits in this fixed-capacity queue or is rejected AT
// ADMISSION with kResourceExhausted and a retry-after hint — it is
// never buffered "just in case". TryPush never blocks (the accept path
// must stay responsive precisely when the system is saturated); Pop
// blocks workers until work or shutdown.
//
// Close() starts the graceful-drain handshake: pushes refuse from that
// point (kUnavailable — the caller should retry against another
// replica, the condition is transient by design), but every item
// admitted before Close() is still handed to a worker. Pop returns
// false only when the queue is both closed and empty, which is the
// workers' exit signal — so "SIGTERM finishes all in-flight requests"
// falls out of the queue contract rather than being a special case.

#ifndef DPKRON_SERVER_ADMISSION_QUEUE_H_
#define DPKRON_SERVER_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/status.h"

namespace dpkron {

template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  // Non-blocking admission. kResourceExhausted = queue full (shed; the
  // caller attaches the retry-after hint), kUnavailable = draining.
  Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::Unavailable("server is draining");
      }
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("admission queue full");
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Status::Ok();
  }

  // Blocks until an item is available (true) or the queue is closed and
  // drained (false — the worker-exit signal).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Stops admission; queued items still drain through Pop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dpkron

#endif  // DPKRON_SERVER_ADMISSION_QUEUE_H_
