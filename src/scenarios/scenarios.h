// Registration entry points for the built-in scenario catalog — the 12
// former bench binaries, ported onto the scenario engine. Call
// RegisterAllScenarios() once at startup (runner, tests); registration
// is explicit rather than static-initializer magic so a static-library
// link can never silently drop a translation unit of scenarios.

#ifndef DPKRON_SCENARIOS_SCENARIOS_H_
#define DPKRON_SCENARIOS_SCENARIOS_H_

namespace dpkron {

// Figs 1–4 (was fig1_ca_grqc … fig4_synthetic + figure_harness).
void RegisterFigureScenarios();

// Table 1 + the Sala-et-al. dK-2 comparison (was table1_parameters,
// comparison_dk2).
void RegisterTableScenarios();

// The six ablations (was ablation_*).
void RegisterAblationScenarios();

// All of the above, idempotently.
void RegisterAllScenarios();

}  // namespace dpkron

#endif  // DPKRON_SCENARIOS_SCENARIOS_H_
