// Synthetic-graph release pipeline and the five evaluation statistics.
//
// Once an estimator Θ̃ is published, "anyone interested in studying
// statistical properties of the original graph G can sample the
// distribution to yield a synthetic graph GS" (§1) — and average a
// statistic over several samples. This module packages exactly that:
// the five statistics panels of Figs 1–4, computed on one graph or
// averaged over R realizations of an initiator.

#ifndef DPKRON_CORE_RELEASE_H_
#define DPKRON_CORE_RELEASE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/skg/initiator.h"
#include "src/skg/sampler.h"

namespace dpkron {

// The five statistics the paper plots. Series use double y-values so the
// same struct holds single-realization counts and cross-realization means.
struct GraphStatistics {
  // (degree, count) — panel (b).
  std::vector<std::pair<double, double>> degree_histogram;
  // N(h) for h = 0, 1, ... — panel (a).
  std::vector<double> hop_plot;
  // top singular values, descending — panel (c).
  std::vector<double> scree;
  // |principal eigenvector| components, descending — panel (d).
  std::vector<double> network_value;
  // (degree, mean clustering coefficient) — panel (e).
  std::vector<std::pair<double, double>> clustering_by_degree;
};

struct StatisticsOptions {
  uint32_t num_singular_values = 50;
  // Components of the network-value series kept (plots truncate anyway).
  uint32_t num_network_values = 1000;
  // Use the ANF sketch for hop plots above this node count (exact below).
  uint32_t exact_hop_plot_limit = 4096;
  uint32_t anf_trials = 32;
};

// All five statistics of one concrete graph.
GraphStatistics ComputeStatistics(const Graph& graph, Rng& rng,
                                  const StatisticsOptions& options = {});

// "Expected" statistics: mean of each statistic over `realizations`
// samples of the SKG (Θ, k) — the paper's 100-realization averages.
// Degree histogram / clustering series are aggregated per degree value;
// positional series (hop plot, scree, network value) are averaged per
// index (shorter series are padded with their final value, matching how
// saturated hop plots behave).
GraphStatistics ExpectedStatistics(const Initiator2& theta, uint32_t k,
                                   uint32_t realizations, Rng& rng,
                                   const StatisticsOptions& options = {},
                                   SkgSampleMethod method =
                                       SkgSampleMethod::kClassSkip);

// One synthetic graph from an estimated parameter (the "KronFit" /
// "KronMom" / "Private" single-realization series).
Graph SampleSyntheticGraph(const Initiator2& theta, uint32_t k, Rng& rng,
                           SkgSampleMethod method = SkgSampleMethod::kClassSkip);

}  // namespace dpkron

#endif  // DPKRON_CORE_RELEASE_H_
