// The dpkrond wire protocol: line-delimited JSON over TCP.
//
// Request (one line, one flat JSON object):
//
//   {"type": "release",            // default; or "healthz"
//    "analyst": "alice",           // required for release
//    "scenario": "fig2_as20",      // required for release
//    "dataset": "data/x.edges",    // optional GraphSource ref
//    "epsilon": 0.2,               // required for release, > 0
//    "seed": 7,                    // optional, scenario default if absent
//    "deadline_ms": 500,           // optional; 0/absent = no deadline
//    "request_id": "alice-0007"}   // optional idempotency key
//
// Response (one line): {"request_id", "ok", "status", "code", ...} —
// on success the scenarios.v1 run object under "run" plus the analyst's
// post-charge budget under "budget"; on failure a structured error
// ("code" is the StatusCode name, e.g. RESOURCE_EXHAUSTED) with
// "retry_after_ms" on shed-load rejections. healthz responses carry the
// server gauges instead (see server.h).
//
// The parser accepts exactly what the protocol needs — one flat object
// of string / number / bool / null members — and rejects everything
// else with InvalidArgument naming the offence. Unknown keys are
// ignored (a newer client must not wedge an older server); nested
// containers are refused (nothing in the protocol nests, and a bounded
// parser cannot be driven into deep recursion by a hostile client).

#ifndef DPKRON_SERVER_WIRE_H_
#define DPKRON_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace dpkron {

enum class RequestType { kRelease, kHealthz };

struct ReleaseRequest {
  RequestType type = RequestType::kRelease;
  std::string analyst;
  std::string scenario;
  std::string dataset;              // "" = the scenario's own datasets
  double epsilon = 0.0;
  std::optional<uint64_t> seed;     // absent = scenario default seed
  int64_t deadline_ms = 0;          // <= 0 = no deadline
  std::string request_id;           // "" = no idempotency / dedup
};

// Parses one request line. Validation here is structural (shape, types,
// required fields); semantic checks (unknown scenario, exhausted
// budget) belong to the server, which can name them with better codes.
Result<ReleaseRequest> ParseRequestLine(std::string_view line);

// One-line structured error response. `retry_after_ms` >= 0 adds the
// shed-load back-off hint.
std::string ErrorResponseJson(const std::string& request_id,
                              const Status& status,
                              int64_t retry_after_ms = -1);

}  // namespace dpkron

#endif  // DPKRON_SERVER_WIRE_H_
