#include "src/kronfit/kronfit.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/estimation/kronmom.h"
#include "src/graph/graph_builder.h"
#include "src/kronfit/likelihood.h"
#include "src/kronfit/permutation.h"

namespace dpkron {

Graph PadWithIsolatedNodes(const Graph& graph, uint32_t num_nodes) {
  DPKRON_CHECK_GE(num_nodes, graph.NumNodes());
  GraphBuilder builder(num_nodes);
  graph.ForEachEdge(
      [&builder](Graph::NodeId u, Graph::NodeId v) { builder.AddEdge(u, v); });
  return builder.Build();
}

namespace {

// Runs `count` Metropolis swap steps on sigma under the current model.
void RunSwaps(const Graph& graph, const KronFitLikelihood& model,
              PermutationState* sigma, Rng& rng, uint64_t count) {
  const uint32_t n = graph.NumNodes();
  for (uint64_t step = 0; step < count; ++step) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    if (u == v) continue;
    const double delta = model.SwapDelta(graph, *sigma, u, v);
    if (delta >= 0.0 || rng.NextDouble() < std::exp(delta)) {
      sigma->SwapNodes(u, v);
    }
  }
}

}  // namespace

KronFitResult FitKronFit(const Graph& graph, Rng& rng,
                         const KronFitOptions& options) {
  DPKRON_CHECK_GE(graph.NumNodes(), 2u);
  const uint32_t k = ChooseKroneckerOrder(graph.NumNodes());
  const uint32_t n = uint32_t{1} << k;
  const Graph padded =
      graph.NumNodes() == n ? graph : PadWithIsolatedNodes(graph, n);

  Initiator2 theta = options.init.Clamped(0.005, 0.995);
  PermutationState sigma = DegreeGuidedInit(padded, k);

  // Initial burn-in under the starting parameters.
  {
    const KronFitLikelihood model(theta, k);
    RunSwaps(padded, model, &sigma, rng,
             static_cast<uint64_t>(options.warmup_factor * n));
  }

  double tail_a = 0.0, tail_b = 0.0, tail_c = 0.0;
  uint32_t tail_count = 0;
  const uint32_t tail_start =
      options.iterations > options.tail_average
          ? options.iterations - options.tail_average
          : 0;

  for (uint32_t it = 0; it < options.iterations; ++it) {
    const KronFitLikelihood model(theta, k);
    // Average the edge-term gradient over several sampled alignments.
    Gradient3 gradient{0.0, 0.0, 0.0};
    for (uint32_t s = 0; s < options.samples_per_iteration; ++s) {
      RunSwaps(padded, model, &sigma, rng,
               static_cast<uint64_t>(options.decorrelation_factor * n));
      const Gradient3 edge_grad = model.EdgeGradient(padded, sigma);
      for (int i = 0; i < 3; ++i) gradient[i] += edge_grad[i];
    }
    const Gradient3 no_edge = model.NoEdgeGradient();
    for (int i = 0; i < 3; ++i) {
      gradient[i] =
          gradient[i] / options.samples_per_iteration - no_edge[i];
    }

    // Ascent step, rescaled to the trust region.
    const double limit = options.max_step / (1.0 + options.step_decay * it);
    const double magnitude = std::max(
        {std::fabs(gradient[0]), std::fabs(gradient[1]),
         std::fabs(gradient[2]), 1e-30});
    const double scale = std::min(limit / magnitude, 1e-4);
    theta = Initiator2{theta.a + scale * gradient[0],
                       theta.b + scale * gradient[1],
                       theta.c + scale * gradient[2]}
                .Clamped(0.005, 0.995);

    if (it >= tail_start) {
      tail_a += theta.a;
      tail_b += theta.b;
      tail_c += theta.c;
      ++tail_count;
    }
  }

  if (tail_count > 0) {
    theta = Initiator2{tail_a / tail_count, tail_b / tail_count,
                       tail_c / tail_count};
  }

  KronFitResult result;
  result.k = k;
  result.theta = theta.Canonical();
  const KronFitLikelihood final_model(result.theta, k);
  result.log_likelihood = final_model.LogLikelihood(padded, sigma);
  return result;
}

}  // namespace dpkron
