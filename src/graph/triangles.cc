#include "src/graph/triangles.h"

#include <algorithm>

namespace dpkron {
namespace {

// Rank nodes by (degree, id); orienting every edge from lower to higher
// rank makes each triangle counted exactly once and bounds the forward
// out-degree by O(sqrt(m)).
struct RankOrder {
  const Graph& graph;
  bool Less(Graph::NodeId a, Graph::NodeId b) const {
    const uint32_t da = graph.Degree(a), db = graph.Degree(b);
    return da != db ? da < db : a < b;
  }
};

template <typename OnTriangle>
void ForEachTriangle(const Graph& graph, OnTriangle&& on_triangle) {
  const RankOrder rank{graph};
  const uint32_t n = graph.NumNodes();
  // forward[u] = neighbors of u with higher rank, sorted by node id.
  std::vector<std::vector<Graph::NodeId>> forward(n);
  for (Graph::NodeId u = 0; u < n; ++u) {
    for (Graph::NodeId v : graph.Neighbors(u)) {
      if (rank.Less(u, v)) forward[u].push_back(v);
    }
  }
  for (Graph::NodeId u = 0; u < n; ++u) {
    const auto& fu = forward[u];
    for (Graph::NodeId v : fu) {
      const auto& fv = forward[v];
      // Sorted-merge intersection of fu and fv.
      size_t i = 0, j = 0;
      while (i < fu.size() && j < fv.size()) {
        if (fu[i] < fv[j]) {
          ++i;
        } else if (fu[i] > fv[j]) {
          ++j;
        } else {
          on_triangle(u, v, fu[i]);
          ++i;
          ++j;
        }
      }
    }
  }
}

}  // namespace

uint64_t CountTriangles(const Graph& graph) {
  uint64_t triangles = 0;
  ForEachTriangle(graph, [&triangles](Graph::NodeId, Graph::NodeId,
                                      Graph::NodeId) { ++triangles; });
  return triangles;
}

std::vector<uint64_t> PerNodeTriangles(const Graph& graph) {
  std::vector<uint64_t> per_node(graph.NumNodes(), 0);
  ForEachTriangle(graph,
                  [&per_node](Graph::NodeId u, Graph::NodeId v, Graph::NodeId w) {
                    ++per_node[u];
                    ++per_node[v];
                    ++per_node[w];
                  });
  return per_node;
}

uint32_t CommonNeighbors(const Graph& graph, Graph::NodeId u,
                         Graph::NodeId v) {
  const auto nu = graph.Neighbors(u);
  const auto nv = graph.Neighbors(v);
  uint32_t common = 0;
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace dpkron
