#include "src/common/stat_cache.h"

namespace dpkron {

StatCache& StatCache::Instance() {
  // Leaked singleton: cached values may be handed out up to process
  // exit, so the cache must never be destroyed before its clients.
  static StatCache& instance = *new StatCache;
  return instance;
}

StatCache::Lookup StatCache::LookupOrRegister(
    const char* domain, uint64_t key,
    std::shared_future<std::shared_ptr<const void>> candidate) {
  std::lock_guard<std::mutex> lock(mu_);
  Domain& d = domains_[domain];
  auto [it, inserted] = d.entries.try_emplace(key, std::move(candidate));
  if (inserted) {
    ++d.counters.misses;
  } else {
    ++d.counters.hits;
  }
  return Lookup{it->second, inserted};
}

void StatCache::Clear() {
  // An in-flight owner still fulfills its promise after its entry is
  // dropped here: waiters hold their own shared_future copies, so they
  // complete normally; only future lookups recompute.
  std::lock_guard<std::mutex> lock(mu_);
  domains_.clear();
}

StatCache::Counters StatCache::TotalCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters total;
  for (const auto& [name, domain] : domains_) {
    total.hits += domain.counters.hits;
    total.misses += domain.counters.misses;
  }
  return total;
}

std::vector<std::pair<std::string, StatCache::Counters>>
StatCache::DomainCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Counters>> counters;
  counters.reserve(domains_.size());
  for (const auto& [name, domain] : domains_) {
    counters.emplace_back(name, domain.counters);
  }
  return counters;
}

}  // namespace dpkron
