// dpkron_experiments — the unified experiment runner.
//
// One binary drives every registered scenario (Figs 1–4, Table 1, the
// ablations, the dK-2 comparison) with shared flag parsing and uniform
// output: human-readable summaries + TSV to stdout, and an optional
// structured JSON document (--out=BENCH_scenarios.json) with the
// PrivacyBudget ledger embedded per run.
//
//   dpkron_experiments --list
//   dpkron_experiments --scenario=fig1_ca_grqc --realizations=100
//   dpkron_experiments --scenario=all --smoke --out=BENCH_scenarios.json
//
// Sweep mode executes the scenario × dataset × ε × seed matrix
// concurrently with cross-run stat caching and writes one
// BENCH_sweeps.json document:
//
//   dpkron_experiments --sweep --scenario=fig2_as20
//     --dataset=data/ca_test.edges --dataset-cache
//     --sweep-epsilons=0.1,0.2,0.5,1,2 --sweep-seeds=3
//     --cache-stats --out=BENCH_sweeps.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/parallel.h"
#include "src/common/simd.h"
#include "src/common/stat_cache.h"
#include "src/core/scenario.h"
#include "src/core/sweep.h"
#include "src/datasets/graph_source.h"
#include "src/scenarios/scenarios.h"

namespace dpkron {
namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dpkron_experiments [--list] --scenario=<name>[,...]\n"
               "\n"
               "  --list                show registered scenarios and exit\n"
               "  --list-datasets       show registered datasets and exit\n"
               "  --scenario=NAMES      comma-separated scenario names, or"
               " 'all'\n"
               "  --dataset=REF         run on this dataset instead of the\n"
               "                        scenario's own: a registry name, an\n"
               "                        edge-list path, or a .dpkb path\n"
               "  --dataset-cache       keep a .dpkb sidecar cache next to\n"
               "                        a file-backed --dataset\n"
               "  --mmap                serve file-backed datasets\n"
               "                        out-of-core via an mmap'd .dpkb\n"
               "                        (implies the sidecar cache for edge\n"
               "                        lists); results are bit-identical\n"
               "                        to in-RAM loads\n"
               "  --threads=N           worker threads (default: hardware)\n"
               "  --seed=N              override the scenario's seed\n"
               "  --epsilon=X           override the privacy parameter\n"
               "  --realizations=N      override 'Expected' realizations\n"
               "  --trials=N            override mechanism trials per point\n"
               "  --kronfit-iterations=N  override KronFit iterations\n"
               "  --sweep-epsilons=a,b  override the epsilon sweep axis\n"
               "                        (in --sweep mode: the ε grid)\n"
               "  --smoke               shrink every axis for a fast pass\n"
               "  --force-scalar        disable SIMD dispatch (also:\n"
               "                        DPKRON_FORCE_SCALAR=1); outputs are\n"
               "                        bit-identical either way — this is\n"
               "                        for perf A/B and fallback testing\n"
               "  --out=PATH            write BENCH_scenarios.json here\n"
               "                        (BENCH_sweeps.json in --sweep mode)\n"
               "\n"
               "sweep mode (batch matrix with cross-run stat caching):\n"
               "  --sweep               run scenarios x datasets x epsilons\n"
               "                        x seeds concurrently; failures are\n"
               "                        recorded per run, not fatal\n"
               "  --sweep-seeds=N       seed-axis length (default 1; seed 0\n"
               "                        is the base seed itself)\n"
               "  --cache-stats         print StatCache hit/miss counters\n"
               "                        (they are always in the JSON)\n"
               "  --checkpoint=PATH     journal each completed cell to PATH\n"
               "                        (fsynced per cell; switches the JSON\n"
               "                        document to its stable form)\n"
               "  --resume              skip cells already completed in the\n"
               "                        --checkpoint journal; the merged\n"
               "                        document is byte-identical to an\n"
               "                        uninterrupted run\n"
               "  --retries=N           extra attempts per cell for\n"
               "                        transient (UNAVAILABLE) failures\n"
               "                        (default 0)\n"
               "  --disk-cache=DIR      attach the persistent StatCache\n"
               "                        tier rooted at DIR (created if\n"
               "                        needed); repeated runs and sweep\n"
               "                        shards warm-start from it\n"
               "  --cache-mem-budget=MB cap the in-memory StatCache\n"
               "                        footprint; oldest entries evict\n"
               "                        (and reload from --disk-cache)\n"
               "  --disk-cache-budget=MB cap the on-disk cache size;\n"
               "                        oldest entries are unlinked after\n"
               "                        each store (in-flight entries are\n"
               "                        pinned)\n"
               "\n"
               "multi-process sharding (requires --sweep --checkpoint):\n"
               "  --sweep-shards=N      this run is one worker of an\n"
               "                        N-worker fleet over the same spec\n"
               "  --sweep-shard-id=I    which worker (0..N-1); the shard\n"
               "                        journals to <checkpoint>.shard-I\n"
               "  --sweep-merge         instead of running, merge the N\n"
               "                        shard journals into the document\n"
               "                        (byte-identical to an unsharded\n"
               "                        run of the same spec)\n");
}

void PrintList() {
  std::printf("registered scenarios (run with --scenario=<name>):\n\n");
  for (const ScenarioSpec& spec : AllScenarios()) {
    std::printf("  %-22s %s\n", spec.name.c_str(), spec.description.c_str());
    std::printf("  %-22s   was: %s", "",
                spec.legacy_binary.empty() ? "-"
                                           : spec.legacy_binary.c_str());
    if (!spec.datasets.empty()) {
      std::printf("; datasets:");
      for (const std::string& dataset : spec.datasets) {
        std::printf(" %s", dataset.c_str());
      }
    }
    std::printf("\n  %-22s   defaults: seed=%llu epsilon=%g delta=%g", "",
                static_cast<unsigned long long>(spec.defaults.seed),
                spec.defaults.epsilon, spec.defaults.delta);
    if (spec.defaults.realizations > 0) {
      std::printf(" realizations=%u", spec.defaults.realizations);
    }
    if (spec.defaults.trials > 0) {
      std::printf(" trials=%u", spec.defaults.trials);
    }
    if (!spec.defaults.sweep_epsilons.empty()) {
      std::printf(" sweep=[");
      for (size_t i = 0; i < spec.defaults.sweep_epsilons.size(); ++i) {
        std::printf("%s%g", i ? "," : "", spec.defaults.sweep_epsilons[i]);
      }
      std::printf("]");
    }
    std::printf("\n\n");
  }
}

void PrintDatasetList() {
  std::printf("registered datasets (generator-backed; use with --dataset"
              " or in scenario specs):\n\n");
  std::printf("  %-16s %-14s %-20s %8s %10s\n", "name", "kind", "paper name",
              "N", "E");
  for (const DatasetInfo& info : PaperDatasets()) {
    std::printf("  %-16s %-14s %-20s %8u %10llu\n", info.name.c_str(),
                info.kind.c_str(), info.paper_name.c_str(), info.paper_nodes,
                static_cast<unsigned long long>(info.paper_edges));
  }
  std::printf("\nany SNAP-style edge-list path or .dpkb binary path is also"
              " a valid --dataset\nreference; add --dataset-cache to parse"
              " the text once and binary-load it\nthereafter.\n");
}

std::vector<std::string> SplitCommaList(const char* value) {
  std::vector<std::string> items;
  std::string current;
  for (const char* c = value; *c != '\0'; ++c) {
    if (*c == ',') {
      if (!current.empty()) items.push_back(current);
      current.clear();
    } else {
      current += *c;
    }
  }
  if (!current.empty()) items.push_back(current);
  return items;
}

void PrintCacheStats() {
  const StatCache::Counters total = StatCache::Instance().TotalCounters();
  std::printf("# stat cache: %llu hits, %llu misses, %llu disk hits,"
              " %llu disk misses\n",
              static_cast<unsigned long long>(total.hits),
              static_cast<unsigned long long>(total.misses),
              static_cast<unsigned long long>(total.disk_hits),
              static_cast<unsigned long long>(total.disk_misses));
  for (const auto& [domain, counters] : StatCache::Instance().DomainCounters()) {
    std::printf("#   %-18s %llu hits, %llu misses, %llu disk hits,"
                " %llu disk misses\n",
                domain.c_str(),
                static_cast<unsigned long long>(counters.hits),
                static_cast<unsigned long long>(counters.misses),
                static_cast<unsigned long long>(counters.disk_hits),
                static_cast<unsigned long long>(counters.disk_misses));
  }
}

int Main(int argc, char** argv) {
  RegisterAllScenarios();

  bool list = false;
  bool list_datasets = false;
  bool sweep_mode = false;
  bool cache_stats = false;
  bool resume = false;
  bool sweep_merge = false;
  uint32_t sweep_seeds = 1;
  uint32_t retries = 0;
  uint32_t sweep_shards = 1;
  int sweep_shard_id = -1;  // -1 = flag not given
  uint64_t cache_mem_budget_mb = 0;
  uint64_t disk_cache_budget_mb = 0;
  std::string checkpoint_path;
  std::string disk_cache_path;
  std::vector<std::string> names;
  std::string out_path;
  int threads = 0;
  ScenarioOverrides overrides;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--list-datasets") == 0) {
      list_datasets = true;
    } else if (std::strcmp(arg, "--sweep") == 0) {
      sweep_mode = true;
    } else if (std::strcmp(arg, "--cache-stats") == 0) {
      cache_stats = true;
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      checkpoint_path = arg + 13;
    } else if (std::strncmp(arg, "--disk-cache=", 13) == 0) {
      disk_cache_path = arg + 13;
    } else if (std::strncmp(arg, "--cache-mem-budget=", 19) == 0) {
      const long long mb = std::atoll(arg + 19);
      if (mb < 1) {
        std::fprintf(stderr, "--cache-mem-budget must be >= 1 (MB)\n");
        return 2;
      }
      cache_mem_budget_mb = static_cast<uint64_t>(mb);
    } else if (std::strncmp(arg, "--disk-cache-budget=", 20) == 0) {
      const long long mb = std::atoll(arg + 20);
      if (mb < 1) {
        std::fprintf(stderr, "--disk-cache-budget must be >= 1 (MB)\n");
        return 2;
      }
      disk_cache_budget_mb = static_cast<uint64_t>(mb);
    } else if (std::strcmp(arg, "--sweep-merge") == 0) {
      sweep_merge = true;
    } else if (std::strncmp(arg, "--sweep-shards=", 15) == 0) {
      const int shards = std::atoi(arg + 15);
      if (shards < 1) {
        std::fprintf(stderr, "--sweep-shards must be >= 1\n");
        return 2;
      }
      sweep_shards = static_cast<uint32_t>(shards);
    } else if (std::strncmp(arg, "--sweep-shard-id=", 17) == 0) {
      sweep_shard_id = std::atoi(arg + 17);
      if (sweep_shard_id < 0) {
        std::fprintf(stderr, "--sweep-shard-id must be >= 0\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--retries=", 10) == 0) {
      const int value = std::atoi(arg + 10);
      if (value < 0) {
        std::fprintf(stderr, "--retries must be >= 0\n");
        return 2;
      }
      retries = static_cast<uint32_t>(value);
    } else if (std::strncmp(arg, "--sweep-seeds=", 14) == 0) {
      const int seeds = std::atoi(arg + 14);
      if (seeds < 1) {
        std::fprintf(stderr, "--sweep-seeds must be >= 1\n");
        return 2;
      }
      sweep_seeds = static_cast<uint32_t>(seeds);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      overrides.smoke = true;
    } else if (std::strcmp(arg, "--force-scalar") == 0) {
      SetSimdLevelCap(SimdLevel::kScalar);
    } else if (std::strcmp(arg, "--dataset-cache") == 0) {
      overrides.dataset_cache = true;
    } else if (std::strcmp(arg, "--mmap") == 0) {
      overrides.dataset_mmap = true;
    } else if (std::strncmp(arg, "--dataset=", 10) == 0) {
      overrides.dataset = std::string(arg + 10);
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      for (std::string& name : SplitCommaList(arg + 11)) {
        names.push_back(std::move(name));
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      // strtoull, not atoll: sweep-derived seeds are full 64-bit values
      // and must round-trip from the JSON back through --seed.
      overrides.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--epsilon=", 10) == 0) {
      overrides.epsilon = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--realizations=", 15) == 0) {
      overrides.realizations = static_cast<uint32_t>(std::atoi(arg + 15));
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      const int trials = std::atoi(arg + 9);
      if (trials < 1) {
        std::fprintf(stderr, "--trials must be >= 1\n");
        return 2;
      }
      overrides.trials = static_cast<uint32_t>(trials);
    } else if (std::strncmp(arg, "--kronfit-iterations=", 21) == 0) {
      const int iterations = std::atoi(arg + 21);
      if (iterations < 1) {
        std::fprintf(stderr, "--kronfit-iterations must be >= 1\n");
        return 2;
      }
      overrides.kronfit_iterations = static_cast<uint32_t>(iterations);
    } else if (std::strncmp(arg, "--sweep-epsilons=", 17) == 0) {
      std::vector<double> sweep;
      for (const std::string& item : SplitCommaList(arg + 17)) {
        sweep.push_back(std::atof(item.c_str()));
      }
      overrides.sweep_epsilons = std::move(sweep);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", arg);
      PrintUsage(stderr);
      return 2;
    }
  }

  if (list) {
    PrintList();
    return 0;
  }
  if (list_datasets) {
    PrintDatasetList();
    return 0;
  }
  if (sweep_seeds != 1 && !sweep_mode) {
    // Silently dropping the requested seed axis would hand back a
    // single run with no diagnostic.
    std::fprintf(stderr, "--sweep-seeds requires --sweep\n");
    return 2;
  }
  if ((!checkpoint_path.empty() || resume || retries > 0) && !sweep_mode) {
    std::fprintf(stderr,
                 "--checkpoint / --resume / --retries require --sweep\n");
    return 2;
  }
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=PATH\n");
    return 2;
  }
  if ((sweep_shards > 1 || sweep_shard_id >= 0 || sweep_merge) &&
      !sweep_mode) {
    std::fprintf(stderr,
                 "--sweep-shards / --sweep-shard-id / --sweep-merge require"
                 " --sweep\n");
    return 2;
  }
  if ((sweep_shards > 1 || sweep_merge) && checkpoint_path.empty()) {
    // Shard journals and the merge input set both derive from the
    // checkpoint base path — there is nothing to name them without it.
    std::fprintf(stderr,
                 "--sweep-shards / --sweep-merge require --checkpoint=PATH"
                 " (the shard-journal base)\n");
    return 2;
  }
  if (sweep_merge && sweep_shard_id >= 0) {
    std::fprintf(stderr, "--sweep-merge is not a worker; drop"
                         " --sweep-shard-id\n");
    return 2;
  }
  if (sweep_merge && resume) {
    std::fprintf(stderr, "--sweep-merge does not execute cells; use --resume"
                         " on the workers instead\n");
    return 2;
  }
  if (!sweep_merge && sweep_shards > 1 && sweep_shard_id < 0) {
    std::fprintf(stderr, "--sweep-shards needs --sweep-shard-id=I (worker)"
                         " or --sweep-merge\n");
    return 2;
  }
  if (sweep_shard_id >= 0 &&
      static_cast<uint32_t>(sweep_shard_id) >= sweep_shards) {
    std::fprintf(stderr, "--sweep-shard-id must be < --sweep-shards\n");
    return 2;
  }
  // In sweep mode --dataset is the dataset axis (comma-separated refs);
  // in single-run mode it is one ref. Either way, fail fast on a bad
  // reference instead of deep inside a scenario.
  std::vector<std::string> dataset_axis;
  if (overrides.dataset) {
    dataset_axis = sweep_mode ? SplitCommaList(overrides.dataset->c_str())
                              : std::vector<std::string>{*overrides.dataset};
    for (const std::string& ref : dataset_axis) {
      auto source = ResolveGraphSource(ref);
      if (!source.ok()) {
        std::fprintf(stderr, "--dataset: %s\n",
                     source.status().ToString().c_str());
        return 2;
      }
    }
  }
  if (names.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  if (names.size() == 1 && names[0] == "all") {
    names.clear();
    for (const ScenarioSpec& spec : AllScenarios()) {
      names.push_back(spec.name);
    }
  }
  if (threads > 0) SetParallelThreadCount(threads);
  // Cross-run stat caching is on for the whole runner: in-run reuse
  // (e.g. one sensitivity profile across Table 1's private trials) is
  // free, and cached values are bit-identical to recomputation, so
  // single-run output is unchanged.
  StatCache::Instance().set_enabled(true);
  if (!disk_cache_path.empty()) {
    DiskCache::Options disk_options;
    disk_options.byte_budget = disk_cache_budget_mb * (1ull << 20);
    const Status attached =
        StatCache::Instance().AttachDiskTier(disk_cache_path, disk_options);
    if (!attached.ok()) {
      std::fprintf(stderr, "--disk-cache: %s\n", attached.ToString().c_str());
      return 2;
    }
  } else if (disk_cache_budget_mb > 0) {
    std::fprintf(stderr, "--disk-cache-budget requires --disk-cache=DIR\n");
    return 2;
  }
  if (cache_mem_budget_mb > 0) {
    StatCache::Instance().set_byte_budget(cache_mem_budget_mb * (1ull << 20));
  }

  if (sweep_mode) {
    SweepSpec sweep;
    sweep.scenarios = names;
    sweep.datasets = dataset_axis;
    if (overrides.sweep_epsilons) {
      // Repurposed as the sweep's ε grid; scenarios keep their own
      // internal sweep axes untouched.
      sweep.epsilons = *overrides.sweep_epsilons;
      overrides.sweep_epsilons.reset();
    }
    sweep.seeds = sweep_seeds;
    sweep.base = overrides;
    sweep.base.dataset.reset();  // carried by the dataset axis instead
    sweep.checkpoint_path = checkpoint_path;
    sweep.resume = resume;
    sweep.max_attempts = retries + 1;
    if (sweep_merge) {
      // Merge mode: no cells execute here; combine the workers' shard
      // journals into the full-matrix document.
      std::vector<std::string> shard_paths;
      for (uint32_t i = 0; i < sweep_shards; ++i) {
        shard_paths.push_back(ShardCheckpointPath(checkpoint_path, i));
      }
      auto merged = MergeSweepShards(sweep, shard_paths);
      if (!merged.ok()) {
        std::fprintf(stderr, "sweep merge failed: %s\n",
                     merged.status().ToString().c_str());
        return 2;
      }
      std::printf("# sweep merge: %zu runs (%zu failed) from %u shards\n",
                  merged.value().runs.size(), merged.value().failed_runs,
                  sweep_shards);
      if (!out_path.empty()) {
        const std::string json =
            SweepsJson(merged.value(), ParallelThreadCount());
        const Status wrote = WriteFileDurable(out_path, json + "\n");
        if (!wrote.ok()) {
          std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                       wrote.ToString().c_str());
          return 1;
        }
        std::printf("# wrote %s (%zu runs)\n", out_path.c_str(),
                    merged.value().runs.size());
      }
      return 0;
    }
    if (sweep_shards > 1) {
      sweep.shards = sweep_shards;
      sweep.shard_id = static_cast<uint32_t>(sweep_shard_id);
      sweep.checkpoint_path =
          ShardCheckpointPath(checkpoint_path, sweep.shard_id);
    }
    auto result = RunSweep(sweep);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   result.status().ToString().c_str());
      return 2;
    }
    std::printf("# sweep: %zu runs (%zu failed, %zu resumed) in %.2fs\n",
                result.value().runs.size(), result.value().failed_runs,
                result.value().resumed_runs,
                result.value().elapsed_seconds);
    for (const SweepRun& run : result.value().runs) {
      if (!run.status.ok()) {
        std::printf("#   failed: %s eps=%g seed=%llu: %s\n",
                    run.scenario.c_str(), run.epsilon,
                    static_cast<unsigned long long>(run.seed),
                    run.status.ToString().c_str());
      }
    }
    if (cache_stats) PrintCacheStats();
    if (!out_path.empty()) {
      const std::string json =
          SweepsJson(result.value(), ParallelThreadCount());
      // Temp-file + fsync + atomic rename: an interrupted run never
      // leaves a truncated/unparseable benchmark artifact in place.
      const Status wrote = WriteFileDurable(out_path, json + "\n");
      if (!wrote.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                     wrote.ToString().c_str());
        return 1;
      }
      std::printf("# wrote %s (%zu runs)\n", out_path.c_str(),
                  result.value().runs.size());
    }
    return 0;
  }

  std::vector<ScenarioOutput> outputs;
  outputs.reserve(names.size());
  for (const std::string& name : names) {
    const ScenarioSpec* spec = FindScenario(name);
    if (spec == nullptr) {
      std::fprintf(stderr,
                   "unknown scenario: %s (use --list to see the registry)\n",
                   name.c_str());
      return 2;
    }
    outputs.emplace_back(spec->name, stdout);
    const Status status = RunScenario(*spec, overrides, outputs.back());
    if (!status.ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n", name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("# %s done in %.2fs\n\n", name.c_str(),
                outputs.back().elapsed_seconds());
  }
  if (cache_stats) PrintCacheStats();

  if (!out_path.empty()) {
    std::vector<const ScenarioOutput*> runs;
    for (const ScenarioOutput& output : outputs) runs.push_back(&output);
    const std::string json = ScenariosJson(runs, ParallelThreadCount());
    const Status wrote = WriteFileDurable(out_path, json + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                   wrote.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu scenarios)\n", out_path.c_str(),
                runs.size());
  }
  return 0;
}

}  // namespace
}  // namespace dpkron

int main(int argc, char** argv) { return dpkron::Main(argc, argv); }
