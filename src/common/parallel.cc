#include "src/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/macros.h"

namespace dpkron {
namespace {

// Set while a worker executes chunks; nested parallel sections run
// serially on the calling worker instead of deadlocking on the pool.
thread_local bool t_inside_parallel_region = false;

int DefaultThreadCount() {
  if (const char* env = std::getenv("DPKRON_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// One parallel section. Heap-allocated and shared with the workers so a
// straggler that wakes after Run() returned only sees an exhausted chunk
// cursor (next_chunk never resets within a job) and never dereferences
// `fn` — whose pointee lives only for the duration of Run().
struct Job {
  const std::function<void(size_t chunk, size_t worker)>* fn = nullptr;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> pending{0};
};

// Persistent pool: `threads_ - 1` spawned workers plus the calling
// thread (worker 0). Jobs are broadcast through a generation counter;
// chunks are claimed from an atomic cursor, so imbalance between chunks
// self-schedules.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
    return *pool;
  }

  int thread_count() const { return threads_; }

  void SetThreadCount(int threads) {
    if (threads < 1) threads = 1;
    if (threads == threads_) return;
    Shutdown();
    threads_ = threads;
    Spawn();
  }

  void Run(size_t num_chunks,
           const std::function<void(size_t chunk, size_t worker)>& fn) {
    if (num_chunks == 0) return;
    if (threads_ == 1 || num_chunks == 1 || t_inside_parallel_region) {
      // Save/restore rather than set/clear: a nested call arriving with
      // the flag already up must leave it up for the enclosing section.
      const bool was_inside = t_inside_parallel_region;
      t_inside_parallel_region = true;
      for (size_t chunk = 0; chunk < num_chunks; ++chunk) fn(chunk, 0);
      t_inside_parallel_region = was_inside;
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->num_chunks = num_chunks;
    job->pending.store(num_chunks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_job_ = job;
      ++generation_;
    }
    start_cv_.notify_all();
    WorkLoop(*job, /*worker=*/0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&job] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  explicit ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
    Spawn();
  }

  void Spawn() {
    stop_ = false;
    workers_.reserve(threads_ - 1);
    for (int worker = 1; worker < threads_; ++worker) {
      workers_.emplace_back([this, worker] { WorkerMain(worker); });
    }
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }

  void WorkerMain(int worker) {
    uint64_t seen_generation;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seen_generation = generation_;
    }
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [this, seen_generation] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        job = current_job_;
      }
      if (job) WorkLoop(*job, static_cast<size_t>(worker));
    }
  }

  void WorkLoop(Job& job, size_t worker) {
    t_inside_parallel_region = true;
    for (;;) {
      const size_t chunk =
          job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.num_chunks) break;
      (*job.fn)(chunk, worker);
      if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk finished: wake the caller (the lock guarantees the
        // notify cannot race past the caller's wait check).
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
    t_inside_parallel_region = false;
  }

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  uint64_t generation_ = 0;
  std::shared_ptr<Job> current_job_;
};

}  // namespace

int ParallelThreadCount() { return ThreadPool::Instance().thread_count(); }

void SetParallelThreadCount(int threads) {
  ThreadPool::Instance().SetThreadCount(threads);
}

size_t ParallelChunkCount(size_t n, size_t grain) {
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

void ParallelForChunks(size_t n, size_t grain,
                       const std::function<void(const ParallelChunk&)>& fn) {
  if (n == 0) return;
  if (grain < 1) grain = 1;
  const size_t num_chunks = ParallelChunkCount(n, grain);
  const std::function<void(size_t, size_t)> chunk_fn =
      [&fn, n, grain](size_t chunk, size_t worker) {
        ParallelChunk range;
        range.begin = chunk * grain;
        range.end = std::min(n, range.begin + grain);
        range.index = chunk;
        range.worker = worker;
        fn(range);
      };
  ThreadPool::Instance().Run(num_chunks, chunk_fn);
}

double ParallelSum(size_t n, size_t grain,
                   const std::function<double(size_t, size_t)>& partial_fn) {
  if (n == 0) return 0.0;
  std::vector<double> partials(ParallelChunkCount(n, grain), 0.0);
  ParallelForChunks(n, grain, [&](const ParallelChunk& chunk) {
    partials[chunk.index] = partial_fn(chunk.begin, chunk.end);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

std::vector<Rng> SplitRngStreams(Rng& parent, size_t count) {
  std::vector<Rng> streams;
  streams.reserve(count);
  for (size_t i = 0; i < count; ++i) streams.push_back(parent.Split());
  return streams;
}

void ParallelForChunksWithRng(
    size_t n, size_t grain, Rng& rng,
    const std::function<void(const ParallelChunk&, Rng&)>& fn) {
  if (n == 0) return;
  std::vector<Rng> streams =
      SplitRngStreams(rng, ParallelChunkCount(n, grain));
  ParallelForChunks(n, grain, [&](const ParallelChunk& chunk) {
    fn(chunk, streams[chunk.index]);
  });
}

}  // namespace dpkron
