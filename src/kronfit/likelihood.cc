#include "src/kronfit/likelihood.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace dpkron {

KronFitLikelihood::KronFitLikelihood(const Initiator2& theta, uint32_t k)
    : theta_(Initiator2{std::max(theta.a, kThetaFloor),
                        std::max(theta.b, kThetaFloor),
                        std::max(theta.c, kThetaFloor)}
                 .Clamped()),
      k_(k),
      prob_(theta_, k) {
  DPKRON_CHECK_GE(k, 1u);
}

std::array<uint32_t, 3> KronFitLikelihood::DigitCounts(uint32_t p,
                                                       uint32_t q) const {
  const uint32_t mask = (k_ >= 32) ? 0xFFFFFFFFu : ((1u << k_) - 1);
  const uint32_t both = (p & q) & mask;
  const uint32_t only = (p ^ q) & mask;
  const uint32_t n11 = static_cast<uint32_t>(__builtin_popcount(both));
  const uint32_t nb = static_cast<uint32_t>(__builtin_popcount(only));
  return {k_ - n11 - nb, nb, n11};
}

double KronFitLikelihood::EdgeTerm(uint32_t p, uint32_t q) const {
  const double P = prob_(p, q);
  return std::log(P) + P + 0.5 * P * P;
}

double KronFitLikelihood::NoEdgeTerm() const {
  const double a = theta_.a, b = theta_.b, c = theta_.c;
  const double first =
      0.5 * (PowInt(a + 2 * b + c, k_) - PowInt(a + c, k_));
  const double second = 0.25 * (PowInt(a * a + 2 * b * b + c * c, k_) -
                                PowInt(a * a + c * c, k_));
  return first + second;
}

Gradient3 KronFitLikelihood::NoEdgeGradient() const {
  const double a = theta_.a, b = theta_.b, c = theta_.c;
  const double s1 = PowInt(a + 2 * b + c, k_ - 1);
  const double t1 = PowInt(a + c, k_ - 1);
  const double s2 = PowInt(a * a + 2 * b * b + c * c, k_ - 1);
  const double t2 = PowInt(a * a + c * c, k_ - 1);
  const double kk = static_cast<double>(k_);
  Gradient3 grad;
  grad[0] = 0.5 * kk * (s1 - t1) + 0.5 * kk * a * (s2 - t2);
  grad[1] = kk * s1 + kk * b * s2;
  grad[2] = 0.5 * kk * (s1 - t1) + 0.5 * kk * c * (s2 - t2);
  return grad;
}

double KronFitLikelihood::LogLikelihood(const Graph& graph,
                                        const PermutationState& sigma) const {
  double edge_sum = 0.0;
  graph.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
    edge_sum += EdgeTerm(sigma.Position(u), sigma.Position(v));
  });
  return edge_sum - NoEdgeTerm();
}

double KronFitLikelihood::SwapDelta(const Graph& graph,
                                    const PermutationState& sigma, uint32_t u,
                                    uint32_t v) const {
  if (u == v) return 0.0;
  const uint32_t pu = sigma.Position(u), pv = sigma.Position(v);
  double delta = 0.0;
  // Edges incident to u (skip the shared edge {u,v}: handled once below).
  for (Graph::NodeId w : graph.Neighbors(u)) {
    if (w == v) continue;
    const uint32_t pw = sigma.Position(w);
    delta += EdgeTerm(pv, pw) - EdgeTerm(pu, pw);
  }
  for (Graph::NodeId w : graph.Neighbors(v)) {
    if (w == u) continue;
    const uint32_t pw = sigma.Position(w);
    delta += EdgeTerm(pu, pw) - EdgeTerm(pv, pw);
  }
  // The edge {u, v} itself keeps its unordered position pair — P is
  // symmetric, so its term is unchanged.
  return delta;
}

Gradient3 KronFitLikelihood::EdgeGradient(const Graph& graph,
                                          const PermutationState& sigma) const {
  Gradient3 grad{0.0, 0.0, 0.0};
  const double a = theta_.a, b = theta_.b, c = theta_.c;
  graph.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
    const uint32_t p = sigma.Position(u), q = sigma.Position(v);
    const auto [n00, nb, n11] = DigitCounts(p, q);
    const double P = prob_(p, q);
    // d/dθ [log P + P + P²/2] = (n_θ/θ)(1 + P + P²).
    const double factor = 1.0 + P + P * P;
    grad[0] += n00 / a * factor;
    grad[1] += nb / b * factor;
    grad[2] += n11 / c * factor;
  });
  return grad;
}

}  // namespace dpkron
