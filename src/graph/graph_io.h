// Graph ingestion I/O: SNAP-style text edge lists and the versioned
// binary CSR format (.dpkb).
//
// Text format: one "u<whitespace>v" pair per line; lines starting with
// '#' are comments; blank lines, CRLF endings, tabs and runs of spaces
// are all accepted. Node ids in the file may be arbitrary (sparse)
// uint64s — the reader densifies them to 0..n-1 preserving
// first-appearance order, exactly the preprocessing one applies to the
// real SNAP files the paper used. Malformed lines (non-numeric fields,
// ids overflowing uint64, trailing garbage) produce an InvalidArgument
// Status naming the offending line.
//
// The default parser is chunked and thread-pool-parallel: the byte
// range is split into fixed-size chunks snapped forward to newline
// boundaries (a decomposition that depends only on the bytes and the
// chunk size, never the thread count), chunks are tokenized via the
// shared pool, and the per-chunk edge runs are concatenated in chunk
// order before densification — so the resulting Graph is bit-identical
// to ParseEdgeListSerial at any thread count.
//
// Binary format (.dpkb, little-endian), the sidecar cache behind
// ReadEdgeListCached:
//
//   bytes  field
//   0..7   magic "DPKBCSR1"
//   8..11  version (uint32, currently 2)
//   12..15 reserved (uint32, 0)
//   16..23 num_nodes (uint64)
//   24..31 adjacency length (uint64, = 2·edges)
//   32..39 FNV-1a 64 checksum of the offsets + adjacency payload
//   40..47 source text size in bytes (uint64; 0 = standalone file)
//   48..55 FNV-1a 64 checksum of the source text (uint64; 0 =
//          standalone file) — version 2's addition. Sidecar caches
//          record the (size, checksum) stamp of the text they were
//          parsed from, and cached loads revalidate it against the
//          current source bytes, so no rewrite — same-size within mtime
//          granularity, mtime-preserving replacement — can serve a
//          stale graph.
//   56..   offsets ((num_nodes+1) × uint32), adjacency (len × uint32)
//
// ReadBinaryGraph verifies magic/version/sizes/checksum and the CSR
// invariants (monotone offsets, strictly sorted in-range lists, no
// self-loops) before constructing the Graph, so a truncated or
// corrupted cache degrades to a Status, never an aborted process.
// Version-1 files fail the version check; the sidecar-cache path treats
// that exactly like a stale cache (silent reparse + rewrite), so a
// repo upgraded across the version bump never misloads an old cache.

#ifndef DPKRON_GRAPH_GRAPH_IO_H_
#define DPKRON_GRAPH_GRAPH_IO_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace dpkron {

struct EdgeListParseOptions {
  // Target bytes per parallel chunk (boundaries snap forward to the
  // next newline). The chunk decomposition — and therefore the merged
  // edge order — depends only on this and the input, not on threads.
  size_t chunk_bytes = 1 << 20;

  // Cross-PROCESS sidecar-rebuild coordination (ReadEdgeListCached):
  // a cache miss takes "<path>.dpkb.lock" (O_EXCL) before parsing, so
  // N daemons cold-starting on one dataset do one parse, not N. A
  // loser polls every lock_poll_ms, re-checking the sidecar each wake
  // (the winner's rename makes it servable); a lock older than
  // lock_stale_ms is presumed orphaned (holder crashed between create
  // and unlink) and is broken. Locking is advisory and best-effort —
  // no failure of the lock protocol ever fails a load.
  int64_t lock_poll_ms = 20;
  int64_t lock_stale_ms = 10000;
};

// Reads an undirected graph from a SNAP-style edge list file
// (parallel parse of the whole file's bytes).
Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListParseOptions& options = {});

// Parses an edge list from an in-memory buffer (same format), chunked
// over the shared thread pool.
Result<Graph> ParseEdgeList(std::string_view text,
                            const EdgeListParseOptions& options = {});

// Single-pass line-by-line reference parser. Same tokenizer, no
// chunking — the oracle the parallel path must match bit-for-bit.
Result<Graph> ParseEdgeListSerial(std::string_view text);

// Writes `graph` as an edge list (u < v per line) with a comment header.
Status WriteEdgeList(const Graph& graph, const std::string& path);

// ------------------------------------------------------ binary (.dpkb)

// Provenance stamp of the source text a sidecar cache was parsed from;
// {0, 0} for standalone .dpkb files (and never matches a real text: the
// FNV-1a checksum of any byte string is non-zero).
struct DpkbSourceStamp {
  uint64_t size = 0;      // source text bytes
  uint64_t checksum = 0;  // FNV-1a 64 of the source text
};

// Serializes the graph's CSR arrays in the .dpkb format above.
// `source` is recorded in the header (sidecar caches pass the text
// file's stamp; standalone writers leave the default {0, 0}).
Status WriteBinaryGraph(const Graph& graph, const std::string& path,
                        const DpkbSourceStamp& source = {});

// Loads a .dpkb file, validating header, checksum and CSR invariants.
// `source`, when non-null, receives the header's recorded source stamp.
Result<Graph> ReadBinaryGraph(const std::string& path,
                              DpkbSourceStamp* source = nullptr);

// The sidecar cache path for an edge-list file: "<path>.dpkb".
std::string BinaryCachePath(const std::string& path);

// Parse-once cache: reads and checksums the source text, then loads
// "<path>.dpkb" if its recorded source stamp matches the current
// content; otherwise parses the bytes already in hand and (best-effort)
// writes the sidecar for next time. Freshness is content-addressed —
// timestamps play no part — so no rewrite of the source can be served
// stale. `cache_hit`, when non-null, reports which route served the
// graph.
Result<Graph> ReadEdgeListCached(const std::string& path,
                                 bool* cache_hit = nullptr,
                                 const EdgeListParseOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_GRAPH_GRAPH_IO_H_
