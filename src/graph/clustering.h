// Clustering coefficients.
//
// The "clustering" panels of Figs 1–4 plot the average clustering
// coefficient of degree-d nodes against d (log-log), the convention of
// Leskovec et al.'s Kronecker-graph evaluations.

#ifndef DPKRON_GRAPH_CLUSTERING_H_
#define DPKRON_GRAPH_CLUSTERING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// c_u = 2·t_u / (d_u (d_u − 1)) for d_u ≥ 2, else 0.
std::vector<double> LocalClustering(GraphView graph);

// Mean of c_u over all nodes with degree ≥ 2.
double AverageClustering(GraphView graph);

// Global (transitivity) coefficient: 3∆ / H. Returns 0 for wedge-free
// graphs.
double GlobalClustering(GraphView graph);

// (degree d, mean clustering of degree-d nodes) for every d ≥ 2 present in
// the graph, ascending.
std::vector<std::pair<uint32_t, double>> ClusteringByDegree(
    GraphView graph);

// Variant over precomputed per-node degrees and triangle counts, so a
// statistics pipeline that already holds both (degree histogram, local
// clustering) doesn't recompute them. Identical output to
// ClusteringByDegree(graph).
std::vector<std::pair<uint32_t, double>> ClusteringByDegreeFromParts(
    const std::vector<uint32_t>& degrees,
    const std::vector<uint64_t>& triangles);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_CLUSTERING_H_
