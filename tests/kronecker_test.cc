#include "src/skg/kronecker.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/skg/initiator.h"

namespace dpkron {
namespace {

TEST(PowIntTest, MatchesStdPow) {
  for (double x : {0.0, 0.3, 1.0, 1.7, 3.9}) {
    for (uint32_t n : {0u, 1u, 2u, 5u, 14u, 31u}) {
      EXPECT_NEAR(PowInt(x, n), std::pow(x, n), 1e-9 * std::pow(x, n) + 1e-30)
          << x << "^" << n;
    }
  }
}

TEST(PowIntTest, ZeroToZeroIsOne) { EXPECT_DOUBLE_EQ(PowInt(0.0, 0), 1.0); }

TEST(KroneckerNodeCountTest, PowersOfDim) {
  EXPECT_EQ(KroneckerNodeCount(2, 0), 1u);
  EXPECT_EQ(KroneckerNodeCount(2, 14), 16384u);
  EXPECT_EQ(KroneckerNodeCount(3, 4), 81u);
}

TEST(InitiatorTest, ValidityAndCanonical) {
  EXPECT_TRUE((Initiator2{0.5, 0.5, 0.5}).IsValid());
  EXPECT_FALSE((Initiator2{-0.1, 0.5, 0.5}).IsValid());
  EXPECT_FALSE((Initiator2{0.5, 1.2, 0.5}).IsValid());
  const Initiator2 swapped = Initiator2{0.2, 0.4, 0.9}.Canonical();
  EXPECT_DOUBLE_EQ(swapped.a, 0.9);
  EXPECT_DOUBLE_EQ(swapped.c, 0.2);
  EXPECT_DOUBLE_EQ(swapped.b, 0.4);
}

TEST(InitiatorTest, ClampedAndSum) {
  const Initiator2 theta = Initiator2{1.5, -0.2, 0.5}.Clamped();
  EXPECT_DOUBLE_EQ(theta.a, 1.0);
  EXPECT_DOUBLE_EQ(theta.b, 0.0);
  EXPECT_DOUBLE_EQ(theta.c, 0.5);
  EXPECT_DOUBLE_EQ((Initiator2{0.9, 0.45, 0.25}).EntrySum(), 2.05);
}

TEST(InitiatorTest, MaxAbsDifference) {
  EXPECT_DOUBLE_EQ(
      MaxAbsDifference({0.9, 0.5, 0.1}, {0.8, 0.45, 0.4}), 0.3);
}

TEST(InitiatorNTest, CreateValidates) {
  EXPECT_TRUE(InitiatorN::Create(2, {0.1, 0.2, 0.3, 0.4}).ok());
  EXPECT_FALSE(InitiatorN::Create(2, {0.1, 0.2, 0.3}).ok());
  EXPECT_FALSE(InitiatorN::Create(2, {0.1, 0.2, 0.3, 1.4}).ok());
  EXPECT_FALSE(InitiatorN::Create(0, {}).ok());
}

TEST(InitiatorNTest, From2x2Symmetric) {
  const InitiatorN theta = InitiatorN::From2x2({0.9, 0.45, 0.25});
  EXPECT_EQ(theta.dim(), 2u);
  EXPECT_TRUE(theta.IsSymmetric());
  EXPECT_DOUBLE_EQ(theta.At(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(theta.At(0, 1), 0.45);
  EXPECT_DOUBLE_EQ(theta.At(1, 0), 0.45);
  EXPECT_DOUBLE_EQ(theta.At(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(theta.EntrySum(), 2.05);
  EXPECT_DOUBLE_EQ(theta.TraceSum(), 1.15);
}

TEST(EdgeProbability2Test, KOneIsInitiator) {
  const Initiator2 theta{0.9, 0.45, 0.25};
  const EdgeProbability2 prob(theta, 1);
  EXPECT_DOUBLE_EQ(prob(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(prob(0, 1), 0.45);
  EXPECT_DOUBLE_EQ(prob(1, 0), 0.45);
  EXPECT_DOUBLE_EQ(prob(1, 1), 0.25);
}

TEST(EdgeProbability2Test, MatchesGeneralEvaluator) {
  const Initiator2 theta{0.9, 0.45, 0.25};
  const InitiatorN general = InitiatorN::From2x2(theta);
  const uint32_t k = 5;
  const EdgeProbability2 fast(theta, k);
  for (uint64_t u = 0; u < 32; ++u) {
    for (uint64_t v = 0; v < 32; ++v) {
      EXPECT_NEAR(fast(u, v), EdgeProbabilityN(general, k, u, v), 1e-14);
    }
  }
}

TEST(EdgeProbability2Test, SymmetricInU_V) {
  const EdgeProbability2 prob({0.8, 0.6, 0.3}, 7);
  for (uint64_t u = 0; u < 128; u += 13) {
    for (uint64_t v = 0; v < 128; v += 7) {
      EXPECT_DOUBLE_EQ(prob(u, v), prob(v, u));
    }
  }
}

TEST(EdgeProbability2Test, ProductStructure) {
  // P_{uu} for u = all-zero is a^k; all-ones is c^k.
  const uint32_t k = 6;
  const EdgeProbability2 prob({0.9, 0.45, 0.25}, k);
  EXPECT_NEAR(prob(0, 0), PowInt(0.9, k), 1e-15);
  EXPECT_NEAR(prob(63, 63), PowInt(0.25, k), 1e-15);
  EXPECT_NEAR(prob(0, 63), PowInt(0.45, k), 1e-15);
}

TEST(DenseKroneckerPowerTest, MatchesPerEntryEvaluator) {
  const auto theta = InitiatorN::Create(2, {0.9, 0.4, 0.5, 0.2}).value();
  const uint32_t k = 3;
  const auto dense = DenseKroneckerPower(theta, k);
  const uint64_t n = 8;
  ASSERT_EQ(dense.size(), n * n);
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = 0; v < n; ++v) {
      EXPECT_DOUBLE_EQ(dense[u * n + v], EdgeProbabilityN(theta, k, u, v));
    }
  }
}

TEST(DenseKroneckerPowerTest, KroneckerRecursion) {
  // Θ^[2] = Θ ⊗ Θ: check the block structure explicitly (Definition 3.1).
  const auto theta = InitiatorN::Create(2, {0.9, 0.4, 0.5, 0.2}).value();
  const auto p2 = DenseKroneckerPower(theta, 2);
  for (uint32_t bi = 0; bi < 2; ++bi) {
    for (uint32_t bj = 0; bj < 2; ++bj) {
      for (uint32_t i = 0; i < 2; ++i) {
        for (uint32_t j = 0; j < 2; ++j) {
          // Digit convention: level 0 is the least-significant digit.
          const uint64_t u = bi * 2 + i;
          const uint64_t v = bj * 2 + j;
          EXPECT_NEAR(p2[u * 4 + v], theta.At(i, j) * theta.At(bi, bj), 1e-15);
        }
      }
    }
  }
}

TEST(EdgeProbabilityNTest, AsymmetricInitiator) {
  const auto theta = InitiatorN::Create(2, {0.9, 0.4, 0.5, 0.2}).value();
  EXPECT_DOUBLE_EQ(EdgeProbabilityN(theta, 1, 0, 1), 0.4);
  EXPECT_DOUBLE_EQ(EdgeProbabilityN(theta, 1, 1, 0), 0.5);
  EXPECT_NE(EdgeProbabilityN(theta, 3, 1, 6), EdgeProbabilityN(theta, 3, 6, 1));
}

}  // namespace
}  // namespace dpkron
