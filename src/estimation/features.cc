#include "src/estimation/features.h"

#include <algorithm>
#include <cstdio>

#include "src/common/stat_cache.h"
#include "src/graph/degree.h"
#include "src/graph/triangles.h"

namespace dpkron {

std::string GraphFeatures::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "E=%.6g H=%.6g Delta=%.6g T=%.6g", edges,
                hairpins, triangles, tripins);
  return buf;
}

GraphFeatures ComputeFeatures(GraphView graph) {
  GraphFeatures f;
  f.edges = static_cast<double>(graph.NumEdges());
  f.hairpins = static_cast<double>(CountWedges(graph));
  f.triangles = static_cast<double>(CountTriangles(graph));
  f.tripins = static_cast<double>(CountTripins(graph));
  return f;
}

GraphFeatures ComputeFeaturesCached(GraphView graph) {
  return *StatCache::Instance().GetOrComputeDurable<GraphFeatures>(
      "features", CacheKey().Mix(graph.ContentFingerprint()).digest(),
      [&graph] { return ComputeFeatures(graph); },
      [](const GraphFeatures& f, RecordBuilder& rec) {
        rec.Double(f.edges)
            .Double(f.hairpins)
            .Double(f.triangles)
            .Double(f.tripins);
      },
      [](RecordParser& rec) -> std::optional<GraphFeatures> {
        GraphFeatures f;
        f.edges = rec.Double();
        f.hairpins = rec.Double();
        f.triangles = rec.Double();
        f.tripins = rec.Double();
        if (!rec.ok()) return std::nullopt;
        return f;
      });
}

GraphFeatures FeaturesFromDegrees(const std::vector<double>& degrees,
                                  double triangles) {
  GraphFeatures f;
  f.edges = EdgesFromDegrees(degrees);
  f.hairpins = HairpinsFromDegrees(degrees);
  f.tripins = TripinsFromDegrees(degrees);
  f.triangles = triangles;
  return f;
}

GraphFeatures ClampFeatures(const GraphFeatures& features, double floor) {
  GraphFeatures f = features;
  f.edges = std::max(f.edges, floor);
  f.hairpins = std::max(f.hairpins, floor);
  f.triangles = std::max(f.triangles, floor);
  f.tripins = std::max(f.tripins, floor);
  return f;
}

GraphFeatures FromMoments(const SkgMoments& moments) {
  GraphFeatures f;
  f.edges = moments.edges;
  f.hairpins = moments.hairpins;
  f.triangles = moments.triangles;
  f.tripins = moments.tripins;
  return f;
}

}  // namespace dpkron
