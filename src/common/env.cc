#include "src/common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace dpkron {

Status ErrnoStatus(const std::string& context, int err) {
  const std::string message = context + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(message);
    case ENOSPC:
    case EDQUOT:
      return Status::ResourceExhausted(message);
    case ETIMEDOUT:
      return Status::DeadlineExceeded(message);
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ECONNRESET:
    case ECONNREFUSED:
    case EPIPE:
      return Status::Unavailable(message);
    case EEXIST:
      return Status::FailedPrecondition(message);
    default:
      return Status::Internal(message);
  }
}

namespace {

// ---------------------------------------------------------- POSIX env

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t len) override {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const ssize_t n = ::write(fd_, p, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_, errno);
      }
      p += n;
      len -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return OpenForWrite(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    return OpenForWrite(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<WritableFile>> NewExclusiveFile(
      const std::string& path) override {
    return OpenForWrite(path, O_WRONLY | O_CREAT | O_EXCL);
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    std::string bytes;
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      bytes.reserve(static_cast<size_t>(st.st_size));
    }
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = ErrnoStatus("read " + path, errno);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      bytes.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return bytes;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("remove " + path, errno);
    }
    return Status::Ok();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate " + path, errno);
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir " + path, errno);
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& path_in_dir) override {
    const size_t slash = path_in_dir.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path_in_dir.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir " + dir, errno);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync dir " + dir, errno);
    ::close(fd);
    return status;
  }

 private:
  static Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, int flags) {
    const int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }
};

std::atomic<Env*> g_env{nullptr};

}  // namespace

Env* Env::Default() {
  static PosixEnv* posix = new PosixEnv;  // leaked: process lifetime
  return posix;
}

Env* GetEnv() {
  Env* env = g_env.load(std::memory_order_acquire);
  return env != nullptr ? env : Env::Default();
}

ScopedEnvOverride::ScopedEnvOverride(Env* env)
    : previous_(g_env.exchange(env, std::memory_order_acq_rel)) {}

ScopedEnvOverride::~ScopedEnvOverride() {
  g_env.store(previous_, std::memory_order_release);
}

Status WriteFileDurable(const std::string& path, std::string_view contents,
                        Env* env) {
  // Unique per process and call: two concurrent writers of the same
  // destination must not truncate each other's in-flight temp file.
  static std::atomic<uint64_t> counter{0};
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  auto file = env->NewWritableFile(temp);
  if (!file.ok()) return file.status();
  Status status = file.value()->Append(contents);
  // Sync before rename: without it a crash after the rename can leave
  // the destination name pointing at never-written blocks.
  if (status.ok()) status = file.value()->Sync();
  const Status close_status = file.value()->Close();
  if (status.ok()) status = close_status;
  if (status.ok()) status = env->RenameFile(temp, path);
  if (!status.ok()) {
    (void)env->RemoveFile(temp);
    return status;
  }
  // Make the rename itself durable. Failure here is reported (the
  // caller may retry), but the destination is already valid.
  return env->SyncDir(path);
}

// ------------------------------------------------------ fault injection

class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> base,
                             uint64_t initial_size)
      : env_(env),
        path_(std::move(path)),
        base_(std::move(base)),
        size_(initial_size) {}

  ~FaultInjectionWritableFile() override {
    if (base_ != nullptr) (void)base_->Close();
  }

  Status Append(const void* data, size_t len) override {
    std::unique_lock<std::mutex> lock(env_->mu_);
    ++env_->write_calls_;
    const Status fault =
        FaultInjectionEnv::NextOp(&env_->write_fault_, nullptr);
    size_t commit = len;
    if (!fault.ok()) {
      commit = std::min(env_->write_fault_.short_write_bytes, len);
    }
    lock.unlock();
    if (commit > 0) {
      const Status base_status = base_->Append(data, commit);
      if (!base_status.ok()) return base_status;
      lock.lock();
      size_ += commit;
      env_->written_size_[path_] = size_;
      lock.unlock();
    }
    return fault;
  }

  Status Sync() override {
    std::unique_lock<std::mutex> lock(env_->mu_);
    ++env_->sync_calls_;
    const Status fault = FaultInjectionEnv::NextOp(&env_->sync_fault_, nullptr);
    if (!fault.ok()) return fault;
    lock.unlock();
    const Status base_status = base_->Sync();
    if (!base_status.ok()) return base_status;
    lock.lock();
    env_->synced_size_[path_] = size_;
    return Status::Ok();
  }

  Status Close() override {
    if (base_ == nullptr) return Status::Ok();
    auto base = std::move(base_);
    return base->Close();
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
  uint64_t size_;  // bytes written through this handle + initial size
};

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

Status FaultInjectionEnv::NextOp(Fault* fault, uint64_t* counter) {
  if (counter != nullptr) ++*counter;
  if (!fault->armed) return Status::Ok();
  if (fault->remaining > 0) {
    --fault->remaining;
    return Status::Ok();
  }
  fault->armed = false;
  return fault->status;
}

void FaultInjectionEnv::FailWrites(int after, Status status,
                                   size_t short_write_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_ = Fault{true, after, std::move(status), short_write_bytes};
}

void FaultInjectionEnv::FailSyncs(int after, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_fault_ = Fault{true, after, std::move(status), 0};
}

void FaultInjectionEnv::FailRenames(int after, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  rename_fault_ = Fault{true, after, std::move(status), 0};
}

void FaultInjectionEnv::FailReads(int after, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  read_fault_ = Fault{true, after, std::move(status), 0};
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_ = Fault{};
  sync_fault_ = Fault{};
  rename_fault_ = Fault{};
  read_fault_ = Fault{};
}

void FaultInjectionEnv::DropUnsyncedData() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, written] : written_size_) {
    uint64_t synced = 0;
    if (const auto it = synced_size_.find(path); it != synced_size_.end()) {
      synced = it->second;
    }
    if (synced < written) {
      (void)base_->TruncateFile(path, synced);
    }
  }
  written_size_.clear();
  synced_size_.clear();
}

uint64_t FaultInjectionEnv::write_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_calls_;
}
uint64_t FaultInjectionEnv::sync_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_calls_;
}
uint64_t FaultInjectionEnv::rename_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rename_calls_;
}
uint64_t FaultInjectionEnv::read_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_calls_;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  std::lock_guard<std::mutex> lock(mu_);
  written_size_[path] = 0;
  synced_size_[path] = 0;
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      this, path, std::move(base).value(), 0));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewExclusiveFile(
    const std::string& path) {
  auto base = base_->NewExclusiveFile(path);
  if (!base.ok()) return base.status();
  std::lock_guard<std::mutex> lock(mu_);
  written_size_[path] = 0;
  synced_size_[path] = 0;
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      this, path, std::move(base).value(), 0));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewAppendableFile(
    const std::string& path) {
  auto base = base_->NewAppendableFile(path);
  if (!base.ok()) return base.status();
  uint64_t size = 0;
  if (auto existing = base_->FileSize(path); existing.ok()) {
    size = existing.value();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Pre-existing bytes are treated as durable: the crash being simulated
  // is a crash of THIS process, not a rewrite of history.
  if (written_size_.find(path) == written_size_.end()) {
    written_size_[path] = size;
    synced_size_[path] = size;
  }
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      this, path, std::move(base).value(), size));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Status fault = NextOp(&read_fault_, &read_calls_);
    if (!fault.ok()) return fault;
  }
  return base_->ReadFileToString(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::unique_lock<std::mutex> lock(mu_);
  ++rename_calls_;
  const Status fault = NextOp(&rename_fault_, nullptr);
  if (!fault.ok()) return fault;
  // Transfer durability tracking: the destination inherits the source's
  // synced prefix, so un-synced-then-renamed content still dies with
  // DropUnsyncedData — at its new name.
  if (const auto it = written_size_.find(from); it != written_size_.end()) {
    written_size_[to] = it->second;
    written_size_.erase(it);
    const auto synced = synced_size_.find(from);
    synced_size_[to] = synced != synced_size_.end() ? synced->second : 0;
    if (synced != synced_size_.end()) synced_size_.erase(synced);
  }
  lock.unlock();
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    written_size_.erase(path);
    synced_size_.erase(path);
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  const Status status = base_->TruncateFile(path, size);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = written_size_.find(path); it != written_size_.end()) {
      it->second = std::min(it->second, size);
    }
    if (const auto it = synced_size_.find(path); it != synced_size_.end()) {
      it->second = std::min(it->second, size);
    }
  }
  return status;
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path_in_dir) {
  return base_->SyncDir(path_in_dir);
}

}  // namespace dpkron
