// Mutable edge accumulator that produces validated Graph objects.
//
// Accepts edges in any order, with duplicates, reversed duplicates and
// self-loops; Build() canonicalizes (drops loops, dedupes, sorts) so the
// resulting Graph satisfies the CSR invariants. This is also where the
// paper's §3.2 "symmetrize and drop loops" transformation of directed SKG
// realizations lands: the sampler just feeds every realized arc in here.

#ifndef DPKRON_GRAPH_GRAPH_BUILDER_H_
#define DPKRON_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace dpkron {

class GraphBuilder {
 public:
  // Creates a builder for a graph on `num_nodes` nodes (fixed up front:
  // SKG graphs have exactly N1^k nodes whether or not all are touched).
  explicit GraphBuilder(uint32_t num_nodes);

  uint32_t num_nodes() const { return num_nodes_; }

  // Records an undirected edge {u, v}. Self-loops and duplicates are
  // accepted and removed at Build(). Aborts if u or v is out of range.
  void AddEdge(Graph::NodeId u, Graph::NodeId v);

  // Number of AddEdge calls so far (pre-dedup).
  size_t PendingEdges() const { return edges_.size(); }

  // Canonicalizes and produces the Graph. The builder is left empty and
  // reusable for the same node count.
  Graph Build();

  // Convenience: one-shot construction from an edge list.
  static Graph FromEdges(
      uint32_t num_nodes,
      const std::vector<std::pair<Graph::NodeId, Graph::NodeId>>& edges);

  // Builds directly from packed 64-bit edge keys (u << 32) | v with
  // u < v — the representation the samplers accumulate per thread and
  // merge. Takes ownership; sorts and dedupes in place, so duplicates
  // (including across merged batches) are fine. Self-loops must already
  // be excluded (keys encode u < v by construction).
  static Graph FromPackedEdges(uint32_t num_nodes,
                               std::vector<uint64_t> keys);

 private:
  uint32_t num_nodes_;
  std::vector<std::pair<Graph::NodeId, Graph::NodeId>> edges_;
};

}  // namespace dpkron

#endif  // DPKRON_GRAPH_GRAPH_BUILDER_H_
