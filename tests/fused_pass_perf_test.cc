// Release-mode gate for the fused node-stats pass (the tentpole of the
// out-of-core statistics engine): ComputeNodeStats must deliver the
// degree vector AND the per-node triangle counts in no more time than
// the unfused pair of kernels — the fusion halves the passes over the
// backing store (the out-of-core win, pinned structurally by the
// PassCounter tests) and must never pay for it in in-RAM wall time.
//
// Measurement discipline matches simd_perf_test.cc: interleaved
// min-of-reps in one process (cross-run wall-clock on shared CI
// machines swings ±10–20%; interleaved ratios stay stable), Release
// builds only, single-core hosts skipped. The gate is a no-regression
// bound (≥ 0.9×, the Metropolis-gate convention for wins below the
// noise floor) — the unfused side's extra degree pass reads only the
// offsets array, so its in-RAM cost is small; the structural claim
// "one traversal, not two" is asserted exactly via PassCounter, not
// timed.

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "src/graph/graph_view.h"
#include "src/graph/node_stats.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

bool ReleaseBuild() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

#define DPKRON_REQUIRE_PERF_ENV()                                           \
  do {                                                                      \
    if (!ReleaseBuild()) GTEST_SKIP() << "perf gate needs a Release build"; \
    if (std::thread::hardware_concurrency() < 2)                            \
      GTEST_SKIP() << "single-core host: timing too noisy to gate";         \
  } while (false)

template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

template <typename UnfusedFn, typename FusedFn>
double InterleavedSpeedup(int reps, UnfusedFn&& unfused_fn,
                          FusedFn&& fused_fn) {
  double unfused_min = std::numeric_limits<double>::infinity();
  double fused_min = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    unfused_min = std::min(unfused_min, TimeSeconds(unfused_fn));
    fused_min = std::min(fused_min, TimeSeconds(fused_fn));
  }
  return unfused_min / fused_min;
}

TEST(FusedPassPerfGate, NodeStatsNoSlowerThanTheUnfusedKernels) {
  DPKRON_REQUIRE_PERF_ENV();
  Rng rng(12);
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, 12, rng);

  // Both sides produce the identical (degrees, triangles) pair — the
  // equivalence the correctness tests pin — so the ratio compares equal
  // work.
  uint64_t fused_sum = 0, unfused_sum = 0;
  const double speedup = InterleavedSpeedup(
      5,
      [&] {
        const auto degrees = DegreeVector(g);
        const auto triangles = PerNodeTriangles(g);
        unfused_sum += degrees.back() + triangles.back();
      },
      [&] {
        const NodeStats stats = ComputeNodeStats(g);
        fused_sum += stats.degrees.back() + stats.triangles.back();
      });
  EXPECT_EQ(fused_sum, unfused_sum);
  EXPECT_GE(speedup, 0.9) << "fused node-stats pass regressed: " << speedup
                          << "x vs the unfused kernel pair";

  // And the structural half of the claim, exactly: one backing-store
  // traversal where the unfused pair takes two.
  PassCounter fused_passes, unfused_passes;
  (void)ComputeNodeStats(GraphView(g).WithPassCounter(&fused_passes));
  (void)DegreeVector(GraphView(g).WithPassCounter(&unfused_passes));
  (void)PerNodeTriangles(GraphView(g).WithPassCounter(&unfused_passes));
  EXPECT_EQ(fused_passes.total(), 1u);
  EXPECT_EQ(unfused_passes.total(), 2u);
}

}  // namespace
}  // namespace dpkron
