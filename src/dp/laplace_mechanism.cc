#include "src/dp/laplace_mechanism.h"

#include <cmath>

#include "src/common/simd.h"
#include "src/common/vec_kernels.h"

namespace dpkron {
namespace {

// Shared validation, one function so the scalar and vector mechanisms
// can never drift.
Status ValidateLaplaceParams(double sensitivity, double epsilon) {
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument(
        "Laplace mechanism needs sensitivity > 0, got " +
        std::to_string(sensitivity));
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "Laplace mechanism needs epsilon > 0, got " +
        std::to_string(epsilon));
  }
  return Status::Ok();
}

}  // namespace

Result<double> AddLaplaceNoise(double value, double sensitivity,
                               double epsilon, Rng& rng) {
  if (Status s = ValidateLaplaceParams(sensitivity, epsilon); !s.ok()) {
    return s;
  }
  return value + rng.NextLaplace(sensitivity / epsilon);
}

Result<std::vector<double>> AddLaplaceNoiseVector(
    const std::vector<double>& values, double sensitivity, double epsilon,
    Rng& rng) {
  if (Status s = ValidateLaplaceParams(sensitivity, epsilon); !s.ok()) {
    return s;
  }
  const double scale = sensitivity / epsilon;
  // Batched draw, then element-wise add. The stream consumption and the
  // per-element add (one rounding) match the old draw-and-add-per-
  // element loop exactly, and the add is element-wise, so scalar and
  // AVX2 outputs are bit-identical to each other and to pre-batch
  // releases.
  std::vector<double> noisy(values.size());
  rng.FillLaplace(scale, noisy.data(), noisy.size());
  if (Avx2Active()) {
    AddVectorsAvx2(values.data(), noisy.data(), noisy.data(),
                   noisy.size());
  } else {
    for (size_t i = 0; i < values.size(); ++i) {
      noisy[i] = values[i] + noisy[i];
    }
  }
  return noisy;
}

}  // namespace dpkron
