#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/linalg/lanczos.h"
#include "src/linalg/network_value.h"
#include "src/linalg/spmv.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::PathGraph;
using testing::StarGraph;

TEST(SpmvTest, AdjacencyMatVecOnPath) {
  const Graph g = PathGraph(3);
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3);
  AdjacencyMatVec(g, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(SpmvTest, Helpers) {
  std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  std::vector<double> y = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 11.0);
  Axpy(2.0, y, &x);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 8.0);
  Scale(0.5, &x);
  EXPECT_DOUBLE_EQ(x[0], 2.5);
}

TEST(TridiagonalEigenTest, DiagonalMatrix) {
  const auto result = TridiagonalEigen({3.0, 1.0, 2.0}, {0.0, 0.0});
  std::vector<double> values = result.eigenvalues;
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 2.0, 1e-12);
  EXPECT_NEAR(values[2], 3.0, 1e-12);
}

TEST(TridiagonalEigenTest, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  const auto result = TridiagonalEigen({2.0, 2.0}, {1.0});
  std::vector<double> values = result.eigenvalues;
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
}

TEST(TridiagonalEigenTest, EigenvectorResidual) {
  // Random-ish fixed tridiagonal; check ||T v - λ v|| small.
  const std::vector<double> diag = {1.0, -2.0, 0.5, 3.0, -1.0};
  const std::vector<double> off = {0.7, 1.3, -0.4, 2.1};
  const auto result = TridiagonalEigen(diag, off);
  const size_t m = diag.size();
  for (size_t i = 0; i < m; ++i) {
    const double lambda = result.eigenvalues[i];
    const double* v = &result.eigenvectors[i * m];
    for (size_t r = 0; r < m; ++r) {
      double tv = diag[r] * v[r];
      if (r > 0) tv += off[r - 1] * v[r - 1];
      if (r + 1 < m) tv += off[r] * v[r + 1];
      EXPECT_NEAR(tv, lambda * v[r], 1e-9);
    }
  }
}

TEST(LanczosTest, CompleteGraphSpectrum) {
  // K_n: eigenvalues n-1 (once) and -1 (n-1 times).
  Rng rng(5);
  const auto top = TopEigenvalues(CompleteGraph(8), 3, rng);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_NEAR(top[0], 7.0, 1e-8);
  EXPECT_NEAR(std::fabs(top[1]), 1.0, 1e-8);
  EXPECT_NEAR(std::fabs(top[2]), 1.0, 1e-8);
}

TEST(LanczosTest, StarGraphSingularValues) {
  // Star on n nodes: spectrum ±sqrt(n-1), zeros.
  Rng rng(6);
  const auto sv = TopSingularValues(StarGraph(10), 3, rng);
  ASSERT_EQ(sv.size(), 3u);
  EXPECT_NEAR(sv[0], 3.0, 1e-8);
  EXPECT_NEAR(sv[1], 3.0, 1e-8);
  EXPECT_NEAR(sv[2], 0.0, 1e-6);
}

TEST(LanczosTest, CycleEigenvalues) {
  // C_n eigenvalues: 2·cos(2πj/n); top |λ| = 2.
  Rng rng(7);
  const auto top = TopEigenvalues(CycleGraph(12), 1, rng);
  EXPECT_NEAR(top[0], 2.0, 1e-8);
}

TEST(LanczosTest, SingularValuesSortedDescending) {
  Rng rng(8);
  const auto sv = TopSingularValues(testing::PetersenGraph(), 5, rng);
  for (size_t i = 1; i < sv.size(); ++i) EXPECT_GE(sv[i - 1], sv[i]);
  // Petersen: 3-regular, top eigenvalue 3, second |λ| = 2 (λ=1 has
  // multiplicity 5, λ=-2 multiplicity 4).
  EXPECT_NEAR(sv[0], 3.0, 1e-8);
  EXPECT_NEAR(sv[1], 2.0, 1e-8);
}

TEST(PowerIterationTest, StarGraphPrincipalVector) {
  // Principal eigenvector of star: center = 1/√2, leaves = 1/√(2(n−1)).
  Rng rng(9);
  const auto pi = PrincipalEigenvector(StarGraph(5), rng);
  EXPECT_NEAR(pi.eigenvalue, 2.0, 1e-6);  // sqrt(4)
  EXPECT_NEAR(pi.eigenvector[0], 1.0 / std::sqrt(2.0), 1e-5);
  for (int v = 1; v < 5; ++v) {
    EXPECT_NEAR(pi.eigenvector[v], 1.0 / std::sqrt(8.0), 1e-5);
  }
}

TEST(PowerIterationTest, EdgelessGraphGivesZero) {
  Rng rng(10);
  const auto pi = PrincipalEigenvector(testing::MakeGraph(4, {}), rng);
  EXPECT_DOUBLE_EQ(pi.eigenvalue, 0.0);
}

TEST(NetworkValueTest, SortedDescendingUnitNorm) {
  Rng rng(11);
  const auto nv = NetworkValue(CompleteGraph(6), rng);
  ASSERT_EQ(nv.size(), 6u);
  double norm_sq = 0.0;
  for (size_t i = 0; i < nv.size(); ++i) {
    if (i > 0) EXPECT_GE(nv[i - 1], nv[i]);
    norm_sq += nv[i] * nv[i];
  }
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
  // K_n principal vector is uniform.
  for (double value : nv) EXPECT_NEAR(value, 1.0 / std::sqrt(6.0), 1e-6);
}

}  // namespace
}  // namespace dpkron
