// Plain-text edge-list I/O in the SNAP dataset format.
//
// Format: one "u<whitespace>v" pair per line; lines starting with '#' are
// comments. Node ids in the file may be arbitrary (sparse) — the reader
// densifies them to 0..n-1 preserving first-appearance order, exactly the
// preprocessing one applies to the real SNAP files the paper used.

#ifndef DPKRON_GRAPH_GRAPH_IO_H_
#define DPKRON_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace dpkron {

// Reads an undirected graph from a SNAP-style edge list file.
Result<Graph> ReadEdgeList(const std::string& path);

// Parses an edge list from an in-memory string (same format).
Result<Graph> ParseEdgeList(const std::string& text);

// Writes `graph` as an edge list (u < v per line) with a comment header.
Status WriteEdgeList(const Graph& graph, const std::string& path);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_GRAPH_IO_H_
