#include "src/dp/isotonic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"

namespace dpkron {
namespace {

bool IsNonDecreasing(const std::vector<double>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) return false;
  }
  return true;
}

double L2(const std::vector<double>& x, const std::vector<double>& y) {
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += (x[i] - y[i]) * (x[i] - y[i]);
  return sum;
}

TEST(IsotonicTest, SortedInputUnchanged) {
  const std::vector<double> v = {1, 2, 2, 3, 10};
  EXPECT_EQ(IsotonicRegression(v), v);
}

TEST(IsotonicTest, TwoElementViolationPools) {
  const auto fit = IsotonicRegression({3.0, 1.0});
  EXPECT_DOUBLE_EQ(fit[0], 2.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.0);
}

TEST(IsotonicTest, DecreasingInputPoolsToMean) {
  const auto fit = IsotonicRegression({5, 4, 3, 2, 1});
  for (double x : fit) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(IsotonicTest, KnownMixedCase) {
  // Classic PAVA example.
  const auto fit = IsotonicRegression({1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(fit[0], 1.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.5);
  EXPECT_DOUBLE_EQ(fit[2], 2.5);
  EXPECT_DOUBLE_EQ(fit[3], 4.0);
}

TEST(IsotonicTest, EmptyAndSingleton) {
  EXPECT_TRUE(IsotonicRegression({}).empty());
  EXPECT_EQ(IsotonicRegression({7.0}), std::vector<double>{7.0});
}

TEST(IsotonicTest, OutputAlwaysMonotoneAndMeanPreserving) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(100);
    for (double& x : v) x = rng.NextGaussian() * 10;
    const auto fit = IsotonicRegression(v);
    ASSERT_EQ(fit.size(), v.size());
    EXPECT_TRUE(IsNonDecreasing(fit));
    double sum_v = 0, sum_f = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      sum_v += v[i];
      sum_f += fit[i];
    }
    EXPECT_NEAR(sum_v, sum_f, 1e-9 * (1 + std::fabs(sum_v)));
  }
}

TEST(IsotonicTest, Idempotent) {
  Rng rng(7);
  std::vector<double> v(50);
  for (double& x : v) x = rng.NextGaussian();
  const auto once = IsotonicRegression(v);
  EXPECT_EQ(IsotonicRegression(once), once);
}

TEST(IsotonicTest, IsProjectionNoMonotoneVectorCloser) {
  // The PAVA fit must beat (or tie) a batch of random monotone candidates.
  Rng rng(13);
  std::vector<double> v(30);
  for (double& x : v) x = rng.NextGaussian() * 5;
  const auto fit = IsotonicRegression(v);
  const double fit_error = L2(fit, v);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> candidate(v.size());
    for (double& x : candidate) x = rng.NextGaussian() * 5;
    std::sort(candidate.begin(), candidate.end());
    EXPECT_GE(L2(candidate, v), fit_error - 1e-9);
  }
}

TEST(IsotonicTest, PerturbedFitNeverBeatsFit) {
  // Local optimality: nudging any block boundary of the fit increases L2.
  Rng rng(29);
  std::vector<double> v(40);
  for (double& x : v) x = rng.NextGaussian() * 3;
  const auto fit = IsotonicRegression(v);
  const double fit_error = L2(fit, v);
  for (size_t i = 0; i < fit.size(); ++i) {
    for (double eps : {-0.05, 0.05}) {
      std::vector<double> candidate = fit;
      candidate[i] += eps;
      if (!IsNonDecreasing(candidate)) continue;
      EXPECT_GE(L2(candidate, v), fit_error - 1e-12);
    }
  }
}

}  // namespace
}  // namespace dpkron
