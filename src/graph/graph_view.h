// GraphView — the zero-copy CSR seam every kernel operates on.
//
// A GraphView is two spans (offsets, adjacency) plus the shared
// fingerprint memo of whatever owns the arrays. The arrays can live in
// a Graph's in-RAM aligned arenas or in an mmap'd .dpkb payload
// (MmapGraph, graph_io.h) — kernels cannot tell the difference, which
// is what lets graphs larger than RAM stream through the statistics
// engine under page-cache control.
//
// Views are non-owning: the backing Graph/MmapGraph must outlive every
// view of it. They are cheap to copy (four words) and are passed by
// value; `const Graph&` converts implicitly, so Graph-holding call
// sites read exactly as before the seam existed.
//
// PassCounter: the instrumentation behind the fused-pass plan in
// ReleasePipeline::Compute. A kernel that sweeps the whole CSR calls
// CountPass("label") once per traversal; tests attach a counter via
// WithPassCounter and assert the exact number of passes a pipeline
// performs, so a regression that re-adds a redundant walk fails loudly.
// An unattached view's CountPass is a branch on a null pointer.

#ifndef DPKRON_GRAPH_GRAPH_VIEW_H_
#define DPKRON_GRAPH_GRAPH_VIEW_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace dpkron {

// Counts full-CSR traversals by kernel label. Thread-safe: parallel
// kernels record from the calling thread only (one Record per
// traversal, not per chunk), but several pipelines may share a counter.
class PassCounter {
 public:
  void Record(const char* kernel) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[kernel];
    ++total_;
  }

  uint64_t total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  uint64_t count(const std::string& kernel) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counts_.find(kernel);
    return it == counts_.end() ? 0 : it->second;
  }

  // (label, count) pairs in label order — the shape BENCH_outofcore.json
  // records.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {counts_.begin(), counts_.end()};
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
};

namespace internal {
// The offsets array of an empty (0-node) graph, so a default-constructed
// view satisfies the CSR shape invariant (offsets.size() == n + 1).
inline constexpr uint32_t kEmptyOffsets[1] = {0};
}  // namespace internal

// FNV-1a digest of a CSR pair — Graph::ContentFingerprint's formula and
// the .dpkb payload checksum, shared so every backing agrees bit-for-bit
// on the same graph's identity (the StatCache key contract).
uint64_t CsrContentFingerprint(std::span<const uint32_t> offsets,
                               std::span<const Graph::NodeId> adjacency);

class GraphView {
 public:
  using NodeId = Graph::NodeId;

  // An empty graph (0 nodes).
  GraphView()
      : offsets_(internal::kEmptyOffsets, 1) {}

  // Implicit: every `const Graph&` call site is also a GraphView call
  // site. The view shares the Graph's fingerprint memo, so whichever of
  // the two computes the digest first serves both.
  GraphView(const Graph& graph)  // NOLINT(google-explicit-constructor)
      : offsets_(graph.Offsets()),
        adjacency_(graph.Adjacency()),
        fingerprint_memo_(graph.FingerprintMemo()) {}

  // Raw-span backing (MmapGraph). `fingerprint_memo` may be null
  // (fingerprint recomputed per call) or point at the owner's memo cell,
  // pre-seeded with a known digest (an mmap'd file's header checksum).
  GraphView(std::span<const uint32_t> offsets,
            std::span<const NodeId> adjacency,
            std::atomic<uint64_t>* fingerprint_memo)
      : offsets_(offsets),
        adjacency_(adjacency),
        fingerprint_memo_(fingerprint_memo) {}

  uint32_t NumNodes() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }

  // Number of undirected edges.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  uint32_t Degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  // Sorted neighbor list of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  // O(log deg(u)). u and v must be valid node ids.
  bool HasEdge(NodeId u, NodeId v) const;

  // Invokes f(u, v) once per undirected edge, with u < v.
  template <typename F>
  void ForEachEdge(F&& f) const {
    for (NodeId u = 0; u < NumNodes(); ++u) {
      for (NodeId v : Neighbors(u)) {
        if (u < v) f(u, v);
      }
    }
  }

  // All edges as (u, v) pairs with u < v, in lexicographic order.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  std::span<const uint32_t> Offsets() const { return offsets_; }
  std::span<const NodeId> Adjacency() const { return adjacency_; }

  // FNV-1a digest of the CSR arrays — the graph component of StatCache
  // keys, identical across backings of the same graph (in-RAM arenas and
  // an mmap'd .dpkb produce the same digest for the same CSR bytes).
  uint64_t ContentFingerprint() const;

  // A copy of this view with `counter` attached; kernels running on the
  // copy record their CSR traversals there.
  GraphView WithPassCounter(PassCounter* counter) const {
    GraphView annotated = *this;
    annotated.passes_ = counter;
    return annotated;
  }

  PassCounter* pass_counter() const { return passes_; }

  // Called by kernels, once per full CSR traversal. No-op when no
  // counter is attached.
  void CountPass(const char* kernel) const {
    if (passes_ != nullptr) passes_->Record(kernel);
  }

 private:
  std::span<const uint32_t> offsets_;
  std::span<const NodeId> adjacency_;
  // Owner's lazily-memoized fingerprint (see Graph::ContentFingerprint
  // for the 0-sentinel protocol); null = recompute per call.
  std::atomic<uint64_t>* fingerprint_memo_ = nullptr;
  PassCounter* passes_ = nullptr;
};

}  // namespace dpkron

#endif  // DPKRON_GRAPH_GRAPH_VIEW_H_
