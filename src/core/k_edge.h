// k-edge differential privacy (paper §4.1, following Hay et al.).
//
// Graphs G, G' are k-edge neighbors if |V ⊕ V'| + |E ⊕ E'| ≤ k; an
// ε-edge-private algorithm is k·ε-private with respect to k-edge
// neighbors (Theorem 4.9), so running Algorithm 1 at (ε/k, δ/k) yields
// (ε, δ)-k-edge privacy. This weak form of node privacy covers nodes of
// degree < k. The wrapper makes the target semantics explicit and keeps
// the scaling arithmetic out of caller code.

#ifndef DPKRON_CORE_K_EDGE_H_
#define DPKRON_CORE_K_EDGE_H_

#include <cstdint>

#include "src/core/private_estimator.h"

namespace dpkron {

// Runs Algorithm 1 with the budget scaled so the result is
// (epsilon, delta)-differentially private with respect to k-edge
// neighborhoods. Requires k >= 1.
Result<PrivateEstimatorResult> EstimateKEdgePrivateSkg(
    GraphView graph, uint32_t k_edges, double epsilon, double delta,
    Rng& rng, const PrivateEstimatorOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_CORE_K_EDGE_H_
