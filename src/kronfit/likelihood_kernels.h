// AVX2 kernels for the KronFit digit-pair table likelihood (defined in
// likelihood_avx2.cc, compiled with -mavx2; reach only behind
// Avx2Active()).
//
// All three kernels take the *padded* tables KronFitLikelihood builds
// alongside its dense ones: stride 2^shift ≥ k+1 over nb, so the cell
// index for a position pair (p, q) is
//   (popcount(p&q&mask) << shift) | popcount((p^q)&mask)
// — a vector shift+or instead of a multiply. The vectorization covers
// the index computation (nibble-LUT popcounts over 8 pairs at a time);
// the table values themselves are accumulated with exactly the scalar
// path's add order, which is what makes the results bit-identical
// (doubles are not reassociated — the digit counting is integer work).

#ifndef DPKRON_KRONFIT_LIKELIHOOD_KERNELS_H_
#define DPKRON_KRONFIT_LIKELIHOOD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace dpkron {

class PermutationState;
class Rng;

// Runs `count` Metropolis swap steps of one chain entirely inside the
// AVX2 translation unit: proposal draws, SwapDelta, accept test, and
// SwapNodes per step, with the vector constants hoisted once per call.
// Keeping the whole loop on one side of the ISA boundary matters more
// than the vector width — crossing between AVX2 kernel code and
// legacy-SSE caller code per swap leaves dirty ymm uppers that give
// every SSE instruction in the caller a false dependency.
//
// The trajectory is bit-identical to the scalar RunSwaps loop: the
// delta is computed with the scalar walk's exact term order (one
// accumulator — vectorized deltas were measured slower here, see the
// in-loop comment), the same draws are consumed in the same order
// (NextDouble only when delta < 0), and the accept test decides
// "uniform < std::exp(delta)" without calling libm exp in almost every
// case: a VEX polynomial brackets exp(delta) to relative 4e-11 and only
// a uniform inside the bracket (probability ~8e-11) consults std::exp
// itself. For delta < −40, exp is below NextDouble's granularity 2⁻⁵³,
// so acceptance requires uniform to be exactly 0 (std::exp is then
// consulted once to match the scalar comparison even where exp
// underflows to zero).
void MetropolisSwapsAvx2(const uint32_t* offsets, const uint32_t* adjacency,
                         uint32_t n, PermutationState* sigma, Rng& rng,
                         uint64_t count, uint32_t mask, uint32_t shift,
                         const double* edge_term_padded);

// SwapDelta for the proposed exchange of nodes u and v (positions pu,
// pv): walks u's neighbor list (skipping v) adding
// et[idx(pv,pw)] − et[idx(pu,pw)], then v's list (skipping u) adding
// et[idx(pu,pw)] − et[idx(pv,pw)], into one running accumulator —
// the same single FP chain as the scalar loop.
double SwapDeltaAvx2(const uint32_t* u_neighbors, size_t u_degree,
                     uint32_t v, const uint32_t* v_neighbors,
                     size_t v_degree, uint32_t u, uint32_t pu, uint32_t pv,
                     const uint32_t* positions, uint32_t mask,
                     uint32_t shift, const double* edge_term_padded);

// Σ EdgeTerm over the CSR rows [begin, end), counting each edge once
// (only neighbors v > u), accumulated in row-major edge order — the
// scalar LogLikelihood chunk body.
double EdgeTermSumChunkAvx2(const uint32_t* offsets,
                            const uint32_t* adjacency, size_t begin,
                            size_t end, const uint32_t* positions,
                            uint32_t mask, uint32_t shift,
                            const double* edge_term_padded);

// Per-chunk gradient accumulation over rows [begin, end): out[0..2] are
// the (a, b, c) partials, accumulated per-component in the scalar edge
// order via one 4-lane vector accumulator over the combined grad4 table
// (cells [g_a, g_b, g_c, edge_term], 32-byte aligned; lane 3 is
// discarded). out must be 32-byte aligned.
void EdgeGradientChunkAvx2(const uint32_t* offsets,
                           const uint32_t* adjacency, size_t begin,
                           size_t end, const uint32_t* positions,
                           uint32_t mask, uint32_t shift,
                           const double* grad4_padded, double out[4]);

}  // namespace dpkron

#endif  // DPKRON_KRONFIT_LIKELIHOOD_KERNELS_H_
