// Figure 1–4 reproductions as registered scenarios (ported from the
// deleted figure_harness + fig* binaries).
//
// Each figure shows, for one dataset, five panels — hop plot, degree
// distribution, scree plot, network value, clustering-by-degree —
// overlaying the original graph with single synthetic realizations from
// the KronFit, KronMom and Private estimators (Figure 1 additionally
// shows "Expected" series averaged over realizations; the paper used
// 100). The RNG consumption order matches the pre-engine binaries, so
// fixed-seed TSV rows reproduce them (the "expected-*" series now come
// from the parallel ReleasePipeline and its per-realization streams).

#include "src/scenarios/scenarios.h"

#include <algorithm>
#include <string>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/core/scenario.h"
#include "src/datasets/registry.h"
#include "src/estimation/kronmom.h"
#include "src/kronfit/kronfit.h"

namespace dpkron {
namespace {

void EmitStatistics(ScenarioOutput& out, const std::string& series,
                    const GraphStatistics& stats) {
  SeriesTable& hop = out.Table("hop_plot");
  SeriesTable& degree = out.Table("degree_distribution");
  SeriesTable& scree = out.Table("scree_plot");
  SeriesTable& netval = out.Table("network_value");
  SeriesTable& clustering = out.Table("clustering");
  for (size_t h = 0; h < stats.hop_plot.size(); ++h) {
    hop.Add(series, double(h), stats.hop_plot[h]);
  }
  for (const auto& [d, count] : stats.degree_histogram) {
    degree.Add(series, d, count);
  }
  for (size_t rank = 0; rank < stats.scree.size(); ++rank) {
    scree.Add(series, double(rank + 1), stats.scree[rank]);
  }
  // Network value plots truncate to the leading components.
  const size_t keep = std::min<size_t>(stats.network_value.size(), 1000);
  for (size_t rank = 0; rank < keep; ++rank) {
    netval.Add(series, double(rank + 1), stats.network_value[rank]);
  }
  for (const auto& [d, cc] : stats.clustering_by_degree) {
    clustering.Add(series, d, cc);
  }
}

Status RunFigure(const ScenarioSpec& spec, const ScenarioParams& p,
                 ScenarioOutput& out) {
  const std::string& dataset = EffectiveDatasetRef(spec.datasets.front(), p);
  Rng rng(p.seed);
  out.Printf("# %s: dataset=%s epsilon=%g delta=%g realizations=%u\n",
             spec.name.c_str(), dataset.c_str(), p.epsilon, p.delta,
             p.realizations);

  auto loaded = LoadScenarioGraph(dataset, p, rng);
  if (!loaded.ok()) return loaded.status();
  // The handle owns whichever backing --mmap chose; every consumer below
  // takes its GraphView.
  const GraphHandle original = std::move(loaded).value();
  const uint32_t k = ChooseKroneckerOrder(original.NumNodes());

  SummaryBlock dataset_summary(spec.name + " dataset");
  dataset_summary.Add("nodes", double(original.NumNodes()));
  dataset_summary.Add("edges", double(original.NumEdges()));
  dataset_summary.Add("kronecker order k", double(k));
  out.AddSummary(dataset_summary);

  // --- Fit the three estimators -----------------------------------------
  const KronMomResult kronmom = FitKronMom(original);

  KronFitOptions kf_options;
  kf_options.iterations = p.kronfit_iterations;
  Rng kronfit_rng = rng.Split();
  // Cached: in an ε sweep the fit depends on (graph, seed) only, so the
  // 5-ε runs of one seed share a single fit.
  const KronFitResult kronfit =
      FitKronFitCached(original, kronfit_rng, kf_options);

  Rng private_rng = rng.Split();
  PrivacyBudget budget(p.epsilon, p.delta);
  const auto private_fit =
      EstimatePrivateSkg(original, p.epsilon, p.delta, budget, private_rng);
  if (!private_fit.ok()) return private_fit.status();
  out.RecordExactSensitivity(private_fit.value().exact_sensitivity);

  SummaryBlock params(spec.name + " fitted initiators (a b c)");
  params.Add("KronFit", kronfit.theta.ToString());
  params.Add("KronMom", kronmom.theta.ToString());
  params.Add("Private", private_fit.value().theta.ToString());
  out.AddSummary(params);
  out.RecordBudget(budget);

  // --- Statistics: original + one realization per estimator -------------
  const ReleasePipeline pipeline;
  Rng stats_rng = rng.Split();
  EmitStatistics(out, "original", pipeline.Compute(original, stats_rng));

  // The private Θ̃ is a fresh mechanism draw per (ε, seed) run, so its
  // sample statistics can never be served to another run — compute them
  // through the ephemeral (non-memoizing) path. The kronfit/kronmom
  // estimates are ε-independent and their panels DO recur across an ε
  // sweep, which is what the cached path amortizes.
  struct Estimate {
    const char* name;
    Initiator2 theta;
    bool per_run;
  };
  const Estimate estimates[] = {
      {"kronfit", kronfit.theta, false},
      {"kronmom", kronmom.theta, false},
      {"private", private_fit.value().theta, true},
  };
  for (const Estimate& estimate : estimates) {
    const Graph sample = pipeline.Sample(estimate.theta, k, stats_rng);
    EmitStatistics(out, estimate.name,
                   estimate.per_run
                       ? pipeline.ComputeEphemeral(sample, stats_rng)
                       : pipeline.Compute(sample, stats_rng));
  }

  // --- "Expected" series: averages over R realizations -------------------
  if (p.realizations > 0) {
    for (const Estimate& estimate : estimates) {
      const GraphStatistics mean =
          estimate.per_run
              ? pipeline.ExpectedEphemeral(estimate.theta, k, p.realizations,
                                           stats_rng)
              : pipeline.Expected(estimate.theta, k, p.realizations,
                                  stats_rng);
      EmitStatistics(out, std::string("expected-") + estimate.name, mean);
    }
  }
  return Status::Ok();
}

ScenarioSpec FigureSpec(std::string name, std::string legacy,
                        std::string description, std::string dataset,
                        uint32_t realizations) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.legacy_binary = std::move(legacy);
  spec.description = std::move(description);
  spec.datasets = {std::move(dataset)};
  spec.estimators = {"kronfit", "kronmom", "private"};
  spec.defaults.realizations = realizations;
  spec.run = RunFigure;
  return spec;
}

}  // namespace

void RegisterFigureScenarios() {
  RegisterScenario(FigureSpec(
      "fig1_ca_grqc", "fig1_ca_grqc",
      "Figure 1: CA-GrQC(-like) five-panel overlay + Expected averages",
      "CA-GrQC-like", /*realizations=*/10));
  RegisterScenario(FigureSpec(
      "fig2_as20", "fig2_as20",
      "Figure 2: AS20(-like), single realization per estimator",
      "AS20-like", /*realizations=*/0));
  RegisterScenario(FigureSpec(
      "fig3_ca_hepth", "fig3_ca_hepth",
      "Figure 3: CA-HepTh(-like), single realization per estimator",
      "CA-HepTh-like", /*realizations=*/0));
  RegisterScenario(FigureSpec(
      "fig4_synthetic", "fig4_synthetic",
      "Figure 4: synthetic SKG source, all estimators recover the truth",
      "Synthetic-SKG", /*realizations=*/0));
}

}  // namespace dpkron
