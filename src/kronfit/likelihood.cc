#include "src/kronfit/likelihood.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/common/simd.h"
#include "src/kronfit/likelihood_kernels.h"

namespace dpkron {
namespace {

// Node-range grain for the per-edge reductions: coarse enough that a
// chunk amortizes the dispatch, fine enough to load-balance the skewed
// SKG degree distribution.
constexpr size_t kNodeGrain = 512;

}  // namespace

KronFitLikelihood::KronFitLikelihood(const Initiator2& theta, uint32_t k)
    : theta_(Initiator2{std::max(theta.a, kThetaFloor),
                        std::max(theta.b, kThetaFloor),
                        std::max(theta.c, kThetaFloor)}
                 .Clamped()),
      k_(k),
      mask_((k >= 32) ? 0xFFFFFFFFu : ((1u << k) - 1)),
      shift_(static_cast<uint32_t>(std::bit_width(k))),
      prob_(theta_, k) {
  DPKRON_CHECK_GE(k, 1u);
  // Tabulate the edge term and gradient factors over the digit-count
  // lattice. Powers are accumulated by the same repeated multiplication
  // EdgeProbability2 uses and the cell expressions match the *Direct
  // methods token for token, so every table value is bit-identical to
  // the direct computation.
  const double a = theta_.a, b = theta_.b, c = theta_.c;
  std::vector<double> pow_a(k + 1), pow_b(k + 1), pow_c(k + 1);
  pow_a[0] = pow_b[0] = pow_c[0] = 1.0;
  for (uint32_t i = 1; i <= k; ++i) {
    pow_a[i] = pow_a[i - 1] * a;
    pow_b[i] = pow_b[i - 1] * b;
    pow_c[i] = pow_c[i - 1] * c;
  }
  const size_t cells = size_t{k + 1} * (k + 1);
  edge_term_.assign(cells, 0.0);
  grad_a_.assign(cells, 0.0);
  grad_b_.assign(cells, 0.0);
  grad_c_.assign(cells, 0.0);
  for (uint32_t n11 = 0; n11 <= k; ++n11) {
    for (uint32_t nb = 0; nb + n11 <= k; ++nb) {
      const uint32_t n00 = k - n11 - nb;
      const double P = pow_a[n00] * pow_b[nb] * pow_c[n11];
      const size_t idx = size_t{n11} * (k + 1) + nb;
      edge_term_[idx] = std::log(P) + P + 0.5 * P * P;
      const double factor = 1.0 + P + P * P;
      grad_a_[idx] = n00 / a * factor;
      grad_b_[idx] = nb / b * factor;
      grad_c_[idx] = n11 / c * factor;
    }
  }
  // AVX2-path layouts: same values (copies, not recomputation — the
  // layouts can never drift from the dense tables), power-of-two row
  // stride 2^shift_ (> k ≥ nb, so "(n11 << shift) | nb" is collision-
  // free), gradient components fused into 32-byte cells.
  const size_t stride = size_t{1} << shift_;
  edge_term_padded_.assign(stride * (k + 1), 0.0);
  grad4_padded_.assign(stride * (k + 1) * 4, 0.0);
  for (uint32_t n11 = 0; n11 <= k; ++n11) {
    for (uint32_t nb = 0; nb + n11 <= k; ++nb) {
      const size_t src = size_t{n11} * (k + 1) + nb;
      const size_t dst = (size_t{n11} << shift_) | nb;
      edge_term_padded_[dst] = edge_term_[src];
      grad4_padded_[dst * 4 + 0] = grad_a_[src];
      grad4_padded_[dst * 4 + 1] = grad_b_[src];
      grad4_padded_[dst * 4 + 2] = grad_c_[src];
      grad4_padded_[dst * 4 + 3] = edge_term_[src];
    }
  }
}

std::array<uint32_t, 3> KronFitLikelihood::DigitCounts(uint32_t p,
                                                       uint32_t q) const {
  const uint32_t both = (p & q) & mask_;
  const uint32_t only = (p ^ q) & mask_;
  const uint32_t n11 = static_cast<uint32_t>(__builtin_popcount(both));
  const uint32_t nb = static_cast<uint32_t>(__builtin_popcount(only));
  return {k_ - n11 - nb, nb, n11};
}

double KronFitLikelihood::EdgeTermDirect(uint32_t p, uint32_t q) const {
  const double P = prob_(p, q);
  return std::log(P) + P + 0.5 * P * P;
}

Gradient3 KronFitLikelihood::EdgeGradientTermDirect(uint32_t p,
                                                    uint32_t q) const {
  const auto [n00, nb, n11] = DigitCounts(p, q);
  const double P = prob_(p, q);
  // d/dθ [log P + P + P²/2] = (n_θ/θ)(1 + P + P²).
  const double factor = 1.0 + P + P * P;
  return {n00 / theta_.a * factor, nb / theta_.b * factor,
          n11 / theta_.c * factor};
}

double KronFitLikelihood::NoEdgeTerm() const {
  const double a = theta_.a, b = theta_.b, c = theta_.c;
  const double first =
      0.5 * (PowInt(a + 2 * b + c, k_) - PowInt(a + c, k_));
  const double second = 0.25 * (PowInt(a * a + 2 * b * b + c * c, k_) -
                                PowInt(a * a + c * c, k_));
  return first + second;
}

Gradient3 KronFitLikelihood::NoEdgeGradient() const {
  const double a = theta_.a, b = theta_.b, c = theta_.c;
  const double s1 = PowInt(a + 2 * b + c, k_ - 1);
  const double t1 = PowInt(a + c, k_ - 1);
  const double s2 = PowInt(a * a + 2 * b * b + c * c, k_ - 1);
  const double t2 = PowInt(a * a + c * c, k_ - 1);
  const double kk = static_cast<double>(k_);
  Gradient3 grad;
  grad[0] = 0.5 * kk * (s1 - t1) + 0.5 * kk * a * (s2 - t2);
  grad[1] = kk * s1 + kk * b * s2;
  grad[2] = 0.5 * kk * (s1 - t1) + 0.5 * kk * c * (s2 - t2);
  return grad;
}

double KronFitLikelihood::LogLikelihood(GraphView graph,
                                        const PermutationState& sigma) const {
  if (Avx2Active()) {
    const uint32_t* offsets = graph.Offsets().data();
    const uint32_t* adjacency = graph.Adjacency().data();
    const uint32_t* positions = sigma.sigma().data();
    const double edge_sum = ParallelSum(
        graph.NumNodes(), kNodeGrain, [&](size_t begin, size_t end) {
          return EdgeTermSumChunkAvx2(offsets, adjacency, begin, end,
                                      positions, mask_, shift_,
                                      edge_term_padded_.data());
        });
    return edge_sum - NoEdgeTerm();
  }
  const double edge_sum = ParallelSum(
      graph.NumNodes(), kNodeGrain, [&](size_t begin, size_t end) {
        double sum = 0.0;
        for (size_t u = begin; u < end; ++u) {
          const uint32_t pu = sigma.Position(static_cast<uint32_t>(u));
          for (Graph::NodeId v : graph.Neighbors(static_cast<uint32_t>(u))) {
            if (v > u) sum += EdgeTerm(pu, sigma.Position(v));
          }
        }
        return sum;
      });
  return edge_sum - NoEdgeTerm();
}

double KronFitLikelihood::SwapDelta(GraphView graph,
                                    const PermutationState& sigma, uint32_t u,
                                    uint32_t v) const {
  if (u == v) return 0.0;
  const uint32_t pu = sigma.Position(u), pv = sigma.Position(v);
  if (Avx2Active()) {
    const auto nu = graph.Neighbors(u);
    const auto nv = graph.Neighbors(v);
    return SwapDeltaAvx2(nu.data(), nu.size(), v, nv.data(), nv.size(), u,
                         pu, pv, sigma.sigma().data(), mask_, shift_,
                         edge_term_padded_.data());
  }
  double delta = 0.0;
  // Edges incident to u (skip the shared edge {u,v}: handled once below).
  for (Graph::NodeId w : graph.Neighbors(u)) {
    if (w == v) continue;
    const uint32_t pw = sigma.Position(w);
    delta += EdgeTerm(pv, pw) - EdgeTerm(pu, pw);
  }
  for (Graph::NodeId w : graph.Neighbors(v)) {
    if (w == u) continue;
    const uint32_t pw = sigma.Position(w);
    delta += EdgeTerm(pu, pw) - EdgeTerm(pv, pw);
  }
  // The edge {u, v} itself keeps its unordered position pair — P is
  // symmetric, so its term is unchanged.
  return delta;
}

bool KronFitLikelihood::MetropolisSwaps(GraphView graph,
                                        PermutationState* sigma, Rng& rng,
                                        uint64_t count) const {
  if (!Avx2Active()) return false;
  MetropolisSwapsAvx2(graph.Offsets().data(), graph.Adjacency().data(),
                      graph.NumNodes(), sigma, rng, count, mask_, shift_,
                      edge_term_padded_.data());
  return true;
}

Gradient3 KronFitLikelihood::EdgeGradient(GraphView graph,
                                          const PermutationState& sigma) const {
  if (Avx2Active()) {
    const uint32_t* offsets = graph.Offsets().data();
    const uint32_t* adjacency = graph.Adjacency().data();
    const uint32_t* positions = sigma.sigma().data();
    return ParallelSumArray<3>(
        graph.NumNodes(), kNodeGrain, [&](size_t begin, size_t end) {
          alignas(32) double out[4];
          EdgeGradientChunkAvx2(offsets, adjacency, begin, end, positions,
                                mask_, shift_, grad4_padded_.data(), out);
          return Gradient3{out[0], out[1], out[2]};
        });
  }
  return ParallelSumArray<3>(
      graph.NumNodes(), kNodeGrain, [&](size_t begin, size_t end) {
        Gradient3 grad{0.0, 0.0, 0.0};
        for (size_t u = begin; u < end; ++u) {
          const uint32_t pu = sigma.Position(static_cast<uint32_t>(u));
          for (Graph::NodeId v : graph.Neighbors(static_cast<uint32_t>(u))) {
            if (v <= u) continue;
            const size_t idx = TableIndex(pu, sigma.Position(v));
            grad[0] += grad_a_[idx];
            grad[1] += grad_b_[idx];
            grad[2] += grad_c_[idx];
          }
        }
        return grad;
      });
}

}  // namespace dpkron
