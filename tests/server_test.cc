// dpkrond end-to-end: wire parsing, bounded admission with
// load-shedding, the two deadline checkpoints (budget untouched on
// either refusal), request_id-idempotent retries, budget exhaustion on
// the wire, graceful drain (every admitted request answered), healthz,
// the TCP loopback path, and the crash/restart torture test — cycles of
// concurrent analysts against a FaultInjectionEnv-backed accountant,
// asserting after every recovery that the replayed ledger contains
// every acknowledged spend and never exceeds any analyst's budget.

#include "src/server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/env.h"
#include "src/common/rng.h"
#include "src/common/stat_cache.h"
#include "src/datasets/preferential_attachment.h"
#include "src/graph/graph_io.h"
#include "src/scenarios/scenarios.h"
#include "src/server/wire.h"

namespace dpkron {
namespace {

// Process-unique fixture paths (parallel ctest shards share /tmp).
std::string UniqueTempPath(const std::string& stem, const std::string& ext) {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ext;
}

// A small file-backed dataset keeps every release in this file cheap;
// all tests share one so the StatCache amortizes across them exactly
// the way a warm daemon amortizes across requests.
const std::string& SharedDataset() {
  static const std::string path = [] {
    const std::string p = UniqueTempPath("server_dataset", ".edges");
    Rng rng(4242);
    PreferentialAttachmentOptions options;
    options.num_nodes = 120;
    options.edges_per_node = 2;
    EXPECT_TRUE(WriteEdgeList(PreferentialAttachmentGraph(options, rng), p)
                    .ok());
    return p;
  }();
  return path;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterAllScenarios();
    StatCache::Instance().set_enabled(false);
    StatCache::Instance().Clear();
  }
  void TearDown() override {
    StatCache::Instance().set_enabled(false);
    StatCache::Instance().Clear();
  }

  ServerConfig BaseConfig(const std::string& stem) {
    ServerConfig config;
    config.accountant_path = UniqueTempPath(stem, ".dpkacct");
    if (GetEnv()->FileExists(config.accountant_path)) {
      EXPECT_TRUE(GetEnv()->RemoveFile(config.accountant_path).ok());
    }
    config.workers = 2;
    config.smoke = true;
    config.kronfit_iterations = 2;
    return config;
  }

  ReleaseRequest MakeRequest(const std::string& analyst,
                             const std::string& request_id,
                             double epsilon = 0.25) {
    ReleaseRequest request;
    request.type = RequestType::kRelease;
    request.analyst = analyst;
    request.scenario = "fig2_as20";
    request.dataset = SharedDataset();
    request.epsilon = epsilon;
    request.seed = 7;
    request.request_id = request_id;
    return request;
  }

  std::string RequestLine(const ReleaseRequest& r) {
    return "{\"analyst\":\"" + r.analyst + "\",\"scenario\":\"" + r.scenario +
           "\",\"dataset\":\"" + r.dataset +
           "\",\"epsilon\":" + std::to_string(r.epsilon) +
           ",\"seed\":7,\"request_id\":\"" + r.request_id + "\"}";
  }
};

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Collects worker callbacks and lets the test wait for a count.
struct ResponseSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> responses;

  DpkronServer::ResponseCallback Callback() {
    return [this](std::string response) {
      {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      }
      cv.notify_all();
    };
  }

  std::vector<std::string> WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() >= n; });
    return responses;
  }
};

// ------------------------------------------------------------- wire

TEST(WireTest, ParsesFullRequest) {
  const auto parsed = ParseRequestLine(
      "{\"analyst\":\"alice\",\"scenario\":\"fig2_as20\",\"dataset\":"
      "\"/d/x.edges\",\"epsilon\":0.5,\"seed\":9,\"deadline_ms\":250,"
      "\"request_id\":\"r-1\",\"future_field\":true}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().type, RequestType::kRelease);
  EXPECT_EQ(parsed.value().analyst, "alice");
  EXPECT_EQ(parsed.value().scenario, "fig2_as20");
  EXPECT_EQ(parsed.value().dataset, "/d/x.edges");
  EXPECT_DOUBLE_EQ(parsed.value().epsilon, 0.5);
  ASSERT_TRUE(parsed.value().seed.has_value());
  EXPECT_EQ(*parsed.value().seed, 9u);
  EXPECT_EQ(parsed.value().deadline_ms, 250);
  EXPECT_EQ(parsed.value().request_id, "r-1");
}

TEST(WireTest, ParsesHealthz) {
  const auto parsed = ParseRequestLine("{\"type\":\"healthz\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().type, RequestType::kHealthz);
}

TEST(WireTest, RefusesMalformedAndIncompleteRequests) {
  // Not JSON at all.
  EXPECT_EQ(ParseRequestLine("GET / HTTP/1.1").status().code(),
            StatusCode::kInvalidArgument);
  // Structurally broken.
  EXPECT_FALSE(ParseRequestLine("{\"analyst\":").ok());
  EXPECT_FALSE(ParseRequestLine("{\"analyst\":\"a\"} trailing").ok());
  // Nested containers are outside the protocol.
  EXPECT_FALSE(ParseRequestLine("{\"analyst\":{\"nested\":1}}").ok());
  // Missing required fields.
  EXPECT_FALSE(ParseRequestLine("{\"scenario\":\"s\",\"epsilon\":1}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"analyst\":\"a\",\"epsilon\":1}").ok());
  EXPECT_FALSE(
      ParseRequestLine("{\"analyst\":\"a\",\"scenario\":\"s\"}").ok());
  // ε must be positive and finite.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"analyst\":\"a\",\"scenario\":\"s\",\"epsilon\":0}")
                   .ok());
  EXPECT_FALSE(ParseRequestLine(
                   "{\"analyst\":\"a\",\"scenario\":\"s\",\"epsilon\":-1}")
                   .ok());
  // Unknown type.
  EXPECT_FALSE(ParseRequestLine("{\"type\":\"exfiltrate\"}").ok());
}

TEST(WireTest, ErrorResponseCarriesCodeAndRetryHint) {
  const std::string shed = ErrorResponseJson(
      "r-9", Status::ResourceExhausted("admission queue full"), 50);
  EXPECT_TRUE(Contains(shed, "\"request_id\":\"r-9\""));
  EXPECT_TRUE(Contains(shed, "\"ok\":false"));
  EXPECT_TRUE(Contains(shed, "\"code\":\"RESOURCE_EXHAUSTED\""));
  EXPECT_TRUE(Contains(shed, "\"retry_after_ms\":50"));
  const std::string plain =
      ErrorResponseJson("", Status::NotFound("unknown scenario"));
  EXPECT_FALSE(Contains(plain, "retry_after_ms"));
}

// -------------------------------------------------- admission control

TEST_F(ServerTest, ShedsBeyondQueueCapacityThenServesAdmitted) {
  ServerConfig config = BaseConfig("server_shed");
  config.queue_depth = 4;
  config.workers = 2;
  config.epsilon_budget = 100.0;
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Workers not started: the queue fills deterministically. 2× capacity
  // arrives; exactly capacity admits, the rest shed at admission.
  ResponseSink sink;
  int admitted = 0, shed = 0;
  for (int i = 0; i < 8; ++i) {
    const Status status = server.value()->Submit(
        MakeRequest("alice", "shed_r" + std::to_string(i)), sink.Callback());
    if (status.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(server.value()->stats().accepted, 4u);
  EXPECT_EQ(server.value()->stats().shed, 4u);
  EXPECT_EQ(server.value()->queue_size(), 4u);

  // The same rejection through the connection path carries the
  // retry-after hint.
  const std::string response =
      server.value()->HandleLine(RequestLine(MakeRequest("alice", "shed_r9")));
  EXPECT_TRUE(Contains(response, "\"code\":\"RESOURCE_EXHAUSTED\""));
  EXPECT_TRUE(Contains(response, "\"retry_after_ms\":50"));

  // Health stays observable with the queue full, and reports it.
  const std::string healthz = server.value()->HealthzJson();
  EXPECT_TRUE(Contains(healthz, "\"queue_depth\":4"));
  EXPECT_TRUE(Contains(healthz, "\"shed\":5"));

  // Load lifts: every admitted request completes with a real release.
  server.value()->Start();
  const auto responses = sink.WaitFor(4);
  ASSERT_EQ(responses.size(), 4u);
  for (const std::string& r : responses) {
    EXPECT_TRUE(Contains(r, "\"ok\":true")) << r;
    EXPECT_TRUE(Contains(r, "\"run\":{")) << r;
  }
  server.value()->Drain();
  EXPECT_EQ(server.value()->stats().completed, 4u);
}

// ------------------------------------------------ deadline checkpoints

TEST_F(ServerTest, QueueAgedRequestRefusedAtDequeueWithoutSpend) {
  FakeClock clock(/*now_ms=*/1000, /*auto_advance_ms=*/0);
  ServerConfig config = BaseConfig("server_deadline_queue");
  config.clock = &clock;
  config.workers = 1;
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ReleaseRequest request = MakeRequest("alice", "dl_q1");
  request.deadline_ms = 10;
  ResponseSink sink;
  ASSERT_TRUE(server.value()->Submit(request, sink.Callback()).ok());

  // The request ages out while queued (workers not yet running).
  clock.Advance(50);
  server.value()->Start();
  const auto responses = sink.WaitFor(1);
  EXPECT_TRUE(Contains(responses[0], "\"code\":\"DEADLINE_EXCEEDED\""))
      << responses[0];
  EXPECT_TRUE(Contains(responses[0], "dequeue")) << responses[0];
  // Refused before compute ⇒ before the charge: nothing spent, the
  // analyst has no ledger entry at all.
  EXPECT_DOUBLE_EQ(server.value()->accountant().epsilon_spent("alice"), 0.0);
  EXPECT_EQ(server.value()->accountant().total_spends(), 0u);
  EXPECT_EQ(server.value()->stats().deadline_missed, 1u);
  server.value()->Drain();
}

TEST_F(ServerTest, DeadlineDuringComputeRefusedBeforeSpend) {
  // Every clock read advances 3ms: submit stamps deadline_at = now + 5,
  // the dequeue checkpoint still passes (3ms elapsed), the pre-spend
  // checkpoint lands at +6ms — past the deadline, after the compute,
  // BEFORE the charge.
  FakeClock clock(/*now_ms=*/0, /*auto_advance_ms=*/3);
  ServerConfig config = BaseConfig("server_deadline_compute");
  config.clock = &clock;
  config.workers = 1;
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ReleaseRequest request = MakeRequest("alice", "dl_c1");
  request.deadline_ms = 5;
  ResponseSink sink;
  ASSERT_TRUE(server.value()->Submit(request, sink.Callback()).ok());
  server.value()->Start();
  const auto responses = sink.WaitFor(1);
  EXPECT_TRUE(Contains(responses[0], "\"code\":\"DEADLINE_EXCEEDED\""))
      << responses[0];
  EXPECT_TRUE(Contains(responses[0], "pre-spend")) << responses[0];
  EXPECT_DOUBLE_EQ(server.value()->accountant().epsilon_spent("alice"), 0.0);
  EXPECT_EQ(server.value()->accountant().total_spends(), 0u);
  EXPECT_FALSE(server.value()->accountant().SeenRequest("dl_c1"));
  server.value()->Drain();
}

// ------------------------------------------- idempotent retry + budget

TEST_F(ServerTest, RetriedRequestIdAcknowledgedWithoutSecondCharge) {
  ServerConfig config = BaseConfig("server_dedup");
  config.epsilon_budget = 100.0;
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server.value()->Start();

  const std::string line = RequestLine(MakeRequest("alice", "retry_1"));
  const std::string first = server.value()->HandleLine(line);
  EXPECT_TRUE(Contains(first, "\"ok\":true")) << first;
  EXPECT_TRUE(Contains(first, "\"deduped\":false")) << first;
  const double spent_once =
      server.value()->accountant().epsilon_spent("alice");
  EXPECT_GT(spent_once, 0.0);

  // The blind retry (client timed out after the spend became durable)
  // is acknowledged — same budget, deduped flag set.
  const std::string retry = server.value()->HandleLine(line);
  EXPECT_TRUE(Contains(retry, "\"ok\":true")) << retry;
  EXPECT_TRUE(Contains(retry, "\"deduped\":true")) << retry;
  EXPECT_DOUBLE_EQ(server.value()->accountant().epsilon_spent("alice"),
                   spent_once);
  EXPECT_EQ(server.value()->accountant().total_spends(), 1u);
  EXPECT_EQ(server.value()->stats().deduped, 1u);
  server.value()->Drain();
}

TEST_F(ServerTest, ExhaustedBudgetRefusesNewButAcksRetries) {
  ServerConfig config = BaseConfig("server_budget");
  config.epsilon_budget = 0.3;  // admits one 0.25-ε release, not two
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server.value()->Start();

  const std::string paid =
      server.value()->HandleLine(RequestLine(MakeRequest("alice", "b_1")));
  EXPECT_TRUE(Contains(paid, "\"ok\":true")) << paid;

  const std::string refused =
      server.value()->HandleLine(RequestLine(MakeRequest("alice", "b_2")));
  EXPECT_TRUE(Contains(refused, "\"code\":\"RESOURCE_EXHAUSTED\"")) << refused;
  EXPECT_TRUE(Contains(refused, "budget exhausted")) << refused;
  EXPECT_GE(server.value()->stats().budget_refused, 1u);

  // Another analyst's budget is untouched by alice's exhaustion.
  const std::string other =
      server.value()->HandleLine(RequestLine(MakeRequest("bob", "b_3")));
  EXPECT_TRUE(Contains(other, "\"ok\":true")) << other;

  // The retry of the PAID request is still acknowledged from the
  // exhausted budget — its first attempt bought the answer.
  const std::string retry =
      server.value()->HandleLine(RequestLine(MakeRequest("alice", "b_1")));
  EXPECT_TRUE(Contains(retry, "\"ok\":true")) << retry;
  EXPECT_TRUE(Contains(retry, "\"deduped\":true")) << retry;
  server.value()->Drain();
}

// ------------------------------------------------------ graceful drain

TEST_F(ServerTest, DrainAnswersEveryAdmittedRequestThenRefuses) {
  ServerConfig config = BaseConfig("server_drain");
  config.queue_depth = 16;
  config.workers = 2;
  config.epsilon_budget = 100.0;
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ResponseSink sink;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.value()
                    ->Submit(MakeRequest("alice", "dr_" + std::to_string(i)),
                             sink.Callback())
                    .ok());
  }
  server.value()->Start();
  // SIGTERM semantics: Drain returns only after every admitted request
  // has been processed and answered.
  server.value()->Drain();
  ASSERT_EQ(sink.WaitFor(6).size(), 6u);
  EXPECT_EQ(server.value()->stats().completed, 6u);
  EXPECT_EQ(server.value()->queue_size(), 0u);
  EXPECT_EQ(server.value()->in_flight(), 0);

  // Post-drain: new work refused as UNAVAILABLE (retry elsewhere),
  // health still served and reporting the drain.
  ResponseSink late;
  const Status refused =
      server.value()->Submit(MakeRequest("alice", "dr_late"), late.Callback());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.value()->stats().drain_refused, 1u);
  const std::string healthz = server.value()->HealthzJson();
  EXPECT_TRUE(Contains(healthz, "\"draining\":true"));
  // Drain is idempotent.
  server.value()->Drain();
}

TEST_F(ServerTest, HealthzReportsBudgetsAndCache) {
  ServerConfig config = BaseConfig("server_healthz");
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server.value()->Start();
  const std::string ok =
      server.value()->HandleLine(RequestLine(MakeRequest("carol", "h_1")));
  ASSERT_TRUE(Contains(ok, "\"ok\":true")) << ok;

  const std::string healthz =
      server.value()->HandleLine("{\"type\":\"healthz\"}");
  EXPECT_TRUE(Contains(healthz, "\"type\":\"healthz\"")) << healthz;
  EXPECT_TRUE(Contains(healthz, "\"carol\":{\"epsilon_spent\":")) << healthz;
  EXPECT_TRUE(Contains(healthz, "\"epsilon_total\":1")) << healthz;
  EXPECT_TRUE(Contains(healthz, "\"accepted\":1")) << healthz;
  EXPECT_TRUE(Contains(healthz, "\"cache\":{\"enabled\":true")) << healthz;
  server.value()->Drain();
}

// ------------------------------------------------------- TCP loopback

// Reads one '\n'-terminated line from fd (the test-side client).
std::string ReadLine(int fd) {
  std::string line;
  char c;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return line;
    }
    if (c == '\n') return line;
    line.push_back(c);
  }
}

void SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

TEST_F(ServerTest, TcpLoopbackServesReleasesAndSurvivesMalformedLines) {
  ServerConfig config = BaseConfig("server_tcp");
  config.epsilon_budget = 100.0;
  auto server = DpkronServer::Create(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value()->Listen(0).ok());
  ASSERT_GT(server.value()->port(), 0);
  server.value()->Start();

  std::atomic<bool> stop{false};
  std::thread acceptor(
      [&server, &stop] { server.value()->AcceptLoop(&stop); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.value()->port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  SendLine(fd, "{\"type\":\"healthz\"}");
  EXPECT_TRUE(Contains(ReadLine(fd), "\"type\":\"healthz\""));

  // A malformed line gets a structured refusal; the connection (and the
  // daemon) survive to serve the next request.
  SendLine(fd, "not json at all");
  EXPECT_TRUE(Contains(ReadLine(fd), "\"code\":\"INVALID_ARGUMENT\""));

  SendLine(fd, RequestLine(MakeRequest("tcp_analyst", "tcp_1")));
  const std::string release = ReadLine(fd);
  EXPECT_TRUE(Contains(release, "\"ok\":true")) << release.substr(0, 200);
  EXPECT_TRUE(Contains(release, "\"request_id\":\"tcp_1\""));

  ::close(fd);
  stop.store(true);
  acceptor.join();
  server.value()->Drain();
  EXPECT_DOUBLE_EQ(server.value()->accountant().epsilon_spent("tcp_analyst"),
                   0.25);
}

// ------------------------------------------------------- torture test

// The headline robustness property, end to end: cycles of concurrent
// analysts spending through a server whose accountant lives on a
// FaultInjectionEnv; between cycles the process either drains cleanly
// (SIGTERM) or "crashes" (unsynced bytes dropped — kill -9). Invariants
// after EVERY recovery:
//   1. recovered spends ⊇ acknowledged spends (per analyst, ε and ids);
//   2. no analyst's recovered spend exceeds the budget;
//   3. a replayed acknowledged request_id is acked deduped, uncharged.
TEST_F(ServerTest, TortureCrashRestartNeverLosesAckedSpendOrOverspends) {
  FaultInjectionEnv fault_env;
  ScopedEnvOverride scoped(&fault_env);

  const std::string acct = UniqueTempPath("server_torture", ".dpkacct");
  if (GetEnv()->FileExists(acct)) {
    ASSERT_TRUE(GetEnv()->RemoveFile(acct).ok());
  }
  const double kBudget = 100.0;
  const double kDeltaBudget = 0.5;  // must match every Open of this ledger
  const std::vector<std::string> analysts = {"alice", "bob", "carol"};

  std::mutex acked_mu;
  std::map<std::string, double> acked_epsilon;
  std::map<std::string, std::set<std::string>> acked_ids;
  std::string replay_line;  // one acked request to replay at the end

  // NOT BaseConfig: that helper deletes a pre-existing journal, and the
  // journal surviving across cycles is the whole point of this test.
  auto TortureConfig = [&] {
    ServerConfig config;
    config.accountant_path = acct;
    config.epsilon_budget = kBudget;
    config.delta_budget = kDeltaBudget;
    config.smoke = true;
    config.kronfit_iterations = 2;
    return config;
  };

  int next_request = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ServerConfig config = TortureConfig();
    config.workers = 3;
    auto server = DpkronServer::Create(config);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server.value()->Start();

    // Cycle 1 runs with a one-shot sync fault armed: one spend's
    // journal append fails and must be REFUSED on the wire (a response
    // the client never treats as a release) rather than acked-but-lost.
    if (cycle == 1) {
      fault_env.FailSyncs(2, Status::Unavailable("injected sync fault"));
    }

    std::vector<std::thread> threads;
    for (const std::string& analyst : analysts) {
      const int base = next_request;
      next_request += 2;
      threads.emplace_back([&, analyst, base] {
        for (int i = 0; i < 2; ++i) {
          ReleaseRequest request = MakeRequest(
              analyst, "t_" + std::to_string(base + i), /*epsilon=*/0.25);
          const std::string line = RequestLine(request);
          const std::string response = server.value()->HandleLine(line);
          if (Contains(response, "\"ok\":true") &&
              Contains(response, "\"deduped\":false")) {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked_epsilon[analyst] += 0.25;
            acked_ids[analyst].insert(request.request_id);
            if (replay_line.empty()) replay_line = line;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    fault_env.ClearFaults();

    if (cycle % 2 == 0) {
      server.value()->Drain();  // SIGTERM path
    }
    // Destroy the server (drains if it hasn't), then simulate kill -9:
    // everything unsynced vanishes. Acked spends were fsynced before
    // their ack, so this can only shed refused/unacked tails.
    server = Status::Internal("destroyed");
    fault_env.DropUnsyncedData();

    // Recovery: reopen the ledger the way the next Create() would.
    auto recovered = PrivacyAccountant::Open(acct, kBudget, kDeltaBudget);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    for (const std::string& analyst : analysts) {
      const double spent = recovered.value()->epsilon_spent(analyst);
      EXPECT_GE(spent, acked_epsilon[analyst] - 1e-9)
          << "cycle " << cycle << ": lost acked spend for " << analyst;
      EXPECT_LE(spent, kBudget) << "over-budget after recovery";
      for (const std::string& id : acked_ids[analyst]) {
        EXPECT_TRUE(recovered.value()->SeenRequest(id))
            << "cycle " << cycle << ": lost acked request_id " << id;
      }
    }
  }

  // Across every crash and recovery, an acknowledged request replayed
  // against a fresh server instance is deduplicated, not re-charged.
  ASSERT_FALSE(replay_line.empty());
  auto server = DpkronServer::Create(TortureConfig());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server.value()->Start();
  const double spent_before_replay =
      server.value()->accountant().epsilon_spent("alice") +
      server.value()->accountant().epsilon_spent("bob") +
      server.value()->accountant().epsilon_spent("carol");
  const std::string replayed = server.value()->HandleLine(replay_line);
  EXPECT_TRUE(Contains(replayed, "\"ok\":true")) << replayed;
  EXPECT_TRUE(Contains(replayed, "\"deduped\":true")) << replayed;
  EXPECT_DOUBLE_EQ(server.value()->accountant().epsilon_spent("alice") +
                       server.value()->accountant().epsilon_spent("bob") +
                       server.value()->accountant().epsilon_spent("carol"),
                   spent_before_replay);
  server.value()->Drain();
}

}  // namespace
}  // namespace dpkron
