#include "src/common/status.h"

#include <cerrno>
#include <string>

#include <gtest/gtest.h>

#include "src/common/env.h"

namespace dpkron {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
}

TEST(StatusTest, ServerCodesCarryCodeAndMessage) {
  const Status deadline = Status::DeadlineExceeded("missed by 5ms");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DEADLINE_EXCEEDED: missed by 5ms");
  const Status cancelled = Status::Cancelled("caller went away");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "CANCELLED: caller went away");
}

TEST(StatusTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kUnavailable));
  // An exhausted resource (disk, privacy budget) or a missed deadline
  // must NOT be blindly retried.
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kCancelled));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kInvalidArgument));
}

TEST(StatusTest, ErrnoMappings) {
  EXPECT_EQ(ErrnoStatus("op", ENOENT).code(), StatusCode::kNotFound);
  EXPECT_EQ(ErrnoStatus("op", ENOSPC).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrnoStatus("op", ETIMEDOUT).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ErrnoStatus("op", EAGAIN).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrnoStatus("op", EWOULDBLOCK).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrnoStatus("op", ECONNRESET).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrnoStatus("op", ECONNREFUSED).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrnoStatus("op", EPIPE).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrnoStatus("op", EEXIST).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ErrnoStatus("op", EIO).code(), StatusCode::kInternal);
  // The context prefixes the strerror text.
  EXPECT_NE(ErrnoStatus("open /tmp/x", ENOENT).message().find("open /tmp/x"),
            std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(ResultTest, MutableValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH((void)r.value(), "INTERNAL");
}

TEST(ResultDeathTest, OkStatusIntoResultAborts) {
  EXPECT_DEATH(Result<int>{Status::Ok()}, "without a value");
}

}  // namespace
}  // namespace dpkron
