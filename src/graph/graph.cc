#include "src/graph/graph.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/graph/graph_view.h"

namespace dpkron {

Graph Graph::FromCsr(OffsetVector offsets, AdjacencyVector adjacency) {
  DPKRON_CHECK(!offsets.empty());
  DPKRON_CHECK_EQ(offsets.front(), 0u);
  DPKRON_CHECK_EQ(offsets.back(), adjacency.size());
  DPKRON_CHECK_EQ(adjacency.size() % 2, 0u);
  const uint32_t n = static_cast<uint32_t>(offsets.size() - 1);
  for (uint32_t u = 0; u < n; ++u) {
    DPKRON_CHECK_LE(offsets[u], offsets[u + 1]);
    for (uint32_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      DPKRON_CHECK_LT(adjacency[i], n);
      DPKRON_CHECK_MSG(adjacency[i] != u, "self-loop in CSR input");
      if (i > offsets[u]) {
        DPKRON_CHECK_MSG(adjacency[i - 1] < adjacency[i],
                         "adjacency list not strictly sorted");
      }
    }
  }
  return Graph(std::move(offsets), std::move(adjacency));
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  DPKRON_CHECK_LT(u, NumNodes());
  DPKRON_CHECK_LT(v, NumNodes());
  const auto neighbors = Neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

uint64_t Graph::ContentFingerprint() const {
  const uint64_t cached = fingerprint_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // Same formula as the .dpkb payload checksum (graph_io.cc): shared
  // with GraphView so every backing of the same CSR bytes agrees.
  const uint64_t hash = CsrContentFingerprint(offsets_, adjacency_);
  fingerprint_.store(hash, std::memory_order_relaxed);
  return hash;
}

std::vector<std::pair<Graph::NodeId, Graph::NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(NumEdges());
  ForEachEdge([&edges](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  return edges;
}

}  // namespace dpkron
